/**
 * @file
 * Ablation (Section 6.2): lazy vs eager misspeculation recovery in
 * the failure-atomic runtime.
 *
 * Lazy recovery finishes the doomed FASE before aborting; eager
 * recovery aborts at the next runtime entry point. We run FASEs of
 * growing length with a misspeculation injected after the first
 * transactional access and measure the wasted (re-executed) accesses
 * under both policies.
 */

#include <cstdio>

#include "common/types.hh"
#include "pmds/pm_array.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

int
main()
{
    using namespace pmemspec;
    using namespace pmemspec::runtime;

    std::printf("# Ablation: lazy vs eager recovery "
                "(accesses executed per aborted FASE)\n");
    std::printf("%-14s %12s %12s %12s\n", "fase-accesses", "lazy",
                "eager", "saving");

    for (unsigned len : {4u, 16u, 64u, 256u, 1024u}) {
        std::size_t executed[2] = {0, 0};
        int idx = 0;
        for (RecoveryPolicy policy :
             {RecoveryPolicy::Lazy, RecoveryPolicy::Eager}) {
            PersistentMemory pm(1 << 24);
            VirtualOs os;
            FaseRuntime rt(pm, os, 1, policy, 1 << 20);
            pmds::PmArray arr(pm, len, 64);
            for (unsigned i = 0; i < len; ++i)
                arr.init(i, i);
            pm.persistAll();

            std::size_t accesses = 0;
            int runs = 0;
            rt.runFase(0, [&](Transaction &tx) {
                ++runs;
                for (unsigned i = 0; i < len; ++i) {
                    tx.writeU64(arr.elemAddr(i), i + 100);
                    ++accesses;
                    if (runs == 1 && i == 0)
                        os.raiseMisspecInterrupt(arr.elemAddr(0));
                }
            });
            executed[idx++] = accesses;
        }
        std::printf("%-14u %12zu %12zu %11.1f%%\n", len, executed[0],
                    executed[1],
                    100.0 *
                        (1.0 - static_cast<double>(executed[1]) /
                                   static_cast<double>(executed[0])));
    }
    std::printf("\nEager recovery aborts the doomed attempt at its "
                "next runtime entry point instead of running the "
                "FASE to its commit check (Section 6.2.2).\n");
    return 0;
}
