/**
 * @file
 * Ablation (Section 6.2): lazy vs eager misspeculation recovery in
 * the failure-atomic runtime.
 *
 * Lazy recovery finishes the doomed FASE before aborting; eager
 * recovery aborts at the next runtime entry point. We run FASEs of
 * growing length with a misspeculation injected after the first
 * transactional access and measure the wasted (re-executed) accesses
 * under both policies.
 */

#include <array>

#include "bench_util.hh"
#include "pmds/pm_array.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using namespace pmemspec::runtime;

    const auto opt = BenchOptions::parse(argc, argv);
    const std::vector<unsigned> lens = {4, 16, 64, 256, 1024};

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("ablation_recovery");

    std::vector<std::array<std::size_t, 2>> executed(lens.size());
    runner.forEach(lens.size(), [&](std::size_t li) {
        const unsigned len = lens[li];
        int idx = 0;
        for (RecoveryPolicy policy :
             {RecoveryPolicy::Lazy, RecoveryPolicy::Eager}) {
            PersistentMemory pm(1 << 24);
            VirtualOs os;
            FaseRuntime rt(pm, os, 1, policy, 1 << 20);
            pmds::PmArray arr(pm, len, 64);
            for (unsigned i = 0; i < len; ++i)
                arr.init(i, i);
            pm.persistAll();

            std::size_t accesses = 0;
            int runs = 0;
            rt.runFase(0, [&](Transaction &tx) {
                ++runs;
                for (unsigned i = 0; i < len; ++i) {
                    tx.writeU64(arr.elemAddr(i), i + 100);
                    ++accesses;
                    if (runs == 1 && i == 0)
                        os.raiseMisspecInterrupt(arr.elemAddr(0));
                }
            });
            executed[li][idx++] = accesses;
        }
    });

    std::printf("# Ablation: lazy vs eager recovery "
                "(accesses executed per aborted FASE)\n");
    std::printf("%-14s %12s %12s %12s\n", "fase-accesses", "lazy",
                "eager", "saving");
    for (std::size_t li = 0; li < lens.size(); ++li) {
        const double saving =
            100.0 * (1.0 - static_cast<double>(executed[li][1]) /
                               static_cast<double>(executed[li][0]));
        std::printf("%-14u %12zu %12zu %11.1f%%\n", lens[li],
                    executed[li][0], executed[li][1], saving);
        Json row = Json::object();
        row.set("fase_accesses", Json(lens[li]));
        row.set("lazy",
                Json(static_cast<std::uint64_t>(executed[li][0])));
        row.set("eager",
                Json(static_cast<std::uint64_t>(executed[li][1])));
        row.set("saving_pct", Json(saving));
        sink.addRow("recovery", std::move(row));
    }
    std::printf("\nEager recovery aborts the doomed attempt at its "
                "next runtime entry point instead of running the "
                "FASE to its commit check (Section 6.2.2).\n");
    finishJson(sink, opt);
    return 0;
}
