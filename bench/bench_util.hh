/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every binary prints the rows/series of one table or figure of the
 * paper. Absolute numbers depend on the simulated substrate; the
 * *shape* (who wins, by roughly what factor) is the reproduction
 * target (see EXPERIMENTS.md).
 *
 * All binaries accept: [ops_per_thread] as argv[1] (default below).
 */

#ifndef PMEMSPEC_BENCH_BENCH_UTIL_HH
#define PMEMSPEC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace pmemspec::bench
{

/** Default FASEs per thread (the paper runs 100K; throughput is
 *  steady-state, so a few hundred per thread give the same shape in
 *  seconds instead of hours). */
constexpr std::uint64_t defaultOps = 400;

inline std::uint64_t
opsFromArgv(int argc, char **argv, std::uint64_t fallback = defaultOps)
{
    if (argc > 1) {
        const long v = std::atol(argv[1]);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return fallback;
}

inline workloads::WorkloadParams
params(unsigned threads, std::uint64_t ops)
{
    workloads::WorkloadParams p;
    p.numThreads = threads;
    p.opsPerThread = ops;
    p.seed = 1;
    return p;
}

/** One normalised row: benchmark name + value per design. */
inline void
printHeader(const char *title)
{
    std::printf("# %s\n", title);
    std::printf("%-12s %10s %10s %10s %10s\n", "benchmark", "IntelX86",
                "DPO", "HOPS", "PMEM-Spec");
}

inline void
printRow(const std::string &name,
         const std::map<persistency::Design, double> &norm)
{
    using persistency::Design;
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                norm.at(Design::IntelX86), norm.at(Design::DPO),
                norm.at(Design::HOPS), norm.at(Design::PmemSpec));
    std::fflush(stdout);
}

inline void
printGeomeanRow(const std::vector<std::map<persistency::Design,
                                           double>> &rows)
{
    using persistency::Design;
    std::map<Design, double> gm;
    for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS,
                     Design::PmemSpec}) {
        std::vector<double> vals;
        for (const auto &r : rows)
            vals.push_back(r.at(d));
        gm[d] = geomean(vals);
    }
    printRow("GEOMEAN", gm);
}

} // namespace pmemspec::bench

#endif // PMEMSPEC_BENCH_BENCH_UTIL_HH
