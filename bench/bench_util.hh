/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every binary prints the rows/series of one table or figure of the
 * paper. Absolute numbers depend on the simulated substrate; the
 * *shape* (who wins, by roughly what factor) is the reproduction
 * target (see EXPERIMENTS.md).
 *
 * Common CLI (BenchOptions):
 *   --ops N          FASEs per thread (bare argv[1] still accepted)
 *   --jobs N         sweep worker threads (0/default = host cores)
 *   --sim-threads N  domain-parallel host threads inside one run
 *                    (service shards / crash-exploration ops);
 *                    0 = host cores, results byte-identical for any N
 *   --json PATH      write machine-readable results (BENCH_*.json)
 *   --designs A,B    subset of IntelX86,DPO,HOPS,PMEM-Spec
 *   --trace FLAGS    event tracing (PersistPath,PmController,
 *                    SpecBuffer,Core,FaseRuntime,FaultInject or "all")
 *   --trace-out P    export the trace (.json: Chrome trace-event
 *                    format, else the compact binary log); implies
 *                    --trace all when no flags were given
 *   --trace-ring N   per-core ring capacity in events (default 64K);
 *                    raise it for a lossless checker-grade capture
 *   --flight-recorder  bounded always-on recorder, dumped on panics
 *                    and misspeculation traps
 *   --metrics        sample time-series metrics + the per-FASE-site
 *                    speculation profile into the JSON results
 *   --metrics-interval-us N  sampling cadence in simulated
 *                    microseconds (implies --metrics; default 100)
 *   --help           usage
 *
 * All flags also accept the --flag=value spelling.
 */

#ifndef PMEMSPEC_BENCH_BENCH_UTIL_HH
#define PMEMSPEC_BENCH_BENCH_UTIL_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "observe/metrics.hh"

namespace pmemspec::bench
{

/** Default FASEs per thread (the paper runs 100K; throughput is
 *  steady-state, so a few hundred per thread give the same shape in
 *  seconds instead of hours). */
constexpr std::uint64_t defaultOps = 400;

/** Parsed common command line of every bench binary. */
struct BenchOptions
{
    std::uint64_t ops = defaultOps;
    /** Sweep worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Domain-parallel threads inside one simulated run (service
     *  shards, crash-exploration ops); 0 = hardware concurrency.
     *  Results are byte-identical for any value (DESIGN.md sec. 12),
     *  so this knob trades wall clock only. */
    unsigned simThreads = 1;
    /** Output path for the JSON results; empty = stdout only. */
    std::string jsonPath;
    std::vector<persistency::Design> designs =
        persistency::allDesigns();
    /** Event tracing / flight recorder (off unless requested). */
    trace::Config trace;
    /** Time-series metrics + FASE speculation profile (off unless
     *  requested; off keeps bench JSON byte-identical to pre-metrics
     *  output). */
    observe::MetricsConfig metrics;

    static BenchOptions
    parse(int argc, char **argv,
          std::uint64_t fallback_ops = defaultOps)
    {
        BenchOptions opt;
        opt.ops = fallback_ops;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            // Accept both "--flag value" and "--flag=value".
            std::string inline_val;
            bool has_inline = false;
            if (arg.rfind("--", 0) == 0) {
                const std::size_t eq = arg.find('=');
                if (eq != std::string::npos) {
                    inline_val = arg.substr(eq + 1);
                    arg.resize(eq);
                    has_inline = true;
                }
            }
            auto value = [&](const char *flag) -> std::string {
                if (has_inline)
                    return inline_val;
                if (++i >= argc)
                    usageExit(argv[0], 1, "missing value for %s",
                              flag);
                return argv[i];
            };
            if (arg == "--help" || arg == "-h") {
                usageExit(argv[0], 0, nullptr);
            } else if (arg == "--ops") {
                opt.ops = parseCount(argv[0], "--ops",
                                     value("--ops").c_str());
            } else if (arg == "--jobs") {
                opt.jobs = static_cast<unsigned>(parseCount(
                    argv[0], "--jobs", value("--jobs").c_str()));
            } else if (arg == "--sim-threads") {
                // 0 is meaningful here (= hardware concurrency), so
                // this flag bypasses parseCount's positivity check.
                const std::string v = value("--sim-threads");
                if (v.empty() ||
                    v.find_first_not_of("0123456789") !=
                        std::string::npos)
                    usageExit(argv[0], 1,
                              "--sim-threads wants a non-negative "
                              "integer, got '%s'",
                              v.c_str());
                opt.simThreads = static_cast<unsigned>(
                    std::strtoull(v.c_str(), nullptr, 10));
            } else if (arg == "--json") {
                opt.jsonPath = value("--json");
            } else if (arg == "--designs") {
                opt.designs = parseDesigns(argv[0],
                                           value("--designs"));
            } else if (arg == "--trace") {
                const std::string list = value("--trace");
                if (!trace::parseFlags(list, opt.trace.flags))
                    usageExit(argv[0], 1,
                              "unknown trace flag in '%s'",
                              list.c_str());
            } else if (arg == "--trace-out") {
                opt.trace.outPath = value("--trace-out");
            } else if (arg == "--trace-ring") {
                opt.trace.ringEntries = parseCount(
                    argv[0], "--trace-ring",
                    value("--trace-ring").c_str());
            } else if (arg == "--flight-recorder") {
                opt.trace.flightRecorder = true;
            } else if (arg == "--metrics") {
                opt.metrics.sample = true;
            } else if (arg == "--metrics-interval-us") {
                opt.metrics.sample = true;
                opt.metrics.interval = nsToTicks(1000.0) *
                    parseCount(argv[0], "--metrics-interval-us",
                               value("--metrics-interval-us").c_str());
            } else if (i == 1 && !arg.empty() &&
                       arg.find_first_not_of("0123456789") ==
                           std::string::npos) {
                // Backward compatible bare ops_per_thread position.
                opt.ops = parseCount(argv[0], "ops", argv[i]);
            } else {
                usageExit(argv[0], 1, "unknown argument '%s'",
                          arg.c_str());
            }
        }
        // An export destination with no selected components means
        // "trace everything".
        if (!opt.trace.outPath.empty() && opt.trace.flags == 0)
            opt.trace.flags = trace::FlagAll;
        return opt;
    }

  private:
    [[noreturn]] static void
    usageExit(const char *prog, int code, const char *fmt, ...)
    {
        if (fmt) {
            va_list args;
            va_start(args, fmt);
            std::fprintf(stderr, "%s: ", prog);
            std::vfprintf(stderr, fmt, args);
            std::fprintf(stderr, "\n");
            va_end(args);
        }
        std::fprintf(
            code ? stderr : stdout,
            "usage: %s [ops_per_thread] [--ops N] [--jobs N]\n"
            "       [--sim-threads N] [--json PATH] "
            "[--designs A,B,...]\n"
            "       [--trace FLAGS] [--trace-out PATH] "
            "[--trace-ring N]\n"
            "       [--flight-recorder] [--metrics]\n"
            "       [--metrics-interval-us N] [--help]\n"
            "\n"
            "  --ops N        FASEs per thread\n"
            "  --jobs N       parallel sweep workers (default: host "
            "cores)\n"
            "  --sim-threads N  domain-parallel threads inside one "
            "run\n"
            "                 (0 = host cores; output is "
            "byte-identical for any N)\n"
            "  --json PATH    write machine-readable results "
            "(pmemspec-bench-v1)\n"
            "  --designs L    comma list of IntelX86,DPO,HOPS,"
            "PMEM-Spec\n"
            "  --trace FLAGS  comma list of PersistPath,PmController,"
            "SpecBuffer,\n"
            "                 Core,FaseRuntime,FaultInject, or 'all'\n"
            "  --trace-out P  export the trace to P (.json: Chrome "
            "trace-event\n"
            "                 JSON; else compact binary); implies "
            "--trace all\n"
            "  --trace-ring N per-core ring capacity in events "
            "(default 65536);\n"
            "                 the offline checker needs a lossless "
            "(drop-free) trace\n"
            "  --flight-recorder  always-on bounded recorder, dumped "
            "on faults\n"
            "  --metrics      sample time-series metrics + the FASE "
            "speculation\n"
            "                 profile into the JSON results\n"
            "  --metrics-interval-us N  sampling cadence in simulated "
            "us\n"
            "                 (implies --metrics; default 100)\n",
            prog);
        std::exit(code);
    }

    static std::uint64_t
    parseCount(const char *prog, const char *flag, const char *s)
    {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (!end || *end != '\0' || v == 0)
            usageExit(prog, 1, "%s wants a positive integer, got '%s'",
                      flag, s);
        return static_cast<std::uint64_t>(v);
    }

    static std::vector<persistency::Design>
    parseDesigns(const char *prog, const std::string &list)
    {
        std::vector<persistency::Design> out;
        std::size_t pos = 0;
        while (pos <= list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string name =
                list.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            persistency::Design d;
            if (!persistency::designFromName(name, d))
                usageExit(prog, 1, "unknown design '%s'",
                          name.c_str());
            out.push_back(d);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (out.empty())
            usageExit(prog, 1, "--designs wants at least one design");
        return out;
    }
};

inline workloads::WorkloadParams
params(unsigned threads, std::uint64_t ops)
{
    workloads::WorkloadParams p;
    p.numThreads = threads;
    p.opsPerThread = ops;
    p.seed = 1;
    return p;
}

/** Header: benchmark column + one column per selected design. */
inline void
printHeader(const char *title,
            const std::vector<persistency::Design> &designs =
                persistency::allDesigns())
{
    std::printf("# %s\n", title);
    std::printf("%-12s", "benchmark");
    for (auto d : designs)
        std::printf(" %10s", persistency::designName(d).c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const core::NormalizedRow &row)
{
    std::printf("%-12s", name.c_str());
    for (auto d : row.designs)
        std::printf(" %10.3f", row.normalized.at(d));
    std::printf("\n");
    std::fflush(stdout);
}

inline void
printRow(const core::NormalizedRow &row)
{
    printRow(workloads::benchName(row.bench), row);
}

/** Mean over every snapshot stat whose qualified name ends with
 *  `suffix` (e.g. ".occupancyDist.p99" across all persist-path
 *  lanes); `fallback` when no stat matches. */
inline double
meanStatSuffix(const core::ExperimentResult &res,
               const std::string &suffix, double fallback = 0)
{
    double sum = 0;
    unsigned n = 0;
    for (const auto &sv : res.stats) {
        if (sv.name.size() >= suffix.size() &&
            sv.name.compare(sv.name.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
            sum += sv.value;
            ++n;
        }
    }
    return n ? sum / n : fallback;
}

/** Fold per-design geomeans over the rows into one synthetic row. */
inline core::NormalizedRow
geomeanRow(const std::vector<core::NormalizedRow> &rows)
{
    core::NormalizedRow gm;
    if (rows.empty())
        return gm;
    gm.baseline = rows.front().baseline;
    gm.designs = rows.front().designs;
    for (auto d : gm.designs) {
        std::vector<double> norm_vals, raw_vals;
        for (const auto &r : rows) {
            norm_vals.push_back(r.normalized.at(d));
            raw_vals.push_back(r.throughput.at(d));
        }
        gm.normalized[d] = geomean(norm_vals);
        gm.throughput[d] = geomean(raw_vals);
    }
    return gm;
}

inline void
printGeomeanRow(const std::vector<core::NormalizedRow> &rows)
{
    printRow("GEOMEAN", geomeanRow(rows));
}

/** Append the standard normalized table (+ GEOMEAN) to the sink. */
inline void
sinkNormalizedTable(core::ResultSink &sink,
                    const std::vector<core::NormalizedRow> &rows,
                    const std::string &table = "normalized")
{
    for (const auto &r : rows)
        sink.addRow(table, core::ResultSink::rowJson(
                               workloads::benchName(r.bench), r));
    if (!rows.empty())
        sink.addRow(table, core::ResultSink::rowJson(
                               "GEOMEAN", geomeanRow(rows)));
}

/** Standard run metadata + the JSON file write (if requested). */
inline void
finishJson(core::ResultSink &sink, const BenchOptions &opt)
{
    // Job count and wall clock are host facts, not results; leaving
    // them out keeps --jobs 1 and --jobs N byte-identical.
    sink.setMeta("ops_per_thread", Json(opt.ops));
    Json designs = Json::array();
    for (auto d : opt.designs)
        designs.push(Json(persistency::designName(d)));
    sink.setMeta("designs", std::move(designs));
    if (opt.trace.enabled()) {
        Json t = Json::object();
        t.set("flags", Json(trace::flagsToString(opt.trace.flags)));
        t.set("flight_recorder", Json(opt.trace.flightRecorder));
        if (!opt.trace.outPath.empty())
            t.set("out", Json(opt.trace.outPath));
        sink.setMeta("trace", std::move(t));
    }
    if (opt.metrics.enabled()) {
        Json m = Json::object();
        m.set("interval_us",
              Json(opt.metrics.interval / ticksPerNs / 1000));
        sink.setMeta("metrics", std::move(m));
    }
    sink.writeFile(opt.jsonPath);
}

} // namespace pmemspec::bench

#endif // PMEMSPEC_BENCH_BENCH_UTIL_HH
