/**
 * @file
 * Figure 11: sensitivity to the speculation buffer size (1..16
 * entries) in the 8-core system, PMEM-Spec only, reported as the
 * geomean across the Table 4 benchmarks normalised to the 16-entry
 * (overflow-free) configuration.
 *
 * Expected shape (paper): throughput improves with size; the 1-entry
 * buffer loses ~12.8% to the overflow pauses; 16 entries see no
 * overflow.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto opt = BenchOptions::parse(argc, argv);
    const std::vector<unsigned> sizes = {1, 2, 4, 8, 16};
    const auto benches = workloads::allBenchmarks();

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("fig11_specbuf");

    std::vector<core::SweepPoint> points;
    for (unsigned size : sizes) {
        for (auto b : benches) {
            core::SweepPoint p;
            p.id = "sb" + std::to_string(size) + "/" +
                   workloads::benchName(b);
            p.cfg.withBench(b)
                .withDesign(persistency::Design::PmemSpec)
                .withMachine(core::defaultMachineConfig(8));
            p.cfg.machine.mem.specBufferEntries = size;
            p.cfg.machine.trace = opt.trace;
            p.cfg.machine.metrics = opt.metrics;
            // The sweep needs LLC eviction pressure (the buffer only
            // monitors evicted blocks); our scaled-down footprints
            // are cache-resident, so shrink the LLC proportionally
            // to recreate the paper's eviction rate.
            p.cfg.machine.mem.llcBytes = 1 << 21; // 2 MB
            p.cfg.workload = params(8, opt.ops);
            points.push_back(std::move(p));
        }
    }
    const auto results = runner.run(points);
    sink.addPoints(results);

    std::printf("# Figure 11: speculation buffer size sweep "
                "(8 cores, PMEM-Spec)\n");
    std::printf("%-8s %14s %14s %12s %12s\n", "entries",
                "geomean-tput", "vs-16-entry", "full-pauses",
                "resid-p99");

    std::map<unsigned, double> geomean_by_size;
    std::map<unsigned, std::uint64_t> pauses_by_size;
    // Mean speculation-window residency quantiles (ns) across the
    // benchmarks, from the buffer's windowResidency histogram.
    std::map<unsigned, std::map<std::string, double>> resid_by_size;
    const std::vector<std::string> quantiles = {"p50", "p90", "p99"};
    std::size_t idx = 0;
    for (unsigned size : sizes) {
        std::vector<double> tputs;
        std::uint64_t pauses = 0;
        std::map<std::string, double> resid;
        for (std::size_t b = 0; b < benches.size(); ++b) {
            const auto &r = results[idx++];
            fatal_if(!r.ok(), "point %s failed: %s", r.id.c_str(),
                     r.error.c_str());
            tputs.push_back(r.result.throughput);
            pauses += r.result.run.specBufFullPauses;
            for (const auto &q : quantiles)
                resid[q] += r.result.statOr(
                    "machine.memsys.pmc.specbuf.windowResidency." + q);
        }
        for (const auto &q : quantiles)
            resid[q] /= static_cast<double>(benches.size());
        geomean_by_size[size] = geomean(tputs);
        pauses_by_size[size] = pauses;
        resid_by_size[size] = std::move(resid);
    }
    const double ref = geomean_by_size[16];
    for (unsigned size : sizes) {
        std::printf("%-8u %14.3e %14.3f %12llu %12.1f\n", size,
                    geomean_by_size[size], geomean_by_size[size] / ref,
                    static_cast<unsigned long long>(
                        pauses_by_size[size]),
                    resid_by_size[size]["p99"]);
        Json row = Json::object();
        row.set("entries", Json(size));
        row.set("geomean_throughput", Json(geomean_by_size[size]));
        row.set("vs_16_entry", Json(geomean_by_size[size] / ref));
        row.set("full_pauses", Json(pauses_by_size[size]));
        for (const auto &q : quantiles)
            row.set("residency_ns_" + q,
                    Json(resid_by_size[size][q]));
        sink.addRow("specbuf", std::move(row));
    }
    finishJson(sink, opt);
    return 0;
}
