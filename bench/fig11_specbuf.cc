/**
 * @file
 * Figure 11: sensitivity to the speculation buffer size (1..16
 * entries) in the 8-core system, PMEM-Spec only, reported as the
 * geomean across the Table 4 benchmarks normalised to the 16-entry
 * (overflow-free) configuration.
 *
 * Expected shape (paper): throughput improves with size; the 1-entry
 * buffer loses ~12.8% to the overflow pauses; 16 entries see no
 * overflow.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto ops = opsFromArgv(argc, argv);
    const unsigned sizes[] = {1, 2, 4, 8, 16};

    std::printf("# Figure 11: speculation buffer size sweep "
                "(8 cores, PMEM-Spec)\n");
    std::printf("%-8s %14s %14s %12s\n", "entries", "geomean-tput",
                "vs-16-entry", "full-pauses");

    std::map<unsigned, double> geomean_by_size;
    std::map<unsigned, std::uint64_t> pauses_by_size;
    for (unsigned size : sizes) {
        std::vector<double> tputs;
        std::uint64_t pauses = 0;
        for (auto b : workloads::allBenchmarks()) {
            core::ExperimentConfig cfg;
            cfg.bench = b;
            cfg.design = persistency::Design::PmemSpec;
            cfg.machine = core::defaultMachineConfig(8);
            cfg.machine.mem.specBufferEntries = size;
            // The sweep needs LLC eviction pressure (the buffer only
            // monitors evicted blocks); our scaled-down footprints
            // are cache-resident, so shrink the LLC proportionally
            // to recreate the paper's eviction rate.
            cfg.machine.mem.llcBytes = 1 << 21; // 2 MB
            cfg.workload = params(8, ops);
            auto res = core::runExperiment(cfg);
            tputs.push_back(res.throughput);
            pauses += res.run.specBufFullPauses;
        }
        geomean_by_size[size] = geomean(tputs);
        pauses_by_size[size] = pauses;
    }
    const double ref = geomean_by_size[16];
    for (unsigned size : sizes) {
        std::printf("%-8u %14.3e %14.3f %12llu\n", size,
                    geomean_by_size[size], geomean_by_size[size] / ref,
                    static_cast<unsigned long long>(
                        pauses_by_size[size]));
    }
    return 0;
}
