/**
 * @file
 * Serve-through-failure: the YCSB-style service harness under chaos.
 *
 * Runs the sharded always-on service (src/service) once per selected
 * persistency design: open-loop zipfian clients against per-shard
 * failure domains while the fault scheduler injects power cuts,
 * poisoned media and misspeculation storms mid-flight. Reports
 * client-visible SLOs -- throughput, p50/p95/p99/p999 latency,
 * availability, time-to-recover per fault -- plus the consistency
 * oracle's verdict, per design.
 *
 * The default chaos script exercises every fault kind on a different
 * shard; `--faults` replaces it (`--faults none` runs fault-free,
 * `--faults powercut:1:500` cuts power on shard 1 at t=500us -- the
 * CI smoke configuration). `--slo` turns the acceptance criteria into
 * the exit code: zero oracle violations and >= 99% availability on
 *  every shard a fault was not injected into.
 *
 * Each (config, design) run is a deterministic discrete-event
 * simulation; --jobs parallelises across designs and --sim-threads
 * parallelises the per-shard simulation domains inside one run
 * (DESIGN.md section 12). The JSON is byte-identical at any --jobs
 * or --sim-threads value.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "bench_util.hh"
#include "core/sweep.hh"
#include "service/service.hh"

using namespace pmemspec;
using service::FaultEvent;
using service::ServiceConfig;
using service::ServiceFault;
using service::ServiceResult;

namespace
{

[[noreturn]] void
usageExit(const char *prog, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s [--duration-us N] [--shards N] [--clients N]\n"
        "       [--keys N] [--arrival-ns N] [--seed N]\n"
        "       [--faults SPEC[,SPEC...]|none] [--slo]\n"
        "       [--jobs N] [--sim-threads N] [--json PATH]\n"
        "       [--designs A,B,...] [--metrics]\n"
        "       [--metrics-interval-us N]\n"
        "\n"
        "  SPEC = kind:shard:at_us with kind one of\n"
        "         powercut, poison, logpoison, storm\n"
        "  --sim-threads N  host threads over the per-shard\n"
        "         simulation domains of one run (0 = host cores);\n"
        "         the output is byte-identical for any N\n"
        "  --metrics  sample per-shard time-series metrics and the\n"
        "         per-FASE-site speculation profile into the JSON\n"
        "  --metrics-interval-us N  sampling cadence in simulated us\n"
        "         (implies --metrics; default 500)\n"
        "  --slo  exit non-zero unless: zero oracle violations and\n"
        "         availability >= 0.99 on every shard without an\n"
        "         injected fault (per design)\n",
        prog);
    std::exit(code);
}

std::uint64_t
parseCount(const char *prog, const char *flag, const std::string &s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (!end || *end != '\0') {
        std::fprintf(stderr, "%s: %s wants an integer, got '%s'\n",
                     prog, flag, s.c_str());
        std::exit(1);
    }
    return static_cast<std::uint64_t>(v);
}

bool
faultKindFromName(const std::string &name, ServiceFault &out)
{
    if (name == "powercut") {
        out = ServiceFault::PowerCut;
    } else if (name == "poison") {
        out = ServiceFault::MediaPoison;
    } else if (name == "logpoison") {
        out = ServiceFault::LogPoison;
    } else if (name == "storm") {
        out = ServiceFault::MisspecStorm;
    } else {
        return false;
    }
    return true;
}

std::vector<FaultEvent>
parseFaults(const char *prog, const std::string &list)
{
    std::vector<FaultEvent> out;
    if (list == "none")
        return out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string spec =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const std::size_t c1 = spec.find(':');
        const std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : spec.find(':', c1 + 1);
        if (c2 == std::string::npos) {
            std::fprintf(stderr,
                         "%s: fault spec '%s' is not "
                         "kind:shard:at_us\n",
                         prog, spec.c_str());
            std::exit(1);
        }
        FaultEvent ev;
        if (!faultKindFromName(spec.substr(0, c1), ev.kind)) {
            std::fprintf(stderr, "%s: unknown fault kind in '%s'\n",
                         prog, spec.c_str());
            std::exit(1);
        }
        ev.shard = static_cast<unsigned>(parseCount(
            prog, "fault shard", spec.substr(c1 + 1, c2 - c1 - 1)));
        ev.at = nsToTicks(1000.0 * static_cast<double>(parseCount(
                              prog, "fault at_us",
                              spec.substr(c2 + 1))));
        out.push_back(ev);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** The default chaos script: every fault kind, each on its own
 *  shard, spread across the middle of the run. */
std::vector<FaultEvent>
defaultFaults(const ServiceConfig &cfg)
{
    auto frac = [&](double f) {
        return static_cast<Tick>(static_cast<double>(cfg.duration) * f);
    };
    std::vector<FaultEvent> out;
    out.push_back({frac(0.25), 1 % cfg.shards,
                   ServiceFault::PowerCut, 0, 0});
    out.push_back({frac(0.40), 2 % cfg.shards,
                   ServiceFault::MediaPoison, 0, 0});
    out.push_back({frac(0.55), 0, ServiceFault::MisspecStorm, 0, 0});
    out.push_back({frac(0.70), 3 % cfg.shards,
                   ServiceFault::LogPoison, 0, 0});
    return out;
}

/** The acceptance gate: no oracle violations, and every shard that
 *  had no fault injected stayed >= 99% available. */
bool
meetsSlo(const ServiceConfig &cfg, const ServiceResult &res)
{
    if (res.oracle.violations != 0)
        return false;
    std::set<unsigned> faulted;
    for (const auto &f : res.faults)
        if (f.outcome != "skipped")
            faulted.insert(f.shard);
    for (std::size_t s = 0; s < res.shards.size(); ++s) {
        if (faulted.count(static_cast<unsigned>(s)))
            continue;
        if (res.shards[s].availability() < 0.99)
            return false;
    }
    (void)cfg;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceConfig base;
    unsigned jobs = 0;
    std::string jsonPath;
    std::vector<persistency::Design> designs =
        persistency::allDesigns();
    std::vector<FaultEvent> faults = defaultFaults(base);
    bool explicitFaults = false;
    bool gateSlo = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_val;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_val = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline = true;
            }
        }
        auto value = [&](const char *flag) -> std::string {
            if (has_inline)
                return inline_val;
            if (++i >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv[0], flag);
                std::exit(1);
            }
            return argv[i];
        };
        if (arg == "--help" || arg == "-h") {
            usageExit(argv[0], 0);
        } else if (arg == "--duration-us") {
            base.duration = nsToTicks(1000.0 * static_cast<double>(
                parseCount(argv[0], "--duration-us",
                           value("--duration-us"))));
        } else if (arg == "--shards") {
            base.shards = static_cast<unsigned>(parseCount(
                argv[0], "--shards", value("--shards")));
        } else if (arg == "--clients") {
            base.clients = static_cast<unsigned>(parseCount(
                argv[0], "--clients", value("--clients")));
        } else if (arg == "--keys") {
            base.keySpace = parseCount(argv[0], "--keys",
                                       value("--keys"));
        } else if (arg == "--arrival-ns") {
            base.interArrival = nsToTicks(static_cast<double>(
                parseCount(argv[0], "--arrival-ns",
                           value("--arrival-ns"))));
        } else if (arg == "--seed") {
            base.seed = parseCount(argv[0], "--seed",
                                   value("--seed"));
        } else if (arg == "--faults") {
            faults = parseFaults(argv[0], value("--faults"));
            explicitFaults = true;
        } else if (arg == "--metrics") {
            base.metrics = true;
        } else if (arg == "--metrics-interval-us") {
            base.metrics = true;
            base.metricsInterval = nsToTicks(1000.0) *
                parseCount(argv[0], "--metrics-interval-us",
                           value("--metrics-interval-us"));
        } else if (arg == "--slo") {
            gateSlo = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseCount(
                argv[0], "--jobs", value("--jobs")));
        } else if (arg == "--sim-threads") {
            base.simThreads = static_cast<unsigned>(parseCount(
                argv[0], "--sim-threads", value("--sim-threads")));
        } else if (arg == "--json") {
            jsonPath = value("--json");
        } else if (arg == "--designs") {
            designs.clear();
            const std::string list = value("--designs");
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string name = list.substr(
                    pos, comma == std::string::npos
                             ? std::string::npos
                             : comma - pos);
                persistency::Design d;
                if (!persistency::designFromName(name, d)) {
                    std::fprintf(stderr,
                                 "%s: unknown design '%s'\n",
                                 argv[0], name.c_str());
                    return 1;
                }
                designs.push_back(d);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n",
                         argv[0], arg.c_str());
            usageExit(argv[0], 1);
        }
    }
    // A changed duration moves the default chaos script with it.
    if (!explicitFaults)
        faults = defaultFaults(base);
    base.faults = faults;
    fatal_if(designs.empty(), "no designs selected");

    // One deterministic run per design; --jobs parallelises across
    // designs, cfg.simThreads across the shard domains inside each.
    std::vector<ServiceResult> results(designs.size());
    core::SweepRunner runner(jobs);
    runner.forEach(designs.size(), [&](std::size_t i) {
        ServiceConfig cfg = base;
        cfg.design = designs[i];
        service::Service svc(cfg);
        results[i] = svc.run();
    });

    std::printf("# ycsb_service: %u shards, %u clients, %llu keys, "
                "%llu us, %zu fault(s)\n",
                base.shards, base.clients,
                static_cast<unsigned long long>(base.keySpace),
                static_cast<unsigned long long>(
                    base.duration / ticksPerNs / 1000),
                faults.size());
    std::printf("%-10s %12s %8s %9s %9s %9s %6s %6s\n", "design",
                "ops/s", "avail", "p50(ns)", "p99(ns)", "p999(ns)",
                "viol", "SLO");
    bool sloOk = true;
    core::ResultSink sink("ycsb_service");
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const ServiceResult &r = results[i];
        const bool ok = meetsSlo(base, r);
        sloOk = sloOk && ok;
        std::printf("%-10s %12.0f %8.4f %9llu %9llu %9llu %6llu %6s\n",
                    persistency::designName(designs[i]).c_str(),
                    r.throughputOpsPerSec(base.duration),
                    r.availability(),
                    static_cast<unsigned long long>(
                        r.latencyQuantile(0.50) / ticksPerNs),
                    static_cast<unsigned long long>(
                        r.latencyQuantile(0.99) / ticksPerNs),
                    static_cast<unsigned long long>(
                        r.latencyQuantile(0.999) / ticksPerNs),
                    static_cast<unsigned long long>(
                        r.oracle.violations),
                    ok ? "pass" : "FAIL");
        Json row = r.toJson(base.duration);
        row.set("slo_pass", Json(ok));
        sink.addRow("service", std::move(row));
    }

    sink.setMeta("shards", Json(base.shards));
    sink.setMeta("clients", Json(base.clients));
    sink.setMeta("keys", Json(base.keySpace));
    sink.setMeta("duration_ns", Json(base.duration / ticksPerNs));
    sink.setMeta("inter_arrival_ns",
                 Json(base.interArrival / ticksPerNs));
    sink.setMeta("seed", Json(base.seed));
    Json fj = Json::array();
    for (const auto &f : faults) {
        Json row = Json::object();
        row.set("kind", Json(service::serviceFaultName(f.kind)));
        row.set("shard", Json(f.shard));
        row.set("at_ns", Json(f.at / ticksPerNs));
        fj.push(std::move(row));
    }
    sink.setMeta("faults", std::move(fj));
    Json dj = Json::array();
    for (auto d : designs)
        dj.push(Json(persistency::designName(d)));
    sink.setMeta("designs", std::move(dj));
    // Only when on: metrics-off envelopes stay bit-for-bit unchanged.
    if (base.metrics) {
        Json mj = Json::object();
        mj.set("interval_us",
               Json(base.metricsInterval / ticksPerNs / 1000));
        sink.setMeta("metrics", std::move(mj));
    }
    sink.writeFile(jsonPath);

    if (gateSlo && !sloOk) {
        std::fprintf(stderr, "ycsb_service: SLO gate FAILED\n");
        return 1;
    }
    return 0;
}
