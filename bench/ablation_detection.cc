/**
 * @file
 * Ablation (Sections 5.1.3 vs 5.1.4): fetch-based vs eviction-based
 * load-misspeculation detection.
 *
 * The naive scheme monitors recently *fetched* blocks, so every
 * write-on-allocation fetch followed by the block's own persist looks
 * like a stale read. The shipped eviction-based scheme monitors only
 * *evicted* blocks. We report, per benchmark, the write-allocate
 * fetches (each would be a false misspeculation under the fetch-based
 * scheme, since the store's persist always follows within the window)
 * next to the actual detections of the eviction-based scheme.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto opt = BenchOptions::parse(argc, argv, 100);
    const auto benches = workloads::allBenchmarks();

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("ablation_detection");

    std::vector<core::SweepPoint> points;
    for (auto b : benches) {
        core::SweepPoint p;
        p.id = workloads::benchName(b);
        p.cfg.withBench(b)
            .withDesign(persistency::Design::PmemSpec)
            .withMachine(core::defaultMachineConfig(8));
        p.cfg.workload = params(8, opt.ops);
        points.push_back(std::move(p));
    }
    const auto results = runner.run(points);
    sink.addPoints(results);

    std::printf("# Ablation: load-misspec detection scheme "
                "(8 cores, PMEM-Spec)\n");
    std::printf("%-12s %22s %22s\n", "benchmark",
                "fetch-based-false-pos", "eviction-based-misspecs");
    for (const auto &r : results) {
        fatal_if(!r.ok(), "point %s failed: %s", r.id.c_str(),
                 r.error.c_str());
        // Every store that write-allocated its block would have been
        // flagged by the fetch-based scheme (Figure 4): the store's
        // own persist overwrites the just-fetched block within the
        // window by construction.
        const auto false_pos = static_cast<std::uint64_t>(
            r.result.statOr("machine.memsys.storeAllocFetches"));
        const auto misspecs =
            r.result.run.loadMisspecs + r.result.run.storeMisspecs;
        std::printf("%-12s %22llu %22llu\n", r.id.c_str(),
                    static_cast<unsigned long long>(false_pos),
                    static_cast<unsigned long long>(misspecs));
        std::fflush(stdout);
        Json row = Json::object();
        row.set("benchmark", Json(r.id));
        row.set("fetch_based_false_positives", Json(false_pos));
        row.set("eviction_based_misspecs", Json(misspecs));
        sink.addRow("detection", std::move(row));
    }
    std::printf("\nEvery fetch-based false positive would abort the "
                "running FASEs; the eviction-based scheme removes "
                "them entirely (Section 5.1.4).\n");
    finishJson(sink, opt);
    return 0;
}
