/**
 * @file
 * Ablation (Sections 5.1.3 vs 5.1.4): fetch-based vs eviction-based
 * load-misspeculation detection.
 *
 * The naive scheme monitors recently *fetched* blocks, so every
 * write-on-allocation fetch followed by the block's own persist looks
 * like a stale read. The shipped eviction-based scheme monitors only
 * *evicted* blocks. We report, per benchmark, the write-allocate
 * fetches (each would be a false misspeculation under the fetch-based
 * scheme, since the store's persist always follows within the window)
 * next to the actual detections of the eviction-based scheme.
 */

#include "bench_util.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto ops = opsFromArgv(argc, argv, 100);

    std::printf("# Ablation: load-misspec detection scheme "
                "(8 cores, PMEM-Spec)\n");
    std::printf("%-12s %22s %22s\n", "benchmark",
                "fetch-based-false-pos", "eviction-based-misspecs");
    for (auto b : workloads::allBenchmarks()) {
        // Re-run the experiment manually to reach the machine stats.
        core::ExperimentConfig cfg;
        cfg.bench = b;
        cfg.design = Design::PmemSpec;
        cfg.machine = core::defaultMachineConfig(8);
        cfg.workload = params(8, ops);

        auto logical = workloads::generateTraces(cfg.bench,
                                                 cfg.workload);
        std::vector<cpu::Trace> traces;
        for (const auto &lt : logical)
            traces.push_back(persistency::lower(lt, cfg.design));
        cpu::MachineConfig mc = cfg.machine;
        mc.design = cfg.design;
        mc.mem.numCores = cfg.workload.numThreads;
        cpu::Machine m(mc);
        m.setTraces(std::move(traces));
        auto r = m.run();

        // Every store that write-allocated its block would have been
        // flagged by the fetch-based scheme (Figure 4): the store's
        // own persist overwrites the just-fetched block within the
        // window by construction.
        const auto false_pos =
            m.memory().storeAllocFetches.value();
        std::printf("%-12s %22llu %22llu\n", workloads::benchName(b),
                    static_cast<unsigned long long>(false_pos),
                    static_cast<unsigned long long>(
                        r.loadMisspecs + r.storeMisspecs));
        std::fflush(stdout);
    }
    std::printf("\nEvery fetch-based false positive would abort the "
                "running FASEs; the eviction-based scheme removes "
                "them entirely (Section 5.1.4).\n");
    return 0;
}
