/**
 * @file
 * Table 3: the simulator configuration, printed from the live default
 * MachineConfig so the table can never drift from the code.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace pmemspec;
    std::cout << "# Table 3: simulator configuration\n";
    core::printConfig(std::cout, core::defaultMachineConfig(8));
    std::cout << "\nSpeculation buffer entry: Address (8B) + state "
                 "(2b) + Spec-ID (32b) + Inserted (30b) = 16B; "
                 "4 entries = 64B of storage (Section 8.1).\n";
    return 0;
}
