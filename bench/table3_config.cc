/**
 * @file
 * Table 3: the simulator configuration, printed from the live default
 * MachineConfig so the table can never drift from the code.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto opt = BenchOptions::parse(argc, argv);

    std::cout << "# Table 3: simulator configuration\n";
    core::printConfig(std::cout, core::defaultMachineConfig(8));
    std::cout << "\nSpeculation buffer entry: Address (8B) + state "
                 "(2b) + Spec-ID (32b) + Inserted (30b) = 16B; "
                 "4 entries = 64B of storage (Section 8.1).\n";

    core::ResultSink sink("table3_config");
    const auto cfg = core::defaultMachineConfig(8);
    const auto &m = cfg.mem;
    Json row = Json::object();
    row.set("cores", Json(m.numCores));
    row.set("freq_ghz", Json(cfg.core.freqGhz));
    row.set("sq_entries", Json(cfg.core.sqEntries));
    row.set("l1_bytes", Json(static_cast<std::uint64_t>(m.l1Bytes)));
    row.set("l1_ways", Json(m.l1Ways));
    row.set("llc_bytes", Json(static_cast<std::uint64_t>(m.llcBytes)));
    row.set("llc_ways", Json(m.llcWays));
    row.set("pm_read_latency_ns",
            Json(m.pmReadLatency / ticksPerNs));
    row.set("pm_write_latency_ns",
            Json(m.pmWriteLatency / ticksPerNs));
    row.set("pm_banks", Json(m.pmBanks));
    row.set("pmc_read_queue", Json(m.pmcReadQueue));
    row.set("pmc_write_queue", Json(m.pmcWriteQueue));
    row.set("spec_buffer_entries", Json(m.specBufferEntries));
    row.set("persist_path_latency_ns",
            Json(m.persistPathLatency / ticksPerNs));
    row.set("speculation_window_ns",
            Json(m.effectiveSpecWindow() / ticksPerNs));
    sink.addRow("config", std::move(row));
    finishJson(sink, opt);
    return 0;
}
