/**
 * @file
 * Ablation (Section 7): multiple PM controllers.
 *
 * The paper's PMEM-Spec "currently cannot support systems with
 * multiple PM controllers ... To guarantee correctness, PMEM-Spec
 * requires an extension to an on-chip network to make it respect the
 * store order." This bench quantifies both halves: the throughput of
 * 1/2/4 interleaved controllers with the ordered-NoC extension, and
 * the (hardware-invisible) intra-thread order violations an
 * unordered NoC would admit.
 */

#include "bench_util.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto ops = opsFromArgv(argc, argv, 200);
    const auto bench = workloads::BenchId::Tpcc;
    auto p = params(8, ops);

    auto logical = workloads::generateTraces(bench, p);
    std::vector<cpu::Trace> lowered;
    for (const auto &lt : logical)
        lowered.push_back(
            persistency::lower(lt, Design::PmemSpec));

    std::printf("# Ablation: multiple PM controllers "
                "(PMEM-Spec, TPCC, 8 cores)\n");
    std::printf("%-6s %-10s %14s %18s\n", "pmcs", "noc",
                "tput(FASEs/s)", "reorder-hazards");
    for (unsigned pmcs : {1u, 2u, 4u}) {
        for (bool ordered : {true, false}) {
            if (pmcs == 1 && !ordered)
                continue; // one controller cannot reorder
            cpu::MachineConfig mc = core::defaultMachineConfig(8);
            mc.design = Design::PmemSpec;
            mc.mem.numPmcs = pmcs;
            mc.mem.orderedNoc = ordered;
            cpu::Machine m(mc);
            auto traces = lowered;
            m.setTraces(std::move(traces));
            auto r = m.run();
            std::printf("%-6u %-10s %14.3e %18llu%s\n", pmcs,
                        ordered ? "ordered" : "unordered",
                        r.throughput(),
                        static_cast<unsigned long long>(
                            r.crossPmcReorderHazards),
                        ordered ? "" : "   (undetectable!)");
            std::fflush(stdout);
        }
    }
    std::printf("\nWith the ordered-NoC extension the design scales "
                "to several controllers with zero ordering hazards; "
                "an unordered NoC silently breaks strict persistency "
                "(the hazards are invisible to the speculation "
                "buffer), confirming Section 7.\n");
    return 0;
}
