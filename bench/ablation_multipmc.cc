/**
 * @file
 * Ablation (Section 7): multiple PM controllers.
 *
 * The paper's PMEM-Spec "currently cannot support systems with
 * multiple PM controllers ... To guarantee correctness, PMEM-Spec
 * requires an extension to an on-chip network to make it respect the
 * store order." This bench quantifies both halves: the throughput of
 * 1/2/4 interleaved controllers with the ordered-NoC extension, and
 * the (hardware-invisible) intra-thread order violations an
 * unordered NoC would admit.
 */

#include "bench_util.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto opt = BenchOptions::parse(argc, argv, 200);
    const auto bench = workloads::BenchId::Tpcc;
    auto p = params(8, opt.ops);

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("ablation_multipmc");

    auto logical = workloads::generateTraces(bench, p);
    std::vector<cpu::Trace> lowered;
    for (const auto &lt : logical)
        lowered.push_back(
            persistency::lower(lt, Design::PmemSpec));

    struct Config
    {
        unsigned pmcs;
        bool ordered;
    };
    std::vector<Config> configs;
    for (unsigned pmcs : {1u, 2u, 4u}) {
        for (bool ordered : {true, false}) {
            if (pmcs == 1 && !ordered)
                continue; // one controller cannot reorder
            configs.push_back({pmcs, ordered});
        }
    }

    // Hand-built traces bypass ExperimentConfig, so this sweep runs
    // through the generic parallel-for (each run copies the lowered
    // traces; the shared source vector is read-only).
    std::vector<cpu::RunResult> results(configs.size());
    runner.forEach(configs.size(), [&](std::size_t i) {
        cpu::MachineConfig mc = core::defaultMachineConfig(8);
        mc.design = Design::PmemSpec;
        mc.mem.numPmcs = configs[i].pmcs;
        mc.mem.orderedNoc = configs[i].ordered;
        cpu::Machine m(mc);
        auto traces = lowered;
        m.setTraces(std::move(traces));
        results[i] = m.run();
    });

    std::printf("# Ablation: multiple PM controllers "
                "(PMEM-Spec, TPCC, 8 cores)\n");
    std::printf("%-6s %-10s %14s %18s\n", "pmcs", "noc",
                "tput(FASEs/s)", "reorder-hazards");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto &cfg = configs[i];
        const auto &r = results[i];
        std::printf("%-6u %-10s %14.3e %18llu%s\n", cfg.pmcs,
                    cfg.ordered ? "ordered" : "unordered",
                    r.throughput(),
                    static_cast<unsigned long long>(
                        r.crossPmcReorderHazards),
                    cfg.ordered ? "" : "   (undetectable!)");
        std::fflush(stdout);
        Json row = Json::object();
        row.set("pmcs", Json(cfg.pmcs));
        row.set("noc", Json(cfg.ordered ? "ordered" : "unordered"));
        row.set("throughput", Json(r.throughput()));
        row.set("reorder_hazards", Json(r.crossPmcReorderHazards));
        sink.addRow("multipmc", std::move(row));
    }
    std::printf("\nWith the ordered-NoC extension the design scales "
                "to several controllers with zero ordering hazards; "
                "an unordered NoC silently breaks strict persistency "
                "(the hazards are invisible to the speculation "
                "buffer), confirming Section 7.\n");
    finishJson(sink, opt);
    return 0;
}
