/**
 * @file
 * Figure 12: sensitivity to the persist-path latency (20..100ns) for
 * HOPS and PMEM-Spec, reported as the geomean over the Table 4
 * benchmarks normalised to the IntelX86 baseline (whose regular path
 * is unaffected by the sweep).
 *
 * Expected shape (paper): both designs stay above the baseline even
 * at 100ns, because the durability barriers are infrequent.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto ops = opsFromArgv(argc, argv);

    // Baseline (IntelX86) throughput per benchmark, computed once.
    std::map<workloads::BenchId, double> baseline;
    for (auto b : workloads::allBenchmarks()) {
        core::ExperimentConfig cfg;
        cfg.bench = b;
        cfg.design = Design::IntelX86;
        cfg.machine = core::defaultMachineConfig(8);
        cfg.workload = params(8, ops);
        baseline[b] = core::runExperiment(cfg).throughput;
    }

    std::printf("# Figure 12: persist-path latency sweep (8 cores), "
                "geomean normalised to IntelX86\n");
    std::printf("%-14s %10s %10s\n", "latency(ns)", "HOPS",
                "PMEM-Spec");
    for (unsigned lat : {20u, 40u, 60u, 80u, 100u}) {
        std::map<Design, double> gm;
        for (Design d : {Design::HOPS, Design::PmemSpec}) {
            std::vector<double> norms;
            for (auto b : workloads::allBenchmarks()) {
                core::ExperimentConfig cfg;
                cfg.bench = b;
                cfg.design = d;
                cfg.machine = core::defaultMachineConfig(8);
                cfg.machine.mem.persistPathLatency = nsToTicks(lat);
                // The ring-bus window scales with the idle latency.
                cfg.machine.mem.speculationWindow = 0;
                cfg.workload = params(8, ops);
                norms.push_back(core::runExperiment(cfg).throughput /
                                baseline[b]);
            }
            gm[d] = geomean(norms);
        }
        std::printf("%-14u %10.3f %10.3f\n", lat, gm[Design::HOPS],
                    gm[Design::PmemSpec]);
        std::fflush(stdout);
    }
    return 0;
}
