/**
 * @file
 * Figure 12: sensitivity to the persist-path latency (20..100ns) for
 * HOPS and PMEM-Spec, reported as the geomean over the Table 4
 * benchmarks normalised to the IntelX86 baseline (whose regular path
 * is unaffected by the sweep).
 *
 * Expected shape (paper): both designs stay above the baseline even
 * at 100ns, because the durability barriers are infrequent.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto opt = BenchOptions::parse(argc, argv);
    const auto benches = workloads::allBenchmarks();
    const std::vector<unsigned> lats = {20, 40, 60, 80, 100};
    const std::vector<Design> designs = {Design::HOPS,
                                         Design::PmemSpec};

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("fig12_pathlat");

    // One sweep: the per-benchmark IntelX86 baselines followed by
    // every (latency, design, benchmark) point.
    std::vector<core::SweepPoint> points;
    for (auto b : benches) {
        core::SweepPoint p;
        p.id = std::string("base/") + workloads::benchName(b);
        p.cfg.withBench(b)
            .withDesign(Design::IntelX86)
            .withMachine(core::defaultMachineConfig(8));
        p.cfg.workload = params(8, opt.ops);
        points.push_back(std::move(p));
    }
    for (unsigned lat : lats) {
        for (Design d : designs) {
            for (auto b : benches) {
                core::SweepPoint p;
                p.id = "lat" + std::to_string(lat) + "/" +
                       persistency::designName(d) + "/" +
                       workloads::benchName(b);
                p.cfg.withBench(b).withDesign(d).withMachine(
                    core::defaultMachineConfig(8));
                p.cfg.machine.mem.persistPathLatency = nsToTicks(lat);
                // The ring-bus window scales with the idle latency.
                p.cfg.machine.mem.speculationWindow = 0;
                p.cfg.machine.trace = opt.trace;
                p.cfg.machine.metrics = opt.metrics;
                p.cfg.workload = params(8, opt.ops);
                points.push_back(std::move(p));
            }
        }
    }
    const auto results = runner.run(points);
    sink.addPoints(results);
    for (const auto &r : results)
        fatal_if(!r.ok(), "point %s failed: %s", r.id.c_str(),
                 r.error.c_str());

    std::map<workloads::BenchId, double> baseline;
    std::size_t idx = 0;
    for (auto b : benches)
        baseline[b] = results[idx++].result.throughput;

    std::printf("# Figure 12: persist-path latency sweep (8 cores), "
                "geomean normalised to IntelX86\n");
    std::printf("%-14s %10s %10s\n", "latency(ns)", "HOPS",
                "PMEM-Spec");
    const std::vector<std::string> quantiles = {"p50", "p90", "p99"};
    for (unsigned lat : lats) {
        std::map<Design, double> gm;
        // Mean persist-path FIFO occupancy quantiles across the
        // PMEM-Spec points' per-lane occupancyDist histograms.
        std::map<std::string, double> occ;
        for (Design d : designs) {
            std::vector<double> norms;
            for (auto b : benches) {
                const auto &r = results[idx++];
                norms.push_back(r.result.throughput / baseline[b]);
                if (d == Design::PmemSpec) {
                    for (const auto &q : quantiles)
                        occ[q] += meanStatSuffix(
                            r.result, ".occupancyDist." + q);
                }
            }
            gm[d] = geomean(norms);
        }
        for (const auto &q : quantiles)
            occ[q] /= static_cast<double>(benches.size());
        std::printf("%-14u %10.3f %10.3f\n", lat, gm[Design::HOPS],
                    gm[Design::PmemSpec]);
        std::fflush(stdout);
        Json row = Json::object();
        row.set("latency_ns", Json(lat));
        row.set("HOPS", Json(gm[Design::HOPS]));
        row.set("PMEM-Spec", Json(gm[Design::PmemSpec]));
        for (const auto &q : quantiles)
            row.set("pmemspec_path_occupancy_" + q, Json(occ[q]));
        sink.addRow("pathlat", std::move(row));
    }
    finishJson(sink, opt);
    return 0;
}
