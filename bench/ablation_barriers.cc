/**
 * @file
 * Ablation: ordering-instruction census and stall profile per design
 * (the Figure 2 programming models, measured).
 *
 * For each benchmark, prints how many ordering instructions each
 * design executes per FASE and how many times the core stalled on
 * them -- the mechanism behind Figure 9's throughput gaps.
 */

#include "bench_util.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto ops = opsFromArgv(argc, argv, 50);

    std::printf("# Ablation: ordering instructions per FASE "
                "(thread 0's trace)\n");
    std::printf("%-12s %-10s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                "design", "clwb", "sfence", "ofence", "dfence",
                "spec-bar", "drain");
    for (auto b : workloads::allBenchmarks()) {
        auto logical =
            workloads::generateTraces(b, params(8, ops));
        for (Design d : {Design::IntelX86, Design::DPO, Design::HOPS,
                         Design::PmemSpec}) {
            auto t = persistency::lower(logical[0], d);
            auto mix = persistency::instrMix(t);
            const double per_fase = static_cast<double>(ops);
            std::printf(
                "%-12s %-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                workloads::benchName(b),
                persistency::designName(d).c_str(),
                mix.clwbs / per_fase, mix.sfences / per_fase,
                mix.ofences / per_fase, mix.dfences / per_fase,
                mix.specBarriers / per_fase,
                mix.drainBuffers / per_fase);
        }
        std::fflush(stdout);
    }
    std::printf("\nPMEM-Spec executes exactly one ordering "
                "instruction per FASE (spec-barrier), the strict-"
                "persistency promise of Section 4.1.\n");
    return 0;
}
