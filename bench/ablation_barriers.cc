/**
 * @file
 * Ablation: ordering-instruction census and stall profile per design
 * (the Figure 2 programming models, measured).
 *
 * For each benchmark, prints how many ordering instructions each
 * design executes per FASE and how many times the core stalled on
 * them -- the mechanism behind Figure 9's throughput gaps.
 */

#include "bench_util.hh"
#include "persistency/lowering.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;
    using persistency::Design;

    const auto opt = BenchOptions::parse(argc, argv, 50);
    const auto benches = workloads::allBenchmarks();
    const auto designs = persistency::allDesigns();

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("ablation_barriers");

    // The census only needs thread 0's lowered trace; the trace
    // generation dominates, so it parallelises per benchmark.
    std::vector<std::vector<persistency::InstrMix>> mixes(
        benches.size());
    runner.forEach(benches.size(), [&](std::size_t i) {
        auto logical =
            workloads::generateTraces(benches[i], params(8, opt.ops));
        for (Design d : designs)
            mixes[i].push_back(persistency::instrMix(
                persistency::lower(logical[0], d)));
    });

    std::printf("# Ablation: ordering instructions per FASE "
                "(thread 0's trace)\n");
    std::printf("%-12s %-10s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                "design", "clwb", "sfence", "ofence", "dfence",
                "spec-bar", "drain");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const double per_fase = static_cast<double>(opt.ops);
        for (std::size_t j = 0; j < designs.size(); ++j) {
            const auto &mix = mixes[i][j];
            std::printf(
                "%-12s %-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                workloads::benchName(benches[i]),
                persistency::designName(designs[j]).c_str(),
                mix.clwbs / per_fase, mix.sfences / per_fase,
                mix.ofences / per_fase, mix.dfences / per_fase,
                mix.specBarriers / per_fase,
                mix.drainBuffers / per_fase);
            Json row = Json::object();
            row.set("benchmark",
                    Json(workloads::benchName(benches[i])));
            row.set("design",
                    Json(persistency::designName(designs[j])));
            row.set("clwb_per_fase", Json(mix.clwbs / per_fase));
            row.set("sfence_per_fase", Json(mix.sfences / per_fase));
            row.set("ofence_per_fase", Json(mix.ofences / per_fase));
            row.set("dfence_per_fase", Json(mix.dfences / per_fase));
            row.set("spec_barrier_per_fase",
                    Json(mix.specBarriers / per_fase));
            row.set("drain_per_fase",
                    Json(mix.drainBuffers / per_fase));
            sink.addRow("census", std::move(row));
        }
        std::fflush(stdout);
    }
    std::printf("\nPMEM-Spec executes exactly one ordering "
                "instruction per FASE (spec-barrier), the strict-"
                "persistency promise of Section 4.1.\n");
    finishJson(sink, opt);
    return 0;
}
