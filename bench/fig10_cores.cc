/**
 * @file
 * Figure 10: sensitivity to the number of cores (16/32/64),
 * normalised per benchmark to IntelX86 at the same core count.
 *
 * Expected shape (paper): PMEM-Spec keeps beating the baseline and
 * HOPS (by 18.8%/8.2%, 18.2%/8.0% and 17.1%/10%); DPO stays below
 * the baseline and degrades as cores increase.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    // Keep total work roughly constant across core counts.
    const auto opt = BenchOptions::parse(argc, argv, 3200);
    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("fig10_cores");

    for (unsigned cores : {16u, 32u, 64u}) {
        const std::uint64_t ops =
            std::max<std::uint64_t>(25, opt.ops / cores);
        char title[96];
        std::snprintf(title, sizeof(title),
                      "Figure 10: normalised throughput, %u cores "
                      "(%llu FASEs/thread)",
                      cores, static_cast<unsigned long long>(ops));
        auto machine = core::defaultMachineConfig(cores);
        // Table 3 describes the 8-core machine; larger systems scale
        // the shared uncore (PM banks/channels and PMC queues)
        // proportionally, as the paper's flat-at-64-cores results
        // imply. The caches stay at the Table 3 sizes.
        const unsigned scale = cores / 8;
        machine.mem.pmBanks *= scale;
        machine.mem.pmcWriteQueue *= scale;
        machine.mem.pmcReadQueue *= scale;

        char prefix[16];
        std::snprintf(prefix, sizeof(prefix), "c%u/", cores);
        auto rows = core::runNormalizedSweep(
            workloads::allBenchmarks(), machine, params(cores, ops),
            runner, opt.designs, &sink, prefix);

        printHeader(title, opt.designs);
        for (const auto &row : rows)
            printRow(row);
        printGeomeanRow(rows);
        std::printf("\n");

        char table[32];
        std::snprintf(table, sizeof(table), "cores_%u", cores);
        sinkNormalizedTable(sink, rows, table);
    }
    finishJson(sink, opt);
    return 0;
}
