/**
 * @file
 * Figure 9: throughput of the four designs on the eight Table 4
 * benchmarks in the 8-core system, normalised to IntelX86.
 *
 * Expected shape (paper): PMEM-Spec > HOPS > IntelX86 > DPO on
 * average; Queue/Hashmap show the smallest gains; DPO sits below the
 * baseline everywhere.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto opt = BenchOptions::parse(argc, argv);
    auto machine = core::defaultMachineConfig(8);
    machine.trace = opt.trace;
    machine.metrics = opt.metrics;
    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("fig09_throughput");

    auto rows = core::runNormalizedSweep(
        workloads::allBenchmarks(), machine, params(8, opt.ops),
        runner, opt.designs, &sink);

    printHeader("Figure 9: normalised throughput, 8 cores",
                opt.designs);
    for (const auto &row : rows)
        printRow(row);
    printGeomeanRow(rows);

    sinkNormalizedTable(sink, rows);
    finishJson(sink, opt);
    return 0;
}
