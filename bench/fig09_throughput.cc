/**
 * @file
 * Figure 9: throughput of the four designs on the eight Table 4
 * benchmarks in the 8-core system, normalised to IntelX86.
 *
 * Expected shape (paper): PMEM-Spec > HOPS > IntelX86 > DPO on
 * average; Queue/Hashmap show the smallest gains; DPO sits below the
 * baseline everywhere.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto ops = opsFromArgv(argc, argv);
    const auto machine = core::defaultMachineConfig(8);

    printHeader("Figure 9: normalised throughput, 8 cores");
    std::vector<std::map<persistency::Design, double>> rows;
    for (auto b : workloads::allBenchmarks()) {
        auto norm =
            core::runNormalized(b, machine, params(8, ops));
        printRow(workloads::benchName(b), norm);
        rows.push_back(std::move(norm));
    }
    printGeomeanRow(rows);
    return 0;
}
