/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates: the
 * event kernel, cache tag array, bloom filter, functional PM, undo
 * log and red-black tree. These quantify the simulator itself (host
 * time), not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/bloom_filter.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "core/experiment.hh"
#include "faultinject/crash_explorer.hh"
#include "faultinject/pmds_workloads.hh"
#include "service/service.hh"
#include "mem/cache.hh"
#include "mem/persist_path.hh"
#include "observe/spec_profile.hh"
#include "persistency/lowering.hh"
#include "pmds/pm_rbtree.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/undo_log.hh"
#include "runtime/virtual_os.hh"
#include "sim/event_queue.hh"
#include "workloads/workload.hh"

using namespace pmemspec;

static void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    sim::EventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        eq.schedule(++t, [] {});
        eq.step();
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

static void
BM_EventQueueFanOut(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<Tick>(i), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueueFanOut)->Arg(64)->Arg(1024);

static void
BM_CacheAccessHit(benchmark::State &state)
{
    mem::SetAssocCache cache("c", 64 * 1024, 4);
    cache.insert(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000));
}
BENCHMARK(BM_CacheAccessHit);

static void
BM_CacheInsertEvict(benchmark::State &state)
{
    mem::SetAssocCache cache("c", 64 * 1024, 4);
    Addr a = 0;
    for (auto _ : state) {
        cache.insert(a, true);
        a += blockBytes;
    }
}
BENCHMARK(BM_CacheInsertEvict);

/**
 * Persist-path hot loop (send -> pump -> deliver) under three trace
 * attachments, selected by the benchmark argument:
 *
 *   0  no manager wired (the pre-tracing baseline),
 *   1  manager wired but the PersistPath flag disabled -- the cost of
 *      the PMEMSPEC_TRACE null/wants gate on the hot path,
 *   2  tracing on (events recorded into the ring).
 *
 * CI asserts variant 1 is within 1% of variant 0: disabled trace
 * points must be free on the persist-path hot loop.
 */
static void
BM_PersistPathSendDeliver(benchmark::State &state)
{
    sim::EventQueue eq;
    StatGroup stats{"bench"};
    std::uint64_t delivered = 0;
    mem::PersistPath path(eq, &stats, 0, nsToTicks(20), 8,
                          [&](CoreId, Addr, std::optional<SpecId>) {
                              ++delivered;
                              return true;
                          });
    trace::Config tcfg;
    tcfg.flightRecorder = false;
    tcfg.flags =
        state.range(0) == 2 ? std::uint32_t{trace::FlagPersistPath} : 0u;
    trace::Manager mgr(tcfg, 1);
    if (state.range(0) != 0)
        path.setTraceManager(&mgr, 0);
    Addr a = 0;
    for (auto _ : state) {
        path.send(a, std::nullopt);
        a += blockBytes;
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_PersistPathSendDeliver)->Arg(0)->Arg(1)->Arg(2);

static void
BM_BloomInsertCheckRemove(benchmark::State &state)
{
    BloomFilter bloom(2048, 3);
    Addr a = 0;
    for (auto _ : state) {
        bloom.insert(a);
        benchmark::DoNotOptimize(bloom.mayContain(a));
        bloom.remove(a);
        a += blockBytes;
    }
}
BENCHMARK(BM_BloomInsertCheckRemove);

static void
BM_PersistentMemoryWrite(benchmark::State &state)
{
    runtime::PersistentMemory pm(1 << 24);
    Addr a = pm.alloc(1 << 20, 64);
    std::uint64_t v = 0;
    for (auto _ : state) {
        pm.writeU64(a + (v % 1024) * 8, v);
        ++v;
        if (v % 256 == 0)
            pm.persistAll();
    }
}
BENCHMARK(BM_PersistentMemoryWrite);

static void
BM_UndoLoggedFase(benchmark::State &state)
{
    runtime::PersistentMemory pm(1 << 24);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1,
                            runtime::RecoveryPolicy::Lazy, 1 << 20);
    Addr a = pm.alloc(64 * 64, 64);
    std::uint64_t v = 0;
    for (auto _ : state) {
        rt.runFase(0, [&](runtime::Transaction &tx) {
            tx.writeU64(a + (v % 64) * 64, v);
        });
        ++v;
    }
}
BENCHMARK(BM_UndoLoggedFase);

/**
 * Cost of the FASE speculation profile on the undo-logged FASE hot
 * path (the metrics-overhead CI gate): arg 0 = no profile attached,
 * arg 1 = attached but disabled (the --metrics-off configuration the
 * <1% gate compares against arg 0), arg 2 = recording.
 */
static void
BM_FaseProfileOverhead(benchmark::State &state)
{
    runtime::PersistentMemory pm(1 << 24);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1,
                            runtime::RecoveryPolicy::Lazy, 1 << 20);
    observe::SpecProfile prof;
    prof.setEnabled(state.range(0) == 2);
    unsigned site = 0;
    if (state.range(0) != 0) {
        site = prof.site("bench");
        rt.setSpecProfile(&prof);
    }
    Addr a = pm.alloc(64 * 64, 64);
    std::uint64_t v = 0;
    for (auto _ : state) {
        rt.runFase(0, [&](runtime::Transaction &tx) {
            tx.writeU64(a + (v % 64) * 64, v);
        }, site);
        ++v;
    }
}
BENCHMARK(BM_FaseProfileOverhead)->Arg(0)->Arg(1)->Arg(2);

static void
BM_RbTreeInsertErase(benchmark::State &state)
{
    runtime::PersistentMemory pm(1 << 26);
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1,
                            runtime::RecoveryPolicy::Lazy, 1 << 20);
    pmds::PmRbTree tree(pm);
    Rng rng(1);
    for (auto _ : state) {
        const std::uint64_t k = 1 + rng.below(1 << 12);
        rt.runFase(0, [&](runtime::Transaction &tx) {
            if (rng.chance(0.5))
                tree.insert(tx, k, k);
            else
                tree.erase(tx, k);
        });
    }
}
BENCHMARK(BM_RbTreeInsertErase)->Iterations(50000);

/**
 * Simulated-ops/sec of the whole timing machine on the fig09
 * configuration (Table 3 defaults, 8 cores, TPCC), one benchmark per
 * design (arg = Design enumerator). Traces are generated and lowered
 * once in setup; every iteration constructs and runs a fresh timing
 * machine, so items/sec is committed FASEs per host second -- the
 * simulator-core throughput number CI gates against BENCH_simcore.json.
 */
static void
BM_SimCoreFig09(benchmark::State &state)
{
    const auto design =
        static_cast<persistency::Design>(state.range(0));
    cpu::MachineConfig machine = core::defaultMachineConfig(8);
    machine.design = design;
    machine.mem.l1ToLlcExtra =
        design == persistency::Design::HOPS ? nsToTicks(1.0) : 0;

    workloads::WorkloadParams params;
    params.numThreads = 8;
    params.opsPerThread = 50;
    const auto logical =
        workloads::generateTraces(workloads::BenchId::Tpcc, params);
    std::vector<cpu::Trace> traces;
    traces.reserve(logical.size());
    for (const auto &lt : logical)
        traces.push_back(persistency::lower(lt, design));

    std::uint64_t fases = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        cpu::Machine m(machine);
        m.setTraces(traces); // copy: each run consumes its own
        const auto r = m.run();
        fases += r.fases;
        events += r.events;
        benchmark::DoNotOptimize(fases);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fases));
    state.counters["events_per_fase"] = benchmark::Counter(
        fases ? static_cast<double>(events) /
                    static_cast<double>(fases)
              : 0);
    state.SetLabel(persistency::designName(design));
}
BENCHMARK(BM_SimCoreFig09)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/**
 * Host-thread scaling of the domain-parallel service run (arg =
 * --sim-threads): one full ycsb_service-shaped run per iteration --
 * 8 shard domains, default chaos disabled, PMEM-Spec design --
 * executed on N host threads. items/sec is succeeded client ops per
 * host second, the FASEs/s axis of the EXPERIMENTS.md scaling table
 * and the number CI gates against BENCH_service.json. The merged
 * result is byte-identical across the arg values (DESIGN.md section
 * 12); only the wall clock moves, so the ratio between args IS the
 * scaling curve.
 */
static void
BM_ServiceScaling(benchmark::State &state)
{
    service::ServiceConfig cfg;
    cfg.shards = 8;
    cfg.clients = 8;
    cfg.duration = nsToTicks(4000000); // 4 ms simulated
    cfg.design = persistency::Design::PmemSpec;
    cfg.simThreads = static_cast<unsigned>(state.range(0));

    std::uint64_t ops = 0;
    for (auto _ : state) {
        service::Service svc(cfg);
        const auto r = svc.run();
        ops += r.succeeded;
        benchmark::DoNotOptimize(ops);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
    state.SetLabel("sim_threads=" +
                   std::to_string(state.range(0)));
}
// UseRealTime: with worker threads the main thread's CPU clock is
// mostly idle (it joins the pool), so the default CPU-time rate
// would be meaningless; wall clock is the quantity being scaled.
BENCHMARK(BM_ServiceScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Host-thread scaling of the parallel crash-state exploration (arg =
 * threads handed to exploreCrashPointsParallel): the pm_queue
 * workload with reorder exploration at the default depth. items/sec
 * is reordered crash states explored per host second -- the states/s
 * axis of the EXPERIMENTS.md scaling table.
 */
static void
BM_CrashExploreScaling(benchmark::State &state)
{
    const auto factory =
        faultinject::workloadFactory("pm_queue");
    faultinject::ExploreOptions eopt;
    eopt.reorderings = true;

    std::uint64_t states = 0;
    for (auto _ : state) {
        const auto res = faultinject::exploreCrashPointsParallel(
            factory, eopt,
            static_cast<unsigned>(state.range(0)));
        states += res.reorderStatesExplored;
        benchmark::DoNotOptimize(states);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(states));
    state.SetLabel("sim_threads=" +
                   std::to_string(state.range(0)));
}
BENCHMARK(BM_CrashExploreScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Custom main: translate the repo-wide `--json PATH` flag into
// google-benchmark's JSON reporter so this binary emits a
// BENCH_*.json like every other bench binary.
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            args.push_back(std::string("--benchmark_out=") +
                           argv[i + 1]);
            args.push_back("--benchmark_out_format=json");
            ++i;
        } else {
            args.push_back(argv[i]);
        }
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());

    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
