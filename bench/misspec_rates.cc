/**
 * @file
 * Section 8.4: misspeculation rates.
 *
 * Runs every Table 4 benchmark under PMEM-Spec and reports the load
 * and store misspeculation counts (the paper observed zero), then
 * runs the synthetic stale-read kernel at increasing persist-path
 * latencies to show that load misspeculation only appears at
 * unrealistically slow paths.
 *
 * Exits non-zero if any *natural* misspeculation shows up in the
 * Table 4 benchmarks, so CI can gate on the paper's zero-rate claim.
 * (The synthetic kernel deliberately provokes misspeculation and is
 * excluded from the gate.)
 */

#include "bench_util.hh"
#include "cpu/machine.hh"
#include "observe/trace_export.hh"

namespace
{

using namespace pmemspec;

/** The Section 8.4 synthetic stale-read kernel (see the
 *  test_misspec_synthetic notes for the construction). */
cpu::Trace
staleReadKernel()
{
    using cpu::TraceOp;
    cpu::Trace t;
    const Addr set_stride = 64 * blockBytes; // LLC set span
    const Addr victim = 50 * set_stride;
    t.push_back({TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        t.push_back({TraceOp::Store, i * set_stride});
    t.push_back({TraceOp::Compute, 3000});
    t.push_back({TraceOp::LoadDep, victim});
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto opt = BenchOptions::parse(argc, argv);
    const auto benches = workloads::allBenchmarks();

    core::SweepRunner runner(opt.jobs);
    core::ResultSink sink("misspec_rates");

    std::vector<core::SweepPoint> points;
    for (auto b : benches) {
        core::SweepPoint p;
        p.id = workloads::benchName(b);
        p.cfg.withBench(b)
            .withDesign(persistency::Design::PmemSpec)
            .withMachine(core::defaultMachineConfig(8));
        p.cfg.workload = params(8, opt.ops);
        p.cfg.machine.trace = opt.trace;
        p.cfg.machine.metrics = opt.metrics;
        points.push_back(std::move(p));
    }
    const auto results = runner.run(points);
    sink.addPoints(results);

    std::printf("# Section 8.4: misspeculation rates under "
                "PMEM-Spec (8 cores)\n");
    std::printf("%-12s %14s %12s %12s %12s\n", "benchmark",
                "persists", "load-miss", "store-miss", "buf-pauses");
    unsigned long long natural_misspecs = 0;
    for (const auto &r : results) {
        fatal_if(!r.ok(), "point %s failed: %s", r.id.c_str(),
                 r.error.c_str());
        const auto &run = r.result.run;
        std::printf("%-12s %14llu %12llu %12llu %12llu\n",
                    r.id.c_str(),
                    static_cast<unsigned long long>(run.instructions),
                    static_cast<unsigned long long>(run.loadMisspecs),
                    static_cast<unsigned long long>(run.storeMisspecs),
                    static_cast<unsigned long long>(
                        run.specBufFullPauses));
        natural_misspecs += run.loadMisspecs + run.storeMisspecs;
        std::fflush(stdout);
    }

    // The synthetic kernel bypasses ExperimentConfig (hand-built
    // trace), so it runs through the generic parallel-for instead.
    const std::vector<unsigned> lats = {10, 20, 100, 500, 2000};
    std::vector<std::uint64_t> kernel_misspecs(lats.size());
    runner.forEach(lats.size(), [&](std::size_t i) {
        cpu::MachineConfig cfg;
        cfg.design = persistency::Design::PmemSpec;
        cfg.mem.numCores = 1;
        cfg.mem.l1Bytes = 1024;
        cfg.mem.l1Ways = 1;
        cfg.mem.llcBytes = 4096;
        cfg.mem.llcWays = 1;
        cfg.mem.persistPathLatency = nsToTicks(lats[i]);
        cfg.mem.speculationWindow = 4 * nsToTicks(lats[i]);
        cfg.trace = opt.trace;
        cfg.trace.label = "synthetic-lat" + std::to_string(lats[i]);
        cfg.metrics = opt.metrics;
        cpu::Machine m(cfg);
        std::vector<cpu::Trace> traces{staleReadKernel()};
        m.setTraces(std::move(traces));
        kernel_misspecs[i] = m.run().loadMisspecs;
        // This path bypasses runExperiment, so export manually: the
        // synthetic kernel is the one workload here that provokes
        // misspeculation, i.e. the most interesting checker input.
        if (m.traceManager() &&
            !m.traceManager()->config().outPath.empty())
            observe::exportTraceFile(*m.traceManager());
    });

    std::printf("\n# Synthetic stale-read kernel vs persist-path "
                "latency (tiny direct-mapped caches)\n");
    std::printf("%-14s %12s\n", "latency(ns)", "load-miss");
    for (std::size_t i = 0; i < lats.size(); ++i) {
        std::printf("%-14u %12llu%s\n", lats[i],
                    static_cast<unsigned long long>(
                        kernel_misspecs[i]),
                    lats[i] <= 20 ? "   (faster than the read path: "
                                    "never misspeculates)"
                                  : "");
        Json row = Json::object();
        row.set("latency_ns", Json(lats[i]));
        row.set("load_misspecs", Json(kernel_misspecs[i]));
        sink.addRow("synthetic", std::move(row));
    }

    sink.setMeta("natural_misspecs",
                 Json(static_cast<std::uint64_t>(natural_misspecs)));
    finishJson(sink, opt);

    if (natural_misspecs != 0) {
        std::printf("\nFAIL: %llu natural misspeculation(s) in the "
                    "Table 4 benchmarks (paper reports zero)\n",
                    natural_misspecs);
        return 1;
    }
    std::printf("\nOK: zero natural misspeculations across all "
                "Table 4 benchmarks\n");
    return 0;
}
