/**
 * @file
 * Section 8.4: misspeculation rates.
 *
 * Runs every Table 4 benchmark under PMEM-Spec and reports the load
 * and store misspeculation counts (the paper observed zero), then
 * runs the synthetic stale-read kernel at increasing persist-path
 * latencies to show that load misspeculation only appears at
 * unrealistically slow paths.
 *
 * Exits non-zero if any *natural* misspeculation shows up in the
 * Table 4 benchmarks, so CI can gate on the paper's zero-rate claim.
 * (The synthetic kernel deliberately provokes misspeculation and is
 * excluded from the gate.)
 */

#include "bench_util.hh"
#include "cpu/machine.hh"

namespace
{

using namespace pmemspec;

/** The Section 8.4 synthetic stale-read kernel (see the
 *  test_misspec_synthetic notes for the construction). */
cpu::Trace
staleReadKernel()
{
    using cpu::TraceOp;
    cpu::Trace t;
    const Addr set_stride = 64 * blockBytes; // LLC set span
    const Addr victim = 50 * set_stride;
    t.push_back({TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        t.push_back({TraceOp::Store, i * set_stride});
    t.push_back({TraceOp::Compute, 3000});
    t.push_back({TraceOp::LoadDep, victim});
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmemspec;
    using namespace pmemspec::bench;

    const auto ops = opsFromArgv(argc, argv);

    std::printf("# Section 8.4: misspeculation rates under "
                "PMEM-Spec (8 cores)\n");
    std::printf("%-12s %14s %12s %12s %12s\n", "benchmark",
                "persists", "load-miss", "store-miss", "buf-pauses");
    unsigned long long natural_misspecs = 0;
    for (auto b : workloads::allBenchmarks()) {
        core::ExperimentConfig cfg;
        cfg.bench = b;
        cfg.design = persistency::Design::PmemSpec;
        cfg.machine = core::defaultMachineConfig(8);
        cfg.workload = params(8, ops);
        auto res = core::runExperiment(cfg);
        std::printf("%-12s %14llu %12llu %12llu %12llu\n",
                    workloads::benchName(b),
                    static_cast<unsigned long long>(
                        res.run.instructions),
                    static_cast<unsigned long long>(
                        res.run.loadMisspecs),
                    static_cast<unsigned long long>(
                        res.run.storeMisspecs),
                    static_cast<unsigned long long>(
                        res.run.specBufFullPauses));
        natural_misspecs += res.run.loadMisspecs + res.run.storeMisspecs;
        std::fflush(stdout);
    }

    std::printf("\n# Synthetic stale-read kernel vs persist-path "
                "latency (tiny direct-mapped caches)\n");
    std::printf("%-14s %12s\n", "latency(ns)", "load-miss");
    for (unsigned lat : {10u, 20u, 100u, 500u, 2000u}) {
        cpu::MachineConfig cfg;
        cfg.design = persistency::Design::PmemSpec;
        cfg.mem.numCores = 1;
        cfg.mem.l1Bytes = 1024;
        cfg.mem.l1Ways = 1;
        cfg.mem.llcBytes = 4096;
        cfg.mem.llcWays = 1;
        cfg.mem.persistPathLatency = nsToTicks(lat);
        cfg.mem.speculationWindow = 4 * nsToTicks(lat);
        cpu::Machine m(cfg);
        std::vector<cpu::Trace> traces{staleReadKernel()};
        m.setTraces(std::move(traces));
        auto r = m.run();
        std::printf("%-14u %12llu%s\n", lat,
                    static_cast<unsigned long long>(r.loadMisspecs),
                    lat <= 20 ? "   (faster than the read path: "
                                "never misspeculates)"
                              : "");
    }

    if (natural_misspecs != 0) {
        std::printf("\nFAIL: %llu natural misspeculation(s) in the "
                    "Table 4 benchmarks (paper reports zero)\n",
                    natural_misspecs);
        return 1;
    }
    std::printf("\nOK: zero natural misspeculations across all "
                "Table 4 benchmarks\n");
    return 0;
}
