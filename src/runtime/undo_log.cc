#include "undo_log.hh"

#include <vector>

#include "common/logging.hh"

namespace pmemspec::runtime
{

// Entry layout: [addr:8][size:8][old bytes:size]; the header stores
// the valid-entry count at base+0 (base+8 reserved).

UndoLog::UndoLog(PersistentMemory &pm_, Addr region, std::size_t bytes)
    : pm(pm_), base(region), capacity(bytes)
{
    fatal_if(bytes < headerBytes + 32, "undo log region too small");
}

void
UndoLog::reset()
{
    pm.writeU64(base, 0);
    writeOffset = headerBytes;
}

std::uint64_t
UndoLog::entryCount() const
{
    return pm.readU64(base);
}

void
UndoLog::logRange(Addr addr, std::size_t size)
{
    const std::size_t need = 16 + size;
    fatal_if(writeOffset + need > capacity,
             "undo log overflow: %zu + %zu > %zu", writeOffset, need,
             capacity);

    std::vector<std::uint8_t> old(size);
    pm.read(addr, old.data(), size);

    const Addr entry = base + writeOffset;
    pm.writeU64(entry, addr);
    pm.writeU64(entry + 8, size);
    pm.write(entry + 16, old.data(), size);
    writeOffset += need;
    // Bump the count last: the validity marker (strict persistency
    // guarantees it persists after the payload).
    pm.writeU64(base, entryCount() + 1);
}

void
UndoLog::commit()
{
    pm.writeU64(base, 0);
    writeOffset = headerBytes;
}

bool
UndoLog::needsRecovery() const
{
    return entryCount() != 0;
}

void
UndoLog::recover()
{
    const std::uint64_t n = entryCount();
    // Forward scan to find every entry offset, then undo in reverse.
    std::vector<std::pair<Addr, std::uint64_t>> offsets; // entry, size
    std::size_t off = headerBytes;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr entry = base + off;
        const std::uint64_t size = pm.readU64(entry + 8);
        offsets.emplace_back(entry, size);
        off += 16 + size;
    }
    for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
        const Addr entry = it->first;
        const std::uint64_t size = it->second;
        const Addr target = pm.readU64(entry);
        std::vector<std::uint8_t> old(size);
        pm.read(entry + 16, old.data(), size);
        pm.write(target, old.data(), size);
    }
    commit();
    // Recovery itself must be durable before execution resumes.
    pm.persistAll();
    writeOffset = headerBytes;
}

} // namespace pmemspec::runtime
