#include "undo_log.hh"

#include <vector>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace pmemspec::runtime
{

// Region layout: the region header stores the valid-entry count at
// base+0 (base+8 reserved); entries follow from base+16.
//
// Entry layout: [addr:8][size:8][tid:8][crc:8][old bytes:size].
// Write order within logRange: payload first, then the header whose
// crc field seals it, then a 16-byte zero marker over the *next*
// entry slot, then the count bump. Under strict persistency this
// means (a) a counted entry always has a sealed, verifiable header,
// (b) the slot after the counted entries reads as zeros unless the
// crash frontier left torn residue there -- which the CRC then
// exposes instead of recovery trusting it by luck.

namespace
{

/** The 16-byte tombstone the next entry slot must read as. */
constexpr std::size_t markerBytes = 16;

} // namespace

UndoLog::UndoLog(PersistentMemory &pm_, Addr region, std::size_t bytes,
                 unsigned tid_)
    : pm(pm_), base(region), capacity(bytes), tid(tid_)
{
    fatal_if(bytes < headerBytes + entryHeaderBytes + markerBytes,
             "undo log region too small");
}

std::uint32_t
UndoLog::entryCrc(Addr addr, std::uint64_t size,
                  const std::uint8_t *payload) const
{
    std::uint8_t head[24];
    const std::uint64_t a = addr;
    const std::uint64_t t = tid;
    std::memcpy(head, &a, 8);
    std::memcpy(head + 8, &size, 8);
    std::memcpy(head + 16, &t, 8);
    const std::uint32_t seed = crc32c(head, sizeof(head));
    return crc32c(payload, size, seed);
}

void
UndoLog::reset()
{
    pm.writeU64(base, 0);
    // Tombstone the first entry slot so recovery can tell "empty
    // log" from "torn residue at the frontier".
    pm.writeU64(base + headerBytes, 0);
    pm.writeU64(base + headerBytes + 8, 0);
    writeOffset = headerBytes;
}

std::uint64_t
UndoLog::entryCount() const
{
    return pm.readU64(base);
}

void
UndoLog::logRange(Addr addr, std::size_t size)
{
    const std::size_t need = entryHeaderBytes + size;
    fatal_if(writeOffset + need + markerBytes > capacity,
             "undo log overflow: %zu + %zu > %zu", writeOffset,
             need + markerBytes, capacity);

    std::vector<std::uint8_t> old(size);
    pm.read(addr, old.data(), size);

    const Addr entry = base + writeOffset;
    // Payload first; the sealing header follows it in the persist
    // order, so a torn payload can never sit under a valid header.
    pm.write(entry + entryHeaderBytes, old.data(), size);
    std::uint8_t head[entryHeaderBytes];
    const std::uint64_t a = addr;
    const std::uint64_t s = size;
    const std::uint64_t t = tid;
    const std::uint64_t crc = entryCrc(addr, s, old.data());
    std::memcpy(head, &a, 8);
    std::memcpy(head + 8, &s, 8);
    std::memcpy(head + 16, &t, 8);
    std::memcpy(head + 24, &crc, 8);
    pm.write(entry, head, sizeof(head));
    writeOffset += need;
    // Tombstone the next slot, then bump the count: the validity
    // marker persists last (strict persistency guarantees it; the
    // ordering tag asserts the same constraint to the speculative
    // window, where store order alone is NOT enough).
    pm.writeU64(base + writeOffset, 0);
    pm.writeU64(base + writeOffset + 8, 0);
    writeCount(entryCount() + 1);
}

void
UndoLog::writeCount(std::uint64_t n)
{
    if (orderingTags)
        pm.writeU64Ordered(base, n);
    else
        pm.writeU64(base, n);
}

void
UndoLog::commit()
{
    writeCount(0);
    // Tombstone the first slot *after* the truncation so a crash
    // between the two writes still finds intact entries to undo.
    pm.writeU64(base + headerBytes, 0);
    pm.writeU64(base + headerBytes + 8, 0);
    writeOffset = headerBytes;
}

bool
UndoLog::needsRecovery() const
{
    return entryCount() != 0;
}

UndoRecoveryResult
UndoLog::recover()
{
    UndoRecoveryResult res;

    auto corrupt = [&](std::uint64_t remaining, std::string what) {
        res.discardedCorrupt += remaining;
        res.consistent = false;
        if (res.detail.empty())
            res.detail = std::move(what);
    };

    std::uint64_t n = 0;
    bool header_readable = true;
    try {
        n = pm.readU64(base);
    } catch (const MediaError &) {
        header_readable = false;
        res.consistent = false;
        res.detail = "log entry count is unreadable (poisoned)";
    }

    // Verify every counted entry before touching any data: recovery
    // must be able to promise the full replay before starting it.
    struct Verified
    {
        Addr target;
        std::vector<std::uint8_t> old;
    };
    std::vector<Verified> ents;
    std::size_t off = headerBytes;
    if (header_readable) {
        for (std::uint64_t i = 0; i < n; ++i) {
            if (off + entryHeaderBytes + markerBytes > capacity) {
                corrupt(n - i, "entry " + std::to_string(i) +
                                   " extends past the log region");
                break;
            }
            const Addr entry = base + off;
            Verified v;
            std::uint64_t size = 0;
            std::uint64_t stored_crc = 0;
            try {
                v.target = pm.readU64(entry);
                size = pm.readU64(entry + 8);
                (void)pm.readU64(entry + 16); // tid: diagnostics only
                stored_crc = pm.readU64(entry + 24);
                if (size == 0 ||
                    off + entryHeaderBytes + size + markerBytes >
                        capacity) {
                    corrupt(n - i, "entry " + std::to_string(i) +
                                       " has an implausible size");
                    break;
                }
                v.old.resize(size);
                pm.read(entry + entryHeaderBytes, v.old.data(), size);
            } catch (const MediaError &e) {
                corrupt(n - i,
                        "entry " + std::to_string(i) +
                            " overlaps a poisoned word at " +
                            std::to_string(e.addr));
                break;
            }
            if (entryCrc(v.target, size, v.old.data()) != stored_crc) {
                corrupt(n - i, "entry " + std::to_string(i) +
                                   " failed its checksum");
                break;
            }
            ents.push_back(std::move(v));
            off += entryHeaderBytes + size;
        }
    }

    if (!res.consistent) {
        // Fail-safe: a corrupt counted entry means the pre-image is
        // partly unknown; replaying a subset could itself corrupt.
        // Leave the log un-truncated for diagnosis and replay
        // nothing -- the caller escalates.
        return res;
    }

    // The slot past the counted entries is the crash frontier. It
    // was tombstoned before the last count bump, so any non-zero
    // residue is a torn or never-committed entry -- detected and
    // discarded, not replayed.
    try {
        if (pm.readU64(base + off) != 0 ||
            pm.readU64(base + off + 8) != 0)
            res.discardedTorn = 1;
    } catch (const MediaError &) {
        res.discardedTorn = 1;
    }

    for (auto it = ents.rbegin(); it != ents.rend(); ++it)
        pm.write(it->target, it->old.data(), it->old.size());
    res.replayed = ents.size();

    // Quarantine: scrub any poisoned word in the log region with a
    // fresh write (healing the media) so the next FASE can log here.
    for (Addr w : pm.poisonedWordsIn(base, capacity)) {
        pm.writeU64(w, 0);
        ++res.poisonedQuarantined;
    }

    commit();
    // Recovery itself must be durable before execution resumes.
    pm.persistAll();
    writeOffset = headerBytes;
    return res;
}

} // namespace pmemspec::runtime
