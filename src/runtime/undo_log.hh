/**
 * @file
 * Per-thread undo log living in persistent memory.
 *
 * The microbenchmarks of Table 4 "provide failure-atomicity via
 * undo-logging"; this is that log. Discipline (under strict
 * persistency, which guarantees persists land in store order):
 *
 *   append entry (header, payload, checksum last) -> zero the next
 *   entry slot -> bump the persisted entry count (the count is the
 *   validity marker) -> mutate data in place -> commit truncates the
 *   count back to zero.
 *
 * Entry layout: [addr:8][size:8][tid:8][crc:8][old bytes:size]. The
 * CRC-32C covers addr, size, tid and the payload and is written
 * *last*, so under the extended failure model -- torn multi-word
 * writes at the crash frontier, media bit rot, poisoned words -- a
 * damaged entry is *detected* rather than skipped-by-luck:
 *
 *  - a counted entry that fails its CRC can only be media corruption
 *    (its payload persisted before the count under strict
 *    persistency), so recovery refuses to replay anything and
 *    reports an inconsistent verdict (fail-safe, never garbage);
 *  - bytes after the counted entries are the crash frontier: the
 *    zeroed next-entry slot means any non-zero residue there is a
 *    torn or uncommitted entry, reported as discarded-torn and never
 *    replayed;
 *  - poisoned words inside the log region are quarantined: recovery
 *    scrubs them with fresh writes (healing the media) and counts
 *    them in the result.
 *
 * After a crash (or a virtual power failure, i.e. misspeculation)
 * recovery verifies every counted entry, walks them in reverse
 * restoring the old bytes, then truncates.
 */

#ifndef PMEMSPEC_RUNTIME_UNDO_LOG_HH
#define PMEMSPEC_RUNTIME_UNDO_LOG_HH

#include <cstdint>
#include <string>

#include "runtime/persistent_memory.hh"

namespace pmemspec::runtime
{

/** What one UndoLog::recover() call did -- the per-log slice of the
 *  runtime's RecoveryReport. */
struct UndoRecoveryResult
{
    /** Verified entries whose old bytes were restored. */
    std::uint64_t replayed = 0;
    /** Torn/uncommitted frontier residue detected past the counted
     *  entries; never replayed, harmless to discard. */
    std::uint64_t discardedTorn = 0;
    /** Counted entries failing verification (bit rot or poison);
     *  never replayed -- their presence makes recovery unsafe. */
    std::uint64_t discardedCorrupt = 0;
    /** Poisoned words inside the log region healed by scrubbing. */
    std::uint64_t poisonedQuarantined = 0;
    /** Fail-safe verdict: false iff corrupt counted entries (or an
     *  unreadable header) forced recovery to refuse the replay. */
    bool consistent = true;
    /** Human-readable description of the first defect found. */
    std::string detail;
};

/** An undo log in a fixed PM region. */
class UndoLog
{
  public:
    /**
     * @param region Base address of the log region in PM.
     * @param bytes  Region capacity (header + entries).
     * @param tid    Owning thread, recorded in every entry header.
     */
    UndoLog(PersistentMemory &pm, Addr region, std::size_t bytes,
            unsigned tid = 0);

    /** Initialise a fresh (empty, committed) log. */
    void reset();

    /** Record the current contents of [addr, addr+size) so they can
     *  be restored on abort. Must precede the data mutation. */
    void logRange(Addr addr, std::size_t size);

    /** The FASE committed: truncate the log. */
    void commit();

    /** @return true if uncommitted entries exist (crash recovery or
     *  misspeculation abort must run). Reads the *volatile* image;
     *  after PersistentMemory::crash() that equals the durable one. */
    bool needsRecovery() const;

    /**
     * Verify every counted entry, restore old values (reverse order)
     * and truncate. Works both as crash recovery and as a
     * transaction abort handler. Safe to call with zero valid
     * entries: it then only resynchronises the volatile write cursor
     * with the (empty) durable log.
     *
     * Fail-safe contract: if any *counted* entry fails verification
     * the log replays nothing, stays un-truncated (diagnosable), and
     * the result carries consistent=false -- the caller decides
     * whether that is fatal (FaseRuntime raises
     * UnrecoverableCorruption). Torn frontier residue past the
     * counted entries is detected, reported and safely discarded.
     */
    UndoRecoveryResult recover();

    /** Uncommitted entries currently in the log. */
    std::uint64_t entryCount() const;

    /**
     * Whether the log's *publication* persists -- the count bump
     * that makes an entry valid and the commit truncation -- carry
     * the ordering (spec-barrier) tag the crash-state reorder
     * explorer honours. On by default: the paper's discipline places
     * a spec-barrier before each of them, so neither may be
     * reordered with its preceding payload/data persists inside the
     * speculation window. Turning it off deliberately *breaks* that
     * discipline -- it models an undo log whose author skipped the
     * barriers -- and exists so the checker can prove it catches the
     * resulting WAW-inversion bug (known-bad oracle test).
     */
    void setOrderingTags(bool on) { orderingTags = on; }
    bool hasOrderingTags() const { return orderingTags; }

    /** Bytes of log space used. */
    std::size_t bytesUsed() const { return writeOffset; }

    Addr regionBase() const { return base; }

    /** Region capacity in bytes. */
    std::size_t regionBytes() const { return capacity; }

    /** Per-entry overhead: addr, size, tid, crc (8 bytes each). */
    static constexpr std::size_t entryHeaderBytes = 32;

  private:
    static constexpr std::size_t headerBytes = 16;

    /** Checksum of one entry: header fields chained with payload. */
    std::uint32_t entryCrc(Addr addr, std::uint64_t size,
                           const std::uint8_t *payload) const;

    /** The count write, tagged or not per `orderingTags`. */
    void writeCount(std::uint64_t n);

    PersistentMemory &pm;
    Addr base;
    std::size_t capacity;
    unsigned tid;
    std::size_t writeOffset = headerBytes;
    bool orderingTags = true;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_UNDO_LOG_HH
