/**
 * @file
 * Per-thread undo log living in persistent memory.
 *
 * The microbenchmarks of Table 4 "provide failure-atomicity via
 * undo-logging"; this is that log. Discipline (under strict
 * persistency, which guarantees persists land in store order):
 *
 *   append entry payload -> bump the persisted entry count (the count
 *   acts as the validity marker and is written last) -> mutate data
 *   in place -> commit truncates the count back to zero.
 *
 * After a crash (or a virtual power failure, i.e. misspeculation)
 * recovery walks valid entries in reverse, restoring the old bytes,
 * then truncates. Because the count is bumped only after the payload
 * is fully written, a torn entry is never replayed.
 */

#ifndef PMEMSPEC_RUNTIME_UNDO_LOG_HH
#define PMEMSPEC_RUNTIME_UNDO_LOG_HH

#include <cstdint>

#include "runtime/persistent_memory.hh"

namespace pmemspec::runtime
{

/** An undo log in a fixed PM region. */
class UndoLog
{
  public:
    /**
     * @param region Base address of the log region in PM.
     * @param bytes  Region capacity (header + entries).
     */
    UndoLog(PersistentMemory &pm, Addr region, std::size_t bytes);

    /** Initialise a fresh (empty, committed) log. */
    void reset();

    /** Record the current contents of [addr, addr+size) so they can
     *  be restored on abort. Must precede the data mutation. */
    void logRange(Addr addr, std::size_t size);

    /** The FASE committed: truncate the log. */
    void commit();

    /** @return true if uncommitted entries exist (crash recovery or
     *  misspeculation abort must run). Reads the *volatile* image;
     *  after PersistentMemory::crash() that equals the durable one. */
    bool needsRecovery() const;

    /** Restore old values (reverse order) and truncate. Works both
     *  as crash recovery and as a transaction abort handler. Safe to
     *  call with zero valid entries: it then only resynchronises the
     *  volatile write cursor with the (empty) durable log. */
    void recover();

    /** Uncommitted entries currently in the log. */
    std::uint64_t entryCount() const;

    /** Bytes of log space used. */
    std::size_t bytesUsed() const { return writeOffset; }

    Addr regionBase() const { return base; }

    /** Region capacity in bytes. */
    std::size_t regionBytes() const { return capacity; }

  private:
    static constexpr std::size_t headerBytes = 16;

    PersistentMemory &pm;
    Addr base;
    std::size_t capacity;
    std::size_t writeOffset = headerBytes;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_UNDO_LOG_HH
