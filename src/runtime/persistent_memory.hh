/**
 * @file
 * Functional persistent-memory model.
 *
 * The runtime layer (undo log, FASE runtime, persistent data
 * structures) executes against this model. It keeps two images:
 *
 *  - the *volatile* image: what the running program reads and writes
 *    (caches + in-flight stores included);
 *  - the *persisted* image: what would survive a power failure.
 *
 * Stores are applied to the volatile image immediately and queued as
 * in-flight persists. Under PMEM-Spec's strict persistency the
 * in-flight queue drains to the persisted image *in store order*;
 * crash(k) models a power failure that cut the queue after its first
 * k entries -- exactly the failure model the paper's recovery
 * reasoning assumes (a prefix of the persist order is durable).
 *
 * Beyond the clean-prefix model, the media itself can misbehave
 * ("clean prefix + corrupted frontier"):
 *
 *  - crashTorn(k, mask) keeps the first k persists and then makes an
 *    arbitrary *subset of the 8-byte words* of persist k+1 durable --
 *    the device guarantees 8-byte atomicity but nothing wider, so a
 *    multi-word store caught by the outage can tear;
 *  - corruptWord() flips bits directly in the durable image beneath
 *    the persist queue (media bit rot / a misdirected write);
 *  - poisonWord() marks a word uncorrectable: any read overlapping it
 *    throws MediaError (the functional analogue of an Optane UE /
 *    machine-check on load). A full 8-byte overwrite of a poisoned
 *    word heals it, as a device remaps the line on a fresh write.
 *
 * An observer hook reports every access so the workload layer can
 * record logical traces while the program runs.
 */

#ifndef PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH
#define PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "common/types.hh"

namespace pmemspec::runtime
{

/** Kind of access reported to the observer. */
enum class MemOp : std::uint8_t
{
    Read,
    /** A read whose value determines the next access (pointer
     *  chase); the timing core cannot run past it. */
    ReadDep,
    Write,
};

/**
 * Thrown by a read that touches an uncorrectable (poisoned) word:
 * the device returned a media error instead of data. Software must
 * treat the value as unavailable, never as zero or stale bytes.
 */
struct MediaError
{
    Addr addr; ///< first poisoned word the access overlapped
};

/** Byte-addressable persistent memory with crash semantics. */
class PersistentMemory
{
  public:
    using Observer = std::function<void(MemOp, Addr, std::uint32_t)>;

    /** @param bytes Size of the PM address space. */
    explicit PersistentMemory(std::size_t bytes);

    /** Bump-allocate a region; never freed (arena style). */
    Addr alloc(std::size_t n, std::size_t align = 8);

    /** Bytes remaining in the arena. */
    std::size_t remaining() const { return volatileImg.size() - brk; }

    /** Total size of the address space. */
    std::size_t size() const { return volatileImg.size(); }

    /** Store: updates the volatile image, queues an in-flight
     *  persist, heals any fully-overwritten poisoned word, and
     *  notifies the observer. */
    void write(Addr a, const void *src, std::size_t n);

    /** Store carrying an ordering tag: like write(), but the queued
     *  persist is marked `ordered` -- the functional analogue of a
     *  persist the program publishes *after* a spec-barrier point
     *  (an undo log's validity-marker bump, a commit truncation).
     *  The reorder explorer treats an ordered persist as a full
     *  fence in the speculation window: nothing crosses it. */
    void writeOrdered(Addr a, const void *src, std::size_t n);
    void writeU64Ordered(Addr a, std::uint64_t v);

    /** Load from the volatile image; notifies the observer.
     *  @throws MediaError if the range overlaps a poisoned word. */
    void read(Addr a, void *dst, std::size_t n) const;

    /** Load that the caller marks as address-forming (pointer
     *  chase); recorded as MemOp::ReadDep. */
    void readDep(Addr a, void *dst, std::size_t n) const;

    /** Dependent 64-bit load (the common pointer fetch). */
    std::uint64_t readU64Dep(Addr a) const;

    std::uint64_t readU64(Addr a) const;
    void writeU64(Addr a, std::uint64_t v);
    std::uint32_t readU32(Addr a) const;
    void writeU32(Addr a, std::uint32_t v);

    /** Drain every in-flight persist (a durability barrier). */
    void persistAll();

    /** In-flight persists not yet durable. */
    std::size_t inFlightCount() const { return inFlight.size(); }

    /**
     * Power failure: the first keep_prefix in-flight persists reach
     * the persisted image (in order); the rest are lost; the machine
     * reboots, so the volatile image is re-read from PM.
     */
    void crash(std::size_t keep_prefix);

    /**
     * Power failure with a torn frontier: the first keep_prefix
     * in-flight persists are fully durable, and of persist
     * keep_prefix+1 (if one exists) only the 8-byte words selected
     * by `frontier_word_mask` reach the media -- bit i covers the
     * i-th machine word (8-byte-aligned, in address order) that the
     * persist overlaps. Words past bit 63 are treated as lost. A
     * zero mask degenerates to crash(keep_prefix); an all-ones mask
     * to crash(keep_prefix + 1). 8-byte atomicity is preserved;
     * block atomicity is not.
     */
    void crashTorn(std::size_t keep_prefix,
                   std::uint64_t frontier_word_mask);

    /** Number of 8-byte machine words in-flight persist `idx` spans
     *  (the mask width crashTorn() would tear over). */
    std::size_t pendingEntryWords(std::size_t idx) const;

    // ---- Media faults (uncorrectable errors and bit rot) ----

    /** Mark the 8-byte word containing `a` uncorrectable: reads
     *  overlapping it throw MediaError until it is healed by a full
     *  word overwrite or clearPoison(). */
    void poisonWord(Addr a);

    /** Explicitly heal a poisoned word (device remap / scrubbing).
     *  @return true if the word was poisoned. */
    bool clearPoison(Addr a);

    /** Is the word containing `a` poisoned? */
    bool isPoisoned(Addr a) const;

    /** Poisoned word base addresses overlapping [a, a+n). */
    std::vector<Addr> poisonedWordsIn(Addr a, std::size_t n) const;

    /** Total poisoned words in the space. */
    std::size_t poisonedWordCount() const { return poisoned.size(); }

    /**
     * Flip the bits of `xor_mask` in the 8-byte word containing `a`,
     * in *both* images, beneath the persist queue: silent media
     * corruption that no barrier ordered and no observer saw. Only
     * checksums can catch it.
     */
    void corruptWord(Addr a, std::uint64_t xor_mask);

    /** Register/replace the access observer (nullptr to disable). */
    void setObserver(Observer obs) { observer = std::move(obs); }

    /** One in-flight (not yet durable) persist. */
    struct Pending
    {
        Addr addr;
        std::vector<std::uint8_t> bytes;
        /** Monotonic store-order id, the functional analogue of the
         *  speculation ID the PMC's order check keys on: persist i
         *  precedes persist j in store order iff specId_i < specId_j. */
        SpecId specId = 0;
        /** Publication persist (spec-barrier analogue): may not be
         *  reordered with *any* other persist in the window. */
        bool ordered = false;
    };

    /** In-flight persist `idx` (0 = oldest). The reorder explorer
     *  captures the speculation window from these before a crash. */
    const Pending &pendingEntry(std::size_t idx) const;

    /**
     * Apply bytes directly to *both* images beneath the persist
     * queue, with no observer notification and no poison healing:
     * the reorder explorer uses this to materialize "persist j of
     * the crash window landed" states without perturbing the queue
     * it is enumerating. Unlike corruptWord() this is not a fault --
     * it writes data some store legitimately supplied.
     */
    void overlayDurable(Addr a, const void *src, std::size_t n);

    /**
     * A full copy of the PM state (both images, the in-flight queue,
     * the poison set and the arena cursor). The crash-point explorer
     * snapshots the state once per operation and rewinds between
     * crash(k) trials; the observer is not part of the state and
     * survives restore().
     */
    struct Snapshot
    {
        std::vector<std::uint8_t> volatileImg;
        std::vector<std::uint8_t> persistedImg;
        std::deque<Pending> inFlight;
        std::set<Addr> poisoned;
        std::size_t brk;
        SpecId nextSpec = 1;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /**
     * Partial restore: rewind only the 64-byte blocks listed in
     * `blocks` (block-aligned base addresses) to their snapshot
     * contents, in both images, then clear the in-flight queue and
     * restore the poison set, arena cursor and store-order counter.
     * Exact iff every byte that differs from `s` lies in `blocks`;
     * the crash-state explorer guarantees that by collecting the
     * dirty-block set of the operation it is exploring. Orders of
     * magnitude cheaper than restore() for small working sets.
     */
    void restoreBlocks(const Snapshot &s, const std::vector<Addr> &blocks);

    /** Raw image access for invariant checkers. */
    const std::uint8_t *volatileImage() const { return volatileImg.data(); }
    const std::uint8_t *persistedImage() const { return persistedImg.data(); }

  private:
    void checkRange(Addr a, std::size_t n) const;
    void checkPoison(Addr a, std::size_t n) const;
    void applyPending(const Pending &p);
    void writeTagged(Addr a, const void *src, std::size_t n,
                     bool ordered);

    std::vector<std::uint8_t> volatileImg;
    std::vector<std::uint8_t> persistedImg;
    std::deque<Pending> inFlight;
    /** Word-aligned base addresses of uncorrectable words. */
    std::set<Addr> poisoned;
    std::size_t brk = 64; ///< address 0 stays unmapped (null guard)
    /** Store-order id the next queued persist receives. */
    SpecId nextSpec = 1;
    Observer observer;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH
