/**
 * @file
 * Functional persistent-memory model.
 *
 * The runtime layer (undo log, FASE runtime, persistent data
 * structures) executes against this model. It keeps two images:
 *
 *  - the *volatile* image: what the running program reads and writes
 *    (caches + in-flight stores included);
 *  - the *persisted* image: what would survive a power failure.
 *
 * Stores are applied to the volatile image immediately and queued as
 * in-flight persists. Under PMEM-Spec's strict persistency the
 * in-flight queue drains to the persisted image *in store order*;
 * crash(k) models a power failure that cut the queue after its first
 * k entries -- exactly the failure model the paper's recovery
 * reasoning assumes (a prefix of the persist order is durable).
 *
 * An observer hook reports every access so the workload layer can
 * record logical traces while the program runs.
 */

#ifndef PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH
#define PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace pmemspec::runtime
{

/** Kind of access reported to the observer. */
enum class MemOp : std::uint8_t
{
    Read,
    /** A read whose value determines the next access (pointer
     *  chase); the timing core cannot run past it. */
    ReadDep,
    Write,
};

/** Byte-addressable persistent memory with crash semantics. */
class PersistentMemory
{
  public:
    using Observer = std::function<void(MemOp, Addr, std::uint32_t)>;

    /** @param bytes Size of the PM address space. */
    explicit PersistentMemory(std::size_t bytes);

    /** Bump-allocate a region; never freed (arena style). */
    Addr alloc(std::size_t n, std::size_t align = 8);

    /** Bytes remaining in the arena. */
    std::size_t remaining() const { return volatileImg.size() - brk; }

    /** Total size of the address space. */
    std::size_t size() const { return volatileImg.size(); }

    /** Store: updates the volatile image, queues an in-flight
     *  persist, and notifies the observer. */
    void write(Addr a, const void *src, std::size_t n);

    /** Load from the volatile image; notifies the observer. */
    void read(Addr a, void *dst, std::size_t n) const;

    /** Load that the caller marks as address-forming (pointer
     *  chase); recorded as MemOp::ReadDep. */
    void readDep(Addr a, void *dst, std::size_t n) const;

    /** Dependent 64-bit load (the common pointer fetch). */
    std::uint64_t readU64Dep(Addr a) const;

    std::uint64_t readU64(Addr a) const;
    void writeU64(Addr a, std::uint64_t v);
    std::uint32_t readU32(Addr a) const;
    void writeU32(Addr a, std::uint32_t v);

    /** Drain every in-flight persist (a durability barrier). */
    void persistAll();

    /** In-flight persists not yet durable. */
    std::size_t inFlightCount() const { return inFlight.size(); }

    /**
     * Power failure: the first keep_prefix in-flight persists reach
     * the persisted image (in order); the rest are lost; the machine
     * reboots, so the volatile image is re-read from PM.
     */
    void crash(std::size_t keep_prefix);

    /** Register/replace the access observer (nullptr to disable). */
    void setObserver(Observer obs) { observer = std::move(obs); }

    /** One in-flight (not yet durable) persist. */
    struct Pending
    {
        Addr addr;
        std::vector<std::uint8_t> bytes;
    };

    /**
     * A full copy of the PM state (both images, the in-flight queue
     * and the arena cursor). The crash-point explorer snapshots the
     * state once per operation and rewinds between crash(k) trials;
     * the observer is not part of the state and survives restore().
     */
    struct Snapshot
    {
        std::vector<std::uint8_t> volatileImg;
        std::vector<std::uint8_t> persistedImg;
        std::deque<Pending> inFlight;
        std::size_t brk;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /** Raw image access for invariant checkers. */
    const std::uint8_t *volatileImage() const { return volatileImg.data(); }
    const std::uint8_t *persistedImage() const { return persistedImg.data(); }

  private:
    void checkRange(Addr a, std::size_t n) const;

    std::vector<std::uint8_t> volatileImg;
    std::vector<std::uint8_t> persistedImg;
    std::deque<Pending> inFlight;
    std::size_t brk = 64; ///< address 0 stays unmapped (null guard)
    Observer observer;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_PERSISTENT_MEMORY_HH
