/**
 * @file
 * The OS support of Section 6.1.1.
 *
 * When the PMEM-Spec hardware detects misspeculation it stores the
 * faulting physical address in a designated mailbox and raises a
 * hardware interrupt. The OS keeps a reverse mapping from physical
 * address ranges to the process that registered them, looks the
 * faulting process up, and relays the signal to that process's
 * failure-atomic runtime.
 */

#ifndef PMEMSPEC_RUNTIME_VIRTUAL_OS_HH
#define PMEMSPEC_RUNTIME_VIRTUAL_OS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace pmemspec::runtime
{

/** Process id inside the virtual OS. */
using Pid = std::uint32_t;

/** The misspeculation-relay half of a kernel. */
class VirtualOs
{
  public:
    /** Signature of a process's misspeculation handler; receives the
     *  faulting physical address from the mailbox. */
    using MisspecHandler = std::function<void(Addr)>;

    /** Register a process and its handler. @return its pid. */
    Pid registerProcess(MisspecHandler handler);

    /** Unregister (process exit). */
    void unregisterProcess(Pid pid);

    /** Map a PM physical range to a process (the reverse map). */
    void registerRegion(Pid pid, Addr base, std::size_t len);

    /**
     * The hardware interrupt entry point: store the faulting address
     * in the mailbox, find the owning process through the reverse
     * map, and deliver the signal.
     * @return the pid signalled, or nullopt if no process owns the
     *         address (the interrupt is logged and dropped).
     */
    std::optional<Pid> raiseMisspecInterrupt(Addr fault_addr);

    /** The designated mailbox: last faulting address delivered. */
    Addr mailbox() const { return mailboxAddr; }

    /** Interrupts delivered / dropped. */
    std::uint64_t delivered() const { return numDelivered; }
    std::uint64_t dropped() const { return numDropped; }

  private:
    struct Region
    {
        Addr base;
        std::size_t len;
        Pid pid;
    };

    std::map<Pid, MisspecHandler> handlers;
    std::vector<Region> regions;
    Pid nextPid = 1;
    Addr mailboxAddr = 0;
    std::uint64_t numDelivered = 0;
    std::uint64_t numDropped = 0;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_VIRTUAL_OS_HH
