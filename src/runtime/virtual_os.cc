#include "virtual_os.hh"

#include "common/logging.hh"

namespace pmemspec::runtime
{

Pid
VirtualOs::registerProcess(MisspecHandler handler)
{
    const Pid pid = nextPid++;
    handlers[pid] = std::move(handler);
    return pid;
}

void
VirtualOs::unregisterProcess(Pid pid)
{
    handlers.erase(pid);
    std::erase_if(regions,
                  [pid](const Region &r) { return r.pid == pid; });
}

void
VirtualOs::registerRegion(Pid pid, Addr base, std::size_t len)
{
    fatal_if(handlers.find(pid) == handlers.end(),
             "registerRegion for unknown pid %u", pid);
    fatal_if(len == 0, "zero-length region for pid %u", pid);
    fatal_if(base + len < base,
             "region of pid %u wraps the address space", pid);
    // The reverse map must stay unambiguous: an interrupt inside two
    // registered regions would otherwise be delivered to whichever
    // process registered first, silently starving the other.
    for (const Region &r : regions) {
        fatal_if(base < r.base + r.len && r.base < base + len,
                 "region [%#llx, +%zu) of pid %u overlaps "
                 "[%#llx, +%zu) of pid %u",
                 static_cast<unsigned long long>(base), len, pid,
                 static_cast<unsigned long long>(r.base), r.len,
                 r.pid);
    }
    regions.push_back(Region{base, len, pid});
}

std::optional<Pid>
VirtualOs::raiseMisspecInterrupt(Addr fault_addr)
{
    mailboxAddr = fault_addr;
    for (const Region &r : regions) {
        if (fault_addr >= r.base && fault_addr < r.base + r.len) {
            auto it = handlers.find(r.pid);
            if (it == handlers.end())
                break;
            ++numDelivered;
            it->second(fault_addr);
            return r.pid;
        }
    }
    ++numDropped;
    return std::nullopt;
}

} // namespace pmemspec::runtime
