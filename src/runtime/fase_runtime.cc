#include "fase_runtime.hh"

#include <string>

#include "common/logging.hh"

namespace pmemspec::runtime
{

Transaction::Transaction(PersistentMemory &pm_, UndoLog &log_,
                         FaseRuntime &rt, unsigned tid_)
    : pm(pm_), log(log_), runtime(rt), threadId(tid_),
      profiling(rt.profile && rt.profile->enabled())
{
}

void
Transaction::poll()
{
    if (runtime.recoveryPolicy == RecoveryPolicy::Eager &&
        runtime.threads[threadId].misspecFlag) {
        throw AbortException{runtime.os.mailbox()};
    }
}

void
Transaction::write(Addr a, const void *src, std::size_t n)
{
    poll();
    if (runtime.logGranularity == LogGranularity::Word) {
        // Mnemosyne-style raw log: every write is logged, no
        // deduplication.
        log.logRange(a, n);
    } else {
        // Log every touched block once (block-granular undo).
        for (Addr b = blockAlign(a); b < a + n; b += blockBytes) {
            if (loggedBlocks.insert(b).second)
                log.logRange(b, blockBytes);
        }
    }
    if (profiling) {
        ++profWrites;
        for (Addr b = blockAlign(a); b < a + n; b += blockBytes)
            profDirty.insert(b);
    }
    pm.write(a, src, n);
}

void
Transaction::writeU64(Addr a, std::uint64_t v)
{
    write(a, &v, sizeof(v));
}

void
Transaction::writeU32(Addr a, std::uint32_t v)
{
    write(a, &v, sizeof(v));
}

void
Transaction::read(Addr a, void *dst, std::size_t n)
{
    poll();
    pm.read(a, dst, n);
}

std::uint64_t
Transaction::readU64(Addr a)
{
    std::uint64_t v;
    read(a, &v, sizeof(v));
    return v;
}

std::uint32_t
Transaction::readU32(Addr a)
{
    std::uint32_t v;
    read(a, &v, sizeof(v));
    return v;
}

std::uint64_t
Transaction::readU64Dep(Addr a)
{
    poll();
    return pm.readU64Dep(a);
}

FaseRuntime::FaseRuntime(PersistentMemory &pm_, VirtualOs &os_,
                         unsigned num_threads, RecoveryPolicy policy,
                         std::size_t log_bytes_per_thread,
                         LogGranularity granularity)
    : pm(pm_), os(os_), recoveryPolicy(policy),
      logGranularity(granularity)
{
    fatal_if(num_threads == 0, "runtime needs at least one thread");
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        Addr region = pm.alloc(log_bytes_per_thread, 64);
        UndoLog log(pm, region, log_bytes_per_thread, t);
        log.reset();
        threads.emplace_back(std::move(log));
    }
    // Register with the OS: handler + the PM region reverse-mapping.
    pid_ = os.registerProcess(
        [this](Addr fault) { onMisspecSignal(fault); });
    os.registerRegion(pid_, 1, pm.size() - 1);
}

FaseRuntime::~FaseRuntime()
{
    os.unregisterProcess(pid_);
}

void
FaseRuntime::onMisspecSignal(Addr fault_addr)
{
    // Flag every thread currently executing a FASE; threads outside
    // FASEs are untouched (Section 6.2.1).
    std::uint64_t flagged = 0;
    for (auto &t : threads) {
        if (t.inFase) {
            t.misspecFlag = true;
            ++flagged;
        }
    }
    PMEMSPEC_TRACE(traceMgr, FlagFaseRuntime, trace::EventKind::RtTrap,
                   traceMgr ? traceMgr->now() : 0, trace::kNoCore,
                   fault_addr, {.arg = flagged});
    if (traceMgr)
        lastTrapWindow = traceMgr->formatTail(16);
}

void
FaseRuntime::accumulate(RecoveryReport &rep, unsigned tid,
                        const UndoRecoveryResult &r)
{
    rep.entriesReplayed += r.replayed;
    rep.entriesDiscardedTorn += r.discardedTorn;
    rep.entriesDiscardedCorrupt += r.discardedCorrupt;
    rep.poisonedWordsQuarantined += r.poisonedQuarantined;
    if (!r.consistent) {
        rep.consistent = false;
        rep.diagnostics.push_back(
            "thread " + std::to_string(tid) + ": " +
            (r.detail.empty() ? std::string("log corrupt") : r.detail));
    }
}

void
FaseRuntime::abortFase(unsigned tid)
{
    ThreadState &ts = threads[tid];
    // Undo both volatile and non-volatile intermediate data: the log
    // restores old values through regular PM writes and then makes
    // the restoration durable.
    const UndoRecoveryResult r = ts.log.recover();
    ts.inFase = false;
    ++aborted;
    PMEMSPEC_TRACE(traceMgr, FlagFaseRuntime, trace::EventKind::RtAbort,
                   traceMgr ? traceMgr->now() : 0, tid, 0,
                   {.arg = r.replayed});
    if (!r.consistent) {
        // The log of a *live* FASE failed verification: injected (or
        // real) media faults hit it mid-run. Same fail-safe as crash
        // recovery -- refuse to continue on a state we cannot trust.
        RecoveryReport rep;
        accumulate(rep, tid, r);
        rep.trapWindow = lastTrapWindow;
        lastReport = rep;
        if (traceMgr && traceMgr->config().flightRecorder)
            traceMgr->dump(stderr);
        throw UnrecoverableCorruption{std::move(rep)};
    }
}

void
FaseRuntime::setAbortBudget(std::uint64_t budget)
{
    fatal_if(budget == 0, "abort budget must be >= 1");
    abortBudget_ = budget;
}

void
FaseRuntime::runFase(unsigned tid, const FaseFn &fn,
                     unsigned profile_site)
{
    fatal_if(tid >= threads.size(), "bad thread id %u", tid);
    ThreadState &ts = threads[tid];
    panic_if(ts.inFase, "nested FASE on thread %u", tid);

    const bool prof = profile && profile->enabled();

    // Abort, then either retry (the common case) or -- once this
    // invocation's budget is gone -- fail with diagnostics instead
    // of livelocking on a FASE that re-races forever.
    std::uint64_t invocation_aborts = 0;
    auto abortOrGiveUp = [&] {
        abortFase(tid);
        if (++invocation_aborts >= abortBudget_) {
            const Addr fault = os.mailbox();
            // The final attempt's abort is attributed to the budget,
            // not misspeculation, so per-site aborts partition as
            // executions = commits + aborts_total.
            if (prof)
                profile->recordAbort(profile_site,
                                     observe::AbortCause::Budget);
            // Under a chaos soak (MisspecStorm faults) this fires per
            // shard per storm; one line is diagnosis, thousands are
            // noise -- the profile carries the per-site counts.
            warn_once("FASE on thread %u aborted %llu times without "
                      "committing (last fault addr %#llx); giving up "
                      "(further budget trips logged once; see the "
                      "speculation profile for counts)",
                      tid,
                      static_cast<unsigned long long>(invocation_aborts),
                      static_cast<unsigned long long>(fault));
            throw AbortBudgetExhausted{tid, fault, invocation_aborts};
        }
        if (prof)
            profile->recordAbort(profile_site,
                                 observe::AbortCause::Misspec);
    };

    for (;;) {
        // A thread clears its own flag when it begins a new FASE.
        ts.misspecFlag = false;
        ts.inFase = true;
        if (prof)
            profile->recordExecution(profile_site);
        Transaction tx(pm, ts.log, *this, tid);
        try {
            fn(tx);
        } catch (const AbortException &) {
            abortOrGiveUp();
            continue;
        } catch (...) {
            // Lazy recovery: exceptions caused by stale data are
            // suppressed if the flag is set (Section 6.2.1);
            // otherwise they are real bugs and propagate.
            if (ts.misspecFlag) {
                abortOrGiveUp();
                continue;
            }
            ts.inFase = false;
            throw;
        }
        // Commit point: the lazy scheme checks the flag here.
        if (ts.misspecFlag) {
            abortOrGiveUp();
            continue;
        }
        ts.log.commit();
        // Durability barrier at FASE end (spec-barrier / dfence /
        // SFENCE, depending on the design).
        pm.persistAll();
        ts.inFase = false;
        ++committed;
        if (prof)
            profile->recordCommit(profile_site, tx.writesLogged(),
                                  tx.dirtyBlockCount());
        PMEMSPEC_TRACE(traceMgr, FlagFaseRuntime,
                       trace::EventKind::RtCommit,
                       traceMgr ? traceMgr->now() : 0, tid, 0,
                       {.arg = invocation_aborts});
        return;
    }
}

RecoveryReport
FaseRuntime::recoverAll()
{
    RecoveryReport rep;
    unsigned tid = 0;
    for (auto &t : threads) {
        // Run recovery unconditionally: even with zero durable
        // entries (the crash cut before the first count bump), the
        // log's volatile write cursor must be resynchronised with
        // the durable image, or the next FASE would append entries
        // where recovery will not look for them.
        accumulate(rep, tid, t.log.recover());
        t.inFase = false;
        t.misspecFlag = false;
        ++tid;
    }
    // Attach the flight window around the last trap: crash-recovery
    // post-mortems see what the hardware observed just before it.
    rep.trapWindow = lastTrapWindow;
    PMEMSPEC_TRACE(traceMgr, FlagFaseRuntime,
                   trace::EventKind::RtRecovery,
                   traceMgr ? traceMgr->now() : 0, trace::kNoCore, 0,
                   {.arg = rep.entriesReplayed});
    lastReport = rep;
    if (!rep.consistent) {
        // Fail-safe verdict: at least one log refused its replay, so
        // the durable image is not a FASE boundary and must not be
        // served. The corrupt logs were left un-truncated for
        // diagnosis.
        for (const auto &d : rep.diagnostics)
            warn("unrecoverable corruption: %s", d.c_str());
        if (traceMgr && traceMgr->config().flightRecorder)
            traceMgr->dump(stderr);
        throw UnrecoverableCorruption{rep};
    }
    return rep;
}

} // namespace pmemspec::runtime
