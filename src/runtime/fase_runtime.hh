/**
 * @file
 * The failure-atomic runtime (Sections 6.1.2 and 6.2).
 *
 * Provides FASEs/transactions with undo-log rollback, the per-thread
 * misspeculation flag, and both recovery schemes:
 *
 *  - Lazy (Section 6.2.1): the flag is checked at the commit point;
 *    if set, the abort handler undoes all intermediate data (volatile
 *    and non-volatile) and the FASE re-executes. Exceptions raised
 *    mid-FASE while the flag is set are suppressed and turned into
 *    aborts.
 *  - Eager (Section 6.2.2): the signal is broadcast; each in-FASE
 *    thread aborts at its next runtime entry point (the functional
 *    stand-in for a synthetic pthread_kill interrupt).
 *
 * The runtime registers itself and its PM region with the VirtualOs
 * so misspeculation interrupts can be relayed to it.
 */

#ifndef PMEMSPEC_RUNTIME_FASE_RUNTIME_HH
#define PMEMSPEC_RUNTIME_FASE_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "observe/spec_profile.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/undo_log.hh"
#include "runtime/virtual_os.hh"

namespace pmemspec::runtime
{

class FaseRuntime;

/** Thrown by the eager recovery scheme at a runtime entry point. */
struct AbortException
{
    Addr faultAddr;
};

/**
 * What a recovery pass did, aggregated over every per-thread undo
 * log: the structured evidence behind the fail-safe verdict. A
 * recovery either produces a report with consistent=true (the
 * durable state was restored to a FASE boundary) or raises
 * UnrecoverableCorruption carrying the same report with
 * consistent=false -- it never silently returns garbage.
 */
struct RecoveryReport
{
    /** Verified undo entries replayed. */
    std::uint64_t entriesReplayed = 0;
    /** Torn / never-committed frontier residue detected and safely
     *  discarded (it was never covered by a commit record). */
    std::uint64_t entriesDiscardedTorn = 0;
    /** Counted entries that failed verification (bit rot, poison);
     *  any non-zero value makes the verdict inconsistent. */
    std::uint64_t entriesDiscardedCorrupt = 0;
    /** Poisoned words quarantined (scrubbed) inside log regions. */
    std::uint64_t poisonedWordsQuarantined = 0;
    /** The fail-safe verdict. */
    bool consistent = true;
    /** One line per defect, for logs and exceptions. */
    std::vector<std::string> diagnostics;
    /** Flight-recorder window around the last misspeculation trap
     *  (formatted trace events), attached when the runtime has a
     *  trace::Manager. Diagnostic context only -- deliberately NOT
     *  part of operator==: two recoveries of the same durable image
     *  must compare equal whether or not tracing was on. */
    std::vector<std::string> trapWindow;

    bool
    operator==(const RecoveryReport &o) const
    {
        return entriesReplayed == o.entriesReplayed &&
               entriesDiscardedTorn == o.entriesDiscardedTorn &&
               entriesDiscardedCorrupt == o.entriesDiscardedCorrupt &&
               poisonedWordsQuarantined == o.poisonedWordsQuarantined &&
               consistent == o.consistent &&
               diagnostics == o.diagnostics;
    }
};

/**
 * Thrown when recovery cannot restore a consistent state: at least
 * one undo-log entry that a commit record vouches for failed its
 * verification, so the pre-crash image is partly unknown. The
 * report's diagnostics name every defect; the corrupted logs are
 * left un-truncated for post-mortem inspection.
 */
struct UnrecoverableCorruption
{
    RecoveryReport report;
};

/**
 * Thrown by FaseRuntime::runFase when one FASE invocation exhausts
 * its abort budget: the section was rolled back and re-executed
 * `aborts` times without ever committing, so instead of livelocking
 * the runtime gives up with diagnostics. The partial work of the
 * final attempt has already been undone when this is thrown.
 */
struct AbortBudgetExhausted
{
    unsigned tid;      ///< thread whose FASE never committed
    Addr faultAddr;    ///< last faulting address from the OS mailbox
    std::uint64_t aborts; ///< aborts consumed by this invocation
};

/** Undo-logged transactional access used inside a FASE body.
 *
 * Logging is block-granular with per-transaction deduplication (as in
 * ATLAS/iDO and hardware logging schemes): the first store to a cache
 * block saves the whole 64-byte block; further stores to it need no
 * log entry. */
class Transaction
{
  public:
    Transaction(PersistentMemory &pm, UndoLog &log, FaseRuntime &rt,
                unsigned tid);

    /** Undo-log the old contents (once per block), then store. */
    void write(Addr a, const void *src, std::size_t n);
    void writeU64(Addr a, std::uint64_t v);
    void writeU32(Addr a, std::uint32_t v);

    void read(Addr a, void *dst, std::size_t n);
    std::uint64_t readU64(Addr a);
    std::uint32_t readU32(Addr a);
    /** Dependent (address-forming) load. */
    std::uint64_t readU64Dep(Addr a);

    unsigned tid() const { return threadId; }

    /** Profiling accessors (populated only while the runtime has an
     *  enabled SpecProfile attached; zero otherwise). */
    std::uint64_t writesLogged() const { return profWrites; }
    std::uint64_t dirtyBlockCount() const { return profDirty.size(); }

  private:
    /** Eager recovery entry point: abort here if flagged. */
    void poll();

    PersistentMemory &pm;
    UndoLog &log;
    FaseRuntime &runtime;
    unsigned threadId;
    /** Blocks already undo-logged by this transaction. */
    std::set<Addr> loggedBlocks;
    /** True when the runtime's SpecProfile wants per-FASE write and
     *  dirty-block counts; kept off the hot path otherwise. */
    bool profiling = false;
    std::uint64_t profWrites = 0;
    std::set<Addr> profDirty;
};

/** How aborts are delivered (Section 6.2). */
enum class RecoveryPolicy
{
    Lazy,
    Eager,
};

/** Undo-log granularity. */
enum class LogGranularity
{
    /** Log each touched cache block once per transaction (ATLAS/iDO
     *  style; the microbenchmarks use this). */
    Block,
    /** Log every write individually with no deduplication
     *  (Mnemosyne-style raw-word log; Vacation/Memcached use this --
     *  on IntelX86 each logged write costs a flush+fence pair). */
    Word,
};

/** The failure-atomic runtime of one process. */
class FaseRuntime
{
  public:
    using FaseFn = std::function<void(Transaction &)>;

    FaseRuntime(PersistentMemory &pm, VirtualOs &os,
                unsigned num_threads, RecoveryPolicy policy,
                std::size_t log_bytes_per_thread = 1 << 16,
                LogGranularity granularity = LogGranularity::Block);
    ~FaseRuntime();

    FaseRuntime(const FaseRuntime &) = delete;
    FaseRuntime &operator=(const FaseRuntime &) = delete;

    /**
     * Execute one failure-atomic section on behalf of thread `tid`,
     * retrying on abort until it commits or the abort budget runs
     * out (AbortBudgetExhausted). At commit the writes are made
     * durable (the spec-barrier of Section 4.2). @p profile_site
     * attributes the attempt to a SpecProfile site when a profile is
     * attached (ignored otherwise).
     */
    void runFase(unsigned tid, const FaseFn &fn,
                 unsigned profile_site = 0);

    /**
     * Cap the aborts a single runFase invocation may consume before
     * it gives up with AbortBudgetExhausted (default 4096 -- far
     * above anything a correct program re-races into, low enough to
     * turn a livelock into a diagnosable failure).
     */
    void setAbortBudget(std::uint64_t budget);
    std::uint64_t abortBudget() const { return abortBudget_; }

    /**
     * Crash recovery: roll back every uncommitted FASE from the
     * per-thread logs (called once after PersistentMemory::crash()).
     * Verifies every entry it replays and returns the structured
     * report; raises UnrecoverableCorruption (carrying the report)
     * if any log is corrupt -- fail-safe, never silent garbage.
     */
    RecoveryReport recoverAll();

    /** The report of the most recent recoverAll() pass (also the one
     *  inside a thrown UnrecoverableCorruption). */
    const RecoveryReport &lastRecoveryReport() const
    {
        return lastReport;
    }

    /** True while thread `tid` is inside a FASE. */
    bool inFase(unsigned tid) const { return threads.at(tid).inFase; }

    /** The per-thread misspeculation flag (tests). */
    bool misspecFlag(unsigned tid) const
    {
        return threads.at(tid).misspecFlag;
    }

    Pid pid() const { return pid_; }
    RecoveryPolicy policy() const { return recoveryPolicy; }

    /** Attach an event recorder (nullptr detaches). Rt* events carry
     *  the thread id in the core field. */
    void setTraceManager(trace::Manager *mgr) { traceMgr = mgr; }

    /** Attach a per-FASE-site speculation profile (nullptr detaches).
     *  Misspec and budget aborts, commits, logged writes, and dirty
     *  blocks are recorded against the site runFase was given. */
    void setSpecProfile(observe::SpecProfile *p) { profile = p; }
    observe::SpecProfile *specProfile() const { return profile; }
    LogGranularity granularity() const { return logGranularity; }

    /**
     * Checker hook: toggle the ordering (spec-barrier) tags every
     * per-thread undo log places on its publication persists (see
     * UndoLog::setOrderingTags). Default on. Turning it off models a
     * runtime that skipped the barriers -- only the crash-state
     * reorder explorer's known-bad oracle test should ever do so.
     */
    void
    setLogOrderingTags(bool on)
    {
        for (auto &ts : threads)
            ts.log.setOrderingTags(on);
    }

    /** PM region of thread tid's undo log (trace classification). */
    std::pair<Addr, std::size_t>
    logRegion(unsigned tid) const
    {
        const auto &log = threads.at(tid).log;
        return {log.regionBase(), log.regionBytes()};
    }

    std::uint64_t fasesCommitted() const { return committed; }
    std::uint64_t fasesAborted() const { return aborted; }

  private:
    friend class Transaction;

    struct ThreadState
    {
        bool inFase = false;
        bool misspecFlag = false;
        UndoLog log;

        explicit ThreadState(UndoLog l) : log(std::move(l)) {}
    };

    /** OS signal handler: flag every thread currently in a FASE. */
    void onMisspecSignal(Addr fault_addr);

    /** Abort handler: undo volatile and non-volatile intermediate
     *  data of thread tid's open FASE. */
    void abortFase(unsigned tid);

    /** Fold one log's recovery result into a report. */
    static void accumulate(RecoveryReport &rep, unsigned tid,
                           const UndoRecoveryResult &r);

    PersistentMemory &pm;
    VirtualOs &os;
    RecoveryPolicy recoveryPolicy;
    LogGranularity logGranularity;
    std::vector<ThreadState> threads;
    Pid pid_ = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t abortBudget_ = 4096;
    RecoveryReport lastReport;
    trace::Manager *traceMgr = nullptr;
    observe::SpecProfile *profile = nullptr;
    /** Flight window captured at the last misspeculation signal. */
    std::vector<std::string> lastTrapWindow;
};

} // namespace pmemspec::runtime

#endif // PMEMSPEC_RUNTIME_FASE_RUNTIME_HH
