#include "persistent_memory.hh"

#include "common/logging.hh"

namespace pmemspec::runtime
{

namespace
{

constexpr Addr wordBytes = 8;

constexpr Addr
wordAlign(Addr a)
{
    return a & ~(wordBytes - 1);
}

} // namespace

PersistentMemory::PersistentMemory(std::size_t bytes)
    : volatileImg(bytes, 0), persistedImg(bytes, 0)
{
    fatal_if(bytes < 1024, "PM space of %zu bytes is too small", bytes);
}

void
PersistentMemory::checkRange(Addr a, std::size_t n) const
{
    panic_if(a == 0, "null PM access");
    panic_if(a + n > volatileImg.size(),
             "PM access out of range: [%#llx, +%zu) in %zu-byte space",
             static_cast<unsigned long long>(a), n, volatileImg.size());
}

void
PersistentMemory::checkPoison(Addr a, std::size_t n) const
{
    if (poisoned.empty() || n == 0)
        return;
    // The set is ordered: the first poisoned word at or after the
    // range's first word decides.
    auto it = poisoned.lower_bound(wordAlign(a));
    if (it != poisoned.end() && *it < a + n)
        throw MediaError{*it};
}

Addr
PersistentMemory::alloc(std::size_t n, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alloc alignment must be a power of two");
    std::size_t base = (brk + align - 1) & ~(align - 1);
    fatal_if(base + n > volatileImg.size(),
             "PM arena exhausted: need %zu at %zu of %zu", n, base,
             volatileImg.size());
    brk = base + n;
    return static_cast<Addr>(base);
}

void
PersistentMemory::writeTagged(Addr a, const void *src, std::size_t n,
                              bool ordered)
{
    checkRange(a, n);
    std::memcpy(volatileImg.data() + a, src, n);
    // A full 8-byte overwrite of a poisoned word heals it (the
    // device remaps the line when fresh data arrives); a partial
    // overwrite leaves the word uncorrectable.
    if (!poisoned.empty()) {
        for (Addr w = wordAlign(a); w < a + n; w += wordBytes) {
            if (w >= a && w + wordBytes <= a + n)
                poisoned.erase(w);
        }
    }
    Pending p;
    p.addr = a;
    p.bytes.assign(static_cast<const std::uint8_t *>(src),
                   static_cast<const std::uint8_t *>(src) + n);
    p.specId = nextSpec++;
    p.ordered = ordered;
    inFlight.push_back(std::move(p));
    if (observer)
        observer(MemOp::Write, a, static_cast<std::uint32_t>(n));
}

void
PersistentMemory::write(Addr a, const void *src, std::size_t n)
{
    writeTagged(a, src, n, false);
}

void
PersistentMemory::writeOrdered(Addr a, const void *src, std::size_t n)
{
    writeTagged(a, src, n, true);
}

void
PersistentMemory::writeU64Ordered(Addr a, std::uint64_t v)
{
    writeOrdered(a, &v, sizeof(v));
}

void
PersistentMemory::read(Addr a, void *dst, std::size_t n) const
{
    checkRange(a, n);
    checkPoison(a, n);
    std::memcpy(dst, volatileImg.data() + a, n);
    if (observer)
        observer(MemOp::Read, a, static_cast<std::uint32_t>(n));
}

void
PersistentMemory::readDep(Addr a, void *dst, std::size_t n) const
{
    checkRange(a, n);
    checkPoison(a, n);
    std::memcpy(dst, volatileImg.data() + a, n);
    if (observer)
        observer(MemOp::ReadDep, a, static_cast<std::uint32_t>(n));
}

std::uint64_t
PersistentMemory::readU64Dep(Addr a) const
{
    std::uint64_t v;
    readDep(a, &v, sizeof(v));
    return v;
}

std::uint64_t
PersistentMemory::readU64(Addr a) const
{
    std::uint64_t v;
    read(a, &v, sizeof(v));
    return v;
}

void
PersistentMemory::writeU64(Addr a, std::uint64_t v)
{
    write(a, &v, sizeof(v));
}

std::uint32_t
PersistentMemory::readU32(Addr a) const
{
    std::uint32_t v;
    read(a, &v, sizeof(v));
    return v;
}

void
PersistentMemory::writeU32(Addr a, std::uint32_t v)
{
    write(a, &v, sizeof(v));
}

void
PersistentMemory::applyPending(const Pending &p)
{
    std::memcpy(persistedImg.data() + p.addr, p.bytes.data(),
                p.bytes.size());
}

void
PersistentMemory::persistAll()
{
    for (const Pending &p : inFlight)
        applyPending(p);
    inFlight.clear();
}

PersistentMemory::Snapshot
PersistentMemory::snapshot() const
{
    return Snapshot{volatileImg, persistedImg, inFlight,
                    poisoned,    brk,          nextSpec};
}

void
PersistentMemory::restore(const Snapshot &s)
{
    panic_if(s.volatileImg.size() != volatileImg.size(),
             "snapshot of a %zu-byte space restored into %zu bytes",
             s.volatileImg.size(), volatileImg.size());
    volatileImg = s.volatileImg;
    persistedImg = s.persistedImg;
    inFlight = s.inFlight;
    poisoned = s.poisoned;
    brk = s.brk;
    nextSpec = s.nextSpec;
}

void
PersistentMemory::restoreBlocks(const Snapshot &s,
                                const std::vector<Addr> &blocks)
{
    panic_if(s.volatileImg.size() != volatileImg.size(),
             "snapshot of a %zu-byte space restored into %zu bytes",
             s.volatileImg.size(), volatileImg.size());
    for (Addr b : blocks) {
        panic_if(b != blockAlign(b), "restoreBlocks wants block bases");
        checkRange(b, blockBytes);
        std::memcpy(volatileImg.data() + b, s.volatileImg.data() + b,
                    blockBytes);
        std::memcpy(persistedImg.data() + b, s.persistedImg.data() + b,
                    blockBytes);
    }
    inFlight = s.inFlight;
    poisoned = s.poisoned;
    brk = s.brk;
    nextSpec = s.nextSpec;
}

void
PersistentMemory::overlayDurable(Addr a, const void *src, std::size_t n)
{
    checkRange(a, n);
    std::memcpy(volatileImg.data() + a, src, n);
    std::memcpy(persistedImg.data() + a, src, n);
}

void
PersistentMemory::crash(std::size_t keep_prefix)
{
    std::size_t applied = 0;
    for (const Pending &p : inFlight) {
        if (applied >= keep_prefix)
            break;
        applyPending(p);
        ++applied;
    }
    inFlight.clear();
    // Reboot: every volatile copy is gone; PM is the truth.
    volatileImg = persistedImg;
}

const PersistentMemory::Pending &
PersistentMemory::pendingEntry(std::size_t idx) const
{
    panic_if(idx >= inFlight.size(),
             "pendingEntry(%zu) of %zu in flight", idx,
             inFlight.size());
    return inFlight[idx];
}

std::size_t
PersistentMemory::pendingEntryWords(std::size_t idx) const
{
    if (idx >= inFlight.size())
        return 0;
    const Pending &p = inFlight[idx];
    if (p.bytes.empty())
        return 0;
    const Addr first = wordAlign(p.addr);
    const Addr last = wordAlign(p.addr + p.bytes.size() - 1);
    return static_cast<std::size_t>((last - first) / wordBytes) + 1;
}

void
PersistentMemory::crashTorn(std::size_t keep_prefix,
                            std::uint64_t frontier_word_mask)
{
    std::size_t applied = 0;
    for (const Pending &p : inFlight) {
        if (applied >= keep_prefix)
            break;
        applyPending(p);
        ++applied;
    }
    if (keep_prefix < inFlight.size()) {
        // The frontier persist: only the selected machine words reach
        // the media. Word i is the i-th 8-byte-aligned word the
        // persist overlaps; the copied span is the intersection of
        // that word with the persist's byte range (the device never
        // writes bytes the store did not supply).
        const Pending &p = inFlight[keep_prefix];
        const Addr end = p.addr + p.bytes.size();
        const Addr first = wordAlign(p.addr);
        for (std::size_t i = 0; i < 64; ++i) {
            const Addr w = first + i * wordBytes;
            if (w >= end)
                break;
            if (!(frontier_word_mask & (std::uint64_t{1} << i)))
                continue;
            const Addr lo = w > p.addr ? w : p.addr;
            const Addr hi = w + wordBytes < end ? w + wordBytes : end;
            std::memcpy(persistedImg.data() + lo,
                        p.bytes.data() + (lo - p.addr), hi - lo);
        }
    }
    inFlight.clear();
    volatileImg = persistedImg;
}

void
PersistentMemory::poisonWord(Addr a)
{
    checkRange(a, 1);
    poisoned.insert(wordAlign(a));
}

bool
PersistentMemory::clearPoison(Addr a)
{
    return poisoned.erase(wordAlign(a)) != 0;
}

bool
PersistentMemory::isPoisoned(Addr a) const
{
    return poisoned.count(wordAlign(a)) != 0;
}

std::vector<Addr>
PersistentMemory::poisonedWordsIn(Addr a, std::size_t n) const
{
    std::vector<Addr> out;
    for (auto it = poisoned.lower_bound(wordAlign(a));
         it != poisoned.end() && *it < a + n; ++it)
        out.push_back(*it);
    return out;
}

void
PersistentMemory::corruptWord(Addr a, std::uint64_t xor_mask)
{
    const Addr w = wordAlign(a);
    checkRange(w, wordBytes);
    for (unsigned b = 0; b < wordBytes; ++b) {
        const auto flip =
            static_cast<std::uint8_t>(xor_mask >> (8 * b));
        volatileImg[w + b] ^= flip;
        persistedImg[w + b] ^= flip;
    }
}

} // namespace pmemspec::runtime
