#include "persistent_memory.hh"

#include "common/logging.hh"

namespace pmemspec::runtime
{

PersistentMemory::PersistentMemory(std::size_t bytes)
    : volatileImg(bytes, 0), persistedImg(bytes, 0)
{
    fatal_if(bytes < 1024, "PM space of %zu bytes is too small", bytes);
}

void
PersistentMemory::checkRange(Addr a, std::size_t n) const
{
    panic_if(a == 0, "null PM access");
    panic_if(a + n > volatileImg.size(),
             "PM access out of range: [%#llx, +%zu) in %zu-byte space",
             static_cast<unsigned long long>(a), n, volatileImg.size());
}

Addr
PersistentMemory::alloc(std::size_t n, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alloc alignment must be a power of two");
    std::size_t base = (brk + align - 1) & ~(align - 1);
    fatal_if(base + n > volatileImg.size(),
             "PM arena exhausted: need %zu at %zu of %zu", n, base,
             volatileImg.size());
    brk = base + n;
    return static_cast<Addr>(base);
}

void
PersistentMemory::write(Addr a, const void *src, std::size_t n)
{
    checkRange(a, n);
    std::memcpy(volatileImg.data() + a, src, n);
    Pending p;
    p.addr = a;
    p.bytes.assign(static_cast<const std::uint8_t *>(src),
                   static_cast<const std::uint8_t *>(src) + n);
    inFlight.push_back(std::move(p));
    if (observer)
        observer(MemOp::Write, a, static_cast<std::uint32_t>(n));
}

void
PersistentMemory::read(Addr a, void *dst, std::size_t n) const
{
    checkRange(a, n);
    std::memcpy(dst, volatileImg.data() + a, n);
    if (observer)
        observer(MemOp::Read, a, static_cast<std::uint32_t>(n));
}

void
PersistentMemory::readDep(Addr a, void *dst, std::size_t n) const
{
    checkRange(a, n);
    std::memcpy(dst, volatileImg.data() + a, n);
    if (observer)
        observer(MemOp::ReadDep, a, static_cast<std::uint32_t>(n));
}

std::uint64_t
PersistentMemory::readU64Dep(Addr a) const
{
    std::uint64_t v;
    readDep(a, &v, sizeof(v));
    return v;
}

std::uint64_t
PersistentMemory::readU64(Addr a) const
{
    std::uint64_t v;
    read(a, &v, sizeof(v));
    return v;
}

void
PersistentMemory::writeU64(Addr a, std::uint64_t v)
{
    write(a, &v, sizeof(v));
}

std::uint32_t
PersistentMemory::readU32(Addr a) const
{
    std::uint32_t v;
    read(a, &v, sizeof(v));
    return v;
}

void
PersistentMemory::writeU32(Addr a, std::uint32_t v)
{
    write(a, &v, sizeof(v));
}

void
PersistentMemory::persistAll()
{
    for (const Pending &p : inFlight) {
        std::memcpy(persistedImg.data() + p.addr, p.bytes.data(),
                    p.bytes.size());
    }
    inFlight.clear();
}

PersistentMemory::Snapshot
PersistentMemory::snapshot() const
{
    return Snapshot{volatileImg, persistedImg, inFlight, brk};
}

void
PersistentMemory::restore(const Snapshot &s)
{
    panic_if(s.volatileImg.size() != volatileImg.size(),
             "snapshot of a %zu-byte space restored into %zu bytes",
             s.volatileImg.size(), volatileImg.size());
    volatileImg = s.volatileImg;
    persistedImg = s.persistedImg;
    inFlight = s.inFlight;
    brk = s.brk;
}

void
PersistentMemory::crash(std::size_t keep_prefix)
{
    std::size_t applied = 0;
    for (const Pending &p : inFlight) {
        if (applied >= keep_prefix)
            break;
        std::memcpy(persistedImg.data() + p.addr, p.bytes.data(),
                    p.bytes.size());
        ++applied;
    }
    inFlight.clear();
    // Reboot: every volatile copy is gone; PM is the truth.
    volatileImg = persistedImg;
}

} // namespace pmemspec::runtime
