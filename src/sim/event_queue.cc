#include "event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmemspec::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < curTick,
             "scheduling event in the past (when=%llu now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick));
    events.push_back(Event{when, nextSeq++, std::move(cb)});
    std::push_heap(events.begin(), events.end(), Later{});
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    std::pop_heap(events.begin(), events.end(), Later{});
    Event ev = std::move(events.back());
    events.pop_back();
    curTick = ev.when;
    ++numExecuted;
    ev.cb();
    return true;
}

void
EventQueue::runUntil(Tick t)
{
    while (!events.empty() && events.front().when <= t)
        step();
    if (curTick < t)
        curTick = t;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::run(std::uint64_t max_events)
{
    for (std::uint64_t i = 0; i < max_events; ++i) {
        if (!step())
            return true;
    }
    return events.empty();
}

} // namespace pmemspec::sim
