#include "event_queue.hh"

#include "common/logging.hh"

namespace pmemspec::sim
{

EventQueue::EventQueue()
    : buckets(kBuckets), bucketBits(kBuckets / 64, 0)
{
}

EventQueue::~EventQueue()
{
    // Destroy callables still pending (ring chains hold only live
    // slots; the far heap may also hold lazily-cancelled ones).
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
        for (std::uint32_t i = buckets[b].head; i != kNil;) {
            Slot &s = slotAt(i);
            if (s.destroy)
                s.destroy(s.buf);
            i = s.next;
        }
    }
    for (std::uint32_t i : farHeap) {
        Slot &s = slotAt(i);
        if (s.invoke && s.destroy)
            s.destroy(s.buf);
    }
}

void
EventQueue::checkNotPast(Tick when) const
{
    panic_if(when < curTick,
             "scheduling event in the past (when=%llu now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick));
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead == kNil) {
        // Grow the arena by one chunk and chain it onto the free list.
        auto chunk = std::make_unique<Slot[]>(kChunkSlots);
        const std::uint32_t base = slotCount;
        for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
            chunk[i].gen = 0;
            chunk[i].where = Where::Free;
            chunk[i].invoke = nullptr;
            chunk[i].destroy = nullptr;
            chunk[i].next = (i + 1 < kChunkSlots) ? base + i + 1 : kNil;
        }
        chunks.push_back(std::move(chunk));
        slotCount += kChunkSlots;
        freeHead = base;
    }
    const std::uint32_t idx = freeHead;
    freeHead = slotAt(idx).next;
    return idx;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    s.invoke = nullptr;
    s.destroy = nullptr;
    s.where = Where::Free;
    ++s.gen; // invalidate every outstanding EventRef to this slot
    s.next = freeHead;
    freeHead = idx;
}

void
EventQueue::setBit(std::uint32_t bucket)
{
    bucketBits[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
}

void
EventQueue::clearBit(std::uint32_t bucket)
{
    bucketBits[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
}

void
EventQueue::link(std::uint32_t idx, Slot &s)
{
    const std::uint64_t day = s.when >> kDayShift;
    if (numPending == 0) {
        // Empty queue: re-anchor the ring window at this event.
        baseDay = day;
    }
    ++numPending;
    if (day - baseDay < kBuckets) {
        ringInsert(idx, s);
    } else {
        s.where = Where::Far;
        farPush(idx);
        ++farLive;
    }
}

void
EventQueue::ringInsert(std::uint32_t idx, Slot &s)
{
    s.where = Where::Ring;
    const std::uint32_t b =
        static_cast<std::uint32_t>(s.when >> kDayShift) & kBucketMask;
    Bucket &bk = buckets[b];
    ++ringCount;
    if (bk.head == kNil) {
        bk.head = bk.tail = idx;
        s.next = kNil;
        setBit(b);
        return;
    }
    Slot &tail = slotAt(bk.tail);
    // Fast path: sequence numbers grow monotonically, so an insert
    // belongs at the tail unless it undercuts the tail's tick (a far
    // migration can; a plain schedule cannot).
    if (tail.when < s.when ||
        (tail.when == s.when && tail.seq < s.seq)) {
        tail.next = idx;
        s.next = kNil;
        bk.tail = idx;
        return;
    }
    // Walk the (short) chain for the first entry ordered after s.
    std::uint32_t prev = kNil;
    std::uint32_t cur = bk.head;
    while (cur != kNil) {
        const Slot &c = slotAt(cur);
        if (s.when < c.when || (s.when == c.when && s.seq < c.seq))
            break;
        prev = cur;
        cur = c.next;
    }
    s.next = cur;
    if (prev == kNil)
        bk.head = idx;
    else
        slotAt(prev).next = idx;
    if (cur == kNil)
        bk.tail = idx;
}

void
EventQueue::ringUnlink(std::uint32_t idx, Slot &s)
{
    const std::uint32_t b =
        static_cast<std::uint32_t>(s.when >> kDayShift) & kBucketMask;
    Bucket &bk = buckets[b];
    std::uint32_t prev = kNil;
    std::uint32_t cur = bk.head;
    while (cur != idx) {
        panic_if(cur == kNil, "event slot missing from its bucket");
        prev = cur;
        cur = slotAt(cur).next;
    }
    if (prev == kNil)
        bk.head = s.next;
    else
        slotAt(prev).next = s.next;
    if (bk.tail == idx)
        bk.tail = prev;
    if (bk.head == kNil)
        clearBit(b);
    --ringCount;
}

std::uint32_t
EventQueue::findRingMin() const
{
    // All ring events have day in [baseDay, baseDay + kBuckets), and
    // each day in that window maps to a distinct bucket -- so the
    // first non-empty bucket, scanning from baseDay's and wrapping,
    // holds the earliest day, and its sorted chain head is the
    // earliest (when, seq).
    const std::uint32_t start =
        static_cast<std::uint32_t>(baseDay) & kBucketMask;
    std::uint32_t word = start >> 6;
    std::uint64_t bits = bucketBits[word] &
                         (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= bucketBits.size();
         ++scanned) {
        if (bits) {
            const std::uint32_t b =
                (word << 6) +
                static_cast<std::uint32_t>(__builtin_ctzll(bits));
            return buckets[b].head;
        }
        word = (word + 1) & ((kBuckets >> 6) - 1);
        bits = bucketBits[word];
    }
    panic("ring bitmap empty with ringCount=%zu", ringCount);
}

bool
EventQueue::farLess(std::uint32_t a, std::uint32_t b) const
{
    const Slot &sa = slotAt(a);
    const Slot &sb = slotAt(b);
    if (sa.when != sb.when)
        return sa.when < sb.when;
    return sa.seq < sb.seq;
}

void
EventQueue::farPush(std::uint32_t idx)
{
    farHeap.push_back(idx);
    std::size_t i = farHeap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!farLess(farHeap[i], farHeap[parent]))
            break;
        std::swap(farHeap[i], farHeap[parent]);
        i = parent;
    }
}

std::uint32_t
EventQueue::farPop()
{
    const std::uint32_t top = farHeap.front();
    farHeap.front() = farHeap.back();
    farHeap.pop_back();
    std::size_t i = 0;
    const std::size_t n = farHeap.size();
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = l + 1;
        std::size_t m = i;
        if (l < n && farLess(farHeap[l], farHeap[m]))
            m = l;
        if (r < n && farLess(farHeap[r], farHeap[m]))
            m = r;
        if (m == i)
            break;
        std::swap(farHeap[i], farHeap[m]);
        i = m;
    }
    return top;
}

void
EventQueue::cleanFarTop()
{
    while (!farHeap.empty()) {
        Slot &s = slotAt(farHeap.front());
        if (s.invoke)
            return;
        freeSlot(farPop()); // reap a lazily-cancelled far event
    }
}

void
EventQueue::migrateFarMin()
{
    const std::uint32_t idx = farPop();
    Slot &s = slotAt(idx);
    --farLive;
    // The migrating event is the global minimum, so every pending day
    // is >= its day and re-anchoring the window on it is safe.
    baseDay = s.when >> kDayShift;
    ringInsert(idx, s);
}

std::uint32_t
EventQueue::popMin()
{
    std::uint32_t idx = kNil;
    if (farLive != 0) {
        cleanFarTop();
        bool migrate = true;
        if (ringCount != 0) {
            const Slot &ft = slotAt(farHeap.front());
            const Slot &rm = slotAt(idx = findRingMin());
            migrate = ft.when < rm.when ||
                      (ft.when == rm.when && ft.seq < rm.seq);
        }
        if (migrate) {
            // The migrated event is the new global minimum and
            // migrateFarMin() re-anchored baseDay on it, so it heads
            // its (now earliest) bucket -- no re-scan needed.
            migrateFarMin();
            idx = buckets[static_cast<std::uint32_t>(baseDay) &
                          kBucketMask].head;
        }
    } else {
        idx = findRingMin();
    }
    Slot &s = slotAt(idx);
    baseDay = s.when >> kDayShift; // keep the window anchored at now
    const std::uint32_t b =
        static_cast<std::uint32_t>(baseDay) & kBucketMask;
    Bucket &bk = buckets[b];
    bk.head = s.next;
    if (bk.head == kNil) {
        bk.tail = kNil;
        clearBit(b);
    }
    --ringCount;
    --numPending;
    return idx;
}

bool
EventQueue::cancel(EventRef ref)
{
    if (ref.slot == kNil || ref.slot >= slotCount)
        return false;
    Slot &s = slotAt(ref.slot);
    if (s.gen != ref.gen || !s.invoke ||
        (s.where != Where::Ring && s.where != Where::Far))
        return false;
    if (s.destroy)
        s.destroy(s.buf);
    s.invoke = nullptr;
    s.destroy = nullptr;
    --numPending;
    if (s.where == Where::Ring) {
        ringUnlink(ref.slot, s);
        freeSlot(ref.slot);
    } else {
        // Far events are reaped lazily when they surface at the heap
        // top; removing from the middle of a binary heap is O(n).
        --farLive;
    }
    return true;
}

bool
EventQueue::scheduled(EventRef ref) const
{
    if (ref.slot == kNil || ref.slot >= slotCount)
        return false;
    const Slot &s = slotAt(ref.slot);
    return s.gen == ref.gen && s.invoke != nullptr &&
           (s.where == Where::Ring || s.where == Where::Far);
}

bool
EventQueue::step()
{
    if (numPending == 0)
        return false;
    const std::uint32_t idx = popMin();
    Slot &s = slotAt(idx);
    curTick = s.when;
    ++numExecuted;
    // Detach the callable's entry points before invoking: the callback
    // may schedule (growing the arena leaves slots in place) but a
    // cancel() of the already-running event must be a no-op.
    auto invoke = s.invoke;
    s.invoke = nullptr;
    s.where = Where::Executing;
    invoke(s.buf);
    Slot &after = slotAt(idx); // re-resolve across chunk growth
    if (after.destroy)
        after.destroy(after.buf);
    freeSlot(idx);
    return true;
}

void
EventQueue::runUntil(Tick t)
{
    while (numPending != 0) {
        // Peek the global minimum (same search step() would do).
        Tick next;
        if (farLive != 0) {
            cleanFarTop();
            if (ringCount == 0) {
                next = slotAt(farHeap.front()).when;
            } else {
                const Slot &ft = slotAt(farHeap.front());
                const Slot &rm = slotAt(findRingMin());
                next = ft.when < rm.when ? ft.when : rm.when;
            }
        } else {
            next = slotAt(findRingMin()).when;
        }
        if (next > t)
            break;
        step();
    }
    if (curTick < t)
        curTick = t;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::run(std::uint64_t max_events)
{
    for (std::uint64_t i = 0; i < max_events; ++i) {
        if (!step())
            return true;
    }
    return numPending == 0;
}

} // namespace pmemspec::sim
