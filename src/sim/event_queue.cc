#include "event_queue.hh"

#include "common/logging.hh"

namespace pmemspec::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < curTick,
             "scheduling event in the past (when=%llu now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick));
    events.push(Event{when, nextSeq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    // priority_queue::top() is const; move the callback out via a copy
    // of the wrapper (cheap: std::function move after const_cast is UB,
    // so copy the small struct fields and pop first).
    Event ev = events.top();
    events.pop();
    curTick = ev.when;
    ++numExecuted;
    ev.cb();
    return true;
}

void
EventQueue::runUntil(Tick t)
{
    while (!events.empty() && events.top().when <= t)
        step();
    if (curTick < t)
        curTick = t;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

bool
EventQueue::run(std::uint64_t max_events)
{
    for (std::uint64_t i = 0; i < max_events; ++i) {
        if (!step())
            return true;
    }
    return events.empty();
}

} // namespace pmemspec::sim
