/**
 * @file
 * Base class for named simulation components.
 */

#ifndef PMEMSPEC_SIM_SIM_OBJECT_HH
#define PMEMSPEC_SIM_SIM_OBJECT_HH

#include <string>

#include "common/stats.hh"
#include "sim/event_queue.hh"

namespace pmemspec::sim
{

/**
 * A named component attached to an event queue with its own StatGroup.
 * Subclasses register statistics in their constructors.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq, StatGroup *parent_stats)
        : objName(std::move(name)), eventq(eq),
          statGroup(objName, parent_stats)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return objName; }
    Tick curTick() const { return eventq.now(); }
    StatGroup &stats() { return statGroup; }

  protected:
    EventQueue &eventQueue() { return eventq; }

    /** The unified scheduling interface: absolute tick or After{delta}
     *  relative to now, forwarding straight into the event kernel. */
    template <typename W, typename F>
    EventRef
    schedule(W when, F &&f)
    {
        return eventq.schedule(when, std::forward<F>(f));
    }

  private:
    std::string objName;
    EventQueue &eventq;
    StatGroup statGroup;
};

} // namespace pmemspec::sim

#endif // PMEMSPEC_SIM_SIM_OBJECT_HH
