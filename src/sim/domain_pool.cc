#include "domain_pool.hh"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace pmemspec::sim
{

DomainPool::DomainPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    nthreads = std::clamp(threads, 1u, maxThreads);
}

void
DomainPool::run(std::size_t n,
                const std::function<void(std::size_t)> &task,
                std::vector<std::string> *errors) const
{
    std::vector<std::string> local_errors(n);
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                task(i);
            } catch (const std::exception &e) {
                // Each slot is written by exactly one worker, so the
                // pool keeps draining the remaining domains.
                local_errors[i] = e.what();
                if (local_errors[i].empty())
                    local_errors[i] = "unknown std::exception";
            } catch (...) {
                local_errors[i] = "unknown exception";
            }
        }
    };

    const auto use = static_cast<unsigned>(
        std::min<std::size_t>(nthreads, n));
    if (use <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(use);
        for (unsigned t = 0; t < use; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    if (errors) {
        *errors = std::move(local_errors);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!local_errors[i].empty())
            throw std::runtime_error("domain " + std::to_string(i) +
                                     ": " + local_errors[i]);
    }
}

} // namespace pmemspec::sim
