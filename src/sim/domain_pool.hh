/**
 * @file
 * Deterministic domain-parallel execution.
 *
 * A simulation *domain* is a self-contained piece of simulated
 * machinery -- its own EventQueue, memories, runtimes, fault state --
 * that never shares mutable state with any sibling. Per-shard service
 * failure domains, per-(workload,design) sweep points and per-op
 * crash-exploration replicas all have this shape, which makes them
 * embarrassingly parallel across host threads *without* giving up the
 * repo-wide determinism contract: each domain's internal (when, seq)
 * event order is untouched, and results are collected into
 * submission-indexed slots so the merged output is byte-identical for
 * any host thread count.
 *
 * DomainPool is the one primitive behind that pattern (SweepRunner's
 * forEach delegates here). The rules a caller must follow:
 *
 *  - task(i) may only touch domain i's state plus its own result
 *    slot; anything shared must be immutable for the whole run.
 *  - merging happens strictly after run() returns (it joins all
 *    workers), in an order derived from domain indices and simulated
 *    time -- never from host completion order.
 */

#ifndef PMEMSPEC_SIM_DOMAIN_POOL_HH
#define PMEMSPEC_SIM_DOMAIN_POOL_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace pmemspec::sim
{

/** See the file comment. */
class DomainPool
{
  public:
    /** Upper clamp on the thread count (a typo guard, not a tuning
     *  limit); mirrors SweepRunner::maxJobs. */
    static constexpr unsigned maxThreads = 256;

    /** @param threads worker count; 0 = hardware concurrency. */
    explicit DomainPool(unsigned threads = 0);

    unsigned threads() const { return nthreads; }

    /**
     * Deterministic parallel for: run task(i) for every i in [0, n).
     * Domains are handed out dynamically (an atomic cursor), so
     * completion order is host-dependent -- which is why results must
     * live in per-index slots, not a shared accumulator. When
     * `errors` is non-null it is resized to n and each task's
     * exception text lands at its own index; when null, the first
     * (lowest-index) exception is rethrown as std::runtime_error
     * ("domain <i>: <what>") after every task finished. With one
     * thread (or n <= 1) tasks run inline on the calling thread.
     */
    void run(std::size_t n,
             const std::function<void(std::size_t)> &task,
             std::vector<std::string> *errors = nullptr) const;

  private:
    unsigned nthreads;
};

/**
 * Stable merge of per-domain result streams: concatenates the parts
 * in domain order and stable-sorts by `less`, so records comparing
 * equal (typically: same simulated tick) keep ascending-domain order.
 * Each part must already be in its domain's emission order; the
 * output is then invariant in the host thread count by construction.
 */
template <typename T, typename Less>
std::vector<T>
mergeDomains(std::vector<std::vector<T>> parts, Less less)
{
    std::size_t total = 0;
    for (const auto &p : parts)
        total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto &p : parts)
        for (auto &v : p)
            out.push_back(std::move(v));
    std::stable_sort(out.begin(), out.end(), less);
    return out;
}

} // namespace pmemspec::sim

#endif // PMEMSPEC_SIM_DOMAIN_POOL_HH
