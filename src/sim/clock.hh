/**
 * @file
 * Clock-domain helper converting between core cycles and ticks.
 */

#ifndef PMEMSPEC_SIM_CLOCK_HH
#define PMEMSPEC_SIM_CLOCK_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace pmemspec::sim
{

/** A fixed-frequency clock domain. */
class Clock
{
  public:
    /** @param freq_ghz Clock frequency in GHz (paper: 2 GHz). */
    explicit Clock(double freq_ghz = 2.0)
        : periodTicks(static_cast<Tick>(1000.0 / freq_ghz + 0.5))
    {
        fatal_if(freq_ghz <= 0, "clock frequency must be positive");
    }

    /** Clock period in ticks (picoseconds). */
    Tick period() const { return periodTicks; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * periodTicks; }

    /** Convert ticks to whole cycles (rounding up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + periodTicks - 1) / periodTicks;
    }

    /** Frequency in GHz. */
    double freqGhz() const { return 1000.0 / periodTicks; }

  private:
    Tick periodTicks;
};

} // namespace pmemspec::sim

#endif // PMEMSPEC_SIM_CLOCK_HH
