/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The entire timing model is driven by one EventQueue per simulated
 * machine. Components schedule callables at absolute ticks or relative
 * to now (the unified schedule() overload set below); events at equal
 * ticks execute in insertion order (a stable tie-break keeps the
 * simulation deterministic).
 *
 * The implementation is built for throughput -- the event kernel is
 * the hot loop of every sweep, crash exploration and service run:
 *
 *  - Event records live in a chunked slot arena (stable addresses, no
 *    per-event allocation) with a free list. Callables up to
 *    kInlineBytes are stored inline in the record (small-buffer
 *    optimization); larger ones fall back to one heap box.
 *  - Pending events are organised as a calendar queue: a ring of
 *    power-of-two buckets, each covering kDayTicks of simulated time,
 *    plus a far-future binary heap for events beyond the ring horizon.
 *    A bitmap over the buckets makes "find the next non-empty day" a
 *    couple of word scans.
 *  - schedule() hands back an EventRef supporting O(chain) intrusive
 *    cancellation -- no std::function wrapper, no shared generation
 *    counters.
 *
 * Execution order is the total order (when, seq): identical to the
 * binary-heap kernel this replaces, so simulation results are
 * bit-for-bit unchanged.
 */

#ifndef PMEMSPEC_SIM_EVENT_QUEUE_HH
#define PMEMSPEC_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace pmemspec::sim
{

/**
 * Relative-delay operand of the unified schedule() overload set:
 * schedule(After{d}, f) runs f at now() + d. A distinct type (rather
 * than a second method name) keeps one spelling for "make this happen"
 * and lets call sites switch between absolute and relative scheduling
 * without renaming.
 */
struct After
{
    Tick delta;
};

/**
 * Handle to a scheduled event, returned by schedule(). Valid until
 * the event executes or is cancelled; a default-constructed ref is
 * null. Slot indices are generation-stamped, so a stale ref held
 * across its event's execution never aliases a reused slot.
 */
struct EventRef
{
    std::uint32_t slot = 0xffffffffu;
    std::uint32_t gen = 0;

    /** @return true if this ref was ever bound to an event. */
    explicit operator bool() const { return slot != 0xffffffffu; }
};

/** Tick-ordered calendar queue of callables; the heart of the
 *  simulator. */
class EventQueue
{
  public:
    /** Inline storage per event record; callables larger than this are
     *  boxed on the heap (rare -- captures are this + a few words). */
    static constexpr std::size_t kInlineBytes = 56;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a callable at an absolute tick (>= now).
     * @return a handle that can cancel the event while pending.
     */
    template <typename F>
    EventRef
    schedule(Tick when, F &&f)
    {
        return emplace(when, std::forward<F>(f));
    }

    /** Schedule a callable delta ticks from now. */
    template <typename F>
    EventRef
    schedule(After d, F &&f)
    {
        return emplace(curTick + d.delta, std::forward<F>(f));
    }

    /**
     * Cancel a pending event: its callable is destroyed immediately
     * and it will never run. @return false if the ref is null, stale,
     * or the event already executed / was already cancelled.
     */
    bool cancel(EventRef ref);

    /** @return true while the referenced event is still pending. */
    bool scheduled(EventRef ref) const;

    /** @return true when no events remain. */
    bool empty() const { return numPending == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return numPending; }

    /** Execute the earliest event. @return false if queue was empty. */
    bool step();

    /** Run every event at or before the given tick. */
    void runUntil(Tick t);

    /** Run until the queue drains. */
    void run();

    /** Run until the queue drains or the event budget is exhausted.
     *  @return true if the queue drained. */
    bool run(std::uint64_t max_events);

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Calendar geometry: a "day" is 2^kDayShift ticks (~0.25ns), the
     *  ring spans kBuckets days (~1us). Nearly every latency in the
     *  machine (cache hits, device reads, persist paths, speculation
     *  windows) lands inside the ring; only coarse timers (service
     *  arrival processes, fault schedules) take the far heap. Narrow
     *  days keep the sorted per-bucket chains short -- chain walks in
     *  ringInsert dominate the kernel's profile when many same-day
     *  events share a bucket. */
    static constexpr unsigned kDayShift = 8;
    static constexpr std::uint32_t kBuckets = 4096;
    static constexpr std::uint32_t kBucketMask = kBuckets - 1;

    /** Arena chunking: slot i lives at chunks[i >> kChunkShift]. */
    static constexpr unsigned kChunkShift = 8;
    static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSlots - 1;

    enum class Where : std::uint8_t
    {
        Free,
        Ring,
        Far,
        Executing,
    };

    /** One arena-resident event record. */
    struct Slot
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t next; ///< bucket chain link / free-list link
        std::uint32_t gen;  ///< bumped at every free; stamps EventRefs
        /** Invoke the stored callable (null once cancelled or fired). */
        void (*invoke)(void *);
        /** Destroy the stored callable (null for trivial types). */
        void (*destroy)(void *);
        Where where;
        alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    };

    struct Bucket
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    // --- callable storage -------------------------------------------

    template <typename F>
    static void
    invokeInline(void *p)
    {
        (*static_cast<F *>(p))();
    }

    template <typename F>
    static void
    destroyInline(void *p)
    {
        static_cast<F *>(p)->~F();
    }

    template <typename F>
    static void
    invokeBoxed(void *p)
    {
        F *boxed;
        std::memcpy(&boxed, p, sizeof(boxed));
        (*boxed)();
    }

    template <typename F>
    static void
    destroyBoxed(void *p)
    {
        F *boxed;
        std::memcpy(&boxed, p, sizeof(boxed));
        delete boxed;
    }

    template <typename F>
    EventRef
    emplace(Tick when, F &&f)
    {
        using Fn = std::decay_t<F>;
        checkNotPast(when);
        const std::uint32_t idx = allocSlot();
        Slot &s = slotAt(idx);
        s.when = when;
        s.seq = nextSeq++;
        if constexpr (sizeof(Fn) <= kInlineBytes) {
            ::new (static_cast<void *>(s.buf)) Fn(std::forward<F>(f));
            s.invoke = &invokeInline<Fn>;
            s.destroy = std::is_trivially_destructible_v<Fn>
                            ? nullptr
                            : &destroyInline<Fn>;
        } else {
            Fn *boxed = new Fn(std::forward<F>(f));
            std::memcpy(s.buf, &boxed, sizeof(boxed));
            s.invoke = &invokeBoxed<Fn>;
            s.destroy = &destroyBoxed<Fn>;
        }
        link(idx, s);
        return EventRef{idx, s.gen};
    }

    // --- out-of-line machinery (event_queue.cc) ---------------------

    /** panic() unless when >= now (events never fire in the past). */
    void checkNotPast(Tick when) const;

    Slot &slotAt(std::uint32_t i) { return chunks[i >> kChunkShift][i & kChunkMask]; }
    const Slot &slotAt(std::uint32_t i) const
    {
        return chunks[i >> kChunkShift][i & kChunkMask];
    }

    /** Pop a slot off the free list, growing the arena if needed. */
    std::uint32_t allocSlot();

    /** Return a slot to the free list (bumps its generation). */
    void freeSlot(std::uint32_t idx);

    /** File a freshly initialised slot into the ring or the far heap. */
    void link(std::uint32_t idx, Slot &s);

    /** Sorted insertion into the ring bucket for s.when. */
    void ringInsert(std::uint32_t idx, Slot &s);

    /** Unlink a live slot from its ring bucket chain. */
    void ringUnlink(std::uint32_t idx, Slot &s);

    /** Index of the earliest ring event; ring must be non-empty. */
    std::uint32_t findRingMin() const;

    /** Drop cancelled slots off the far-heap top; heap may empty. */
    void cleanFarTop();

    /** Move the far-heap minimum into the ring (advances baseDay). */
    void migrateFarMin();

    /** Detach the globally earliest pending event and return its slot
     *  index; numPending must be non-zero. */
    std::uint32_t popMin();

    void farPush(std::uint32_t idx);
    std::uint32_t farPop();

    bool farLess(std::uint32_t a, std::uint32_t b) const;

    void setBit(std::uint32_t bucket);
    void clearBit(std::uint32_t bucket);

    // --- state ------------------------------------------------------

    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::uint32_t freeHead = kNil;
    std::uint32_t slotCount = 0;

    std::vector<Bucket> buckets;
    /** One bit per bucket: set while the bucket chain is non-empty. */
    std::vector<std::uint64_t> bucketBits;
    /** All ring events have day in [baseDay, baseDay + kBuckets);
     *  baseDay <= the day of every pending event. */
    std::uint64_t baseDay = 0;
    std::size_t ringCount = 0;

    /** Far-future events (day >= baseDay + kBuckets at insert time),
     *  as a binary min-heap of slot indices ordered by (when, seq).
     *  Cancelled entries are reaped lazily at the top. */
    std::vector<std::uint32_t> farHeap;
    std::size_t farLive = 0;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::size_t numPending = 0;
};

} // namespace pmemspec::sim

namespace pmemspec
{
using sim::After; // as fundamental to components as Tick itself
} // namespace pmemspec

#endif // PMEMSPEC_SIM_EVENT_QUEUE_HH
