/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The entire timing model is driven by one EventQueue per simulated
 * machine. Components schedule closures at absolute or relative ticks;
 * events at equal ticks execute in insertion order (a stable tie-break
 * keeps the simulation deterministic).
 */

#ifndef PMEMSPEC_SIM_EVENT_QUEUE_HH
#define PMEMSPEC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace pmemspec::sim
{

/** Tick-ordered queue of callbacks; the heart of the simulator. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Schedule a callback at an absolute tick (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    /** @return true when no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /** Execute the earliest event. @return false if queue was empty. */
    bool step();

    /** Run every event at or before the given tick. */
    void runUntil(Tick t);

    /** Run until the queue drains. */
    void run();

    /** Run until the queue drains or the event budget is exhausted.
     *  @return true if the queue drained. */
    bool run(std::uint64_t max_events);

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Min-heap managed with std::push_heap/pop_heap so the earliest
     *  event can be *moved* out of the container (priority_queue's
     *  const top() would force a std::function copy per event). */
    std::vector<Event> events;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace pmemspec::sim

#endif // PMEMSPEC_SIM_EVENT_QUEUE_HH
