/**
 * @file
 * Configuration of the always-on service harness.
 *
 * The service wraps N independent KvStore shards (each with its own
 * PersistentMemory, FaseRuntime and FaultInjector -- a failure
 * domain) behind a population of open-loop clients issuing a
 * YCSB-style operation mix over zipfian keys. A fault schedule
 * injects power cuts, media poison and misspeculation storms into
 * chosen shards mid-flight; the harness measures what a client of
 * the service experiences while the runtime recovers.
 *
 * Everything here is simulated time (Tick = ps) and seeded RNG:
 * one (config, design) pair always produces the same run.
 */

#ifndef PMEMSPEC_SERVICE_SERVICE_CONFIG_HH
#define PMEMSPEC_SERVICE_SERVICE_CONFIG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "persistency/design.hh"

namespace pmemspec::service
{

/** Client-visible operation kinds (the YCSB mix). */
enum class OpKind : std::uint8_t
{
    Read,
    Update,
    Insert,
    Scan,
};

/** Operation mix ratios; must sum to 1 (checked at run start). */
struct OpMix
{
    double read = 0.70;
    double update = 0.20;
    double insert = 0.05;
    double scan = 0.05;
};

/** Client-side retry policy: deterministic bounded backoff plus a
 *  per-op deadline measured from the first submission. */
struct RetryConfig
{
    Tick backoffBase = nsToTicks(1000);  ///< first retry delay
    Tick backoffCap = nsToTicks(32000);  ///< exponential clamp
    Tick opDeadline = nsToTicks(400000); ///< give up after this
};

/** Fault kinds the online scheduler can inject into one shard. */
enum class ServiceFault : std::uint8_t
{
    /** Power cut mid-op at a persist prefix (arm a PowerCutPlan);
     *  the shard recovers with recoverAll and resumes serving. */
    PowerCut,
    /** Poison one 8-byte word of a live value slab: reads of that
     *  key raise MediaError until the shard quarantines the item. */
    MediaPoison,
    /** Poison the undo log's entry-count word: the next recovery
     *  cannot vouch for the image and the shard degrades to
     *  read-only instead of panicking. */
    LogPoison,
    /** Re-arming LoadStale storm (PMEM-Spec only): repeated
     *  misspeculation aborts until the abort budget trips and the
     *  service sheds load. `a` = fire period in accesses, `b` =
     *  total fires. */
    MisspecStorm,
};

const char *serviceFaultName(ServiceFault f);

/** One scheduled fault. */
struct FaultEvent
{
    Tick at = 0;        ///< injection time (simulated)
    unsigned shard = 0; ///< target failure domain
    ServiceFault kind = ServiceFault::PowerCut;
    std::uint64_t a = 0; ///< kind-specific (see ServiceFault)
    std::uint64_t b = 0;
};

/** The whole harness configuration. */
struct ServiceConfig
{
    unsigned shards = 4;
    unsigned clients = 8;

    /** Preloaded key space; key k lives on shard k % shards. */
    std::uint64_t keySpace = 2048;
    double zipfTheta = 0.99;
    OpMix mix;
    /** Items visited by one Scan (stride `shards`, so the scan stays
     *  inside one failure domain). */
    unsigned scanLen = 8;

    /** Open-loop arrivals: each client submits a new op every
     *  `interArrival` ticks regardless of completions. The default
     *  provisions the service at ~0.7 utilisation for the *slowest*
     *  design (IntelX86), so availability measures fault handling,
     *  not overload. */
    Tick interArrival = nsToTicks(64000);
    /** Simulated run length; arrivals stop here, in-flight ops and
     *  retries drain to completion. */
    Tick duration = nsToTicks(32000000); // 32 ms

    RetryConfig retry;

    /** Per-shard FASE abort budget (small, so a misspeculation storm
     *  trips it instead of livelocking). */
    std::uint64_t abortBudget = 64;
    /** Load-shed window entered when a shard exhausts its abort
     *  budget: arrivals are rejected cheaply until it elapses. */
    Tick shedWindow = nsToTicks(20000);

    /** Shard sizing. */
    std::size_t pmBytesPerShard = std::size_t{1} << 22;
    std::size_t buckets = 512;
    std::uint32_t valueBytes = 128;
    std::size_t logBytes = std::size_t{1} << 16;

    std::uint64_t seed = 1;
    persistency::Design design = persistency::Design::PmemSpec;

    /** Host threads for the domain-parallel run (one independent
     *  simulation domain per shard; see DESIGN.md section 12).
     *  0 = hardware concurrency. The result is byte-identical for
     *  any value -- this knob trades wall-clock only. */
    unsigned simThreads = 1;

    /** Sample per-shard time-series metrics and the per-FASE-site
     *  speculation profile into the result (off by default: when off
     *  the run and its JSON are bit-for-bit the same as before the
     *  metrics layer existed). */
    bool metrics = false;
    /** Simulated sampling cadence for the time series. */
    Tick metricsInterval = nsToTicks(500000); // 500 us

    /** The fault schedule (may be empty for a clean baseline run). */
    std::vector<FaultEvent> faults;

    /** Transition flight-recorder ring capacity (entries). */
    std::size_t flightEntries = 64;
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_SERVICE_CONFIG_HH
