/**
 * @file
 * YCSB-style scrambled zipfian key generator.
 *
 * The classic Gray et al. rejection-free zipfian sampler over
 * [0, n), composed with a splitmix64 scramble so the popular items
 * are scattered across the key space instead of clustering at the
 * low keys (exactly what YCSB's ScrambledZipfianGenerator does).
 * Fully deterministic: equal (n, theta, rng stream) yield equal key
 * sequences on every platform.
 */

#ifndef PMEMSPEC_SERVICE_ZIPFIAN_HH
#define PMEMSPEC_SERVICE_ZIPFIAN_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pmemspec::service
{

/** Zipfian rank sampler over [0, n) with skew `theta` in (0, 1). */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : items(n), theta(theta)
    {
        fatal_if(n == 0, "zipfian over an empty item set");
        fatal_if(theta <= 0 || theta >= 1,
                 "zipfian theta must be in (0, 1)");
        zetan = zeta(n, theta);
        const double zeta2 = zeta(2, theta);
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                              1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    }

    /** Next zipfian *rank* (0 is the most popular item). */
    std::uint64_t
    nextRank(Rng &rng)
    {
        const double u = rng.uniform();
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        const std::uint64_t r = static_cast<std::uint64_t>(
            static_cast<double>(items) *
            std::pow(eta * u - eta + 1.0, alpha));
        return r >= items ? items - 1 : r;
    }

    /** Next *scrambled* item in [0, n): rank hashed across the key
     *  space, YCSB ScrambledZipfian style. */
    std::uint64_t
    next(Rng &rng)
    {
        return scramble(nextRank(rng)) % items;
    }

    std::uint64_t itemCount() const { return items; }

    /** The stateless scramble (exposed for tests). */
    static std::uint64_t
    scramble(std::uint64_t v)
    {
        // splitmix64 finalizer: a bijective 64-bit mix.
        v += 0x9e3779b97f4a7c15ULL;
        v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
        v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
        return v ^ (v >> 31);
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }

    std::uint64_t items;
    double theta;
    double zetan;
    double alpha;
    double eta;
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_ZIPFIAN_HH
