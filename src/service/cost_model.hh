/**
 * @file
 * Per-design service-time model over functional operation work.
 *
 * The service harness executes every operation *functionally* (real
 * KvStore + FaseRuntime + FaultInjector, so correctness, recovery
 * and fault behavior are genuine) and then charges simulated time
 * from the observed work -- PM reads, PM stores (each store queues
 * one persist) and FASE aborts -- using the Table 3 latencies of
 * MemConfig. The charge differs per persistency design exactly where
 * the designs differ: how a committed store becomes durable.
 *
 *  - IntelX86: every persist is a synchronous CLWB+SFENCE round trip
 *    to the device (Mnemosyne-style word logging makes memcached
 *    persistence-bound here, Section 2.1);
 *  - DPO: buffered strict persistency, but one machine-wide flush in
 *    flight at a time serialises the drain behind execution;
 *  - HOPS: buffered epochs drain `drainWidth` persists in parallel
 *    and only the dfence at FASE end waits for the tail;
 *  - PMEM-Spec: persists stream down the decoupled path; commit
 *    waits only for path residency, and each misspeculation abort
 *    pays the speculation window plus re-execution.
 *
 * Absolute numbers depend on the substrate as everywhere in this
 * repo; the reproduction target is the *shape* (who serves faster,
 * who recovers how) -- see EXPERIMENTS.md.
 */

#ifndef PMEMSPEC_SERVICE_COST_MODEL_HH
#define PMEMSPEC_SERVICE_COST_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/mem_config.hh"
#include "persistency/design.hh"
#include "runtime/fase_runtime.hh"

namespace pmemspec::service
{

/** Observed functional work of one operation (or one recovery). */
struct OpWork
{
    std::uint64_t reads = 0;      ///< PM load accesses
    std::uint64_t readBytes = 0;
    std::uint64_t writes = 0;     ///< PM stores == queued persists
    std::uint64_t writeBytes = 0;
    std::uint64_t aborts = 0;     ///< FASE aborts consumed

    void
    clear()
    {
        *this = OpWork{};
    }
};

/** Work -> simulated ticks, per design. */
class CostModel
{
  public:
    explicit CostModel(const mem::MemConfig &mc = mem::MemConfig{})
        : mc(mc)
    {
    }

    /** Service time of one completed (or attempted) operation. */
    Tick opCost(persistency::Design d, const OpWork &w) const;

    /** Crash recovery (power cut): failure detection, restart and
     *  verified log replay. Design-independent -- recovery walks the
     *  durable log the same way everywhere. */
    Tick recoveryCost(const runtime::RecoveryReport &rep) const;

    /** In-process rollback + log resync (media error, abort-budget
     *  exhaustion): no reboot, just the replay and bookkeeping. */
    Tick rollbackCost(const runtime::RecoveryReport &rep) const;

    const mem::MemConfig &config() const { return mc; }

  private:
    /** Execution (cache-resident) component common to all designs. */
    Tick execCost(const OpWork &w) const;

    mem::MemConfig mc;
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_COST_MODEL_HH
