#include "cost_model.hh"

namespace pmemspec::service
{

Tick
CostModel::execCost(const OpWork &w) const
{
    // Index probes and value reads are mostly cache-resident in a
    // steady-state server; charge L1 per access plus an LLC round
    // trip per touched block of payload.
    const std::uint64_t blocks =
        (w.readBytes + w.writeBytes + blockBytes - 1) / blockBytes;
    return w.reads * mc.l1HitLatency + w.writes * mc.l1HitLatency +
           blocks * mc.llcHitLatency / 4;
}

Tick
CostModel::opCost(persistency::Design d, const OpWork &w) const
{
    const Tick exec = execCost(w);
    Tick persist = 0;
    Tick abortPenalty = 0;
    switch (d) {
      case persistency::Design::IntelX86:
        // Every persist is a synchronous flush+fence to the device.
        persist = w.writes * mc.pmWriteLatency;
        break;
      case persistency::Design::DPO:
        // Buffered, but one machine-wide flush in flight at a time:
        // the drain serialises; execution hides roughly the buffer
        // insert, not the device writes.
        persist = w.writes * (mc.pmWriteLatency * 3 / 4) +
                  mc.pmWriteLatency;
        break;
      case persistency::Design::HOPS:
        // Epochs drain drainWidth-wide behind execution; the dfence
        // at FASE end waits for the residual tail.
        persist = ((w.writes + mc.persistBufferDrainWidth - 1) /
                   mc.persistBufferDrainWidth) *
                  mc.pmWriteLatency;
        break;
      case persistency::Design::PmemSpec:
        // Persists stream down the decoupled path (one flit/ns);
        // spec-barrier waits out the path residency and the last
        // acceptance. Each abort pays the speculation window drain;
        // the re-executed work is already in `w` (the observer
        // accumulates accesses across every attempt), so exec covers
        // the thrown-away execution without double counting.
        persist = w.writes * ticksPerNs + mc.persistPathLatency +
                  mc.pmWriteLatency;
        abortPenalty = w.aborts * mc.effectiveSpecWindow();
        break;
    }
    return exec + persist + abortPenalty;
}

Tick
CostModel::recoveryCost(const runtime::RecoveryReport &rep) const
{
    // Outage detection + restart dominates; each verified replay
    // entry costs a device read (verify) and a device write
    // (restore), each quarantined word a scrub write.
    const Tick restart = nsToTicks(50000); // 50 us
    return restart +
           rep.entriesReplayed * (mc.pmReadLatency + mc.pmWriteLatency) +
           rep.poisonedWordsQuarantined * mc.pmWriteLatency;
}

Tick
CostModel::rollbackCost(const runtime::RecoveryReport &rep) const
{
    // In-process: no reboot, just replay + log resync.
    const Tick resync = nsToTicks(5000); // 5 us
    return resync +
           rep.entriesReplayed * (mc.pmReadLatency + mc.pmWriteLatency) +
           rep.poisonedWordsQuarantined * mc.pmWriteLatency;
}

} // namespace pmemspec::service
