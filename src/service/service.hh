/**
 * @file
 * The always-on service harness: open-loop clients over sharded
 * failure domains, with an online fault scheduler and a consistency
 * oracle.
 *
 * One Service::run() is a discrete-event simulation over simulated
 * ticks: client arrivals are open-loop (a new op every interArrival
 * ticks per client, regardless of completions), keys are
 * scrambled-zipfian, shards serve their queues FIFO, and the
 * scheduled FaultEvents fire into individual shards mid-flight.
 * Client-side failures retry on the shared BoundedBackoff schedule
 * under a per-op deadline; a shard that trips its abort budget opens
 * a load-shed window; a shard whose recovery cannot vouch for the
 * image degrades to read-only while the rest of the service keeps
 * serving.
 *
 * Execution is domain-parallel (DESIGN.md section 12): the
 * coordinator pre-generates every client's arrival/op stream
 * serially (client RNG is pure in (seed, client)), routes it by
 * shardOf(key) into per-shard op tapes, then runs one fully
 * self-contained domain per shard -- its own sim::EventQueue, Shard
 * (PersistentMemory + FaseRuntime + FaultInjector), shadow map and
 * fault schedule -- across cfg.simThreads host threads. Results are
 * stable-merged on simulated keys (tick, config order, shard), so
 * everything stays deterministic in (config, design): the same run
 * serializes to the same JSON bytes at any --sim-threads value.
 */

#ifndef PMEMSPEC_SERVICE_SERVICE_HH
#define PMEMSPEC_SERVICE_SERVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "observe/metrics.hh"
#include "observe/spec_profile.hh"
#include "service/cost_model.hh"
#include "service/service_config.hh"
#include "service/shard.hh"

namespace pmemspec::service
{

/** One injected fault's client-visible timeline. */
struct FaultOutcome
{
    ServiceFault kind = ServiceFault::PowerCut;
    unsigned shard = 0;
    Tick injectedAt = 0;  ///< scheduler fired (fault armed/planted)
    Tick triggeredAt = 0; ///< fault manifested in an operation
    Tick recoveredAt = 0; ///< shard back to Serving (or safe-Degraded)
    /** recoveredAt - triggeredAt; 0 while pending. */
    Tick ttr = 0;
    /** "recovered", "degraded", "quarantined", "shed+recovered",
     *  "skipped" (storm on a non-speculative design) or "pending". */
    std::string outcome = "pending";
    std::uint64_t entriesReplayed = 0;
};

/** Per-shard client-visible totals. */
struct ShardMetrics
{
    std::uint64_t offered = 0;   ///< unique ops routed here
    std::uint64_t succeeded = 0; ///< completed in deadline
    std::uint64_t retries = 0;
    std::uint64_t shedRejects = 0;
    std::uint64_t degradedRejects = 0;
    ShardState finalState = ShardState::Serving;
    std::uint64_t recoveries = 0;

    double
    availability() const
    {
        return offered ? static_cast<double>(succeeded) /
                             static_cast<double>(offered)
                       : 1.0;
    }
};

/** Consistency-oracle verdict. */
struct OracleMetrics
{
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
    std::uint64_t lostKeys = 0;       ///< quarantined (media UE)
    std::uint64_t poisonSkipped = 0;  ///< unverifiable: poisoned
    std::uint64_t degradedSkipped = 0;
    std::vector<std::string> details; ///< first violations, verbatim
};

/** Everything one run produces. */
struct ServiceResult
{
    persistency::Design design = persistency::Design::PmemSpec;

    std::uint64_t offered = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t deadlineFailures = 0;
    std::uint64_t retries = 0;
    std::uint64_t powerFailures = 0;
    std::uint64_t mediaErrors = 0;
    std::uint64_t budgetTrips = 0;
    std::uint64_t shedRejects = 0;
    std::uint64_t degradedRejects = 0;
    std::uint64_t quarantined = 0;

    /** Successful-op latencies in ticks, sorted once at merge time
     *  (percentile base; latencyQuantile asserts the order in debug
     *  builds). */
    std::vector<Tick> latencies;
    Tick lastCompletion = 0;

    std::vector<ShardMetrics> shards;
    std::vector<FaultOutcome> faults;
    OracleMetrics oracle;
    /** Transition flight-recorder ring, oldest first. */
    std::vector<std::string> transitions;

    /** Time-series metrics + speculation profile, populated only
     *  when cfg.metrics was on (the JSON row then carries "metrics"
     *  and "profile" sections; with metrics off the row is
     *  bit-for-bit what the pre-metrics harness emitted). */
    bool metricsEnabled = false;
    Tick metricsInterval = 0;
    std::vector<observe::MetricsSeries> shardSeries; ///< one per shard
    observe::MetricsSeries totalSeries; ///< element-wise shard sum
    observe::SpecProfile profile;       ///< merged across shards

    double availability() const;
    double throughputOpsPerSec(Tick duration) const;
    /** Exact nearest-rank percentile of the latency set, in ticks. */
    Tick latencyQuantile(double q) const;

    /** The "metrics" JSON section (interval + per-shard + total). */
    Json metricsJson() const;

    /** Deterministic envelope row (service table shape). */
    Json toJson(Tick duration) const;
};

/** See the file comment. */
class Service
{
  public:
    explicit Service(const ServiceConfig &cfg);
    ~Service();

    /** Preload, run the schedule, drain, verify. Reentrant per
     *  Service instance is NOT supported: build one per run. */
    ServiceResult run();

    const ServiceConfig &config() const { return cfg; }

  private:
    ServiceConfig cfg;
    CostModel cost;

    ServiceResult res;
    bool ran = false;
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_SERVICE_HH
