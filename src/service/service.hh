/**
 * @file
 * The always-on service harness: open-loop clients over sharded
 * failure domains, with an online fault scheduler and a consistency
 * oracle.
 *
 * One Service::run() is a single-host-threaded discrete-event
 * simulation (sim::EventQueue over simulated ticks): client arrivals
 * are open-loop (a new op every interArrival ticks per client,
 * regardless of completions), keys are scrambled-zipfian, shards
 * serve their queues FIFO, and the scheduled FaultEvents fire into
 * individual shards mid-flight. Client-side failures retry on the
 * shared BoundedBackoff schedule under a per-op deadline; a shard
 * that trips its abort budget opens a load-shed window; a shard
 * whose recovery cannot vouch for the image degrades to read-only
 * while the rest of the service keeps serving.
 *
 * Everything is deterministic in (config, design): the same run
 * serializes to the same JSON bytes at any sweep parallelism.
 */

#ifndef PMEMSPEC_SERVICE_SERVICE_HH
#define PMEMSPEC_SERVICE_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "service/cost_model.hh"
#include "service/service_config.hh"
#include "service/shard.hh"
#include "service/zipfian.hh"
#include "sim/event_queue.hh"

namespace pmemspec::service
{

/** One injected fault's client-visible timeline. */
struct FaultOutcome
{
    ServiceFault kind = ServiceFault::PowerCut;
    unsigned shard = 0;
    Tick injectedAt = 0;  ///< scheduler fired (fault armed/planted)
    Tick triggeredAt = 0; ///< fault manifested in an operation
    Tick recoveredAt = 0; ///< shard back to Serving (or safe-Degraded)
    /** recoveredAt - triggeredAt; 0 while pending. */
    Tick ttr = 0;
    /** "recovered", "degraded", "quarantined", "shed+recovered",
     *  "skipped" (storm on a non-speculative design) or "pending". */
    std::string outcome = "pending";
    std::uint64_t entriesReplayed = 0;
};

/** Per-shard client-visible totals. */
struct ShardMetrics
{
    std::uint64_t offered = 0;   ///< unique ops routed here
    std::uint64_t succeeded = 0; ///< completed in deadline
    std::uint64_t retries = 0;
    std::uint64_t shedRejects = 0;
    std::uint64_t degradedRejects = 0;
    ShardState finalState = ShardState::Serving;
    std::uint64_t recoveries = 0;

    double
    availability() const
    {
        return offered ? static_cast<double>(succeeded) /
                             static_cast<double>(offered)
                       : 1.0;
    }
};

/** Consistency-oracle verdict. */
struct OracleMetrics
{
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
    std::uint64_t lostKeys = 0;       ///< quarantined (media UE)
    std::uint64_t poisonSkipped = 0;  ///< unverifiable: poisoned
    std::uint64_t degradedSkipped = 0;
    std::vector<std::string> details; ///< first violations, verbatim
};

/** Everything one run produces. */
struct ServiceResult
{
    persistency::Design design = persistency::Design::PmemSpec;

    std::uint64_t offered = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t deadlineFailures = 0;
    std::uint64_t retries = 0;
    std::uint64_t powerFailures = 0;
    std::uint64_t mediaErrors = 0;
    std::uint64_t budgetTrips = 0;
    std::uint64_t shedRejects = 0;
    std::uint64_t degradedRejects = 0;
    std::uint64_t quarantined = 0;

    /** Successful-op latencies in ticks, sorted (percentile base). */
    std::vector<Tick> latencies;
    Tick lastCompletion = 0;

    std::vector<ShardMetrics> shards;
    std::vector<FaultOutcome> faults;
    OracleMetrics oracle;
    /** Transition flight-recorder ring, oldest first. */
    std::vector<std::string> transitions;

    double availability() const;
    double throughputOpsPerSec(Tick duration) const;
    /** Exact nearest-rank percentile of the latency set, in ticks. */
    Tick latencyQuantile(double q) const;

    /** Deterministic envelope row (service table shape). */
    Json toJson(Tick duration) const;
};

/** See the file comment. */
class Service
{
  public:
    explicit Service(const ServiceConfig &cfg);
    ~Service();

    /** Preload, run the schedule, drain, verify. Reentrant per
     *  Service instance is NOT supported: build one per run. */
    ServiceResult run();

    const ServiceConfig &config() const { return cfg; }

  private:
    struct PendingOp
    {
        std::uint64_t id = 0;
        unsigned client = 0;
        OpKind kind = OpKind::Read;
        std::uint64_t key = 0;
        std::uint8_t fill = 0;
        Tick firstSubmit = 0;
        unsigned attempts = 0;
        BoundedBackoff backoff{1, 1};
    };

    unsigned shardOf(std::uint64_t key) const;
    std::uint8_t fillFor(std::uint64_t key, std::uint64_t salt);

    void scheduleClient(unsigned client, Tick at);
    void submit(PendingOp op, Tick at);
    void complete(PendingOp &op, Tick at, bool ok);
    void retryOrFail(PendingOp op, Tick failedAt);

    void onFaultEvent(const FaultEvent &ev);
    void noteTransition(Tick at, unsigned shard,
                        const std::string &msg);
    /** Match a manifested fault to its pending FaultOutcome. */
    FaultOutcome *pendingFault(unsigned shard, ServiceFault kind);

    /** Online value check of a successful read. */
    void checkRead(const PendingOp &op, const Shard::OpResult &res);
    /** Resolve an all-or-nothing crash ambiguity for a write op. */
    void resolveCrashAmbiguity(const PendingOp &op, unsigned s);
    /** Full shadow-vs-store pass over one shard. */
    void verifyShard(unsigned s);

    ServiceConfig cfg;
    CostModel cost;
    sim::EventQueue eq;
    std::vector<std::unique_ptr<Shard>> shards;
    /** Committed key -> fill byte (the consistency shadow). */
    std::map<std::uint64_t, std::uint8_t> shadow;

    std::vector<Rng> clientRng;
    std::unique_ptr<ZipfianGenerator> zipf;

    std::vector<Tick> freeAt;    ///< shard busy-until
    std::vector<Tick> shedUntil; ///< load-shed window end
    std::vector<std::uint64_t> insertSeq; ///< per-shard insert keys
    std::uint64_t keyBase = 0;   ///< first insert key (rounded)

    ServiceResult res;
    std::uint64_t opSeq = 0;
    bool ran = false;
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_SERVICE_HH
