#include "shard.hh"

#include "common/logging.hh"

namespace pmemspec::service
{

const char *
shardStateName(ShardState s)
{
    switch (s) {
      case ShardState::Serving:    return "Serving";
      case ShardState::Recovering: return "Recovering";
      case ShardState::Degraded:   return "Degraded";
    }
    return "unknown";
}

const char *
serviceFaultName(ServiceFault f)
{
    switch (f) {
      case ServiceFault::PowerCut:      return "PowerCut";
      case ServiceFault::MediaPoison:   return "MediaPoison";
      case ServiceFault::LogPoison:     return "LogPoison";
      case ServiceFault::MisspecStorm:  return "MisspecStorm";
    }
    return "unknown";
}

Shard::Shard(unsigned id, const ServiceConfig &config)
    : shardId(id), cfg(config)
{
    pmem = std::make_unique<runtime::PersistentMemory>(
        cfg.pmBytesPerShard);
    os = std::make_unique<runtime::VirtualOs>();
    // One runtime thread: the shard serves its queue serially, as a
    // single-threaded event-loop server would; concurrency lives at
    // the service layer (clients, queueing, other shards).
    rt = std::make_unique<runtime::FaseRuntime>(
        *pmem, *os, 1, runtime::RecoveryPolicy::Lazy, cfg.logBytes,
        runtime::LogGranularity::Word);
    rt->setAbortBudget(cfg.abortBudget);
    pmds::KvConfig kc;
    kc.buckets = cfg.buckets;
    kc.valueBytes = cfg.valueBytes;
    kc.lruTracking = true;
    store = std::make_unique<pmds::KvStore>(*pmem, kc);
    inj = std::make_unique<faultinject::FaultInjector>(*pmem, *os);

    // The shard owns the PM observer: count op work for the cost
    // model, fire an armed power cut at its exact per-op persist
    // prefix, and forward the access stream to the injector's plans.
    pmem->setObserver(
        [this](runtime::MemOp op, Addr a, std::uint32_t n) {
            if (counting) {
                if (op == runtime::MemOp::Write) {
                    ++work.writes;
                    work.writeBytes += n;
                } else {
                    ++work.reads;
                    work.readBytes += n;
                }
                if (pendingCut && op == runtime::MemOp::Write &&
                    ++cutWrites == *pendingCut + 1) {
                    pendingCut.reset();
                    // Observer runs after the persist is queued, so
                    // exactly *pendingCut entries precede it.
                    inj->injectPowerCut(cutWrites - 1); // throws
                }
            }
            if (!muted)
                inj->observeAccess(op, a, n);
        });
}

Shard::~Shard()
{
    pmem->setObserver(nullptr);
}

void
Shard::setSpecProfile(observe::SpecProfile *p)
{
    prof = p;
    rt->setSpecProfile(p);
    if (!prof)
        return;
    // Fixed registration order = identical site ids in every domain.
    sitePreload = prof->site("preload");
    siteOp[static_cast<std::size_t>(OpKind::Read)] = prof->site("read");
    siteOp[static_cast<std::size_t>(OpKind::Update)] =
        prof->site("update");
    siteOp[static_cast<std::size_t>(OpKind::Insert)] =
        prof->site("insert");
    siteOp[static_cast<std::size_t>(OpKind::Scan)] = prof->site("scan");
    siteQuarantine = prof->site("quarantine");
}

void
Shard::preload(std::uint64_t key, std::uint8_t fill)
{
    rt->runFase(0, [&](runtime::Transaction &tx) {
        store->set(tx, key, fill);
    }, sitePreload);
}

void
Shard::runOp(runtime::Transaction &tx, OpKind op, std::uint64_t key,
             std::uint8_t fill, unsigned scan_len,
             std::uint64_t stride, std::optional<std::uint8_t> &value,
             bool &present)
{
    switch (op) {
      case OpKind::Read:
        value = store->get(tx, key);
        present = value.has_value();
        break;
      case OpKind::Update:
      case OpKind::Insert:
        store->set(tx, key, fill);
        present = true;
        break;
      case OpKind::Scan:
        for (unsigned i = 0; i < scan_len; ++i) {
            auto v = store->get(tx, key + i * stride);
            if (i == 0) {
                value = v;
                present = v.has_value();
            }
        }
        break;
    }
}

Shard::OpResult
Shard::apply(OpKind op, std::uint64_t key, std::uint8_t fill,
             unsigned scan_len, std::uint64_t stride)
{
    OpResult res;
    if (state_ == ShardState::Degraded) {
        // Degraded mode: recovery refused to vouch for the durable
        // image, so nothing may be written -- but reads are still
        // served (non-transactionally: no LRU bump, no log append).
        if (op == OpKind::Read || op == OpKind::Scan) {
            try {
                res.value = store->lookup(key);
                res.status = res.value ? OpStatus::Ok : OpStatus::Miss;
            } catch (const runtime::MediaError &) {
                res.status = OpStatus::MediaError;
            }
        } else {
            res.status = OpStatus::RejectedDegraded;
        }
        return res;
    }

    work.clear();
    cutWrites = 0;
    counting = true;
    const std::uint64_t aborts0 = rt->fasesAborted();
    std::optional<std::uint8_t> value;
    bool present = false;
    try {
        rt->runFase(0, [&](runtime::Transaction &tx) {
            runOp(tx, op, key, fill, scan_len, stride, value, present);
        }, siteFor(op));
        res.status = present ? OpStatus::Ok : OpStatus::Miss;
        res.value = value;
    } catch (const faultinject::PowerFailure &) {
        counting = false;
        res.status = OpStatus::PowerFailure;
        res.crashed = true;
        if (prof && prof->enabled())
            prof->recordAbort(siteFor(op),
                              observe::AbortCause::PowerCut);
        recover(res);
    } catch (const runtime::AbortBudgetExhausted &) {
        counting = false;
        res.status = OpStatus::AbortBudget;
        // The final attempt is already rolled back; recoverAll
        // resyncs every log (and attaches the trap window) before
        // the service reopens the shard behind a shed window.
        recover(res);
    } catch (const runtime::MediaError &) {
        counting = false;
        res.status = OpStatus::MediaError;
        if (prof && prof->enabled())
            prof->recordAbort(siteFor(op), observe::AbortCause::Media);
        // Roll the half-open FASE back from the live log before
        // anything else touches the image.
        recover(res);
        if (state_ == ShardState::Serving) {
            // If the poison sits in this key's value slab the item
            // is unreadable for good: quarantine it (erase never
            // reads the slab), trading one key for the shard.
            auto region = store->slabRegion(key);
            if (region && !pmem->poisonedWordsIn(region->first,
                                                 region->second)
                               .empty()) {
                try {
                    rt->runFase(0, [&](runtime::Transaction &tx) {
                        store->erase(tx, key);
                    }, siteQuarantine);
                    res.quarantinedKey = key;
                } catch (const runtime::UnrecoverableCorruption &e) {
                    lastReport_ = e.report;
                    state_ = ShardState::Degraded;
                } catch (...) {
                    recover(res);
                }
            }
        }
    } catch (const runtime::UnrecoverableCorruption &e) {
        // A live FASE's log failed verification mid-run (abortFase's
        // fail-safe); same verdict as a failed recovery.
        counting = false;
        res.status = OpStatus::MediaError;
        if (prof && prof->enabled())
            prof->recordAbort(siteFor(op),
                              observe::AbortCause::Corruption);
        res.recovered = true;
        res.report = e.report;
        lastReport_ = e.report;
        state_ = ShardState::Degraded;
    }
    counting = false;
    res.work = work;
    res.work.aborts = rt->fasesAborted() - aborts0;
    return res;
}

void
Shard::recover(OpResult &res)
{
    // Recovery replay must not feed armed plans (the service models
    // it as happening before the shard reopens for traffic).
    muted = true;
    state_ = ShardState::Recovering;
    ++recoveryPasses;
    try {
        res.report = rt->recoverAll();
        state_ = ShardState::Serving;
    } catch (const runtime::UnrecoverableCorruption &e) {
        res.report = e.report;
        state_ = ShardState::Degraded;
    }
    res.recovered = true;
    lastReport_ = res.report;
    muted = false;
}

void
Shard::armPowerCut(std::size_t prefix)
{
    pendingCut = prefix;
    cutWrites = 0;
}

void
Shard::armStorm(std::uint64_t period, std::uint64_t count)
{
    // Plans are only ever the storm here (the power cut lives in the
    // observer), so clearing is safe.
    inj->clearPlans();
    auto plan = std::make_unique<faultinject::PeriodicPlan>(
        faultinject::FaultKind::LoadStale, period, count);
    storm = plan.get();
    inj->addPlan(std::move(plan));
}

bool
Shard::stormActive() const
{
    return storm != nullptr && storm->firesRemaining() > 0;
}

void
Shard::disarmPlans()
{
    inj->clearPlans();
    storm = nullptr;
    pendingCut.reset();
}

bool
Shard::poisonValue(std::uint64_t key)
{
    auto region = store->slabRegion(key);
    if (!region)
        return false;
    // Word 1, not word 0: the 1-byte checker lookup() stays
    // readable while any full-value GET faults.
    const Addr target =
        region->second > 8 ? region->first + 8 : region->first;
    inj->injectPoison(target);
    return true;
}

void
Shard::poisonLog()
{
    // The entry-count word: recovery reads it first and must refuse
    // the image when it is unreadable.
    inj->injectPoison(rt->logRegion(0).first);
}

} // namespace pmemspec::service
