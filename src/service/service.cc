#include "service.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "common/backoff.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "service/zipfian.hh"
#include "sim/domain_pool.hh"
#include "sim/event_queue.hh"

namespace pmemspec::service
{

namespace
{

/** Fixed client-visible cost of a fast-path rejection (shed window,
 *  degraded write): the request never reaches the data path. */
constexpr Tick rejectLatency = nsToTicks(100);

/** Degraded-mode read: one non-transactional probe of the image. */
constexpr Tick degradedReadLatency = nsToTicks(300);

std::uint8_t
fillFor(std::uint64_t key, std::uint64_t salt)
{
    // Any deterministic non-zero byte works; mixing the key keeps
    // neighbouring keys distinguishable in post-mortems.
    const std::uint8_t b = static_cast<std::uint8_t>(
        ZipfianGenerator::scramble(key * 31 + salt));
    return b ? b : 0x5A;
}

/** One pre-generated client operation, routed to its shard's tape.
 *  All randomness (kind, key, fill) is drawn at tape-generation time,
 *  so domains replay tapes without touching any RNG. */
struct TapeOp
{
    Tick at = 0;          ///< arrival tick
    std::uint64_t id = 0; ///< global arrival order (tick, client)
    unsigned client = 0;
    OpKind kind = OpKind::Read;
    std::uint64_t key = 0;
    std::uint8_t fill = 0;
};

/** One fault routed to its target domain; `idx` is the position in
 *  cfg.faults, the merge tie-break that reproduces the global
 *  scheduler's firing order. */
struct ScheduledFault
{
    std::size_t idx = 0;
    FaultEvent ev;
};

struct DomainTransition
{
    Tick at = 0;
    std::string text;
};

struct DomainFault
{
    Tick at = 0;
    std::size_t idx = 0;
    FaultOutcome out;
};

/** Everything one shard domain produces; merged by Service::run. */
struct DomainResult
{
    std::uint64_t succeeded = 0;
    std::uint64_t deadlineFailures = 0;
    std::uint64_t retries = 0;
    std::uint64_t powerFailures = 0;
    std::uint64_t mediaErrors = 0;
    std::uint64_t budgetTrips = 0;
    std::uint64_t shedRejects = 0;
    std::uint64_t degradedRejects = 0;
    std::uint64_t quarantined = 0;

    /** Completion-order latencies; sorted globally at merge time. */
    std::vector<Tick> latencies;
    Tick lastCompletion = 0;

    ShardMetrics shard;
    std::vector<DomainFault> faults;
    OracleMetrics oracle;
    /** Bounded ring (cfg.flightEntries), emission order. Any entry
     *  of the merged global ring is in its domain's ring, so
     *  per-domain rings of the same capacity lose nothing. */
    std::vector<DomainTransition> transitions;

    /** Sampled time series + FASE-site profile (cfg.metrics only). */
    observe::MetricsSeries series;
    observe::SpecProfile profile;
};

/**
 * One shard's failure domain as an isolated simulation: its own
 * event queue, Shard (PM + runtime + injector), consistency shadow
 * and fault schedule. Runs on whichever pool thread picks it up;
 * shares only the immutable config and cost model.
 */
class Domain
{
  public:
    Domain(unsigned shardIdx, const ServiceConfig &config,
           const CostModel &costModel)
        : cfg(config), cost(costModel), s(shardIdx),
          shard(shardIdx, config)
    {
        if (cfg.metrics)
            buildMetrics();
    }

    DomainResult
    run(const std::vector<TapeOp> &tape,
        const std::vector<ScheduledFault> &faults)
    {
        // Preload this shard's slice of the key space (fault-free,
        // not counted as traffic); ascending key order, matching the
        // per-shard subsequence of the global preload sweep.
        for (std::uint64_t k = s; k < cfg.keySpace; k += cfg.shards) {
            const std::uint8_t fill = fillFor(k, 0);
            shard.preload(k, fill);
            shadow[k] = fill;
        }

        dr.shard.offered = tape.size();
        dr.latencies.reserve(tape.size());

        // Faults are scheduled before the tape, so at equal ticks a
        // fault event precedes arrivals (the fixed tie-break of the
        // domain-parallel determinism contract).
        for (const ScheduledFault &f : faults)
            eq.schedule(f.ev.at, [this, &f] { onFaultEvent(f); });
        for (const TapeOp &e : tape)
            eq.schedule(e.at, [this, &e] { arrive(e); });

        if (sampler)
            sampler->start();

        eq.run();

        dr.shard.finalState = shard.state();
        dr.shard.recoveries = shard.recoveries();
        verifyShard();
        if (cfg.metrics) {
            dr.series = reg.takeSeries();
            dr.profile = prof;
        }
        return std::move(dr);
    }

  private:
    /** Single-writer metrics/profile for this domain: gauges read
     *  only this domain's state, the sampler runs on this domain's
     *  event queue, and every domain registers identical columns and
     *  sites -- the merged output is the same for any thread count. */
    void
    buildMetrics()
    {
        shard.setSpecProfile(&prof);
        reg.addGauge("succeeded", [this] { return double(dr.succeeded); });
        reg.addGauge("retries", [this] { return double(dr.retries); });
        reg.addGauge("shed_rejects",
                     [this] { return double(dr.shedRejects); });
        reg.addGauge("fases_committed", [this] {
            return double(shard.runtime().fasesCommitted());
        });
        reg.addGauge("fases_aborted", [this] {
            return double(shard.runtime().fasesAborted());
        });
        reg.addGauge("recoveries",
                     [this] { return double(dr.shard.recoveries); });
        // Queueing backlog: how far the shard's busy-until horizon
        // sits past the current tick (service pressure).
        reg.addGauge("backlog_ns", [this] {
            const Tick now = eq.now();
            return freeAt > now ? double(freeAt - now) / ticksPerNs
                                : 0.0;
        });
        reg.addGauge("shed_window", [this] {
            return eq.now() < shedUntil ? 1.0 : 0.0;
        });
        reg.addGauge("state", [this] {
            return double(static_cast<unsigned>(shard.state()));
        });
        reg.addGauge("lat_mean_ns", [this] {
            return dr.latencies.empty()
                       ? 0.0
                       : latSumNs / double(dr.latencies.size());
        });
        sampler.emplace(eq, reg, cfg.metricsInterval);
    }
    struct PendingOp
    {
        std::uint64_t id = 0;
        unsigned client = 0;
        OpKind kind = OpKind::Read;
        std::uint64_t key = 0;
        std::uint8_t fill = 0;
        Tick firstSubmit = 0;
        unsigned attempts = 0;
        BoundedBackoff backoff{1, 1};
    };

    void
    arrive(const TapeOp &e)
    {
        PendingOp op;
        op.id = e.id;
        op.client = e.client;
        op.kind = e.kind;
        op.key = e.key;
        op.fill = e.fill;
        op.firstSubmit = e.at;
        op.backoff = BoundedBackoff{cfg.retry.backoffBase,
                                    cfg.retry.backoffCap};
        submit(std::move(op), e.at);
    }

    void
    noteTransition(Tick at, const std::string &msg)
    {
        // Bounded ring: the flight recorder keeps the most recent
        // transitions (oldest dropped first).
        if (dr.transitions.size() >= cfg.flightEntries)
            dr.transitions.erase(dr.transitions.begin());
        dr.transitions.push_back(
            {at, "t=" + std::to_string(at / ticksPerNs) + "ns shard" +
                     std::to_string(s) + " " + msg});
    }

    FaultOutcome *
    pendingFault(ServiceFault kind)
    {
        for (auto &f : dr.faults) {
            if (f.out.kind == kind && f.out.outcome == "pending")
                return &f.out;
        }
        return nullptr;
    }

    void
    checkRead(const PendingOp &op, const Shard::OpResult &r)
    {
        ++dr.oracle.checks;
        const auto it = shadow.find(op.key);
        const bool expectPresent = it != shadow.end();
        const bool gotPresent = r.status == Shard::OpStatus::Ok;
        std::string detail;
        if (expectPresent && !gotPresent) {
            detail = "read miss on committed key " +
                     std::to_string(op.key);
        } else if (!expectPresent && gotPresent) {
            detail = "ghost value on never-committed key " +
                     std::to_string(op.key);
        } else if (expectPresent && gotPresent &&
                   r.value !=
                       std::optional<std::uint8_t>{it->second}) {
            detail =
                "stale/wrong value on key " + std::to_string(op.key);
        }
        if (!detail.empty()) {
            ++dr.oracle.violations;
            if (dr.oracle.details.size() < 16)
                dr.oracle.details.push_back(detail);
        }
    }

    void
    resolveCrashAmbiguity(const PendingOp &op)
    {
        // The cut interrupted a write FASE: the runtime guarantees
        // all-or-nothing, so probe which side of the boundary the
        // durable image landed on and commit the shadow accordingly.
        if (op.kind != OpKind::Update && op.kind != OpKind::Insert)
            return; // reads/scans leave the mapping unchanged
        if (shard.state() != ShardState::Serving)
            return; // degraded: the oracle stops vouching here
        std::optional<std::uint8_t> now;
        try {
            now = shard.kv().lookup(op.key);
        } catch (const runtime::MediaError &) {
            ++dr.oracle.poisonSkipped;
            return;
        }
        const auto it = shadow.find(op.key);
        ++dr.oracle.checks;
        if (now == std::optional<std::uint8_t>{op.fill}) {
            shadow[op.key] = op.fill; // committed just before the cut
        } else if ((it == shadow.end() && !now) ||
                   (it != shadow.end() &&
                    now == std::optional<std::uint8_t>{it->second})) {
            // rolled back cleanly: old mapping intact
        } else {
            ++dr.oracle.violations;
            if (dr.oracle.details.size() < 16)
                dr.oracle.details.push_back(
                    "crash left key " + std::to_string(op.key) +
                    " at neither boundary");
        }
    }

    void
    verifyShard()
    {
        if (shard.state() == ShardState::Degraded) {
            ++dr.oracle.degradedSkipped;
            return;
        }
        std::uint64_t mine = 0;
        for (const auto &[key, fill] : shadow) {
            ++mine;
            ++dr.oracle.checks;
            std::optional<std::uint8_t> v;
            try {
                v = shard.kv().lookup(key);
            } catch (const runtime::MediaError &) {
                ++dr.oracle.poisonSkipped;
                continue;
            }
            auto region = shard.kv().slabRegion(key);
            if (region && !shard.pm()
                               .poisonedWordsIn(region->first,
                                                region->second)
                               .empty()) {
                ++dr.oracle.poisonSkipped;
                continue;
            }
            if (v != std::optional<std::uint8_t>{fill}) {
                ++dr.oracle.violations;
                if (dr.oracle.details.size() < 16)
                    dr.oracle.details.push_back(
                        "post-recovery mismatch on key " +
                        std::to_string(key));
            }
        }
        ++dr.oracle.checks;
        if (shard.kv().size() != mine) {
            ++dr.oracle.violations;
            if (dr.oracle.details.size() < 16)
                dr.oracle.details.push_back(
                    "shard " + std::to_string(s) + " holds " +
                    std::to_string(shard.kv().size()) +
                    " items, shadow " + std::to_string(mine));
        }
        ++dr.oracle.checks;
        if (!shard.kv().checkInvariants()) {
            ++dr.oracle.violations;
            if (dr.oracle.details.size() < 16)
                dr.oracle.details.push_back(
                    "shard " + std::to_string(s) +
                    " failed checkInvariants");
        }
    }

    void
    complete(PendingOp &op, Tick at, bool ok)
    {
        if (at > dr.lastCompletion)
            dr.lastCompletion = at;
        if (ok && at - op.firstSubmit <= cfg.retry.opDeadline) {
            ++dr.succeeded;
            ++dr.shard.succeeded;
            dr.latencies.push_back(at - op.firstSubmit);
            latSumNs +=
                double(at - op.firstSubmit) / double(ticksPerNs);
        } else {
            ++dr.deadlineFailures;
        }
    }

    void
    retryOrFail(PendingOp op, Tick failedAt)
    {
        const Tick delay = op.backoff.next();
        const Tick next = failedAt + delay;
        if (next > op.firstSubmit + cfg.retry.opDeadline) {
            ++dr.deadlineFailures;
            if (failedAt > dr.lastCompletion)
                dr.lastCompletion = failedAt;
            return;
        }
        ++dr.retries;
        ++dr.shard.retries;
        ++op.attempts;
        eq.schedule(next, [this, op = std::move(op), next]() mutable {
            submit(std::move(op), next);
        });
    }

    void
    submit(PendingOp op, Tick at)
    {
        // Load-shed window: reject on the doorstep, the whole point
        // is that the data path never sees the request.
        if (at < shedUntil) {
            ++dr.shedRejects;
            ++dr.shard.shedRejects;
            retryOrFail(std::move(op), at + rejectLatency);
            return;
        }

        const ShardState before = shard.state();
        const Tick start = std::max(at, freeAt);
        Shard::OpResult r = shard.apply(op.kind, op.key, op.fill,
                                        cfg.scanLen, cfg.shards);

        if (before == ShardState::Degraded) {
            // Served off the degraded read-only path (or refused).
            if (r.status == Shard::OpStatus::Ok ||
                r.status == Shard::OpStatus::Miss) {
                const Tick done = start + degradedReadLatency;
                freeAt = done;
                complete(op, done, true);
            } else {
                ++dr.degradedRejects;
                ++dr.shard.degradedRejects;
                retryOrFail(std::move(op), at + rejectLatency);
            }
            return;
        }

        Tick busy = cost.opCost(cfg.design, r.work);
        Tick done = start + busy;
        // Functional-side window residency: the modeled service time
        // the op's FASEs spent on the shard.
        shard.noteServiceTime(op.kind, busy);

        if (r.recovered) {
            const Tick ttr = r.crashed ? cost.recoveryCost(r.report)
                                       : cost.rollbackCost(r.report);
            freeAt = done + ttr;
            if (shard.state() == ShardState::Degraded) {
                noteTransition(
                    done, "Serving->Degraded (" +
                              std::string(r.crashed ? "PowerCut"
                                                    : "corruption") +
                              ")");
            } else {
                noteTransition(done, "Serving->Recovering");
                noteTransition(freeAt, "Recovering->Serving");
            }
            // Attribute to the scheduled fault that manifested.
            ServiceFault kind = ServiceFault::PowerCut;
            std::string outcome = "recovered";
            if (r.crashed) {
                kind = ServiceFault::PowerCut;
            } else if (r.status == Shard::OpStatus::AbortBudget) {
                kind = ServiceFault::MisspecStorm;
                outcome = "shed+recovered";
            } else if (shard.state() == ShardState::Degraded) {
                kind = ServiceFault::LogPoison;
                outcome = "degraded";
            } else if (r.quarantinedKey) {
                kind = ServiceFault::MediaPoison;
                outcome = "quarantined";
            } else {
                kind = ServiceFault::MediaPoison;
                outcome = "recovered";
            }
            if (FaultOutcome *f = pendingFault(kind)) {
                f->triggeredAt = done;
                f->recoveredAt = freeAt;
                f->ttr = f->recoveredAt - f->triggeredAt;
                f->outcome = outcome;
                f->entriesReplayed = r.report.entriesReplayed;
            }
            ++dr.shard.recoveries;
            // The quarantine must reach the shadow before verifyShard
            // compares it against the store.
            if (r.quarantinedKey) {
                ++dr.quarantined;
                ++dr.oracle.lostKeys;
                shadow.erase(*r.quarantinedKey);
            }
            if (shard.state() != ShardState::Degraded)
                verifyShard();
            else
                ++dr.oracle.degradedSkipped;
        } else {
            freeAt = done;
        }

        switch (r.status) {
          case Shard::OpStatus::Ok:
          case Shard::OpStatus::Miss:
            if (op.kind == OpKind::Read || op.kind == OpKind::Scan)
                checkRead(op, r);
            else
                shadow[op.key] = op.fill;
            complete(op, done, true);
            return;
          case Shard::OpStatus::PowerFailure:
            ++dr.powerFailures;
            resolveCrashAmbiguity(op);
            retryOrFail(std::move(op), done);
            return;
          case Shard::OpStatus::AbortBudget:
            ++dr.budgetTrips;
            // Abort-budget-driven load shedding: give the storm room
            // to pass before the shard takes traffic again.
            shedUntil = freeAt + cfg.shedWindow;
            noteTransition(freeAt, "shed-window opened");
            retryOrFail(std::move(op), done);
            return;
          case Shard::OpStatus::MediaError:
            ++dr.mediaErrors;
            retryOrFail(std::move(op), done);
            return;
          case Shard::OpStatus::RejectedDegraded:
            // (handled above for pre-degraded shards; a shard that
            // degraded during *this* op lands here)
            ++dr.degradedRejects;
            ++dr.shard.degradedRejects;
            retryOrFail(std::move(op), done);
            return;
        }
    }

    void
    onFaultEvent(const ScheduledFault &f)
    {
        const FaultEvent &ev = f.ev;
        DomainFault df;
        df.at = eq.now();
        df.idx = f.idx;
        df.out.kind = ev.kind;
        df.out.shard = s;
        df.out.injectedAt = eq.now();
        switch (ev.kind) {
          case ServiceFault::PowerCut:
            shard.armPowerCut(ev.a ? static_cast<std::size_t>(ev.a)
                                   : 3);
            noteTransition(eq.now(), "power cut armed");
            break;
          case ServiceFault::MediaPoison: {
            // Victim: the hottest committed key of this shard
            // (walking the zipfian popularity ranks), so the poison
            // manifests under real traffic instead of hiding in the
            // cold tail.
            std::uint64_t victim = ev.a;
            bool found = ev.a != 0;
            if (!found) {
                for (std::uint64_t r = 0; r < cfg.keySpace; ++r) {
                    const std::uint64_t k =
                        ZipfianGenerator::scramble(r) % cfg.keySpace;
                    if (k % cfg.shards == s && shadow.count(k)) {
                        victim = k;
                        found = true;
                        break;
                    }
                }
            }
            if (!found || !shard.poisonValue(victim)) {
                df.out.outcome = "skipped";
            } else {
                noteTransition(eq.now(),
                               "value poisoned (key " +
                                   std::to_string(victim) + ")");
            }
            break;
          }
          case ServiceFault::LogPoison:
            shard.poisonLog();
            noteTransition(eq.now(), "undo log poisoned");
            break;
          case ServiceFault::MisspecStorm:
            if (cfg.design != persistency::Design::PmemSpec) {
                // No speculation, nothing to mis-speculate: the
                // fault cannot exist on this design.
                df.out.outcome = "skipped";
            } else {
                shard.armStorm(ev.a ? ev.a : 4, ev.b ? ev.b : 2000);
                noteTransition(eq.now(), "misspec storm armed");
            }
            break;
        }
        dr.faults.push_back(std::move(df));
    }

    const ServiceConfig &cfg;
    const CostModel &cost;
    unsigned s; ///< this domain's shard index
    Shard shard;
    sim::EventQueue eq;
    /** Committed key -> fill byte (this shard's keys only). */
    std::map<std::uint64_t, std::uint8_t> shadow;
    Tick freeAt = 0;    ///< shard busy-until
    Tick shedUntil = 0; ///< load-shed window end
    DomainResult dr;

    /** Metrics state (only populated when cfg.metrics). */
    observe::MetricsRegistry reg;
    observe::SpecProfile prof;
    std::optional<observe::MetricsSampler> sampler;
    double latSumNs = 0; ///< running sum for the lat_mean_ns gauge
};

} // namespace

double
ServiceResult::availability() const
{
    return offered ? static_cast<double>(succeeded) /
                         static_cast<double>(offered)
                   : 1.0;
}

double
ServiceResult::throughputOpsPerSec(Tick duration) const
{
    const double seconds =
        static_cast<double>(duration) / (1e9 * ticksPerNs);
    return seconds > 0 ? static_cast<double>(succeeded) / seconds : 0;
}

Tick
ServiceResult::latencyQuantile(double q) const
{
    if (latencies.empty())
        return 0;
    // The merge step sorts exactly once; quantiles only index.
    assert(std::is_sorted(latencies.begin(), latencies.end()));
    // Nearest-rank on the sorted set: exact and deterministic (the
    // same ranking convention Histogram::quantile interpolates with).
    const std::uint64_t rank = quantileRank(q, latencies.size());
    return latencies[rank - 1];
}

Json
ServiceResult::metricsJson() const
{
    Json m = Json::object();
    m.set("interval_us",
          Json(metricsInterval / ticksPerNs / 1000));
    Json sh = Json::array();
    for (std::size_t s = 0; s < shardSeries.size(); ++s) {
        Json row = Json::object();
        row.set("shard", Json(static_cast<std::uint64_t>(s)));
        row.set("series", shardSeries[s].toJson());
        sh.push(std::move(row));
    }
    m.set("shards", std::move(sh));
    m.set("total", totalSeries.toJson());
    return m;
}

Json
ServiceResult::toJson(Tick duration) const
{
    Json j = Json::object();
    j.set("design", Json(persistency::designName(design)));
    j.set("offered", Json(offered));
    j.set("succeeded", Json(succeeded));
    j.set("deadline_failures", Json(deadlineFailures));
    j.set("retries", Json(retries));
    j.set("availability", Json(availability()));
    j.set("throughput_ops_s", Json(throughputOpsPerSec(duration)));
    Json lat = Json::object();
    lat.set("p50_ns", Json(latencyQuantile(0.50) / ticksPerNs));
    lat.set("p95_ns", Json(latencyQuantile(0.95) / ticksPerNs));
    lat.set("p99_ns", Json(latencyQuantile(0.99) / ticksPerNs));
    lat.set("p999_ns", Json(latencyQuantile(0.999) / ticksPerNs));
    j.set("latency", std::move(lat));
    Json ev = Json::object();
    ev.set("power_failures", Json(powerFailures));
    ev.set("media_errors", Json(mediaErrors));
    ev.set("budget_trips", Json(budgetTrips));
    ev.set("shed_rejects", Json(shedRejects));
    ev.set("degraded_rejects", Json(degradedRejects));
    ev.set("quarantined", Json(quarantined));
    j.set("events", std::move(ev));
    Json sh = Json::array();
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const ShardMetrics &m = shards[s];
        Json row = Json::object();
        row.set("shard", Json(static_cast<std::uint64_t>(s)));
        row.set("offered", Json(m.offered));
        row.set("succeeded", Json(m.succeeded));
        row.set("availability", Json(m.availability()));
        row.set("retries", Json(m.retries));
        row.set("shed_rejects", Json(m.shedRejects));
        row.set("degraded_rejects", Json(m.degradedRejects));
        row.set("recoveries", Json(m.recoveries));
        row.set("final_state", Json(shardStateName(m.finalState)));
        sh.push(std::move(row));
    }
    j.set("shards", std::move(sh));
    Json fs = Json::array();
    for (const FaultOutcome &f : faults) {
        Json row = Json::object();
        row.set("kind", Json(serviceFaultName(f.kind)));
        row.set("shard", Json(f.shard));
        row.set("injected_at_ns", Json(f.injectedAt / ticksPerNs));
        row.set("triggered_at_ns", Json(f.triggeredAt / ticksPerNs));
        row.set("recovered_at_ns", Json(f.recoveredAt / ticksPerNs));
        row.set("ttr_ns", Json(f.ttr / ticksPerNs));
        row.set("outcome", Json(f.outcome));
        row.set("entries_replayed", Json(f.entriesReplayed));
        fs.push(std::move(row));
    }
    j.set("faults", std::move(fs));
    Json orc = Json::object();
    orc.set("checks", Json(oracle.checks));
    orc.set("violations", Json(oracle.violations));
    orc.set("lost_keys", Json(oracle.lostKeys));
    orc.set("poison_skipped", Json(oracle.poisonSkipped));
    orc.set("degraded_skipped", Json(oracle.degradedSkipped));
    Json det = Json::array();
    for (const auto &d : oracle.details)
        det.push(Json(d));
    orc.set("details", std::move(det));
    j.set("oracle", std::move(orc));
    Json tr = Json::array();
    for (const auto &t : transitions)
        tr.push(Json(t));
    j.set("transitions", std::move(tr));
    // Appended last so metrics-off rows stay bit-for-bit what the
    // pre-metrics harness emitted.
    if (metricsEnabled) {
        j.set("metrics", metricsJson());
        j.set("profile", profile.toJson());
    }
    return j;
}

Service::Service(const ServiceConfig &config) : cfg(config)
{
    fatal_if(cfg.shards == 0 || cfg.clients == 0,
             "service needs at least one shard and one client");
    const double mixSum =
        cfg.mix.read + cfg.mix.update + cfg.mix.insert + cfg.mix.scan;
    fatal_if(std::abs(mixSum - 1.0) > 1e-9,
             "op mix ratios must sum to 1 (got %f)", mixSum);
    fatal_if(cfg.keySpace < cfg.shards,
             "key space smaller than the shard count");
    fatal_if(cfg.interArrival == 0,
             "open-loop arrivals need a non-zero inter-arrival time");
    for (const FaultEvent &ev : cfg.faults)
        fatal_if(ev.shard >= cfg.shards,
                 "fault targets shard %u of %u", ev.shard,
                 cfg.shards);

    res.shards.assign(cfg.shards, ShardMetrics{});
    res.design = cfg.design;
}

Service::~Service() = default;

ServiceResult
Service::run()
{
    fatal_if(ran, "Service::run is one-shot; build a new Service");
    ran = true;

    // ---- Serial phase: pre-generate every client's op stream in
    // global (tick, client) arrival order and route it into per-shard
    // tapes. Client RNG is pure in (seed, client) and the zipfian
    // generator is stateless per draw, so this reproduces exactly the
    // stream an interleaved global scheduler would have drawn.
    ZipfianGenerator zipf(cfg.keySpace, cfg.zipfTheta);
    std::vector<Rng> clientRng;
    clientRng.reserve(cfg.clients);
    for (unsigned c = 0; c < cfg.clients; ++c)
        clientRng.push_back(Rng::split(cfg.seed, c));

    // Fresh-insert keys start past the preloaded space, rounded up
    // so key % shards keeps routing them to the intended shard.
    const std::uint64_t keyBase =
        ((cfg.keySpace + cfg.shards - 1) / cfg.shards) * cfg.shards;
    std::vector<std::uint64_t> insertSeq(cfg.shards, 0);

    std::vector<std::vector<TapeOp>> tapes(cfg.shards);
    std::uint64_t opSeq = 0;
    // Client phases ((interArrival * c) / clients) ascend with c and
    // stay below interArrival, so round-major/client-minor iteration
    // IS global (tick, client) arrival order.
    for (std::uint64_t round = 0;; ++round) {
        bool any = false;
        for (unsigned c = 0; c < cfg.clients; ++c) {
            const Tick at = (cfg.interArrival * c) / cfg.clients +
                            round * cfg.interArrival;
            if (at >= cfg.duration)
                continue; // arrivals stop; later clients stop too
            any = true;
            Rng &rng = clientRng[c];
            TapeOp op;
            op.at = at;
            op.id = ++opSeq;
            op.client = c;
            const double roll = rng.uniform();
            if (roll < cfg.mix.read) {
                op.kind = OpKind::Read;
                op.key = zipf.next(rng);
            } else if (roll < cfg.mix.read + cfg.mix.update) {
                op.kind = OpKind::Update;
                op.key = zipf.next(rng);
                op.fill = fillFor(op.key, rng.next());
            } else if (roll < cfg.mix.read + cfg.mix.update +
                                  cfg.mix.insert) {
                op.kind = OpKind::Insert;
                // A fresh key on the same shard a zipfian draw
                // routes to, so insert load follows the popularity
                // distribution.
                const unsigned sh = static_cast<unsigned>(
                    zipf.next(rng) % cfg.shards);
                op.key = keyBase + sh + cfg.shards * insertSeq[sh]++;
                op.fill = fillFor(op.key, rng.next());
            } else {
                op.kind = OpKind::Scan;
                op.key = zipf.next(rng);
            }
            tapes[op.key % cfg.shards].push_back(op);
        }
        if (!any)
            break;
    }

    // Faults routed to their domains in global firing order
    // (tick, config index) -- the per-domain order pendingFault()
    // scans and the key the merge below restores.
    std::vector<ScheduledFault> allFaults;
    allFaults.reserve(cfg.faults.size());
    for (std::size_t i = 0; i < cfg.faults.size(); ++i)
        allFaults.push_back({i, cfg.faults[i]});
    std::stable_sort(allFaults.begin(), allFaults.end(),
                     [](const ScheduledFault &a,
                        const ScheduledFault &b) {
                         return a.ev.at < b.ev.at;
                     });
    std::vector<std::vector<ScheduledFault>> domainFaults(cfg.shards);
    for (const ScheduledFault &f : allFaults)
        domainFaults[f.ev.shard].push_back(f);

    // ---- Parallel phase: one self-contained domain per shard.
    // Each task touches only its own slot; the pool joins before the
    // merge reads anything.
    std::vector<DomainResult> parts(cfg.shards);
    sim::DomainPool pool(cfg.simThreads);
    pool.run(cfg.shards, [&](std::size_t i) {
        Domain d(static_cast<unsigned>(i), cfg, cost);
        parts[i] = d.run(tapes[i], domainFaults[i]);
    });

    // ---- Merge phase: host-thread-count invariant by construction;
    // every ordering below derives from simulated ticks, config
    // positions and shard indices.
    std::size_t totalLat = 0;
    for (const DomainResult &p : parts)
        totalLat += p.latencies.size();
    res.latencies.reserve(totalLat);

    std::vector<std::vector<DomainFault>> faultParts(cfg.shards);
    std::vector<std::vector<DomainTransition>> transParts(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
        DomainResult &p = parts[s];
        res.shards[s] = p.shard;
        res.offered += p.shard.offered;
        res.succeeded += p.succeeded;
        res.deadlineFailures += p.deadlineFailures;
        res.retries += p.retries;
        res.powerFailures += p.powerFailures;
        res.mediaErrors += p.mediaErrors;
        res.budgetTrips += p.budgetTrips;
        res.shedRejects += p.shedRejects;
        res.degradedRejects += p.degradedRejects;
        res.quarantined += p.quarantined;
        res.latencies.insert(res.latencies.end(),
                             p.latencies.begin(), p.latencies.end());
        res.lastCompletion =
            std::max(res.lastCompletion, p.lastCompletion);
        res.oracle.checks += p.oracle.checks;
        res.oracle.violations += p.oracle.violations;
        res.oracle.lostKeys += p.oracle.lostKeys;
        res.oracle.poisonSkipped += p.oracle.poisonSkipped;
        res.oracle.degradedSkipped += p.oracle.degradedSkipped;
        for (auto &d : p.oracle.details) {
            if (res.oracle.details.size() < 16)
                res.oracle.details.push_back(std::move(d));
        }
        faultParts[s] = std::move(p.faults);
        transParts[s] = std::move(p.transitions);
    }

    // Metrics merge: per-shard series kept verbatim (shard order),
    // the aggregate summed element-wise in shard order, profiles
    // folded site-by-site -- all pure functions of simulated state,
    // so byte-identical for any host thread count.
    if (cfg.metrics) {
        res.metricsEnabled = true;
        res.metricsInterval = cfg.metricsInterval;
        res.shardSeries.reserve(cfg.shards);
        for (DomainResult &p : parts)
            res.shardSeries.push_back(std::move(p.series));
        res.totalSeries = observe::sumSeries(res.shardSeries);
        for (const DomainResult &p : parts)
            res.profile.mergeFrom(p.profile);
    }
    // Sort once; latencyQuantile only indexes from here on.
    std::sort(res.latencies.begin(), res.latencies.end());

    // Fault outcomes back in the global scheduler's firing order.
    auto faults = sim::mergeDomains(
        std::move(faultParts),
        [](const DomainFault &a, const DomainFault &b) {
            return a.at != b.at ? a.at < b.at : a.idx < b.idx;
        });
    res.faults.reserve(faults.size());
    for (DomainFault &f : faults)
        res.faults.push_back(std::move(f.out));

    // Transition flight recorder: merge by tick (ties: shard order),
    // then keep the most recent flightEntries. Any globally-recent
    // entry survives its domain ring of the same capacity, so this
    // equals a global ring fed in merged order.
    auto trans = sim::mergeDomains(
        std::move(transParts),
        [](const DomainTransition &a, const DomainTransition &b) {
            return a.at < b.at;
        });
    const std::size_t start = trans.size() > cfg.flightEntries
                                  ? trans.size() - cfg.flightEntries
                                  : 0;
    res.transitions.reserve(trans.size() - start);
    for (std::size_t i = start; i < trans.size(); ++i)
        res.transitions.push_back(std::move(trans[i].text));

    return res;
}

} // namespace pmemspec::service
