#include "service.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pmemspec::service
{

namespace
{

/** Fixed client-visible cost of a fast-path rejection (shed window,
 *  degraded write): the request never reaches the data path. */
constexpr Tick rejectLatency = nsToTicks(100);

/** Degraded-mode read: one non-transactional probe of the image. */
constexpr Tick degradedReadLatency = nsToTicks(300);

} // namespace

double
ServiceResult::availability() const
{
    return offered ? static_cast<double>(succeeded) /
                         static_cast<double>(offered)
                   : 1.0;
}

double
ServiceResult::throughputOpsPerSec(Tick duration) const
{
    const double seconds =
        static_cast<double>(duration) / (1e9 * ticksPerNs);
    return seconds > 0 ? static_cast<double>(succeeded) / seconds : 0;
}

Tick
ServiceResult::latencyQuantile(double q) const
{
    if (latencies.empty())
        return 0;
    // Nearest-rank on the sorted set: exact and deterministic.
    const std::size_t n = latencies.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return latencies[rank - 1];
}

Json
ServiceResult::toJson(Tick duration) const
{
    Json j = Json::object();
    j.set("design", Json(persistency::designName(design)));
    j.set("offered", Json(offered));
    j.set("succeeded", Json(succeeded));
    j.set("deadline_failures", Json(deadlineFailures));
    j.set("retries", Json(retries));
    j.set("availability", Json(availability()));
    j.set("throughput_ops_s", Json(throughputOpsPerSec(duration)));
    Json lat = Json::object();
    lat.set("p50_ns", Json(latencyQuantile(0.50) / ticksPerNs));
    lat.set("p95_ns", Json(latencyQuantile(0.95) / ticksPerNs));
    lat.set("p99_ns", Json(latencyQuantile(0.99) / ticksPerNs));
    lat.set("p999_ns", Json(latencyQuantile(0.999) / ticksPerNs));
    j.set("latency", std::move(lat));
    Json ev = Json::object();
    ev.set("power_failures", Json(powerFailures));
    ev.set("media_errors", Json(mediaErrors));
    ev.set("budget_trips", Json(budgetTrips));
    ev.set("shed_rejects", Json(shedRejects));
    ev.set("degraded_rejects", Json(degradedRejects));
    ev.set("quarantined", Json(quarantined));
    j.set("events", std::move(ev));
    Json sh = Json::array();
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const ShardMetrics &m = shards[s];
        Json row = Json::object();
        row.set("shard", Json(static_cast<std::uint64_t>(s)));
        row.set("offered", Json(m.offered));
        row.set("succeeded", Json(m.succeeded));
        row.set("availability", Json(m.availability()));
        row.set("retries", Json(m.retries));
        row.set("shed_rejects", Json(m.shedRejects));
        row.set("degraded_rejects", Json(m.degradedRejects));
        row.set("recoveries", Json(m.recoveries));
        row.set("final_state", Json(shardStateName(m.finalState)));
        sh.push(std::move(row));
    }
    j.set("shards", std::move(sh));
    Json fs = Json::array();
    for (const FaultOutcome &f : faults) {
        Json row = Json::object();
        row.set("kind", Json(serviceFaultName(f.kind)));
        row.set("shard", Json(f.shard));
        row.set("injected_at_ns", Json(f.injectedAt / ticksPerNs));
        row.set("triggered_at_ns", Json(f.triggeredAt / ticksPerNs));
        row.set("recovered_at_ns", Json(f.recoveredAt / ticksPerNs));
        row.set("ttr_ns", Json(f.ttr / ticksPerNs));
        row.set("outcome", Json(f.outcome));
        row.set("entries_replayed", Json(f.entriesReplayed));
        fs.push(std::move(row));
    }
    j.set("faults", std::move(fs));
    Json orc = Json::object();
    orc.set("checks", Json(oracle.checks));
    orc.set("violations", Json(oracle.violations));
    orc.set("lost_keys", Json(oracle.lostKeys));
    orc.set("poison_skipped", Json(oracle.poisonSkipped));
    orc.set("degraded_skipped", Json(oracle.degradedSkipped));
    Json det = Json::array();
    for (const auto &d : oracle.details)
        det.push(Json(d));
    orc.set("details", std::move(det));
    j.set("oracle", std::move(orc));
    Json tr = Json::array();
    for (const auto &t : transitions)
        tr.push(Json(t));
    j.set("transitions", std::move(tr));
    return j;
}

Service::Service(const ServiceConfig &config) : cfg(config)
{
    fatal_if(cfg.shards == 0 || cfg.clients == 0,
             "service needs at least one shard and one client");
    const double mixSum =
        cfg.mix.read + cfg.mix.update + cfg.mix.insert + cfg.mix.scan;
    fatal_if(std::abs(mixSum - 1.0) > 1e-9,
             "op mix ratios must sum to 1 (got %f)", mixSum);
    fatal_if(cfg.keySpace < cfg.shards,
             "key space smaller than the shard count");

    zipf = std::make_unique<ZipfianGenerator>(cfg.keySpace,
                                              cfg.zipfTheta);
    for (unsigned s = 0; s < cfg.shards; ++s)
        shards.push_back(std::make_unique<Shard>(s, cfg));
    for (unsigned c = 0; c < cfg.clients; ++c)
        clientRng.emplace_back(cfg.seed * 0x9e3779b97f4a7c15ULL +
                               c + 1);
    freeAt.assign(cfg.shards, 0);
    shedUntil.assign(cfg.shards, 0);
    insertSeq.assign(cfg.shards, 0);
    // Fresh-insert keys start past the preloaded space, rounded up
    // so key % shards keeps routing them to the intended shard.
    keyBase = ((cfg.keySpace + cfg.shards - 1) / cfg.shards) *
              cfg.shards;
    res.shards.assign(cfg.shards, ShardMetrics{});
    res.design = cfg.design;
}

Service::~Service() = default;

unsigned
Service::shardOf(std::uint64_t key) const
{
    return static_cast<unsigned>(key % cfg.shards);
}

std::uint8_t
Service::fillFor(std::uint64_t key, std::uint64_t salt)
{
    // Any deterministic non-zero byte works; mixing the key keeps
    // neighbouring keys distinguishable in post-mortems.
    const std::uint8_t b = static_cast<std::uint8_t>(
        ZipfianGenerator::scramble(key * 31 + salt));
    return b ? b : 0x5A;
}

void
Service::noteTransition(Tick at, unsigned shard,
                        const std::string &msg)
{
    // Bounded ring: the flight recorder keeps the most recent
    // transitions (oldest dropped first).
    if (res.transitions.size() >= cfg.flightEntries)
        res.transitions.erase(res.transitions.begin());
    res.transitions.push_back(
        "t=" + std::to_string(at / ticksPerNs) + "ns shard" +
        std::to_string(shard) + " " + msg);
}

FaultOutcome *
Service::pendingFault(unsigned shard, ServiceFault kind)
{
    for (auto &f : res.faults) {
        if (f.shard == shard && f.kind == kind &&
            f.outcome == "pending")
            return &f;
    }
    return nullptr;
}

void
Service::checkRead(const PendingOp &op, const Shard::OpResult &r)
{
    ++res.oracle.checks;
    const auto it = shadow.find(op.key);
    const bool expectPresent = it != shadow.end();
    const bool gotPresent = r.status == Shard::OpStatus::Ok;
    std::string detail;
    if (expectPresent && !gotPresent) {
        detail = "read miss on committed key " +
                 std::to_string(op.key);
    } else if (!expectPresent && gotPresent) {
        detail = "ghost value on never-committed key " +
                 std::to_string(op.key);
    } else if (expectPresent && gotPresent &&
               r.value != std::optional<std::uint8_t>{it->second}) {
        detail = "stale/wrong value on key " + std::to_string(op.key);
    }
    if (!detail.empty()) {
        ++res.oracle.violations;
        if (res.oracle.details.size() < 16)
            res.oracle.details.push_back(detail);
    }
}

void
Service::resolveCrashAmbiguity(const PendingOp &op, unsigned s)
{
    // The cut interrupted a write FASE: the runtime guarantees
    // all-or-nothing, so probe which side of the boundary the
    // durable image landed on and commit the shadow accordingly.
    if (op.kind != OpKind::Update && op.kind != OpKind::Insert)
        return; // reads/scans leave the mapping unchanged either way
    if (shards[s]->state() != ShardState::Serving)
        return; // degraded: the oracle stops vouching for this shard
    std::optional<std::uint8_t> now;
    try {
        now = shards[s]->kv().lookup(op.key);
    } catch (const runtime::MediaError &) {
        ++res.oracle.poisonSkipped;
        return;
    }
    const auto it = shadow.find(op.key);
    ++res.oracle.checks;
    if (now == std::optional<std::uint8_t>{op.fill}) {
        shadow[op.key] = op.fill; // committed just before the cut
    } else if ((it == shadow.end() && !now) ||
               (it != shadow.end() &&
                now == std::optional<std::uint8_t>{it->second})) {
        // rolled back cleanly: old mapping intact
    } else {
        ++res.oracle.violations;
        if (res.oracle.details.size() < 16)
            res.oracle.details.push_back(
                "crash left key " + std::to_string(op.key) +
                " at neither boundary");
    }
}

void
Service::verifyShard(unsigned s)
{
    const Shard &sh = *shards[s];
    if (sh.state() == ShardState::Degraded) {
        ++res.oracle.degradedSkipped;
        return;
    }
    std::uint64_t mine = 0;
    for (const auto &[key, fill] : shadow) {
        if (shardOf(key) != s)
            continue;
        ++mine;
        ++res.oracle.checks;
        std::optional<std::uint8_t> v;
        try {
            v = sh.kv().lookup(key);
        } catch (const runtime::MediaError &) {
            ++res.oracle.poisonSkipped;
            continue;
        }
        auto region = sh.kv().slabRegion(key);
        if (region && !sh.pm()
                           .poisonedWordsIn(region->first,
                                            region->second)
                           .empty()) {
            ++res.oracle.poisonSkipped;
            continue;
        }
        if (v != std::optional<std::uint8_t>{fill}) {
            ++res.oracle.violations;
            if (res.oracle.details.size() < 16)
                res.oracle.details.push_back(
                    "post-recovery mismatch on key " +
                    std::to_string(key));
        }
    }
    ++res.oracle.checks;
    if (sh.kv().size() != mine) {
        ++res.oracle.violations;
        if (res.oracle.details.size() < 16)
            res.oracle.details.push_back(
                "shard " + std::to_string(s) + " holds " +
                std::to_string(sh.kv().size()) + " items, shadow " +
                std::to_string(mine));
    }
    ++res.oracle.checks;
    if (!sh.kv().checkInvariants()) {
        ++res.oracle.violations;
        if (res.oracle.details.size() < 16)
            res.oracle.details.push_back(
                "shard " + std::to_string(s) +
                " failed checkInvariants");
    }
}

void
Service::scheduleClient(unsigned client, Tick at)
{
    if (at >= cfg.duration)
        return; // arrivals stop; in-flight work drains
    eq.schedule(at, [this, client, at] {
        // Open loop: the next arrival is scheduled regardless of how
        // this op fares.
        scheduleClient(client, at + cfg.interArrival);
        Rng &rng = clientRng[client];
        PendingOp op;
        op.id = ++opSeq;
        op.client = client;
        op.firstSubmit = at;
        op.backoff = BoundedBackoff{cfg.retry.backoffBase,
                                    cfg.retry.backoffCap};
        const double roll = rng.uniform();
        if (roll < cfg.mix.read) {
            op.kind = OpKind::Read;
            op.key = zipf->next(rng);
        } else if (roll < cfg.mix.read + cfg.mix.update) {
            op.kind = OpKind::Update;
            op.key = zipf->next(rng);
            op.fill = fillFor(op.key, rng.next());
        } else if (roll <
                   cfg.mix.read + cfg.mix.update + cfg.mix.insert) {
            op.kind = OpKind::Insert;
            // A fresh key on the same shard a zipfian draw routes to,
            // so insert load follows the popularity distribution.
            const unsigned s = shardOf(zipf->next(rng));
            op.key = keyBase + s + cfg.shards * insertSeq[s]++;
            op.fill = fillFor(op.key, rng.next());
        } else {
            op.kind = OpKind::Scan;
            op.key = zipf->next(rng);
        }
        ++res.offered;
        ++res.shards[shardOf(op.key)].offered;
        submit(std::move(op), at);
    });
}

void
Service::complete(PendingOp &op, Tick at, bool ok)
{
    if (at > res.lastCompletion)
        res.lastCompletion = at;
    const unsigned s = shardOf(op.key);
    if (ok && at - op.firstSubmit <= cfg.retry.opDeadline) {
        ++res.succeeded;
        ++res.shards[s].succeeded;
        res.latencies.push_back(at - op.firstSubmit);
    } else {
        ++res.deadlineFailures;
    }
}

void
Service::retryOrFail(PendingOp op, Tick failedAt)
{
    const Tick delay = op.backoff.next();
    const Tick next = failedAt + delay;
    if (next > op.firstSubmit + cfg.retry.opDeadline) {
        ++res.deadlineFailures;
        if (failedAt > res.lastCompletion)
            res.lastCompletion = failedAt;
        return;
    }
    ++res.retries;
    ++res.shards[shardOf(op.key)].retries;
    ++op.attempts;
    eq.schedule(next, [this, op = std::move(op), next]() mutable {
        submit(std::move(op), next);
    });
}

void
Service::submit(PendingOp op, Tick at)
{
    const unsigned s = shardOf(op.key);
    Shard &sh = *shards[s];

    // Load-shed window: reject on the doorstep, the whole point is
    // that the data path never sees the request.
    if (at < shedUntil[s]) {
        ++res.shedRejects;
        ++res.shards[s].shedRejects;
        retryOrFail(std::move(op), at + rejectLatency);
        return;
    }

    const ShardState before = sh.state();
    const Tick start = std::max(at, freeAt[s]);
    Shard::OpResult r =
        sh.apply(op.kind, op.key, op.fill, cfg.scanLen, cfg.shards);

    if (before == ShardState::Degraded) {
        // Served off the degraded read-only path (or refused).
        if (r.status == Shard::OpStatus::Ok ||
            r.status == Shard::OpStatus::Miss) {
            const Tick done = start + degradedReadLatency;
            freeAt[s] = done;
            complete(op, done, true);
        } else {
            ++res.degradedRejects;
            ++res.shards[s].degradedRejects;
            retryOrFail(std::move(op), at + rejectLatency);
        }
        return;
    }

    Tick busy = cost.opCost(cfg.design, r.work);
    Tick done = start + busy;

    if (r.recovered) {
        const Tick ttr = r.crashed ? cost.recoveryCost(r.report)
                                   : cost.rollbackCost(r.report);
        freeAt[s] = done + ttr;
        if (sh.state() == ShardState::Degraded) {
            noteTransition(done, s, "Serving->Degraded (" +
                                        std::string(
                                            r.crashed ? "PowerCut"
                                                      : "corruption") +
                                        ")");
        } else {
            noteTransition(done, s, "Serving->Recovering");
            noteTransition(freeAt[s], s, "Recovering->Serving");
        }
        // Attribute to the scheduled fault that manifested.
        ServiceFault kind = ServiceFault::PowerCut;
        std::string outcome = "recovered";
        if (r.crashed) {
            kind = ServiceFault::PowerCut;
        } else if (r.status == Shard::OpStatus::AbortBudget) {
            kind = ServiceFault::MisspecStorm;
            outcome = "shed+recovered";
        } else if (sh.state() == ShardState::Degraded) {
            kind = ServiceFault::LogPoison;
            outcome = "degraded";
        } else if (r.quarantinedKey) {
            kind = ServiceFault::MediaPoison;
            outcome = "quarantined";
        } else {
            kind = ServiceFault::MediaPoison;
            outcome = "recovered";
        }
        if (FaultOutcome *f = pendingFault(s, kind)) {
            f->triggeredAt = done;
            f->recoveredAt = freeAt[s];
            f->ttr = f->recoveredAt - f->triggeredAt;
            f->outcome = outcome;
            f->entriesReplayed = r.report.entriesReplayed;
        }
        ++res.shards[s].recoveries;
        // The quarantine must reach the shadow before verifyShard
        // compares it against the store.
        if (r.quarantinedKey) {
            ++res.quarantined;
            ++res.oracle.lostKeys;
            shadow.erase(*r.quarantinedKey);
        }
        if (sh.state() != ShardState::Degraded)
            verifyShard(s);
        else
            ++res.oracle.degradedSkipped;
    } else {
        freeAt[s] = done;
    }

    switch (r.status) {
      case Shard::OpStatus::Ok:
      case Shard::OpStatus::Miss:
        if (op.kind == OpKind::Read || op.kind == OpKind::Scan)
            checkRead(op, r);
        else
            shadow[op.key] = op.fill;
        complete(op, done, true);
        return;
      case Shard::OpStatus::PowerFailure:
        ++res.powerFailures;
        resolveCrashAmbiguity(op, s);
        retryOrFail(std::move(op), done);
        return;
      case Shard::OpStatus::AbortBudget:
        ++res.budgetTrips;
        // Abort-budget-driven load shedding: give the storm room to
        // pass before the shard takes traffic again.
        shedUntil[s] = freeAt[s] + cfg.shedWindow;
        noteTransition(freeAt[s], s, "shed-window opened");
        retryOrFail(std::move(op), done);
        return;
      case Shard::OpStatus::MediaError:
        ++res.mediaErrors;
        retryOrFail(std::move(op), done);
        return;
      case Shard::OpStatus::RejectedDegraded:
        // (handled above for pre-degraded shards; a shard that
        // degraded during *this* op lands here)
        ++res.degradedRejects;
        ++res.shards[s].degradedRejects;
        retryOrFail(std::move(op), done);
        return;
    }
}

void
Service::onFaultEvent(const FaultEvent &ev)
{
    fatal_if(ev.shard >= cfg.shards, "fault targets shard %u of %u",
             ev.shard, cfg.shards);
    Shard &sh = *shards[ev.shard];
    FaultOutcome out;
    out.kind = ev.kind;
    out.shard = ev.shard;
    out.injectedAt = eq.now();
    switch (ev.kind) {
      case ServiceFault::PowerCut:
        sh.armPowerCut(ev.a ? static_cast<std::size_t>(ev.a) : 3);
        noteTransition(eq.now(), ev.shard, "power cut armed");
        break;
      case ServiceFault::MediaPoison: {
        // Victim: the hottest committed key of this shard (walking
        // the zipfian popularity ranks), so the poison manifests
        // under real traffic instead of hiding in the cold tail.
        std::uint64_t victim = ev.a;
        bool found = ev.a != 0;
        if (!found) {
            for (std::uint64_t r = 0; r < cfg.keySpace; ++r) {
                const std::uint64_t k =
                    ZipfianGenerator::scramble(r) % cfg.keySpace;
                if (shardOf(k) == ev.shard && shadow.count(k)) {
                    victim = k;
                    found = true;
                    break;
                }
            }
        }
        if (!found || !sh.poisonValue(victim)) {
            out.outcome = "skipped";
        } else {
            noteTransition(eq.now(), ev.shard,
                           "value poisoned (key " +
                               std::to_string(victim) + ")");
        }
        break;
      }
      case ServiceFault::LogPoison:
        sh.poisonLog();
        noteTransition(eq.now(), ev.shard, "undo log poisoned");
        break;
      case ServiceFault::MisspecStorm:
        if (cfg.design != persistency::Design::PmemSpec) {
            // No speculation, nothing to mis-speculate: the fault
            // cannot exist on this design.
            out.outcome = "skipped";
        } else {
            sh.armStorm(ev.a ? ev.a : 4, ev.b ? ev.b : 2000);
            noteTransition(eq.now(), ev.shard, "misspec storm armed");
        }
        break;
    }
    res.faults.push_back(std::move(out));
}

ServiceResult
Service::run()
{
    fatal_if(ran, "Service::run is one-shot; build a new Service");
    ran = true;

    // Preload the key space (fault-free, not counted as traffic).
    for (std::uint64_t k = 0; k < cfg.keySpace; ++k) {
        const std::uint8_t fill = fillFor(k, 0);
        shards[shardOf(k)]->preload(k, fill);
        shadow[k] = fill;
    }

    for (unsigned c = 0; c < cfg.clients; ++c) {
        // Staggered phases so clients do not arrive in lockstep.
        scheduleClient(c,
                       (cfg.interArrival * c) / cfg.clients);
    }
    for (const FaultEvent &ev : cfg.faults) {
        eq.schedule(ev.at, [this, ev] { onFaultEvent(ev); });
    }

    eq.run();

    for (unsigned s = 0; s < cfg.shards; ++s) {
        res.shards[s].finalState = shards[s]->state();
        res.shards[s].recoveries = shards[s]->recoveries();
        verifyShard(s);
    }
    std::sort(res.latencies.begin(), res.latencies.end());
    return res;
}

} // namespace pmemspec::service
