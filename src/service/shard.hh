/**
 * @file
 * One shard of the always-on service: an independent failure domain.
 *
 * Each shard owns its own functional PersistentMemory, VirtualOs,
 * FaseRuntime, KvStore and FaultInjector -- a power cut, poisoned
 * word or misspeculation storm in one shard cannot touch another.
 * The shard installs itself as the PM's access observer: it counts
 * per-op work for the cost model and forwards every access to the
 * injector (FaultInjector::observeAccess), so armed fault plans fire
 * mid-operation exactly as they would with the injector attached
 * directly.
 *
 * Lifecycle on faults (all handled here, never propagated):
 *
 *  - PowerFailure  -> recoverAll(), back to Serving (crash TTR is
 *    charged by the service from the recovery report);
 *  - AbortBudgetExhausted -> recoverAll() resyncs the logs and the
 *    service opens a load-shed window;
 *  - MediaError    -> live-log rollback via recoverAll(); if the
 *    poison sits in a value slab the item is quarantined (erased):
 *    the key is lost, the shard is not;
 *  - UnrecoverableCorruption -> Degraded: reads keep being served
 *    from the (unvouched-for) image via non-transactional lookups,
 *    writes are rejected. No global panic.
 */

#ifndef PMEMSPEC_SERVICE_SHARD_HH
#define PMEMSPEC_SERVICE_SHARD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "observe/spec_profile.hh"
#include "pmds/kv_store.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"
#include "service/cost_model.hh"
#include "service/service_config.hh"

namespace pmemspec::service
{

/** Shard availability state. */
enum class ShardState : std::uint8_t
{
    Serving,
    Recovering, ///< transient: inside a fault-handling pass
    Degraded,   ///< read-only: recovery refused to vouch for the image
};

const char *shardStateName(ShardState s);

/** See the file comment. */
class Shard
{
  public:
    Shard(unsigned id, const ServiceConfig &cfg);
    ~Shard();

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /** How one operation ended. */
    enum class OpStatus : std::uint8_t
    {
        Ok,               ///< committed (Read hit counts as Ok)
        Miss,             ///< committed, key absent
        PowerFailure,     ///< power cut mid-op; shard recovered
        AbortBudget,      ///< abort budget tripped; logs resynced
        MediaError,       ///< poisoned word hit; rolled back
        RejectedDegraded, ///< write refused in degraded mode
    };

    struct OpResult
    {
        OpStatus status = OpStatus::Ok;
        std::optional<std::uint8_t> value; ///< Read result on Ok
        OpWork work;                       ///< observed functional work
        /** Set when fault handling ran a recovery/rollback pass. */
        bool recovered = false;
        runtime::RecoveryReport report;
        /** The fault was a power cut (full restart TTR applies). */
        bool crashed = false;
        /** A poisoned item was quarantined (key lost). */
        std::optional<std::uint64_t> quarantinedKey;
    };

    /** Preload one key (no faults armed, not counted as traffic). */
    void preload(std::uint64_t key, std::uint8_t fill);

    /** Execute one client op functionally; never throws. `scan_len`
     *  and `stride` only apply to OpKind::Scan. */
    OpResult apply(OpKind op, std::uint64_t key, std::uint8_t fill,
                   unsigned scan_len = 0, std::uint64_t stride = 1);

    // ---- Online fault hooks (the service's fault scheduler) ----

    /** Arm (or re-arm) a mid-op power cut at persist prefix
     *  `prefix`; fires during the next op that queues enough
     *  persists. */
    void armPowerCut(std::size_t prefix);

    /** Arm a LoadStale storm: one fire every `period` accesses,
     *  `count` fires total. */
    void armStorm(std::uint64_t period, std::uint64_t count);

    /** True while an armed storm still has fires left. */
    bool stormActive() const;

    /** Poison one word of `key`'s value slab (offset 8, so the
     *  checker's 1-byte lookup stays readable while a full GET
     *  faults). @return false when the key is absent. */
    bool poisonValue(std::uint64_t key);

    /** Poison the undo log's entry-count word: the next recovery
     *  pass cannot verify the log and degrades the shard. */
    void poisonLog();

    /** Disarm every plan (a fired PowerCutPlan stays spent). */
    void disarmPlans();

    /** Attach a per-FASE-site speculation profile (nullptr detaches).
     *  Registers this shard's named sites -- preload, one per OpKind,
     *  quarantine -- in a fixed order, so every domain's profile has
     *  an identical site table and merges byte-stably; also forwards
     *  the profile to the runtime for misspec/budget attribution. */
    void setSpecProfile(observe::SpecProfile *p);

    /** Window-residency attribution for the profile: the service's
     *  modeled busy time for one op at the op's site. */
    void
    noteServiceTime(OpKind op, Tick busy)
    {
        if (prof && prof->enabled())
            prof->recordResidency(siteFor(op), busy);
    }

    // ---- Introspection ----

    unsigned id() const { return shardId; }
    ShardState state() const { return state_; }
    const pmds::KvStore &kv() const { return *store; }
    const runtime::PersistentMemory &pm() const { return *pmem; }
    runtime::FaseRuntime &runtime() { return *rt; }
    faultinject::FaultInjector &injector() { return *inj; }
    const runtime::RecoveryReport &lastReport() const
    {
        return lastReport_;
    }
    std::uint64_t recoveries() const { return recoveryPasses; }

  private:
    /** Run recoverAll, absorbing UnrecoverableCorruption into the
     *  Degraded state. Fills `res.report` / `res.recovered`. */
    void recover(OpResult &res);

    /** The FASE body of one op (throws the faults it hits). */
    void runOp(runtime::Transaction &tx, OpKind op,
               std::uint64_t key, std::uint8_t fill,
               unsigned scan_len, std::uint64_t stride,
               std::optional<std::uint8_t> &value, bool &present);

    unsigned shardId;
    ServiceConfig cfg;
    std::unique_ptr<runtime::PersistentMemory> pmem;
    std::unique_ptr<runtime::VirtualOs> os;
    std::unique_ptr<runtime::FaseRuntime> rt;
    std::unique_ptr<pmds::KvStore> store;
    std::unique_ptr<faultinject::FaultInjector> inj;

    ShardState state_ = ShardState::Serving;
    runtime::RecoveryReport lastReport_;
    std::uint64_t recoveryPasses = 0;

    /** Live op-work accounting (filled by the PM observer). */
    OpWork work;
    bool counting = false;
    /** Mute plan forwarding (recovery replay must not re-trigger). */
    bool muted = false;
    /** The armed storm plan, if any (owned by the injector). */
    faultinject::PeriodicPlan *storm = nullptr;
    /** Observer-armed mid-op power cut: fire when the current op
     *  queues persist pendingCut+1 (exact per-op prefix semantics;
     *  a FaultPlan's cumulative write count would drift across ops
     *  because the queue drains at every commit). */
    std::optional<std::size_t> pendingCut;
    std::size_t cutWrites = 0;

    /** Per-FASE-site profile (owned by the service's domain). */
    observe::SpecProfile *prof = nullptr;
    unsigned sitePreload = 0;
    unsigned siteOp[4] = {0, 0, 0, 0}; ///< indexed by OpKind
    unsigned siteQuarantine = 0;
    unsigned siteFor(OpKind op) const
    {
        return siteOp[static_cast<std::size_t>(op)];
    }
};

} // namespace pmemspec::service

#endif // PMEMSPEC_SERVICE_SHARD_HH
