#include "pmds_workloads.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>

#include "pmds/kv_store.hh"
#include "pmds/pm_array.hh"
#include "pmds/pm_hashmap.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_rbtree.hh"

namespace pmemspec::faultinject
{

namespace
{

using runtime::Transaction;

/** Array Swaps: 32 x 64B elements, a fixed schedule of swaps. The
 *  shadow model is a plain vector permuted the same way. */
class ArrayWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_array"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        arr = std::make_unique<pmds::PmArray>(pm, elems, 64);
        model.assign(elems, 0);
        for (std::size_t i = 0; i < elems; ++i) {
            arr->init(i, i * 3 + 1);
            model[i] = i * 3 + 1;
        }
        pm.persistAll();
    }

    std::size_t numOps() const override { return swaps.size(); }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        arr->swap(tx, swaps[op].first, swaps[op].second);
    }

    void
    applyToModel(std::size_t op) override
    {
        std::swap(model[swaps[op].first], model[swaps[op].second]);
    }

    bool
    matchesModel() const override
    {
        for (std::size_t i = 0; i < elems; ++i) {
            if (arr->get(i) != model[i])
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return arr->checkInvariants(); }

  private:
    static constexpr std::size_t elems = 32;
    const std::vector<std::pair<std::size_t, std::size_t>> swaps{
        {0, 31}, {5, 7}, {5, 9}, {0, 1}, {16, 24}, {31, 16}};

    std::unique_ptr<pmds::PmArray> arr;
    std::vector<std::uint64_t> model;
};

/** Concurrent Queue structure: enqueues and dequeues against a
 *  std::deque shadow. */
class QueueWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_queue"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        q = std::make_unique<pmds::PmQueue>(pm, 64);
        model.clear();
        for (std::uint64_t v : {101, 102, 103}) {
            rt.runFase(0, [&](Transaction &tx) { q->enqueue(tx, v); });
            model.push_back(v);
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: q->enqueue(tx, 201); break;
          case 1: (void)q->dequeue(tx); break;
          case 2: q->enqueue(tx, 202); break;
          case 3: (void)q->dequeue(tx); break;
          case 4: (void)q->dequeue(tx); break;
          default: q->enqueue(tx, 203); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model.push_back(201); break;
          case 1: model.pop_front(); break;
          case 2: model.push_back(202); break;
          case 3: model.pop_front(); break;
          case 4: model.pop_front(); break;
          default: model.push_back(203); break;
        }
    }

    bool
    matchesModel() const override
    {
        const auto live = q->contents();
        return std::equal(live.begin(), live.end(), model.begin(),
                          model.end());
    }

    bool checkInvariants() const override { return q->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmQueue> q;
    std::deque<std::uint64_t> model;
};

/** Chained hashmap: puts (insert + update) and erases (present and
 *  absent) against a std::map shadow. */
class HashmapWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_hashmap"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        map = std::make_unique<pmds::PmHashmap>(pm, 16);
        model.clear();
        for (std::uint64_t k = 1; k <= 8; ++k) {
            rt.runFase(0, [&](Transaction &tx) {
                map->put(tx, k, k * 10);
            });
            model[k] = k * 10;
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: map->put(tx, 100, 1000); break;    // insert
          case 1: map->put(tx, 3, 333); break;       // update
          case 2: (void)map->erase(tx, 5); break;    // erase head-chain
          case 3: (void)map->erase(tx, 77); break;   // erase absent
          case 4: map->put(tx, 21, 210); break;      // chain collision
          default: (void)map->erase(tx, 100); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[100] = 1000; break;
          case 1: model[3] = 333; break;
          case 2: model.erase(5); break;
          case 3: model.erase(77); break;
          case 4: model[21] = 210; break;
          default: model.erase(100); break;
        }
    }

    bool
    matchesModel() const override
    {
        if (map->size() != model.size())
            return false;
        for (const auto &[k, v] : model) {
            if (map->lookup(k) != std::optional<std::uint64_t>{v})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return map->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmHashmap> map;
    std::map<std::uint64_t, std::uint64_t> model;
};

/** Red-black tree: inserts and erases that exercise the rotation and
 *  fixup paths (many blocks logged per FASE). */
class RbTreeWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_rbtree"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        tree = std::make_unique<pmds::PmRbTree>(pm);
        model.clear();
        for (std::uint64_t k : {50, 20, 80, 10, 90, 60, 30}) {
            rt.runFase(0, [&](Transaction &tx) {
                tree->insert(tx, k, k + 1);
            });
            model[k] = k + 1;
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: tree->insert(tx, 40, 41); break;
          case 1: tree->insert(tx, 70, 71); break;
          case 2: (void)tree->erase(tx, 20); break;  // two children
          case 3: tree->insert(tx, 25, 26); break;
          case 4: (void)tree->erase(tx, 90); break;
          default: tree->insert(tx, 55, 56); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[40] = 41; break;
          case 1: model[70] = 71; break;
          case 2: model.erase(20); break;
          case 3: model[25] = 26; break;
          case 4: model.erase(90); break;
          default: model[55] = 56; break;
        }
    }

    bool
    matchesModel() const override
    {
        if (tree->size() != model.size())
            return false;
        for (const auto &[k, v] : model) {
            if (tree->lookup(k) != std::optional<std::uint64_t>{v})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return tree->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmRbTree> tree;
    std::map<std::uint64_t, std::uint64_t> model;
};

/** Memcached-like KV store with LRU tracking on: SET/GET/DELETE. A
 *  GET is persistence-intensive too (LRU bump + hit counter), so it
 *  gets its own crash points. The shadow tracks key -> fill byte. */
class KvWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "kv_store"; }

    std::size_t pmBytes() const override { return std::size_t{1} << 21; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        pmds::KvConfig cfg;
        cfg.buckets = 16;
        cfg.valueBytes = 128;
        cfg.lruTracking = true;
        kv = std::make_unique<pmds::KvStore>(pm, cfg);
        model.clear();
        for (std::uint64_t k = 1; k <= 4; ++k) {
            rt.runFase(0, [&](Transaction &tx) {
                kv->set(tx, k, static_cast<std::uint8_t>(k));
            });
            model[k] = static_cast<std::uint8_t>(k);
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: kv->set(tx, 10, 0xAA); break;       // insert
          case 1: kv->set(tx, 2, 0xBB); break;        // overwrite
          case 2: (void)kv->get(tx, 1); break;        // LRU bump
          case 3: (void)kv->erase(tx, 3); break;
          case 4: (void)kv->get(tx, 10); break;
          default: (void)kv->erase(tx, 10); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[10] = 0xAA; break;
          case 1: model[2] = 0xBB; break;
          case 2: break; // GET leaves the mapping unchanged
          case 3: model.erase(3); break;
          case 4: break;
          default: model.erase(10); break;
        }
    }

    bool
    matchesModel() const override
    {
        if (kv->size() != model.size())
            return false;
        for (const auto &[k, fill] : model) {
            if (kv->lookup(k) != std::optional<std::uint8_t>{fill})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return kv->checkInvariants(); }

  private:
    std::unique_ptr<pmds::KvStore> kv;
    std::map<std::uint64_t, std::uint8_t> model;
};

} // namespace

std::vector<std::unique_ptr<CrashWorkload>>
makeStandardWorkloads()
{
    std::vector<std::unique_ptr<CrashWorkload>> out;
    out.push_back(std::make_unique<ArrayWorkload>());
    out.push_back(std::make_unique<QueueWorkload>());
    out.push_back(std::make_unique<HashmapWorkload>());
    out.push_back(std::make_unique<RbTreeWorkload>());
    out.push_back(std::make_unique<KvWorkload>());
    return out;
}

} // namespace pmemspec::faultinject
