#include "pmds_workloads.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <map>

#include "pmds/kv_store.hh"
#include "pmds/pm_array.hh"
#include "pmds/pm_hashmap.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_rbtree.hh"
#include "pmds/tatp.hh"
#include "pmds/tpcc.hh"
#include "pmds/vacation.hh"

namespace pmemspec::faultinject
{

namespace
{

using runtime::Transaction;

/** Array Swaps: 32 x 64B elements, a fixed schedule of swaps. The
 *  shadow model is a plain vector permuted the same way. */
class ArrayWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_array"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        arr = std::make_unique<pmds::PmArray>(pm, elems, 64);
        model.assign(elems, 0);
        for (std::size_t i = 0; i < elems; ++i) {
            arr->init(i, i * 3 + 1);
            model[i] = i * 3 + 1;
        }
        pm.persistAll();
    }

    std::size_t numOps() const override { return swaps.size(); }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        arr->swap(tx, swaps[op].first, swaps[op].second);
    }

    void
    applyToModel(std::size_t op) override
    {
        std::swap(model[swaps[op].first], model[swaps[op].second]);
    }

    bool
    matchesModel() const override
    {
        for (std::size_t i = 0; i < elems; ++i) {
            if (arr->get(i) != model[i])
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return arr->checkInvariants(); }

  private:
    static constexpr std::size_t elems = 32;
    const std::vector<std::pair<std::size_t, std::size_t>> swaps{
        {0, 31}, {5, 7}, {5, 9}, {0, 1}, {16, 24}, {31, 16}};

    std::unique_ptr<pmds::PmArray> arr;
    std::vector<std::uint64_t> model;
};

/** Concurrent Queue structure: enqueues and dequeues against a
 *  std::deque shadow. */
class QueueWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_queue"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        q = std::make_unique<pmds::PmQueue>(pm, 64);
        model.clear();
        for (std::uint64_t v : {101, 102, 103}) {
            rt.runFase(0, [&](Transaction &tx) { q->enqueue(tx, v); });
            model.push_back(v);
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: q->enqueue(tx, 201); break;
          case 1: (void)q->dequeue(tx); break;
          case 2: q->enqueue(tx, 202); break;
          case 3: (void)q->dequeue(tx); break;
          case 4: (void)q->dequeue(tx); break;
          default: q->enqueue(tx, 203); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model.push_back(201); break;
          case 1: model.pop_front(); break;
          case 2: model.push_back(202); break;
          case 3: model.pop_front(); break;
          case 4: model.pop_front(); break;
          default: model.push_back(203); break;
        }
    }

    bool
    matchesModel() const override
    {
        const auto live = q->contents();
        return std::equal(live.begin(), live.end(), model.begin(),
                          model.end());
    }

    bool checkInvariants() const override { return q->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmQueue> q;
    std::deque<std::uint64_t> model;
};

/** Chained hashmap: puts (insert + update) and erases (present and
 *  absent) against a std::map shadow. */
class HashmapWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_hashmap"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        map = std::make_unique<pmds::PmHashmap>(pm, 16);
        model.clear();
        for (std::uint64_t k = 1; k <= 8; ++k) {
            rt.runFase(0, [&](Transaction &tx) {
                map->put(tx, k, k * 10);
            });
            model[k] = k * 10;
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: map->put(tx, 100, 1000); break;    // insert
          case 1: map->put(tx, 3, 333); break;       // update
          case 2: (void)map->erase(tx, 5); break;    // erase head-chain
          case 3: (void)map->erase(tx, 77); break;   // erase absent
          case 4: map->put(tx, 21, 210); break;      // chain collision
          default: (void)map->erase(tx, 100); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[100] = 1000; break;
          case 1: model[3] = 333; break;
          case 2: model.erase(5); break;
          case 3: model.erase(77); break;
          case 4: model[21] = 210; break;
          default: model.erase(100); break;
        }
    }

    bool
    matchesModel() const override
    {
        if (map->size() != model.size())
            return false;
        for (const auto &[k, v] : model) {
            if (map->lookup(k) != std::optional<std::uint64_t>{v})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return map->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmHashmap> map;
    std::map<std::uint64_t, std::uint64_t> model;
};

/** Red-black tree: inserts and erases that exercise the rotation and
 *  fixup paths (many blocks logged per FASE). */
class RbTreeWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "pm_rbtree"; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        tree = std::make_unique<pmds::PmRbTree>(pm);
        model.clear();
        for (std::uint64_t k : {50, 20, 80, 10, 90, 60, 30}) {
            rt.runFase(0, [&](Transaction &tx) {
                tree->insert(tx, k, k + 1);
            });
            model[k] = k + 1;
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: tree->insert(tx, 40, 41); break;
          case 1: tree->insert(tx, 70, 71); break;
          case 2: (void)tree->erase(tx, 20); break;  // two children
          case 3: tree->insert(tx, 25, 26); break;
          case 4: (void)tree->erase(tx, 90); break;
          default: tree->insert(tx, 55, 56); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[40] = 41; break;
          case 1: model[70] = 71; break;
          case 2: model.erase(20); break;
          case 3: model[25] = 26; break;
          case 4: model.erase(90); break;
          default: model[55] = 56; break;
        }
    }

    bool
    matchesModel() const override
    {
        if (tree->size() != model.size())
            return false;
        for (const auto &[k, v] : model) {
            if (tree->lookup(k) != std::optional<std::uint64_t>{v})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return tree->checkInvariants(); }

  private:
    std::unique_ptr<pmds::PmRbTree> tree;
    std::map<std::uint64_t, std::uint64_t> model;
};

/** Memcached-like KV store with LRU tracking on: SET/GET/DELETE. A
 *  GET is persistence-intensive too (LRU bump + hit counter), so it
 *  gets its own crash points. The shadow tracks key -> fill byte. */
class KvWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "kv_store"; }

    std::size_t pmBytes() const override { return std::size_t{1} << 21; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        pmds::KvConfig cfg;
        cfg.buckets = 16;
        cfg.valueBytes = 128;
        cfg.lruTracking = true;
        kv = std::make_unique<pmds::KvStore>(pm, cfg);
        model.clear();
        for (std::uint64_t k = 1; k <= 4; ++k) {
            rt.runFase(0, [&](Transaction &tx) {
                kv->set(tx, k, static_cast<std::uint8_t>(k));
            });
            model[k] = static_cast<std::uint8_t>(k);
        }
    }

    std::size_t numOps() const override { return 6; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        switch (op) {
          case 0: kv->set(tx, 10, 0xAA); break;       // insert
          case 1: kv->set(tx, 2, 0xBB); break;        // overwrite
          case 2: (void)kv->get(tx, 1); break;        // LRU bump
          case 3: (void)kv->erase(tx, 3); break;
          case 4: (void)kv->get(tx, 10); break;
          default: (void)kv->erase(tx, 10); break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        switch (op) {
          case 0: model[10] = 0xAA; break;
          case 1: model[2] = 0xBB; break;
          case 2: break; // GET leaves the mapping unchanged
          case 3: model.erase(3); break;
          case 4: break;
          default: model.erase(10); break;
        }
    }

    bool
    matchesModel() const override
    {
        if (kv->size() != model.size())
            return false;
        for (const auto &[k, fill] : model) {
            if (kv->lookup(k) != std::optional<std::uint8_t>{fill})
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return kv->checkInvariants(); }

  private:
    std::unique_ptr<pmds::KvStore> kv;
    std::map<std::uint64_t, std::uint8_t> model;
};

/** TATP UPDATE_LOCATION over a 12-subscriber table: index probe plus
 *  row overwrite per op. The shadow is the expected VLR location per
 *  subscriber. */
class TatpWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "tatp"; }

    std::size_t pmBytes() const override { return std::size_t{1} << 21; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        db = std::make_unique<pmds::TatpDb>(pm, subscribers);
        model.assign(subscribers, 0);
    }

    std::size_t numOps() const override { return 5; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        const auto [s, loc] = schedule(op);
        db->updateLocation(tx, subNbr(s), loc);
    }

    void
    applyToModel(std::size_t op) override
    {
        const auto [s, loc] = schedule(op);
        model[s] = loc;
    }

    bool
    matchesModel() const override
    {
        for (std::uint64_t s = 0; s < subscribers; ++s) {
            if (db->location(s) != model[s])
                return false;
        }
        return true;
    }

    bool checkInvariants() const override { return db->checkInvariants(); }

  private:
    static constexpr std::size_t subscribers = 12;

    /** The TATP spec's reversible subscriber numbering (tatp.cc). */
    static std::uint64_t
    subNbr(std::uint64_t s)
    {
        return s * 2654435761ULL % (std::uint64_t{1} << 40);
    }

    static std::pair<std::uint64_t, std::uint32_t>
    schedule(std::size_t op)
    {
        // Repeats subscriber 3 so an update overwrites an update.
        static constexpr std::pair<std::uint64_t, std::uint32_t> ops[] = {
            {3, 100}, {7, 200}, {3, 300}, {0, 400}, {11, 500}};
        return ops[op];
    }

    std::unique_ptr<pmds::TatpDb> db;
    std::vector<std::uint32_t> model;
};

/** TPC-C NEW_ORDER over a two-district, 16-item warehouse. The
 *  shadow tracks the aggregate checkers: per-district next_o_id,
 *  orders placed, and total stock. */
class TpccWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "tpcc"; }

    std::size_t pmBytes() const override { return std::size_t{1} << 21; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        pmds::TpccConfig cfg;
        cfg.districts = 2;
        cfg.customersPerDistrict = 4;
        cfg.items = 16;
        cfg.maxOrders = 64;
        db = std::make_unique<pmds::TpccDb>(pm, cfg);
        nextOid = {db->nextOrderId(0), db->nextOrderId(1)};
        orders = db->ordersPlaced();
        stockSum = db->totalStock();
    }

    std::size_t numOps() const override { return 2; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        db->newOrder(tx, district(op), op % 4, lines(op));
    }

    void
    applyToModel(std::size_t op) override
    {
        ++nextOid[district(op)];
        ++orders;
        for (const auto &l : lines(op))
            stockSum -= l.quantity;
    }

    bool
    matchesModel() const override
    {
        return db->nextOrderId(0) == nextOid[0] &&
               db->nextOrderId(1) == nextOid[1] &&
               db->ordersPlaced() == orders &&
               db->totalStock() == stockSum;
    }

    bool checkInvariants() const override { return db->checkInvariants(); }

  private:
    static unsigned district(std::size_t op) { return op % 2; }

    /** Five lines (the TPC-C minimum) with fixed items/quantities. */
    static std::vector<pmds::OrderLineReq>
    lines(std::size_t op)
    {
        std::vector<pmds::OrderLineReq> out;
        for (std::uint32_t i = 0; i < 5; ++i)
            out.push_back({static_cast<std::uint32_t>(
                               (op * 5 + i * 3) % 16),
                           i + 1});
        return out;
    }

    std::unique_ptr<pmds::TpccDb> db;
    std::array<std::uint64_t, 2> nextOid{};
    std::uint64_t orders = 0;
    std::uint64_t stockSum = 0;
};

/** Vacation MAKE_RESERVATION / UPDATE_TABLES over 8 resources per
 *  table. The shadow tracks the seat-conservation aggregates. */
class VacationWorkload : public CrashWorkload
{
  public:
    const char *name() const override { return "vacation"; }

    std::size_t pmBytes() const override { return std::size_t{1} << 21; }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        (void)rt;
        pmds::VacationConfig cfg;
        cfg.resourcesPerTable = 8;
        cfg.customers = 4;
        cfg.numQueries = 2;
        cfg.partitionsPerTable = 2;
        db = std::make_unique<pmds::VacationDb>(pm, cfg);
        reservations = db->totalReservations();
        usedSeats = db->totalUsedSeats();
    }

    std::size_t numOps() const override { return 4; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        using pmds::ResourceKind;
        switch (op) {
          case 0:
            db->makeReservation(tx, ResourceKind::Car, {1, 3}, 0);
            break;
          case 1:
            db->makeReservation(tx, ResourceKind::Flight, {2, 5}, 1);
            break;
          case 2:
            db->updateTables(tx, ResourceKind::Room, 4, 999);
            break;
          default:
            db->makeReservation(tx, ResourceKind::Room, {4, 6}, 2);
            break;
        }
    }

    void
    applyToModel(std::size_t op) override
    {
        // Every resource starts with free seats, so each reservation
        // op books exactly one seat; the price update books none.
        if (op != 2) {
            ++reservations;
            ++usedSeats;
        }
    }

    bool
    matchesModel() const override
    {
        return db->totalReservations() == reservations &&
               db->totalUsedSeats() == usedSeats;
    }

    bool checkInvariants() const override { return db->checkInvariants(); }

  private:
    std::unique_ptr<pmds::VacationDb> db;
    std::uint64_t reservations = 0;
    std::uint64_t usedSeats = 0;
};

/**
 * Two block-disjoint logged cells per FASE, with the undo logs'
 * ordering tags toggled at setup. Two cells matter: the count bump
 * shares log block 0 with entry slot 0, so entry 0's publication is
 * accidentally block-order-protected -- the bug window only opens at
 * the *second* log entry of a FASE, whose slot is block-disjoint
 * from the count word.
 */
class SpecOrderingWorkload : public CrashWorkload
{
  public:
    explicit SpecOrderingWorkload(bool ordering_tags)
        : tags(ordering_tags)
    {
    }

    const char *
    name() const override
    {
        return tags ? "ordered_undo" : "misordered_undo";
    }

    void
    setup(runtime::PersistentMemory &pm,
          runtime::FaseRuntime &rt) override
    {
        rt.setLogOrderingTags(tags);
        mem = &pm;
        cells = pm.alloc(4 * 64, 64);
        pm.writeU64(cellA(), 1);
        pm.writeU64(cellB(), 2);
        pm.persistAll();
        model = {1, 2};
    }

    std::size_t numOps() const override { return 3; }

    void
    runOp(Transaction &tx, std::size_t op) override
    {
        tx.writeU64(cellA(), 0x1000 + op);
        tx.writeU64(cellB(), 0x2000 + op);
    }

    void
    applyToModel(std::size_t op) override
    {
        model = {0x1000 + op, 0x2000 + op};
    }

    bool
    matchesModel() const override
    {
        return mem->readU64(cellA()) == model.first &&
               mem->readU64(cellB()) == model.second;
    }

    bool checkInvariants() const override { return true; }

  private:
    Addr cellA() const { return cells; }
    Addr cellB() const { return cells + 128; }

    bool tags;
    runtime::PersistentMemory *mem = nullptr;
    Addr cells = 0;
    std::pair<std::uint64_t, std::uint64_t> model{};
};

} // namespace

std::vector<std::unique_ptr<CrashWorkload>>
makeStandardWorkloads()
{
    std::vector<std::unique_ptr<CrashWorkload>> out;
    out.push_back(std::make_unique<ArrayWorkload>());
    out.push_back(std::make_unique<QueueWorkload>());
    out.push_back(std::make_unique<HashmapWorkload>());
    out.push_back(std::make_unique<RbTreeWorkload>());
    out.push_back(std::make_unique<KvWorkload>());
    return out;
}

std::vector<std::unique_ptr<CrashWorkload>>
makeMacroWorkloads()
{
    std::vector<std::unique_ptr<CrashWorkload>> out;
    out.push_back(std::make_unique<TatpWorkload>());
    out.push_back(std::make_unique<TpccWorkload>());
    out.push_back(std::make_unique<VacationWorkload>());
    return out;
}

std::vector<std::unique_ptr<CrashWorkload>>
makeAllWorkloads()
{
    auto out = makeStandardWorkloads();
    for (auto &wl : makeMacroWorkloads())
        out.push_back(std::move(wl));
    return out;
}

std::unique_ptr<CrashWorkload>
makeSpecOrderingBugWorkload(bool ordering_tags)
{
    return std::make_unique<SpecOrderingWorkload>(ordering_tags);
}

WorkloadFactory
workloadFactory(const std::string &name)
{
    if (name == "pm_array")
        return [] { return std::make_unique<ArrayWorkload>(); };
    if (name == "pm_queue")
        return [] { return std::make_unique<QueueWorkload>(); };
    if (name == "pm_hashmap")
        return [] { return std::make_unique<HashmapWorkload>(); };
    if (name == "pm_rbtree")
        return [] { return std::make_unique<RbTreeWorkload>(); };
    if (name == "kv_store")
        return [] { return std::make_unique<KvWorkload>(); };
    if (name == "tatp")
        return [] { return std::make_unique<TatpWorkload>(); };
    if (name == "tpcc")
        return [] { return std::make_unique<TpccWorkload>(); };
    if (name == "vacation")
        return [] { return std::make_unique<VacationWorkload>(); };
    if (name == "ordered_undo")
        return [] { return makeSpecOrderingBugWorkload(true); };
    if (name == "misordered_undo")
        return [] { return makeSpecOrderingBugWorkload(false); };
    return {};
}

} // namespace pmemspec::faultinject
