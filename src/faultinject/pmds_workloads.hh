/**
 * @file
 * CrashWorkload adapters over the five persistent data structures
 * (pm_array, pm_queue, pm_hashmap, pm_rbtree, kv_store), each paired
 * with a volatile shadow model, plus downsized adapters over the
 * macro workloads (TATP, TPC-C, Vacation) and a deliberately
 * mis-ordered undo-log workload the reorder explorer must catch.
 * Together with exploreCrashPoints() they give the repo an
 * exhaustive crash-consistency check for every structure the
 * benchmarks exercise.
 */

#ifndef PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH
#define PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "faultinject/crash_explorer.hh"

namespace pmemspec::faultinject
{

/** One adapter per persistent data structure, ready to explore. */
std::vector<std::unique_ptr<CrashWorkload>> makeStandardWorkloads();

/** Downsized TATP / TPC-C / Vacation adapters (small tables, fixed
 *  transaction schedules) so the macro workloads fit the explorer's
 *  per-crash-point re-execution budget. */
std::vector<std::unique_ptr<CrashWorkload>> makeMacroWorkloads();

/** The five structures plus the three macro workloads. */
std::vector<std::unique_ptr<CrashWorkload>> makeAllWorkloads();

/**
 * A raw two-cell undo-logged workload whose setup toggles the undo
 * logs' ordering (spec-barrier) tags via
 * FaseRuntime::setLogOrderingTags(ordering_tags).
 *
 * With the tags off the log's count bump may overtake the very
 * entry it publishes inside the speculation window -- the classic
 * misordered-publication bug. Every prefix crash state still
 * recovers (store order protects prefixes), so prefix-only
 * exploration *provably cannot* see the bug; only the reorder
 * explorer reaches the count-without-entry states where recovery
 * must report corruption. With the tags on (the correct runtime)
 * the same workload passes the reorder exploration too -- the
 * paired oracle test for the model checker.
 */
std::unique_ptr<CrashWorkload>
makeSpecOrderingBugWorkload(bool ordering_tags);

/**
 * Factory for fresh instances of the named workload (every name
 * makeAllWorkloads() and the seeded-bug twins answer to), the form
 * exploreCrashPointsParallel() needs to build per-op replicas.
 * Returns an empty function for an unknown name.
 */
WorkloadFactory workloadFactory(const std::string &name);

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH
