/**
 * @file
 * CrashWorkload adapters over the five persistent data structures
 * (pm_array, pm_queue, pm_hashmap, pm_rbtree, kv_store), each paired
 * with a volatile shadow model. Together with exploreCrashPoints()
 * they give the repo an exhaustive crash-consistency check for every
 * structure the microbenchmarks exercise.
 */

#ifndef PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH
#define PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH

#include <memory>
#include <vector>

#include "faultinject/crash_explorer.hh"

namespace pmemspec::faultinject
{

/** One adapter per persistent data structure, ready to explore. */
std::vector<std::unique_ptr<CrashWorkload>> makeStandardWorkloads();

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_PMDS_WORKLOADS_HH
