/**
 * @file
 * Systematic crash-point exploration.
 *
 * Under PMEM-Spec's strict persistency the durable state after a
 * power failure is always an in-order *prefix* of the persist stream
 * (PersistentMemory models exactly that). The explorer exploits this
 * to be exhaustive rather than sampled: for every operation of a
 * workload it snapshots the PM, then repeatedly re-runs the operation
 * with a PowerCutPlan armed at durable prefix k = 0, 1, 2, ... Each
 * armed run crashes after exactly k persists, replays recovery, and
 * checks the oracles:
 *
 *  - all-or-nothing: the recovered structure equals the pre-operation
 *    shadow model (the cut landed before the commit record, so the
 *    FASE must vanish);
 *  - structure invariants: the workload's own consistency check;
 *  - image convergence: after recovery and a persist barrier the
 *    volatile and persisted images must be byte-identical.
 *
 * The k that never fires is the run whose persist stream fits inside
 * the allowed prefix -- i.e. the committed run. That terminates the
 * inner loop and simultaneously discovers the operation's persist
 * count, so every crash point of every operation is covered without
 * the workload declaring its write counts.
 */

#ifndef PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH
#define PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::faultinject
{

/**
 * A workload the explorer can crash at every persist prefix. The
 * workload owns both the persistent structure under test and a
 * volatile shadow model of its expected contents.
 */
class CrashWorkload
{
  public:
    virtual ~CrashWorkload() = default;

    virtual const char *name() const = 0;

    /** PM arena size for this workload. */
    virtual std::size_t pmBytes() const { return std::size_t{1} << 21; }

    /** Undo-log bytes for the (single) worker thread. */
    virtual std::size_t logBytes() const { return std::size_t{1} << 17; }

    /** Build the structure, seed initial contents and reset the
     *  shadow model to match. Runs before any fault is armed. */
    virtual void setup(runtime::PersistentMemory &pm,
                       runtime::FaseRuntime &rt) = 0;

    virtual std::size_t numOps() const = 0;

    /** The FASE body of operation `op`. May execute several times
     *  (abort/retry), so it must be deterministic given the PM
     *  state -- exactly the contract a FASE already has. */
    virtual void runOp(runtime::Transaction &tx, std::size_t op) = 0;

    /** Advance the shadow model past operation `op` (called once,
     *  after the operation committed). */
    virtual void applyToModel(std::size_t op) = 0;

    /** Live structure contents equal the shadow model. */
    virtual bool matchesModel() const = 0;

    /** Structure-specific internal invariants hold. */
    virtual bool checkInvariants() const = 0;
};

/** Outcome of exploring one workload. */
struct ExploreResult
{
    std::string workload;
    std::size_t ops = 0;         ///< operations explored
    std::size_t crashPoints = 0; ///< crash/recover trials executed
    std::size_t tornTrials = 0;  ///< torn-frontier crash trials
    /** Recoveries that refused with UnrecoverableCorruption: an
     *  *explicit* report, so it satisfies the no-silent-corruption
     *  oracle for torn trials (and is a failure for clean-prefix
     *  trials, which can never legitimately corrupt). */
    std::size_t corruptionReported = 0;
    std::size_t failures = 0;    ///< oracle violations
    std::vector<std::string> messages; ///< one per violation

    bool passed() const { return failures == 0; }
};

/** Knobs for the exploration. */
struct ExploreOptions
{
    /**
     * Torn-write mode: for every crash point whose frontier persist
     * spans more than one 8-byte word, additionally re-run the
     * operation with a TornWritePlan for a set of word subsets of
     * that frontier made durable. The oracle weakens from
     * "recovered state == pre-operation state" to *no silent
     * corruption*: recovery must either reproduce the pre-operation
     * state or refuse with an explicit UnrecoverableCorruption
     * report -- it must never hand back garbage as if it were fine.
     */
    bool tornWrites = false;
    /** Torn subsets per crash point: exhaustive (every proper
     *  nonempty subset) when the frontier is at most 4 words wide,
     *  else a bounded pattern set capped at this many masks. */
    unsigned maxTornSubsets = 12;
};

/** Run the exhaustive crash-prefix enumeration over one workload. */
ExploreResult exploreCrashPoints(CrashWorkload &wl,
                                 const ExploreOptions &opts = {});

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH
