/**
 * @file
 * Systematic crash-point exploration.
 *
 * Under PMEM-Spec's strict persistency the durable state after a
 * power failure is always an in-order *prefix* of the persist stream
 * (PersistentMemory models exactly that). The explorer exploits this
 * to be exhaustive rather than sampled: for every operation of a
 * workload it snapshots the PM, then repeatedly re-runs the operation
 * with a PowerCutPlan armed at durable prefix k = 0, 1, 2, ... Each
 * armed run crashes after exactly k persists, replays recovery, and
 * checks the oracles:
 *
 *  - all-or-nothing: the recovered structure equals the pre-operation
 *    shadow model (the cut landed before the commit record, so the
 *    FASE must vanish);
 *  - structure invariants: the workload's own consistency check;
 *  - image convergence: after recovery and a persist barrier the
 *    volatile and persisted images must be byte-identical.
 *
 * The k that never fires is the run whose persist stream fits inside
 * the allowed prefix -- i.e. the committed run. That terminates the
 * inner loop and simultaneously discovers the operation's persist
 * count, so every crash point of every operation is covered without
 * the workload declaring its write counts.
 *
 * Two extensions widen the failure model per crash point:
 * tornWrites adds word-subset frontiers (media tearing), and
 * reorderings adds the speculation window's order-consistent persist
 * subsets (see reorder_explorer.hh) -- the crash states where
 * WAW-inversion bugs hide, which no prefix can produce.
 */

#ifndef PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH
#define PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::faultinject
{

/**
 * A workload the explorer can crash at every persist prefix. The
 * workload owns both the persistent structure under test and a
 * volatile shadow model of its expected contents.
 */
class CrashWorkload
{
  public:
    virtual ~CrashWorkload() = default;

    virtual const char *name() const = 0;

    /** PM arena size for this workload. */
    virtual std::size_t pmBytes() const { return std::size_t{1} << 21; }

    /** Undo-log bytes for the (single) worker thread. */
    virtual std::size_t logBytes() const { return std::size_t{1} << 17; }

    /** Build the structure, seed initial contents and reset the
     *  shadow model to match. Runs before any fault is armed. */
    virtual void setup(runtime::PersistentMemory &pm,
                       runtime::FaseRuntime &rt) = 0;

    virtual std::size_t numOps() const = 0;

    /** The FASE body of operation `op`. May execute several times
     *  (abort/retry), so it must be deterministic given the PM
     *  state -- exactly the contract a FASE already has. */
    virtual void runOp(runtime::Transaction &tx, std::size_t op) = 0;

    /** Advance the shadow model past operation `op` (called once,
     *  after the operation committed). */
    virtual void applyToModel(std::size_t op) = 0;

    /** Live structure contents equal the shadow model. */
    virtual bool matchesModel() const = 0;

    /** Structure-specific internal invariants hold. */
    virtual bool checkInvariants() const = 0;
};

/** Outcome of exploring one workload. */
struct ExploreResult
{
    std::string workload;
    std::size_t ops = 0;         ///< operations explored
    std::size_t crashPoints = 0; ///< crash/recover trials executed
    std::size_t tornTrials = 0;  ///< torn-frontier crash trials
    /** Recoveries that refused with UnrecoverableCorruption: an
     *  *explicit* report, so it satisfies the no-silent-corruption
     *  oracle for torn trials (and is a failure for clean-prefix
     *  trials, which can never legitimately corrupt). */
    std::size_t corruptionReported = 0;
    std::size_t failures = 0;    ///< oracle violations
    /** One per violation, capped at ExploreOptions::maxMessages;
     *  the overflow is counted, not stored. */
    std::vector<std::string> messages;
    /** Violation messages dropped by the cap (failures still counts
     *  every one). */
    std::size_t messagesSuppressed = 0;

    // ---- Reorder-mode counters (ExploreOptions::reorderings) ----

    /** Crash windows enumerated (one per crash point with in-flight
     *  entries beyond the cut). */
    std::uint64_t reorderWindows = 0;
    /** Crash states a naive checker would visit at the same window
     *  depth: every (order-consistent subset, application order)
     *  pair. Saturating. */
    std::uint64_t naiveStates = 0;
    /** Reordered states actually recovered and checked (novel
     *  digests). */
    std::uint64_t reorderStatesExplored = 0;
    /** Reordered states skipped because their post-crash image
     *  digest had been seen (reduction (c)). */
    std::uint64_t reorderStatesDeduped = 0;
    /** Persists dropped or skipped as no-ops (reduction (a)). */
    std::uint64_t elidedPersists = 0;
    /** Application orders collapsed into canonical representatives
     *  (reduction (b)). Saturating. */
    std::uint64_t orderingsCollapsed = 0;

    /** States a naive enumerator visits but this one never touches:
     *  the headline number of the three reductions combined. */
    std::uint64_t
    statesPruned() const
    {
        const std::uint64_t visited =
            reorderStatesExplored + reorderStatesDeduped;
        return naiveStates > visited ? naiveStates - visited : 0;
    }

    /** naive / explored -- the measured reduction factor. */
    double
    reductionFactor() const
    {
        const std::uint64_t denom =
            reorderStatesExplored ? reorderStatesExplored : 1;
        return static_cast<double>(naiveStates) /
               static_cast<double>(denom);
    }

    bool passed() const { return failures == 0; }
};

/** Knobs for the exploration. */
struct ExploreOptions
{
    /**
     * Torn-write mode: for every crash point whose frontier persist
     * spans more than one 8-byte word, additionally re-run the
     * operation with a TornWritePlan for a set of word subsets of
     * that frontier made durable. The oracle weakens from
     * "recovered state == pre-operation state" to *no silent
     * corruption*: recovery must either reproduce the pre-operation
     * state or refuse with an explicit UnrecoverableCorruption
     * report -- it must never hand back garbage as if it were fine.
     */
    bool tornWrites = false;
    /** Torn subsets per crash point: exhaustive (every proper
     *  nonempty subset) when the frontier is at most 4 words wide,
     *  else a bounded pattern set capped at this many masks. */
    unsigned maxTornSubsets = 12;

    /**
     * Reorder mode: for every crash point, additionally enumerate
     * the order-consistent subsets of the next `windowDepth`
     * in-flight persists -- the states a power failure can leave
     * when the speculation window reordered persist arrivals -- and
     * run the recovery oracles on each novel one. See
     * reorder_explorer.hh for the ordering model and the three
     * reductions; the counters land in ExploreResult.
     */
    bool reorderings = false;
    /** Window entries enumerated past each crash point. Clamped to
     *  16 (subset-DP limit); callers with a timing model should also
     *  clamp to mem::persistsInWindow(window, path_latency) -- depth
     *  beyond the hardware window checks impossible states. */
    unsigned windowDepth = 6;
    /** Sampled-regime cap when the (elision-reduced) window is wider
     *  than reorderExhaustiveBits. */
    unsigned maxReorderSubsets = 4096;
    /** Exhaustive subset enumeration up to this window size. */
    unsigned reorderExhaustiveBits = 12;
    /** Seed for every sampled (non-exhaustive) mask enumeration,
     *  torn and reorder alike: same seed, same masks, every run. */
    std::uint64_t enumSeed = 0x9e3779b97f4a7c15ULL;
    /** Violation-message cap (first N kept, the rest counted in
     *  messagesSuppressed). */
    std::size_t maxMessages = 64;
};

/** Run the exhaustive crash-prefix enumeration over one workload. */
ExploreResult exploreCrashPoints(CrashWorkload &wl,
                                 const ExploreOptions &opts = {});

/** Builds a fresh, independent instance of one workload. Every
 *  invocation must return an equivalent object (same name, numOps
 *  and deterministic op bodies) so per-op exploration replicas are
 *  interchangeable. */
using WorkloadFactory =
    std::function<std::unique_ptr<CrashWorkload>()>;

/**
 * Domain-parallel crash exploration: one worker task per operation,
 * each owning a private workload instance + PM replica built by
 * `factory`. A task fast-forwards its replica through ops [0, op)
 * (committing each exactly the way the sequential explorer's
 * successful trial does, so the op-start state is byte-identical),
 * then explores op's crash points. Per-op ExploreResult fragments
 * are merged in op order with deterministic message capping, so the
 * result equals exploreCrashPoints() for any `threads` value
 * (DESIGN.md section 12). threads: 0 = hardware concurrency; 1 runs
 * the sequential explorer on a single instance.
 */
ExploreResult
exploreCrashPointsParallel(const WorkloadFactory &factory,
                           const ExploreOptions &opts = {},
                           unsigned threads = 0);

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_CRASH_EXPLORER_HH
