#include "crash_explorer.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "runtime/virtual_os.hh"

namespace pmemspec::faultinject
{

namespace
{

/** Persist-prefix safety valve: no single FASE in this repo queues
 *  anywhere near this many persists; hitting it means the inner loop
 *  is not converging (e.g. a workload whose op is non-deterministic)
 *  and is reported as a failure instead of spinning forever. */
constexpr std::size_t maxPrefixesPerOp = std::size_t{1} << 14;

std::string
hexMask(std::uint64_t m)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(m));
    return buf;
}

/**
 * The torn word subsets to try for a frontier `words` words wide.
 * Subsets "none" and "all" are the clean prefixes k and k+1 -- the
 * plain enumeration already covers them -- so only proper nonempty
 * subsets are interesting. Up to 4 words that is exhaustive (<= 14
 * masks); wider frontiers get a deterministic bounded pattern set:
 * each single word, each all-but-one, and the two checkerboards.
 */
std::vector<std::uint64_t>
tornMasks(std::size_t words, unsigned cap)
{
    std::vector<std::uint64_t> masks;
    const std::size_t w = std::min<std::size_t>(words, 64);
    if (w < 2)
        return masks;
    const std::uint64_t full =
        w == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
    if (w <= 4) {
        for (std::uint64_t m = 1; m < full; ++m)
            masks.push_back(m);
        return masks;
    }
    for (std::size_t i = 0; i < w && masks.size() < cap; ++i)
        masks.push_back(std::uint64_t{1} << i);
    for (std::size_t i = 0; i < w && masks.size() < cap; ++i)
        masks.push_back(full & ~(std::uint64_t{1} << i));
    if (masks.size() < cap)
        masks.push_back(full & 0x5555555555555555ULL);
    if (masks.size() < cap)
        masks.push_back(full & 0xAAAAAAAAAAAAAAAAULL);
    return masks;
}

} // namespace

ExploreResult
exploreCrashPoints(CrashWorkload &wl, const ExploreOptions &opts)
{
    ExploreResult res;
    res.workload = wl.name();

    runtime::PersistentMemory pm(wl.pmBytes());
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, runtime::RecoveryPolicy::Lazy,
                            wl.logBytes());

    wl.setup(pm, rt);
    pm.persistAll();

    FaultInjector inj(pm, os);
    inj.attach();

    auto fail = [&](std::size_t op, std::size_t k, const char *what) {
        ++res.failures;
        res.messages.push_back(std::string(wl.name()) + ": op " +
                               std::to_string(op) + ", crash prefix " +
                               std::to_string(k) + ": " + what);
    };

    // After recovery the two images must agree once in-flight
    // persists drain: recovery may not leave state that exists only
    // in the "caches".
    auto converged = [&] {
        pm.persistAll();
        return std::memcmp(pm.volatileImage(), pm.persistedImage(),
                           pm.size()) == 0;
    };

    for (std::size_t op = 0; op < wl.numOps(); ++op) {
        ++res.ops;
        pm.persistAll();
        const auto pre = pm.snapshot();

        // Reference committed image: the commit record is not the
        // FASE's last persist (tombstones trail it), so a crash can
        // land *past* the durable commit point. Recovery then keeps
        // the new state -- the "all" of all-or-nothing -- and the
        // oracle must recognise it. Run the op once uninterrupted to
        // learn what that state looks like, then rewind.
        inj.clearPlans();
        rt.runFase(0,
                   [&](runtime::Transaction &tx) { wl.runOp(tx, op); });
        pm.persistAll();
        const std::vector<std::uint8_t> post_image(
            pm.persistedImage(), pm.persistedImage() + pm.size());
        pm.restore(pre);
        rt.recoverAll();
        pm.persistAll();

        auto committedDurably = [&] {
            pm.persistAll();
            return std::memcmp(pm.persistedImage(), post_image.data(),
                               pm.size()) == 0;
        };

        bool committed = false;
        for (std::size_t k = 0; !committed; ++k) {
            if (k >= maxPrefixesPerOp) {
                fail(op, k, "prefix enumeration did not converge");
                break;
            }
            // Rewind to the pre-operation state. recoverAll() then
            // resynchronises the undo logs' volatile cursors with the
            // restored durable image; its writes drain before the
            // plan is armed so the plan's persist count matches the
            // (empty) in-flight queue.
            pm.restore(pre);
            rt.recoverAll();
            pm.persistAll();
            inj.clearPlans();
            inj.addPlan(std::make_unique<PowerCutPlan>(k));

            bool crashed = false;
            std::size_t frontier_words = 0;
            try {
                rt.runFase(0, [&](runtime::Transaction &tx) {
                    wl.runOp(tx, op);
                });
                committed = true;
            } catch (const PowerFailure &pf) {
                crashed = true;
                frontier_words = pf.frontierWords;
            }
            // Disarm before recovery: the plan must not count (or
            // crash on) recovery's own persist stream.
            inj.clearPlans();

            if (crashed) {
                ++res.crashPoints;
                try {
                    rt.recoverAll();
                } catch (const runtime::UnrecoverableCorruption &) {
                    // A clean prefix contains no corruption by
                    // construction; refusing to recover it is a
                    // fail-safe false positive.
                    ++res.corruptionReported;
                    fail(op, k, "clean-prefix crash reported "
                                "unrecoverable corruption");
                    continue;
                }
                if (!wl.checkInvariants())
                    fail(op, k, "invariants violated after recovery");
                if (!wl.matchesModel() && !committedDurably())
                    fail(op, k, "recovered state is neither the pre- "
                                "nor the post-operation state "
                                "(atomicity)");
                if (!converged())
                    fail(op, k, "volatile/persisted images diverge "
                                "after recovery");

                if (!opts.tornWrites || frontier_words < 2)
                    continue;

                // Torn-frontier trials: same crash point k, but a
                // word subset of persist k+1 lands too. The oracle
                // is no-silent-corruption: either recovery restores
                // the pre-operation state, or it refuses with an
                // explicit report. Under this repo's checksummed
                // undo log every torn frontier is detected and
                // discarded, so recovery is expected to succeed.
                for (std::uint64_t mask :
                     tornMasks(frontier_words, opts.maxTornSubsets)) {
                    pm.restore(pre);
                    rt.recoverAll();
                    pm.persistAll();
                    inj.clearPlans();
                    inj.addPlan(
                        std::make_unique<TornWritePlan>(k, mask));

                    bool cut = false;
                    try {
                        rt.runFase(0, [&](runtime::Transaction &tx) {
                            wl.runOp(tx, op);
                        });
                    } catch (const PowerFailure &) {
                        cut = true;
                    }
                    inj.clearPlans();
                    if (!cut) {
                        fail(op, k,
                             ("torn plan (mask=" + hexMask(mask) +
                              ") did not fire on a re-run that "
                              "crashed before")
                                 .c_str());
                        continue;
                    }
                    ++res.tornTrials;

                    try {
                        rt.recoverAll();
                    } catch (const runtime::UnrecoverableCorruption &) {
                        // Explicit refusal: the no-silent-corruption
                        // oracle is satisfied; nothing was replayed.
                        ++res.corruptionReported;
                        continue;
                    }
                    const std::string ctx =
                        " (torn mask=" + hexMask(mask) + ")";
                    if (!wl.checkInvariants())
                        fail(op, k,
                             ("invariants violated after torn-write "
                              "recovery" + ctx).c_str());
                    if (!wl.matchesModel() && !committedDurably())
                        fail(op, k,
                             ("silent corruption: torn-write recovery "
                              "returned success but the state is "
                              "neither the pre- nor the post-operation "
                              "state" + ctx).c_str());
                    if (!converged())
                        fail(op, k,
                             ("volatile/persisted images diverge after "
                              "torn-write recovery" + ctx).c_str());
                }
            }
        }

        if (committed) {
            wl.applyToModel(op);
            if (!wl.checkInvariants())
                fail(op, res.crashPoints, "invariants violated after commit");
            if (!wl.matchesModel())
                fail(op, res.crashPoints,
                     "committed state does not match the model");
            if (!converged())
                fail(op, res.crashPoints,
                     "volatile/persisted images diverge after commit");
        }
    }

    return res;
}

} // namespace pmemspec::faultinject
