#include "crash_explorer.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "faultinject/reorder_explorer.hh"
#include "runtime/virtual_os.hh"
#include "sim/domain_pool.hh"

namespace pmemspec::faultinject
{

namespace
{

/** Persist-prefix safety valve: no single FASE in this repo queues
 *  anywhere near this many persists; hitting it means the inner loop
 *  is not converging (e.g. a workload whose op is non-deterministic)
 *  and is reported as a failure instead of spinning forever. */
constexpr std::size_t maxPrefixesPerOp = std::size_t{1} << 14;

std::string
hexMask(std::uint64_t m)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(m));
    return buf;
}

/** Torn frontiers are exhaustive up to this word count (<= 14 proper
 *  subsets); wider frontiers use subsetMasks()'s sampled regime. */
constexpr unsigned tornExhaustiveBits = 4;

/**
 * Never fires; records what the reference (uninterrupted) execution
 * persists. Reorder mode needs two things from that run:
 *
 *  - the full tagged persist stream (addr, bytes, ordering tag),
 *    copied off the in-flight queue as each write is observed. A
 *    FASE is deterministic given the PM state and every crash trial
 *    of the operation re-runs it from the identical restored state,
 *    so stream entries [k, k+depth) are exactly the speculation
 *    window a cut at prefix k interrupted -- including the entries
 *    the armed trial never got to issue because its plan fired the
 *    moment write k+1 was queued;
 *  - the dirty-block set: the only blocks any trial state of this
 *    operation can differ in (recovery writes only the logged data
 *    blocks and the log region, all touched here), which makes
 *    per-state rewind, digest and oracle compares proportional to
 *    the working set instead of the PM size.
 */
class RecordingPlan : public FaultPlan
{
  public:
    RecordingPlan(const runtime::PersistentMemory &pm,
                  std::vector<runtime::PersistentMemory::Pending> &stream,
                  std::set<Addr> &blocks)
        : pm(pm), stream(stream), blocks(blocks)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (info.op == runtime::MemOp::Write && info.bytes > 0) {
            // The observer runs right after the store was queued, so
            // the youngest in-flight entry is this write, tags and
            // all.
            stream.push_back(pm.pendingEntry(pm.inFlightCount() - 1));
            const Addr last = info.addr + info.bytes - 1;
            for (Addr b = blockAlign(info.addr); b <= blockAlign(last);
                 b += blockBytes)
                blocks.insert(b);
        }
        return std::nullopt;
    }

  private:
    const runtime::PersistentMemory &pm;
    std::vector<runtime::PersistentMemory::Pending> &stream;
    std::set<Addr> &blocks;
};

/**
 * One workload instance's exploration machinery: the PM arena,
 * runtime and injector, plus the per-operation explore/fast-forward
 * primitives. The sequential path walks one OpExplorer through every
 * op; the parallel path builds a private OpExplorer per op and
 * fast-forwards it to that op's start state.
 *
 * The state-equivalence contract between the two primitives:
 * exploreOp()'s terminating trial is restore(pre) -> recoverAll ->
 * persistAll -> runFase (committed) -> applyToModel -> persistAll,
 * and commitOp() replays exactly that sequence (the armed
 * PowerCutPlan of the trial never fires on the committed run and
 * plans only observe, so omitting it cannot change a byte). Hence
 * commitOp(0..op-1) and exploreOp(0..op-1) leave identical PM images
 * and shadow models, which is what makes per-op fragments
 * position-independent.
 */
class OpExplorer
{
  public:
    OpExplorer(CrashWorkload &wl, const ExploreOptions &opts)
        : wl(wl), opts(opts), pm(wl.pmBytes()),
          rt(pm, os, 1, runtime::RecoveryPolicy::Lazy, wl.logBytes()),
          inj(pm, os),
          windowDepth(std::min<unsigned>(opts.windowDepth, 16))
    {
        rcfg.exhaustiveBits = opts.reorderExhaustiveBits;
        rcfg.maxSubsets = opts.maxReorderSubsets;
        rcfg.seed = opts.enumSeed;

        wl.setup(pm, rt);
        pm.persistAll();
        inj.attach();
    }

    /** Fast-forward one operation: commit it along the same
     *  machine-level path the sequential explorer's successful trial
     *  takes, without exploring any crash point. */
    void
    commitOp(std::size_t op)
    {
        pm.persistAll();
        const auto pre = pm.snapshot();
        pm.restore(pre);
        rt.recoverAll();
        pm.persistAll();
        inj.clearPlans();
        rt.runFase(0,
                   [&](runtime::Transaction &tx) { wl.runOp(tx, op); });
        wl.applyToModel(op);
        pm.persistAll();
    }

    /** Explore every crash point of one operation into `frag` (one
     *  fragment: frag.ops == 1), leaving the operation committed. */
    void exploreOp(std::size_t op, ExploreResult &frag);

  private:
    void
    fail(ExploreResult &frag, std::size_t op, std::size_t k,
         const char *what)
    {
        ++frag.failures;
        // Cap the stored messages: a pathological workload can fail
        // at thousands of states, and the count is what matters past
        // the first examples. The cap also applies per fragment --
        // the merge can only ever drop messages the global cap would
        // have dropped too.
        if (frag.messages.size() >= opts.maxMessages) {
            ++frag.messagesSuppressed;
            return;
        }
        frag.messages.push_back(std::string(wl.name()) + ": op " +
                                std::to_string(op) +
                                ", crash prefix " +
                                std::to_string(k) + ": " + what);
    }

    CrashWorkload &wl;
    const ExploreOptions &opts;
    runtime::PersistentMemory pm;
    runtime::VirtualOs os;
    runtime::FaseRuntime rt;
    FaultInjector inj;
    unsigned windowDepth;
    ReorderConfig rcfg;
};

void
OpExplorer::exploreOp(std::size_t op, ExploreResult &frag)
{
    ++frag.ops;
    pm.persistAll();
    const auto pre = pm.snapshot();

    // Reference committed image: the commit record is not the
    // FASE's last persist (tombstones trail it), so a crash can
    // land *past* the durable commit point. Recovery then keeps
    // the new state -- the "all" of all-or-nothing -- and the
    // oracle must recognise it. Run the op once uninterrupted to
    // learn what that state looks like, then rewind. In reorder
    // mode the same run also records the operation's dirty-block
    // set: recovery only ever writes the logged data blocks and
    // the log region, both of which this run touches, so every
    // trial state of this op agrees with `pre` outside it.
    std::set<Addr> dirtySet;
    std::vector<runtime::PersistentMemory::Pending> refStream;
    inj.clearPlans();
    if (opts.reorderings)
        inj.addPlan(std::make_unique<RecordingPlan>(pm, refStream,
                                                    dirtySet));
    rt.runFase(0,
               [&](runtime::Transaction &tx) { wl.runOp(tx, op); });
    pm.persistAll();
    const std::vector<std::uint8_t> post_image(
        pm.persistedImage(), pm.persistedImage() + pm.size());
    pm.restore(pre);
    rt.recoverAll();
    pm.persistAll();
    inj.clearPlans();
    const std::vector<Addr> dirty(dirtySet.begin(), dirtySet.end());

    // After recovery the two images must agree once in-flight
    // persists drain: recovery may not leave state that exists only
    // in the "caches".
    auto converged = [&] {
        pm.persistAll();
        return std::memcmp(pm.volatileImage(), pm.persistedImage(),
                           pm.size()) == 0;
    };

    auto committedDurably = [&] {
        pm.persistAll();
        return std::memcmp(pm.persistedImage(), post_image.data(),
                           pm.size()) == 0;
    };

    // Dirty-restricted oracle compares for reorder trials: the
    // images agree with the reference outside the dirty blocks
    // by construction, so block-limited equality is exact and
    // orders of magnitude cheaper than whole-image memcmp.
    auto committedDurablyDirty = [&] {
        pm.persistAll();
        for (Addr b : dirty) {
            if (std::memcmp(pm.persistedImage() + b,
                            post_image.data() + b, blockBytes) != 0)
                return false;
        }
        return true;
    };
    auto convergedDirty = [&] {
        pm.persistAll();
        for (Addr b : dirty) {
            if (std::memcmp(pm.volatileImage() + b,
                            pm.persistedImage() + b,
                            blockBytes) != 0)
                return false;
        }
        return true;
    };

    // Reduction (c)'s digest: CRC-32C over the dirty blocks of
    // the persisted image, two independent seeds folded into 64
    // bits (one 32-bit pass would silently merge distinct states
    // at birthday-collision rates the state counts here reach).
    auto digestDirty = [&] {
        std::uint32_t a = 0;
        std::uint32_t b = 0xdecafbad;
        for (Addr blk : dirty) {
            a = crc32c(pm.persistedImage() + blk, blockBytes, a);
            b = crc32c(pm.persistedImage() + blk, blockBytes, b);
        }
        return (static_cast<std::uint64_t>(a) << 32) | b;
    };

    // Digest seen-set, scoped to this operation: two crash
    // states with equal durable images recover identically, so
    // the second is counted as deduped and skipped.
    std::set<std::uint64_t> seenDigests;

    bool committed = false;
    for (std::size_t k = 0; !committed; ++k) {
        if (k >= maxPrefixesPerOp) {
            fail(frag, op, k, "prefix enumeration did not converge");
            break;
        }
        // Rewind to the pre-operation state. recoverAll() then
        // resynchronises the undo logs' volatile cursors with the
        // restored durable image; its writes drain before the
        // plan is armed so the plan's persist count matches the
        // (empty) in-flight queue.
        pm.restore(pre);
        rt.recoverAll();
        pm.persistAll();
        inj.clearPlans();
        inj.addPlan(std::make_unique<PowerCutPlan>(k));

        bool crashed = false;
        std::size_t frontier_words = 0;
        try {
            rt.runFase(0, [&](runtime::Transaction &tx) {
                wl.runOp(tx, op);
            });
            committed = true;
        } catch (const PowerFailure &pf) {
            crashed = true;
            frontier_words = pf.frontierWords;
        }
        // Disarm before recovery: the plan must not count (or
        // crash on) recovery's own persist stream.
        inj.clearPlans();

        if (crashed) {
            ++frag.crashPoints;
            // Reorder mode: the speculation window a cut at
            // prefix k interrupted -- reference-stream entries
            // [k, k+depth) -- and the post-crash (pre-recovery)
            // image, taken before the prefix trial's recovery
            // mutates the state.
            std::vector<runtime::PersistentMemory::Pending> window;
            runtime::PersistentMemory::Snapshot crashSnap;
            if (opts.reorderings && k < refStream.size()) {
                const std::size_t end = std::min<std::size_t>(
                    k + windowDepth, refStream.size());
                window.assign(refStream.begin() + k,
                              refStream.begin() + end);
                crashSnap = pm.snapshot();
            }
            try {
                rt.recoverAll();
            } catch (const runtime::UnrecoverableCorruption &) {
                // A clean prefix contains no corruption by
                // construction; refusing to recover it is a
                // fail-safe false positive.
                ++frag.corruptionReported;
                fail(frag, op, k, "clean-prefix crash reported "
                                  "unrecoverable corruption");
                continue;
            }
            if (!wl.checkInvariants())
                fail(frag, op, k,
                     "invariants violated after recovery");
            if (!wl.matchesModel() && !committedDurably())
                fail(frag, op, k,
                     "recovered state is neither the pre- "
                     "nor the post-operation state "
                     "(atomicity)");
            if (!converged())
                fail(frag, op, k,
                     "volatile/persisted images diverge "
                     "after recovery");

            if (!window.empty()) {
                ReorderHooks hooks;
                hooks.rewind = [&] {
                    pm.restoreBlocks(crashSnap, dirty);
                };
                hooks.isNoop =
                    [&](const runtime::PersistentMemory::Pending &p) {
                        return std::memcmp(pm.persistedImage() +
                                               p.addr,
                                           p.bytes.data(),
                                           p.bytes.size()) == 0;
                    };
                hooks.apply =
                    [&](const runtime::PersistentMemory::Pending &p) {
                        pm.overlayDurable(p.addr, p.bytes.data(),
                                          p.bytes.size());
                    };
                hooks.digest = digestDirty;
                hooks.check = [&](std::uint64_t mask,
                                  std::size_t applied) {
                    (void)applied;
                    const std::string ctx =
                        " (reorder mask=" + hexMask(mask) + ")";
                    try {
                        rt.recoverAll();
                    } catch (const runtime::
                                 UnrecoverableCorruption &) {
                        // The media is clean here: a reordered
                        // window is exactly what the barrier
                        // discipline must tolerate, so refusing
                        // it means the structure published a
                        // validity marker its persists did not
                        // back -- the WAW-inversion bug class.
                        ++frag.corruptionReported;
                        fail(frag, op, k,
                             ("in-window persist reordering "
                              "reported unrecoverable corruption" +
                              ctx)
                                 .c_str());
                        return;
                    }
                    if (!wl.checkInvariants())
                        fail(frag, op, k,
                             ("invariants violated after "
                              "reordered-crash recovery" + ctx)
                                 .c_str());
                    if (!wl.matchesModel() &&
                        !committedDurablyDirty())
                        fail(frag, op, k,
                             ("recovered state is neither the "
                              "pre- nor the post-operation state "
                              "(atomicity under persist "
                              "reordering)" + ctx)
                                 .c_str());
                    if (!convergedDirty())
                        fail(frag, op, k,
                             ("volatile/persisted images diverge "
                              "after reordered-crash recovery" +
                              ctx)
                                 .c_str());
                };
                const ReorderCounts rc = exploreReorderWindow(
                    window, rcfg, hooks, seenDigests);
                frag.reorderWindows += rc.windows;
                frag.naiveStates += rc.naiveStates;
                frag.reorderStatesExplored += rc.statesExplored;
                frag.reorderStatesDeduped += rc.statesDeduped;
                frag.elidedPersists += rc.elidedPersists;
                frag.orderingsCollapsed += rc.orderingsCollapsed;
                // Leave a clean slate for the next k: the last
                // explored state's recovery is still in the
                // images.
                pm.restoreBlocks(crashSnap, dirty);
            }

            if (!opts.tornWrites || frontier_words < 2)
                continue;

            // Torn-frontier trials: same crash point k, but a
            // word subset of persist k+1 lands too. The oracle
            // is no-silent-corruption: either recovery restores
            // the pre-operation state, or it refuses with an
            // explicit report. Under this repo's checksummed
            // undo log every torn frontier is detected and
            // discarded, so recovery is expected to succeed.
            for (std::uint64_t mask :
                 subsetMasks(frontier_words, opts.maxTornSubsets,
                             opts.enumSeed, tornExhaustiveBits)) {
                pm.restore(pre);
                rt.recoverAll();
                pm.persistAll();
                inj.clearPlans();
                inj.addPlan(
                    std::make_unique<TornWritePlan>(k, mask));

                bool cut = false;
                try {
                    rt.runFase(0, [&](runtime::Transaction &tx) {
                        wl.runOp(tx, op);
                    });
                } catch (const PowerFailure &) {
                    cut = true;
                }
                inj.clearPlans();
                if (!cut) {
                    fail(frag, op, k,
                         ("torn plan (mask=" + hexMask(mask) +
                          ") did not fire on a re-run that "
                          "crashed before")
                             .c_str());
                    continue;
                }
                ++frag.tornTrials;

                try {
                    rt.recoverAll();
                } catch (const runtime::UnrecoverableCorruption &) {
                    // Explicit refusal: the no-silent-corruption
                    // oracle is satisfied; nothing was replayed.
                    ++frag.corruptionReported;
                    continue;
                }
                const std::string ctx =
                    " (torn mask=" + hexMask(mask) + ")";
                if (!wl.checkInvariants())
                    fail(frag, op, k,
                         ("invariants violated after torn-write "
                          "recovery" + ctx).c_str());
                if (!wl.matchesModel() && !committedDurably())
                    fail(frag, op, k,
                         ("silent corruption: torn-write recovery "
                          "returned success but the state is "
                          "neither the pre- nor the post-operation "
                          "state" + ctx).c_str());
                if (!converged())
                    fail(frag, op, k,
                         ("volatile/persisted images diverge after "
                          "torn-write recovery" + ctx).c_str());
            }
        }
    }

    if (committed) {
        wl.applyToModel(op);
        if (!wl.checkInvariants())
            fail(frag, op, frag.crashPoints,
                 "invariants violated after commit");
        if (!wl.matchesModel())
            fail(frag, op, frag.crashPoints,
                 "committed state does not match the model");
        if (!converged())
            fail(frag, op, frag.crashPoints,
                 "volatile/persisted images diverge after commit");
    }
}

/** Fold per-op fragments (op order) into one ExploreResult with the
 *  global message cap re-applied; deterministic in the fragment
 *  contents alone. */
ExploreResult
mergeFragments(std::string workload,
               std::vector<ExploreResult> frags,
               std::size_t maxMessages)
{
    ExploreResult res;
    res.workload = std::move(workload);
    for (ExploreResult &f : frags) {
        res.ops += f.ops;
        res.crashPoints += f.crashPoints;
        res.tornTrials += f.tornTrials;
        res.corruptionReported += f.corruptionReported;
        res.failures += f.failures;
        res.messagesSuppressed += f.messagesSuppressed;
        for (std::string &m : f.messages) {
            if (res.messages.size() < maxMessages)
                res.messages.push_back(std::move(m));
            else
                ++res.messagesSuppressed;
        }
        res.reorderWindows += f.reorderWindows;
        res.naiveStates += f.naiveStates;
        res.reorderStatesExplored += f.reorderStatesExplored;
        res.reorderStatesDeduped += f.reorderStatesDeduped;
        res.elidedPersists += f.elidedPersists;
        res.orderingsCollapsed += f.orderingsCollapsed;
    }
    return res;
}

} // namespace

ExploreResult
exploreCrashPoints(CrashWorkload &wl, const ExploreOptions &opts)
{
    OpExplorer ex(wl, opts);
    std::vector<ExploreResult> frags(wl.numOps());
    for (std::size_t op = 0; op < frags.size(); ++op)
        ex.exploreOp(op, frags[op]);
    return mergeFragments(wl.name(), std::move(frags),
                          opts.maxMessages);
}

ExploreResult
exploreCrashPointsParallel(const WorkloadFactory &factory,
                           const ExploreOptions &opts,
                           unsigned threads)
{
    const auto probe = factory();
    fatal_if(!probe, "workload factory returned nothing");
    const std::size_t n = probe->numOps();
    const std::string name = probe->name();

    const sim::DomainPool pool(threads);
    if (pool.threads() <= 1 || n <= 1)
        return exploreCrashPoints(*probe, opts);

    // One domain per operation: a private workload + PM replica,
    // fast-forwarded through [0, op) on the exact committed-trial
    // path (see OpExplorer's state-equivalence contract), then
    // explored. Fragments land in per-op slots; the merge below is
    // op-ordered, so the result is thread-count invariant.
    std::vector<ExploreResult> frags(n);
    pool.run(n, [&](std::size_t op) {
        auto wl = factory();
        OpExplorer ex(*wl, opts);
        for (std::size_t j = 0; j < op; ++j)
            ex.commitOp(j);
        ex.exploreOp(op, frags[op]);
    });
    return mergeFragments(name, std::move(frags), opts.maxMessages);
}

} // namespace pmemspec::faultinject
