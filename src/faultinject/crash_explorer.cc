#include "crash_explorer.hh"

#include <cstring>
#include <memory>

#include "common/logging.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "runtime/virtual_os.hh"

namespace pmemspec::faultinject
{

namespace
{

/** Persist-prefix safety valve: no single FASE in this repo queues
 *  anywhere near this many persists; hitting it means the inner loop
 *  is not converging (e.g. a workload whose op is non-deterministic)
 *  and is reported as a failure instead of spinning forever. */
constexpr std::size_t maxPrefixesPerOp = std::size_t{1} << 14;

} // namespace

ExploreResult
exploreCrashPoints(CrashWorkload &wl)
{
    ExploreResult res;
    res.workload = wl.name();

    runtime::PersistentMemory pm(wl.pmBytes());
    runtime::VirtualOs os;
    runtime::FaseRuntime rt(pm, os, 1, runtime::RecoveryPolicy::Lazy,
                            wl.logBytes());

    wl.setup(pm, rt);
    pm.persistAll();

    FaultInjector inj(pm, os);
    inj.attach();

    auto fail = [&](std::size_t op, std::size_t k, const char *what) {
        ++res.failures;
        res.messages.push_back(std::string(wl.name()) + ": op " +
                               std::to_string(op) + ", crash prefix " +
                               std::to_string(k) + ": " + what);
    };

    // After recovery the two images must agree once in-flight
    // persists drain: recovery may not leave state that exists only
    // in the "caches".
    auto converged = [&] {
        pm.persistAll();
        return std::memcmp(pm.volatileImage(), pm.persistedImage(),
                           pm.size()) == 0;
    };

    for (std::size_t op = 0; op < wl.numOps(); ++op) {
        ++res.ops;
        pm.persistAll();
        const auto pre = pm.snapshot();

        bool committed = false;
        for (std::size_t k = 0; !committed; ++k) {
            if (k >= maxPrefixesPerOp) {
                fail(op, k, "prefix enumeration did not converge");
                break;
            }
            // Rewind to the pre-operation state. recoverAll() then
            // resynchronises the undo logs' volatile cursors with the
            // restored durable image; its writes drain before the
            // plan is armed so the plan's persist count matches the
            // (empty) in-flight queue.
            pm.restore(pre);
            rt.recoverAll();
            pm.persistAll();
            inj.clearPlans();
            inj.addPlan(std::make_unique<PowerCutPlan>(k));

            bool crashed = false;
            try {
                rt.runFase(0, [&](runtime::Transaction &tx) {
                    wl.runOp(tx, op);
                });
                committed = true;
            } catch (const PowerFailure &) {
                crashed = true;
            }
            // Disarm before recovery: the plan must not count (or
            // crash on) recovery's own persist stream.
            inj.clearPlans();

            if (crashed) {
                ++res.crashPoints;
                rt.recoverAll();
                if (!wl.checkInvariants())
                    fail(op, k, "invariants violated after recovery");
                if (!wl.matchesModel())
                    fail(op, k, "recovered state is not the "
                                "pre-operation state (atomicity)");
                if (!converged())
                    fail(op, k, "volatile/persisted images diverge "
                                "after recovery");
            }
        }

        if (committed) {
            wl.applyToModel(op);
            if (!wl.checkInvariants())
                fail(op, res.crashPoints, "invariants violated after commit");
            if (!wl.matchesModel())
                fail(op, res.crashPoints,
                     "committed state does not match the model");
            if (!converged())
                fail(op, res.crashPoints,
                     "volatile/persisted images diverge after commit");
        }
    }

    return res;
}

} // namespace pmemspec::faultinject
