#include "fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/pm_controller.hh"

namespace pmemspec::faultinject
{

FaultInjector::FaultInjector(runtime::PersistentMemory &pm_,
                             runtime::VirtualOs &os_,
                             unsigned spec_entries, Tick window_)
    : pm(pm_), os(os_), statRoot("faultinject"), window(window_),
      defaultPersistDelay(window_ / 8 ? window_ / 8 : 1)
{
    specBuf = std::make_unique<mem::SpeculationBuffer>(
        eq, &statRoot, spec_entries, window);
    // The real trap path of Section 6.1: the hardware's interrupt
    // line terminates at the OS relay, which resolves the faulting
    // address through the reverse map and signals the owning
    // runtime. No shortcut into FaseRuntime exists here.
    specBuf->setMisspecCallback([this](Addr a, mem::MisspecKind) {
        ++interrupts;
        os.raiseMisspecInterrupt(a);
    });
}

FaultInjector::~FaultInjector()
{
    detach();
}

void
FaultInjector::attach()
{
    pm.setObserver([this](runtime::MemOp op, Addr a, std::uint32_t n) {
        onAccess(op, a, n);
    });
    attached = true;
}

void
FaultInjector::detach()
{
    if (attached) {
        pm.setObserver(nullptr);
        attached = false;
    }
}

void
FaultInjector::setTraceManager(trace::Manager *mgr)
{
    traceMgr = mgr;
    specBuf->setTraceManager(mgr, 0);
    if (mgr) {
        mgr->meta.design = "PMEM-Spec";
        mgr->meta.flags = mgr->config().flags;
        mgr->meta.specWindow = window;
        mgr->meta.specEntries = specBuf->capacity();
        mgr->meta.numCores = 0; // functional layer: no timing cores
        mgr->meta.specAutomaton = true;
        mgr->setClock([this] { return eq.now(); });
        mgr->makeCurrent();
    }
}

void
FaultInjector::addPlan(std::unique_ptr<FaultPlan> plan)
{
    plans.push_back(std::move(plan));
}

void
FaultInjector::clearPlans()
{
    plans.clear();
}

void
FaultInjector::onAccess(runtime::MemOp op, Addr a, std::uint32_t n)
{
    if (firing)
        return; // accesses made while injecting do not re-trigger
    const AccessInfo info{accessIndex++, op, a, n};
    for (auto &plan : plans) {
        if (auto action = plan->onAccess(info))
            fire(*action);
    }
}

void
FaultInjector::fire(const FaultAction &action)
{
    firing = true;
    struct Unguard
    {
        bool &flag;
        ~Unguard() { flag = false; }
    } unguard{firing};

    switch (action.kind) {
      case FaultKind::LoadStale:
        injectLoadStale(action.addr, action.delay);
        break;
      case FaultKind::StoreWaw:
        injectStoreWaw(action.addr);
        break;
      case FaultKind::PersistDelay:
        injectDelayedPersist(action.addr, action.delay);
        break;
      case FaultKind::BitFlip:
        injectBitFlip(action.addr, action.mask);
        break;
      case FaultKind::Poison:
        injectPoison(action.addr);
        break;
      case FaultKind::TornWrite:
        injectTornWrite(action.prefix, action.mask); // throws
      case FaultKind::PowerCut:
        injectPowerCut(action.prefix, action.capture); // throws
    }
}

void
FaultInjector::injectLoadStale(Addr addr, Tick persist_delay)
{
    const Addr block = blockAlign(addr);
    const Tick delay =
        persist_delay ? persist_delay : defaultPersistDelay;
    panic_if(delay >= window, "persist delay %llu must fit inside "
                              "the speculation window %llu",
             static_cast<unsigned long long>(delay),
             static_cast<unsigned long long>(window));
    ++loadStales;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, block,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::LoadStale)});
    // The genuine automaton walk: the dirty block's LLC writeback is
    // dropped at the PMC (monitoring starts), the load is served
    // stale from PM (Evict -> Speculated), and the superseding store
    // is still crossing the persist path...
    specBuf->writeBack(block);
    specBuf->read(block);
    eq.schedule(After{delay}, [this, block] { specBuf->persist(block); });
    // ...until it arrives inside the window and the automaton flags
    // the misspeculation, raising the interrupt synchronously.
    eq.runUntil(eq.now() + delay);
}

void
FaultInjector::injectStoreWaw(Addr addr)
{
    const Addr block = blockAlign(addr);
    ++storeWaws;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, block,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::StoreWaw)});
    // Reordered persist-path arrivals: the program-order-later store
    // (higher spec ID) lands first, then the earlier one -- the
    // pattern the PMC's spec-ID order check condemns.
    persistArrives(block, SpecId{8});
    persistArrives(block, SpecId{3});
}

void
FaultInjector::injectDelayedPersist(Addr addr, Tick delay)
{
    const Addr block = blockAlign(addr);
    ++persistDelays;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, block,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::PersistDelay)});
    specBuf->writeBack(block);
    eq.schedule(After{delay}, [this, block] { specBuf->persist(block); });
    eq.runUntil(eq.now() + delay);
}

void
FaultInjector::injectPowerCut(std::size_t prefix,
                              std::size_t capture_depth)
{
    ++powerCuts;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, 0,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::PowerCut)});
    const std::size_t durable =
        prefix < pm.inFlightCount() ? prefix : pm.inFlightCount();
    const std::size_t frontier = durable < pm.inFlightCount()
                                     ? pm.pendingEntryWords(durable)
                                     : 0;
    // The speculation window's contents at the outage: the queue
    // entries the crash is about to lose, oldest first. Copy them
    // out before crash() clears the queue.
    windowCapture.clear();
    for (std::size_t i = 0;
         i < capture_depth && durable + i < pm.inFlightCount(); ++i)
        windowCapture.push_back(pm.pendingEntry(durable + i));
    pm.crash(durable);
    throw PowerFailure{durable, false, frontier};
}

void
FaultInjector::injectTornWrite(std::size_t prefix, std::uint64_t mask)
{
    ++tornWrites;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, 0,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::TornWrite)});
    const std::size_t durable =
        prefix < pm.inFlightCount() ? prefix : pm.inFlightCount();
    const std::size_t frontier = durable < pm.inFlightCount()
                                     ? pm.pendingEntryWords(durable)
                                     : 0;
    pm.crashTorn(durable, mask);
    throw PowerFailure{durable, true, frontier};
}

void
FaultInjector::injectBitFlip(Addr addr, std::uint64_t xor_mask)
{
    ++bitFlips;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, addr,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::BitFlip)});
    pm.corruptWord(addr, xor_mask ? xor_mask : 1);
}

void
FaultInjector::injectPoison(Addr addr)
{
    ++poisons;
    PMEMSPEC_TRACE(traceMgr, FlagFaultInject,
                   trace::EventKind::InjectFault, eq.now(),
                   trace::kNoCore, addr,
                   {.arg = static_cast<std::uint64_t>(
                        FaultKind::Poison)});
    pm.poisonWord(addr);
}

void
FaultInjector::persistArrives(Addr block, SpecId id)
{
    // Mirror PmController::checkStoreOrder exactly (max-merge on
    // refresh, lazy one-shot expiry sweep) so the offline trace
    // checker's single model re-derives both implementations.
    PMEMSPEC_TRACE(traceMgr, FlagPmController,
                   trace::EventKind::PmcPersistAccept, eq.now(),
                   trace::kNoCore, block, {.specId = id});
    const auto r = specTrack.specPersist(block, id, eq.now(), window);
    switch (r.step) {
      case mem::BlockTable::SpecStep::Violation:
        PMEMSPEC_TRACE(traceMgr, FlagPmController,
                       trace::EventKind::PmcStoreOrderViolation,
                       eq.now(), trace::kNoCore, block,
                       {.specId = id, .arg = r.prev});
        specBuf->reportStoreMisspec(block);
        return;

      case mem::BlockTable::SpecStep::Refreshed:
        return;

      case mem::BlockTable::SpecStep::Inserted:
        eq.schedule(After{window + 1}, [this, block] {
            SpecId expired;
            if (specTrack.specExpire(block, eq.now(), window,
                                     &expired)) {
                PMEMSPEC_TRACE(traceMgr, FlagPmController,
                               trace::EventKind::PmcTrackExpire,
                               eq.now(), trace::kNoCore, block,
                               {.specId = expired});
            }
        });
        return;
    }
}

} // namespace pmemspec::faultinject
