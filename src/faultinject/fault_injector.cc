#include "fault_injector.hh"

#include "common/logging.hh"

namespace pmemspec::faultinject
{

FaultInjector::FaultInjector(runtime::PersistentMemory &pm_,
                             runtime::VirtualOs &os_,
                             unsigned spec_entries, Tick window_)
    : pm(pm_), os(os_), statRoot("faultinject"), window(window_),
      defaultPersistDelay(window_ / 8 ? window_ / 8 : 1)
{
    specBuf = std::make_unique<mem::SpeculationBuffer>(
        eq, &statRoot, spec_entries, window);
    // The real trap path of Section 6.1: the hardware's interrupt
    // line terminates at the OS relay, which resolves the faulting
    // address through the reverse map and signals the owning
    // runtime. No shortcut into FaseRuntime exists here.
    specBuf->setMisspecCallback([this](Addr a, mem::MisspecKind) {
        ++interrupts;
        os.raiseMisspecInterrupt(a);
    });
}

FaultInjector::~FaultInjector()
{
    detach();
}

void
FaultInjector::attach()
{
    pm.setObserver([this](runtime::MemOp op, Addr a, std::uint32_t n) {
        onAccess(op, a, n);
    });
    attached = true;
}

void
FaultInjector::detach()
{
    if (attached) {
        pm.setObserver(nullptr);
        attached = false;
    }
}

void
FaultInjector::addPlan(std::unique_ptr<FaultPlan> plan)
{
    plans.push_back(std::move(plan));
}

void
FaultInjector::clearPlans()
{
    plans.clear();
}

void
FaultInjector::onAccess(runtime::MemOp op, Addr a, std::uint32_t n)
{
    if (firing)
        return; // accesses made while injecting do not re-trigger
    const AccessInfo info{accessIndex++, op, a, n};
    for (auto &plan : plans) {
        if (auto action = plan->onAccess(info))
            fire(*action);
    }
}

void
FaultInjector::fire(const FaultAction &action)
{
    firing = true;
    struct Unguard
    {
        bool &flag;
        ~Unguard() { flag = false; }
    } unguard{firing};

    switch (action.kind) {
      case FaultKind::LoadStale:
        injectLoadStale(action.addr, action.delay);
        break;
      case FaultKind::StoreWaw:
        injectStoreWaw(action.addr);
        break;
      case FaultKind::PersistDelay:
        injectDelayedPersist(action.addr, action.delay);
        break;
      case FaultKind::BitFlip:
        injectBitFlip(action.addr, action.mask);
        break;
      case FaultKind::Poison:
        injectPoison(action.addr);
        break;
      case FaultKind::TornWrite:
        injectTornWrite(action.prefix, action.mask); // throws
      case FaultKind::PowerCut:
        injectPowerCut(action.prefix); // throws PowerFailure
    }
}

void
FaultInjector::injectLoadStale(Addr addr, Tick persist_delay)
{
    const Addr block = blockAlign(addr);
    const Tick delay =
        persist_delay ? persist_delay : defaultPersistDelay;
    panic_if(delay >= window, "persist delay %llu must fit inside "
                              "the speculation window %llu",
             static_cast<unsigned long long>(delay),
             static_cast<unsigned long long>(window));
    ++loadStales;
    // The genuine automaton walk: the dirty block's LLC writeback is
    // dropped at the PMC (monitoring starts), the load is served
    // stale from PM (Evict -> Speculated), and the superseding store
    // is still crossing the persist path...
    specBuf->writeBack(block);
    specBuf->read(block);
    eq.scheduleIn(delay, [this, block] { specBuf->persist(block); });
    // ...until it arrives inside the window and the automaton flags
    // the misspeculation, raising the interrupt synchronously.
    eq.runUntil(eq.now() + delay);
}

void
FaultInjector::injectStoreWaw(Addr addr)
{
    const Addr block = blockAlign(addr);
    ++storeWaws;
    // Reordered persist-path arrivals: the program-order-later store
    // (higher spec ID) lands first, then the earlier one -- the
    // pattern the PMC's spec-ID order check condemns.
    persistArrives(block, SpecId{8});
    persistArrives(block, SpecId{3});
}

void
FaultInjector::injectDelayedPersist(Addr addr, Tick delay)
{
    const Addr block = blockAlign(addr);
    ++persistDelays;
    specBuf->writeBack(block);
    eq.scheduleIn(delay, [this, block] { specBuf->persist(block); });
    eq.runUntil(eq.now() + delay);
}

void
FaultInjector::injectPowerCut(std::size_t prefix)
{
    ++powerCuts;
    const std::size_t durable =
        prefix < pm.inFlightCount() ? prefix : pm.inFlightCount();
    const std::size_t frontier = durable < pm.inFlightCount()
                                     ? pm.pendingEntryWords(durable)
                                     : 0;
    pm.crash(durable);
    throw PowerFailure{durable, false, frontier};
}

void
FaultInjector::injectTornWrite(std::size_t prefix, std::uint64_t mask)
{
    ++tornWrites;
    const std::size_t durable =
        prefix < pm.inFlightCount() ? prefix : pm.inFlightCount();
    const std::size_t frontier = durable < pm.inFlightCount()
                                     ? pm.pendingEntryWords(durable)
                                     : 0;
    pm.crashTorn(durable, mask);
    throw PowerFailure{durable, true, frontier};
}

void
FaultInjector::injectBitFlip(Addr addr, std::uint64_t xor_mask)
{
    ++bitFlips;
    pm.corruptWord(addr, xor_mask ? xor_mask : 1);
}

void
FaultInjector::injectPoison(Addr addr)
{
    ++poisons;
    pm.poisonWord(addr);
}

void
FaultInjector::persistArrives(Addr block, SpecId id)
{
    auto it = specTrack.find(block);
    if (it != specTrack.end() && eq.now() - it->second.at <= window &&
        id < it->second.id) {
        specBuf->reportStoreMisspec(block);
        specTrack.erase(it);
        return;
    }
    specTrack[block] = SpecTrack{id, eq.now()};
}

} // namespace pmemspec::faultinject
