#include "fault_plan.hh"

#include <algorithm>

#include "common/rng.hh"

namespace pmemspec::faultinject
{

std::vector<std::uint64_t>
subsetMasks(std::size_t n, unsigned cap, std::uint64_t seed,
            unsigned exhaustive_bits)
{
    std::vector<std::uint64_t> masks;
    const std::size_t w = std::min<std::size_t>(n, 64);
    if (w < 2)
        return masks; // no proper nonempty subset is interesting
    const std::uint64_t full =
        w == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;

    if (w <= exhaustive_bits) {
        masks.reserve(full - 1);
        for (std::uint64_t m = 1; m < full; ++m)
            masks.push_back(m);
        return masks;
    }

    // Fixed pattern family first (deterministic order), then a
    // seeded top-up so a generous cap still gets coverage beyond
    // the patterns. Everything below is dup-free by construction
    // except the random draws, which check the seen set.
    for (std::size_t i = 0; i < w && masks.size() < cap; ++i)
        masks.push_back(std::uint64_t{1} << i);
    for (std::size_t i = 0; i < w && masks.size() < cap; ++i)
        masks.push_back(full & ~(std::uint64_t{1} << i));
    if (masks.size() < cap)
        masks.push_back(full & 0x5555555555555555ULL);
    if (masks.size() < cap)
        masks.push_back(full & 0xAAAAAAAAAAAAAAAAULL);

    Rng rng(seed ^ static_cast<std::uint64_t>(w));
    for (unsigned attempts = 16 * cap;
         masks.size() < cap && attempts > 0; --attempts) {
        const std::uint64_t m = rng.next() & full;
        if (m == 0 || m == full)
            continue;
        if (std::find(masks.begin(), masks.end(), m) != masks.end())
            continue;
        masks.push_back(m);
    }
    return masks;
}

} // namespace pmemspec::faultinject
