/**
 * @file
 * Lazy crash-state enumeration over the speculation window.
 *
 * Prefix enumeration (crash_explorer) answers "what if the persist
 * stream was cut after k entries". Under PMEM-Spec that is the whole
 * story for the *accepted* stream -- but the speculation window
 * admits persists arriving at the PMC out of store order, so the
 * durable state an outage leaves behind can be k accepted persists
 * plus an arbitrary *order-consistent subset* of the next window's
 * worth of in-flight entries. Exactly those states are where
 * WAW-inversion (store-misspeculation) bugs hide, and exactly those
 * states prefix enumeration can never produce.
 *
 * This module is the pure model-checking half of that exploration:
 * given the captured window (tagged Pending entries), it builds the
 * ordering constraints, enumerates the admissible crash states, and
 * drives caller-supplied state hooks. The PM mechanics (rewinding
 * images, overlaying persists, running recovery oracles) stay in
 * crash_explorer so this half is unit-testable in isolation.
 *
 * Ordering model -- one edge i -> j (for queue positions i < j) iff:
 *
 *  - their persists touch overlapping 64-byte blocks: the PMC's
 *    spec-ID order check (mem::storeOrderViolated) forbids the later
 *    store's persist from landing first, because same-block persists
 *    carry strictly increasing speculation IDs and a lower ID behind
 *    a higher one is a detected WAW inversion that triggers a
 *    virtual power failure *before* anything later persists; or
 *  - either entry is `ordered` (a spec-barrier publication persist,
 *    e.g. an undo log's count bump): a barrier drains the window, so
 *    nothing crosses it in either direction.
 *
 * An admissible crash state is a downward-closed subset of the
 * window under these edges, applied on top of the clean prefix.
 *
 * Three reductions make the enumeration lazy:
 *
 *  (a) write elision: an entry with no edges at all whose bytes
 *      equal the current durable contents cannot distinguish any
 *      state; it is dropped from the window before enumeration (and
 *      no-op applications inside a state are skipped and counted);
 *  (b) commutative-reordering equivalence: all linear extensions of
 *      one admissible subset produce the same durable image (writes
 *      to disjoint blocks commute; same-block writes are already
 *      forced into queue order), so each subset is explored once,
 *      applied in canonical queue order -- the DPOR-style collapse
 *      of orderings into their Mazurkiewicz trace;
 *  (c) crash-state hashing: a seen-set of post-crash image digests
 *      (CRC-32C over the op's dirty blocks, two seeds) recovers each
 *      distinct durable image once, across masks *and* crash points.
 *
 * The counters report the collapse so the reduction factor is a
 * tested, machine-readable number rather than a claim.
 */

#ifndef PMEMSPEC_FAULTINJECT_REORDER_EXPLORER_HH
#define PMEMSPEC_FAULTINJECT_REORDER_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "runtime/persistent_memory.hh"

namespace pmemspec::faultinject
{

/** A captured in-flight persist (addr, bytes, spec id, barrier tag). */
using PendingPersist = runtime::PersistentMemory::Pending;

/** Enumeration knobs (window depth is the caller's: it decides how
 *  many entries to capture per crash point). */
struct ReorderConfig
{
    /** Window sizes up to this many entries get every admissible
     *  subset; wider windows fall back to the shared deterministic
     *  sampled masks (subsetMasks) filtered for admissibility. */
    unsigned exhaustiveBits = 12;
    /** Mask cap in the sampled regime. */
    unsigned maxSubsets = 4096;
    /** Seed for the sampled regime's deterministic top-up draws. */
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/** What one window's exploration did (all counters accumulate). */
struct ReorderCounts
{
    std::uint64_t windows = 0;        ///< crash windows enumerated
    /** Crash states a naive checker visits at the same depth: every
     *  (admissible subset, application order) pair. Saturating. */
    std::uint64_t naiveStates = 0;
    /** Orderings collapsed by reduction (b): naive sequences minus
     *  distinct admissible subsets. Saturating; only counted in the
     *  exhaustive regime (a sample has no meaningful total). */
    std::uint64_t orderingsCollapsed = 0;
    /** Subsets handed to the state hooks (post-elision, canonical). */
    std::uint64_t canonicalStates = 0;
    /** States that survived the digest seen-set and were checked. */
    std::uint64_t statesExplored = 0;
    /** States whose digest had been seen: recovery+oracles skipped. */
    std::uint64_t statesDeduped = 0;
    /** Reduction (a): window entries dropped up front plus no-op
     *  applications skipped inside states. */
    std::uint64_t elidedPersists = 0;

    void add(const ReorderCounts &o);
};

/**
 * PM mechanics the enumeration drives, supplied by the caller. The
 * contract per state: rewind() to the post-crash prefix image, then
 * apply() each chosen entry in canonical order (isNoop() consulted
 * first; a no-op is skipped and counted as elided), then digest();
 * check() runs only for a digest not yet in the seen-set.
 */
struct ReorderHooks
{
    std::function<void()> rewind;
    std::function<bool(const PendingPersist &)> isNoop;
    std::function<void(const PendingPersist &)> apply;
    std::function<std::uint64_t()> digest;
    /** @param mask   chosen subset (bits index the elision-reduced
     *                 window, oldest entry = bit 0)
     *  @param applied entries actually overlaid (no-ops excluded) */
    std::function<void(std::uint64_t mask, std::size_t applied)> check;
};

/**
 * The ordering constraints of one captured window, as predecessor /
 * successor bit masks, with the admissibility test and the
 * linear-extension counting the reduction counters need. Pure and
 * deterministic; unit-tested directly.
 */
class WindowEnumerator
{
  public:
    /** @param window At most 16 entries (the caller clamps its
     *  capture depth; 2^16 subset DP is the tractability limit). */
    explicit WindowEnumerator(const std::vector<PendingPersist> &window);

    std::size_t size() const { return pred.size(); }

    /** Entries i < j that must persist before j. */
    std::uint64_t predecessors(std::size_t j) const { return pred[j]; }
    /** Entries j > i that must persist after i. */
    std::uint64_t successors(std::size_t i) const { return succ[i]; }

    /** No edges touch entry i at all (elision candidate). */
    bool
    isolated(std::size_t i) const
    {
        return pred[i] == 0 && succ[i] == 0;
    }

    /** T is downward-closed: reachable as a durable subset. */
    bool admissible(std::uint64_t t) const;

    /** Distinct admissible subsets, the empty set included. */
    std::uint64_t admissibleCount() const;

    /**
     * Crash states of a naive order-enumerating checker: the number
     * of distinct (admissible subset, linear extension) pairs,
     * counted by the standard subset DP over topological orderings.
     * Saturates at UINT64_MAX.
     */
    std::uint64_t naiveSequences() const;

    /** The admissible nonempty subsets to explore, one canonical
     *  representative per Mazurkiewicz trace: exhaustive below the
     *  config's bit limit, the shared deterministic sample above. */
    std::vector<std::uint64_t>
    canonicalMasks(const ReorderConfig &cfg) const;

  private:
    std::vector<std::uint64_t> pred;
    std::vector<std::uint64_t> succ;
};

/**
 * Enumerate the admissible crash states of `window` on top of the
 * current post-crash prefix (reductions (a)-(c) applied), driving
 * `hooks` for each novel state. `seen` is the cross-state digest
 * set; the caller owns it so deduplication spans crash points (a
 * low-prefix state at cut k+1 equals a high-subset state at cut k).
 * Returns this window's counter deltas.
 */
ReorderCounts exploreReorderWindow(
    const std::vector<PendingPersist> &window, const ReorderConfig &cfg,
    const ReorderHooks &hooks, std::set<std::uint64_t> &seen);

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_REORDER_EXPLORER_HH
