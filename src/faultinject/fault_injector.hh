/**
 * @file
 * Deterministic fault injector: the missing wire between the
 * PMEM-Spec hardware model and the failure-atomic runtime.
 *
 * The injector owns a *real* speculation buffer (the Figure 5/8
 * automaton from src/mem) on its own event queue and attaches to a
 * functional PersistentMemory as its access observer. Armed
 * FaultPlans watch the access stream; when one triggers, the
 * injector synthesizes the corresponding hardware event:
 *
 *  - LoadStale: WriteBack then Read reach the buffer, the racing
 *    Persist is scheduled over the virtual persist path after a
 *    configurable delay -- the genuine WriteBack(s)-Read(s)-Persist
 *    misspeculation pattern;
 *  - StoreWaw: two persists with inverted speculation IDs arrive at
 *    the (modelled) PM-controller order check inside the window;
 *  - PersistDelay: a persist is held back with no racing read -- a
 *    benign reorder that must not trap;
 *  - PowerCut: PersistentMemory::crash(prefix) plus a PowerFailure
 *    throw, unwinding the interrupted FASE like a real outage.
 *
 * Misspeculations then travel the *actual* trap path of Section 6.1:
 * the buffer's callback raises VirtualOs::raiseMisspecInterrupt, the
 * OS reverse map resolves the owning process, and the registered
 * FaseRuntime aborts and re-executes under its Lazy or Eager policy.
 * Nothing in the recovery chain is mocked.
 */

#ifndef PMEMSPEC_FAULTINJECT_FAULT_INJECTOR_HH
#define PMEMSPEC_FAULTINJECT_FAULT_INJECTOR_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "faultinject/fault_plan.hh"
#include "mem/block_table.hh"
#include "mem/speculation_buffer.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"
#include "sim/event_queue.hh"

namespace pmemspec::faultinject
{

/** Thrown out of the interrupted FASE when a PowerCut (or TornWrite)
 *  fires. */
struct PowerFailure
{
    std::size_t durablePrefix; ///< persists that made it to PM
    /** True when the frontier persist landed partially (TornWrite). */
    bool torn = false;
    /** 8-byte words the frontier persist (entry durablePrefix of the
     *  queue, the first one lost) overlapped at crash time; 0 when
     *  the cut consumed the whole queue. The torn-write explorer
     *  learns the enumerable mask width from this. */
    std::size_t frontierWords = 0;
};

/** The injector; see the file comment. */
class FaultInjector
{
  public:
    /**
     * @param pm  The functional PM the workload runs against.
     * @param os  The OS relay the target runtime registered with.
     * @param spec_entries  Speculation-buffer capacity.
     * @param window        Speculation window (virtual ticks).
     */
    FaultInjector(runtime::PersistentMemory &pm,
                  runtime::VirtualOs &os, unsigned spec_entries = 16,
                  Tick window = nsToTicks(1000));
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install the injector as the PM's access observer. */
    void attach();
    /** Remove the observer (also done by the destructor). */
    void detach();

    /**
     * Feed one access from an external observer chain. PersistentMemory
     * holds a single observer; a component that needs the access
     * stream for itself (the service shard counts per-op work) owns
     * the observer and forwards every access here instead of calling
     * attach(). Semantics are identical to the attached path: armed
     * plans see the access and may fire.
     */
    void
    observeAccess(runtime::MemOp op, Addr a, std::uint32_t n)
    {
        onAccess(op, a, n);
    }

    void addPlan(std::unique_ptr<FaultPlan> plan);
    void clearPlans();

    // ---- Direct injection primitives (plans route through these,
    // ---- tests may call them directly). ----

    /** Fire a genuine load-stale misspeculation at `addr`: the
     *  persist arrives `persist_delay` after the stale read. */
    void injectLoadStale(Addr addr, Tick persist_delay = 0);

    /** Fire a store-WAW order violation at `addr`. */
    void injectStoreWaw(Addr addr);

    /** Hold a persist back benignly (no interrupt expected). */
    void injectDelayedPersist(Addr addr, Tick delay);

    /**
     * Cut power keeping `prefix` in-flight persists; throws
     * PowerFailure (never returns). When `capture_depth` is nonzero
     * the injector first copies up to that many queue entries from
     * the crash frontier onward -- the contents of the speculation
     * window the outage interrupted -- into capturedWindow(), so the
     * reorder explorer can enumerate which subset/order of them the
     * hardware might also have made durable.
     */
    [[noreturn]] void injectPowerCut(std::size_t prefix,
                                     std::size_t capture_depth = 0);

    /** The window entries captured by the last capturing power cut
     *  (empty when capture_depth was 0 or the queue was consumed). */
    const std::vector<runtime::PersistentMemory::Pending> &
    capturedWindow() const
    {
        return windowCapture;
    }

    /** Cut power keeping `prefix` in-flight persists plus the word
     *  subset `mask` of persist prefix+1 (torn frontier); throws
     *  PowerFailure with torn = true (never returns). */
    [[noreturn]] void injectTornWrite(std::size_t prefix,
                                      std::uint64_t mask);

    /** Silently corrupt the durable word at `addr` by XORing
     *  `xor_mask` into it (0 flips bit 0). Nothing traps here --
     *  detection is the checksum layer's job. */
    void injectBitFlip(Addr addr, std::uint64_t xor_mask = 1);

    /** Mark the 8-byte word at `addr` uncorrectable; subsequent
     *  reads overlapping it raise runtime::MediaError. */
    void injectPoison(Addr addr);

    /** The hardware model under injection. */
    mem::SpeculationBuffer &specBuffer() { return *specBuf; }
    sim::EventQueue &eventQueue() { return eq; }

    /**
     * Attach an event recorder (nullptr detaches): the injector fills
     * its run metadata, clocks it from the injector's event queue,
     * makes it the thread's flight recorder, and cascades it to the
     * speculation buffer and the modelled PMC order check -- the
     * resulting stream is exactly what the offline trace checker
     * replays as an oracle over injection campaigns.
     */
    void setTraceManager(trace::Manager *mgr);

    /**
     * Capture the modelled PMC order-check table (the per-block
     * spec-ID automata) as durable metadata, and re-install a capture
     * -- the crash-consistency hook for explorers that checkpoint the
     * injector around a simulated outage.
     */
    mem::BlockTable::Snapshot orderCheckSnapshot() const
    {
        return specTrack.snapshot();
    }
    void restoreOrderCheck(const mem::BlockTable::Snapshot &s)
    {
        specTrack.restore(s);
    }

    std::uint64_t loadStalesInjected() const { return loadStales; }
    std::uint64_t storeWawsInjected() const { return storeWaws; }
    std::uint64_t powerCutsInjected() const { return powerCuts; }
    std::uint64_t persistDelaysInjected() const { return persistDelays; }
    std::uint64_t tornWritesInjected() const { return tornWrites; }
    std::uint64_t bitFlipsInjected() const { return bitFlips; }
    std::uint64_t poisonsInjected() const { return poisons; }
    /** Misspec interrupts the buffer raised into the OS. */
    std::uint64_t interruptsRaised() const { return interrupts; }

  private:
    void onAccess(runtime::MemOp op, Addr a, std::uint32_t n);
    void fire(const FaultAction &action);

    /** Modelled PMC order check (Section 5.2.2), algorithmically
     *  identical to PmController::checkStoreOrder (max-merge refresh,
     *  lazy expiry sweep) so one checker model covers both: a tagged
     *  persist with a lower spec ID than one recorded for the block
     *  within the window is a store misspeculation. */
    void persistArrives(Addr block, SpecId id);

    runtime::PersistentMemory &pm;
    runtime::VirtualOs &os;
    sim::EventQueue eq;
    StatGroup statRoot;
    std::unique_ptr<mem::SpeculationBuffer> specBuf;
    Tick window;
    Tick defaultPersistDelay;

    std::vector<std::unique_ptr<FaultPlan>> plans;
    std::uint64_t accessIndex = 0;
    bool firing = false; ///< reentrancy guard while injecting
    bool attached = false;

    /** Per-block spec-ID order automata (same table the PMC uses). */
    mem::BlockTable specTrack;

    /** See capturedWindow(). */
    std::vector<runtime::PersistentMemory::Pending> windowCapture;

    std::uint64_t loadStales = 0;
    std::uint64_t storeWaws = 0;
    std::uint64_t powerCuts = 0;
    std::uint64_t persistDelays = 0;
    std::uint64_t tornWrites = 0;
    std::uint64_t bitFlips = 0;
    std::uint64_t poisons = 0;
    std::uint64_t interrupts = 0;

    trace::Manager *traceMgr = nullptr;
};

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_FAULT_INJECTOR_HH
