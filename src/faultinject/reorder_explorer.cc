#include "reorder_explorer.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "faultinject/fault_plan.hh"

namespace pmemspec::faultinject
{

namespace
{

constexpr std::uint64_t satCap = std::numeric_limits<std::uint64_t>::max();

std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    return a > satCap - b ? satCap : a + b;
}

/** Block-granular span overlap: the PMC orders persists per 64-byte
 *  block, so two entries conflict iff they touch a common block. */
bool
blocksOverlap(const PendingPersist &a, const PendingPersist &b)
{
    if (a.bytes.empty() || b.bytes.empty())
        return false;
    const Addr a_lo = blockAlign(a.addr);
    const Addr a_hi = blockAlign(a.addr + a.bytes.size() - 1);
    const Addr b_lo = blockAlign(b.addr);
    const Addr b_hi = blockAlign(b.addr + b.bytes.size() - 1);
    return a_lo <= b_hi && b_lo <= a_hi;
}

} // namespace

void
ReorderCounts::add(const ReorderCounts &o)
{
    windows += o.windows;
    naiveStates = satAdd(naiveStates, o.naiveStates);
    orderingsCollapsed = satAdd(orderingsCollapsed, o.orderingsCollapsed);
    canonicalStates += o.canonicalStates;
    statesExplored += o.statesExplored;
    statesDeduped += o.statesDeduped;
    elidedPersists += o.elidedPersists;
}

WindowEnumerator::WindowEnumerator(
    const std::vector<PendingPersist> &window)
    : pred(window.size(), 0), succ(window.size(), 0)
{
    const std::size_t m = window.size();
    panic_if(m > 16, "reorder window of %zu entries (16 is the "
                     "subset-DP tractability limit)", m);
    for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            // Same-block pairs carry increasing spec IDs in queue
            // order; letting j land first is exactly the inversion
            // mem::storeOrderViolated detects, which traps before
            // any later persist -- so no admissible crash state
            // inverts them. Ordered entries are barriers: nothing
            // crosses them in either direction.
            if (blocksOverlap(window[i], window[j]) ||
                window[i].ordered || window[j].ordered) {
                pred[j] |= std::uint64_t{1} << i;
                succ[i] |= std::uint64_t{1} << j;
            }
        }
    }
}

bool
WindowEnumerator::admissible(std::uint64_t t) const
{
    for (std::size_t j = 0; j < pred.size(); ++j) {
        if ((t >> j) & 1) {
            if (pred[j] & ~t)
                return false;
        }
    }
    return true;
}

std::uint64_t
WindowEnumerator::admissibleCount() const
{
    const std::size_t m = pred.size();
    const std::uint64_t lim = std::uint64_t{1} << m;
    std::uint64_t n = 0;
    for (std::uint64_t t = 0; t < lim; ++t)
        n += admissible(t) ? 1 : 0;
    return n;
}

std::uint64_t
WindowEnumerator::naiveSequences() const
{
    const std::size_t m = pred.size();
    const std::size_t lim = std::size_t{1} << m;
    // g[T] = topological orderings of the induced sub-poset on T.
    // Valid (and used) only for downward-closed T: removing a
    // maximal element keeps a closed set closed, so the recursion
    // never consults a non-closed subproblem from a closed one.
    std::vector<std::uint64_t> g(lim, 0);
    g[0] = 1;
    std::uint64_t total = 0;
    for (std::uint64_t t = 0; t < lim; ++t) {
        if (!admissible(t))
            continue;
        if (t != 0) {
            std::uint64_t ways = 0;
            for (std::size_t j = 0; j < m; ++j) {
                if (!((t >> j) & 1))
                    continue;
                // j applied last: nothing in T may follow j.
                if (succ[j] & t)
                    continue;
                ways = satAdd(ways, g[t & ~(std::uint64_t{1} << j)]);
            }
            g[t] = ways;
        }
        total = satAdd(total, g[t]);
    }
    return total;
}

std::vector<std::uint64_t>
WindowEnumerator::canonicalMasks(const ReorderConfig &cfg) const
{
    const std::size_t m = pred.size();
    std::vector<std::uint64_t> out;
    if (m == 0)
        return out;
    const std::uint64_t full =
        m == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << m) - 1;
    if (m <= cfg.exhaustiveBits) {
        for (std::uint64_t t = 1; t <= full; ++t) {
            if (admissible(t))
                out.push_back(t);
        }
        return out;
    }
    for (std::uint64_t t :
         subsetMasks(m, cfg.maxSubsets, cfg.seed, cfg.exhaustiveBits)) {
        if (admissible(t))
            out.push_back(t);
    }
    // subsetMasks yields proper subsets only; the full window (the
    // whole window also landed -- a deeper prefix, but through the
    // reorder path) is always admissible and worth one state.
    out.push_back(full);
    return out;
}

ReorderCounts
exploreReorderWindow(const std::vector<PendingPersist> &window,
                     const ReorderConfig &cfg, const ReorderHooks &hooks,
                     std::set<std::uint64_t> &seen)
{
    ReorderCounts c;
    if (window.empty())
        return c;
    c.windows = 1;

    // Reduction counters come from the *raw* window: that is what a
    // naive checker would enumerate.
    const WindowEnumerator raw(window);
    c.naiveStates = raw.naiveSequences();
    c.orderingsCollapsed =
        c.naiveStates >= raw.admissibleCount()
            ? c.naiveStates - raw.admissibleCount()
            : 0;

    // Reduction (a), pre-pass: an entry with no ordering edges whose
    // bytes already sit in the durable image (rewound prefix state)
    // cannot change any explored image -- drop it. Only isolated
    // entries are safe to drop wholesale: removing one never breaks
    // another entry's downward closure.
    hooks.rewind();
    std::vector<PendingPersist> reduced;
    reduced.reserve(window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
        if (raw.isolated(i) && !window[i].ordered &&
            hooks.isNoop(window[i])) {
            ++c.elidedPersists;
            continue;
        }
        reduced.push_back(window[i]);
    }

    // Register the prefix state itself (mask = none of the window):
    // the caller already ran its oracles on it; its digest seeds the
    // seen-set so window subsets reproducing it deduplicate.
    seen.insert(hooks.digest());

    const WindowEnumerator enu(reduced);
    for (std::uint64_t mask : enu.canonicalMasks(cfg)) {
        ++c.canonicalStates;
        hooks.rewind();
        std::size_t applied = 0;
        for (std::size_t i = 0; i < reduced.size(); ++i) {
            if (!((mask >> i) & 1))
                continue;
            // Reduction (a), at application: equal bytes make the
            // same image; the digest would dedup it anyway, but
            // skipping the copy is cheaper than hashing twice.
            if (hooks.isNoop(reduced[i])) {
                ++c.elidedPersists;
                continue;
            }
            hooks.apply(reduced[i]);
            ++applied;
        }
        const std::uint64_t d = hooks.digest();
        if (!seen.insert(d).second) {
            ++c.statesDeduped;
            continue;
        }
        ++c.statesExplored;
        hooks.check(mask, applied);
    }
    return c;
}

} // namespace pmemspec::faultinject
