/**
 * @file
 * Pluggable fault plans for the deterministic fault injector.
 *
 * A FaultPlan watches the stream of functional PM accesses and
 * decides *when* to fire *which* hardware fault. Plans are pure
 * trigger logic; the mechanics of actually firing the fault (driving
 * the speculation-buffer automaton, reordering persist arrivals,
 * cutting power at a persist prefix) live in FaultInjector. This
 * split keeps injection deterministic and composable: a test arms a
 * plan, runs its workload, and the fault fires at exactly the chosen
 * access on every run.
 */

#ifndef PMEMSPEC_FAULTINJECT_FAULT_PLAN_HH
#define PMEMSPEC_FAULTINJECT_FAULT_PLAN_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::faultinject
{

/** The injectable hardware events. */
enum class FaultKind
{
    /** Drive the Figure 5 automaton through WriteBack-Read-Persist:
     *  a PM load raced an in-flight persist and fetched stale data
     *  (Section 5.1). Ends in a misspeculation interrupt. */
    LoadStale,
    /** Deliver two persists to one block with inverted speculation
     *  IDs inside the window: an inter-thread WAW persisted out of
     *  happens-before order (Section 5.2). Ends in an interrupt. */
    StoreWaw,
    /** Power failure: keep a chosen prefix of the in-flight persist
     *  queue durable, lose the rest, throw PowerFailure. */
    PowerCut,
    /** Hold a persist arrival back on the (virtual) persist path
     *  without any racing read -- a benign reorder that must NOT
     *  raise an interrupt. */
    PersistDelay,
    /** Power failure at a persist prefix whose frontier entry is
     *  *torn*: an arbitrary word subset of persist prefix+1 is also
     *  durable (8-byte atomicity holds, block atomicity does not).
     *  Throws PowerFailure like PowerCut. */
    TornWrite,
    /** Flip bits in one durable 8-byte word beneath the persist
     *  queue -- silent bit rot that only checksums can catch. */
    BitFlip,
    /** Mark one 8-byte word uncorrectable: subsequent reads raise
     *  runtime::MediaError until the word is fully overwritten. */
    Poison,
};

/** One functional PM access as seen by the injector's observer. */
struct AccessInfo
{
    std::uint64_t index;  ///< accesses observed since attach()
    runtime::MemOp op;
    Addr addr;
    std::uint32_t bytes;
};

/** What to fire, produced by a plan's trigger. */
struct FaultAction
{
    FaultKind kind;
    Addr addr = 0;          ///< faulting address (block-aligned use)
    std::size_t prefix = 0; ///< PowerCut/TornWrite: durable prefix
    Tick delay = 0;         ///< persist-path arrival delay (0 = default)
    /** TornWrite: word subset of the frontier entry made durable
     *  (bit i = i-th overlapped 8-byte word). BitFlip: XOR mask
     *  applied to the word (0 means flip bit 0). */
    std::uint64_t mask = 0;
    /** PowerCut: speculation-window entries to capture from the
     *  crash frontier onward (FaultInjector::capturedWindow()). */
    std::size_t capture = 0;
};

/**
 * The one deterministic subset enumerator behind both the torn-write
 * frontier masks and the reorder explorer's sampled crash-window
 * subsets. Yields *proper nonempty* subsets of an `n`-element set as
 * bit masks ("none" and "all" are the clean prefixes k and k+1 --
 * the plain enumeration already covers them):
 *
 *  - n <= exhaustive_bits: every proper nonempty subset, in
 *    ascending mask order (cap ignored -- exhaustive means
 *    exhaustive);
 *  - wider sets: a fixed pattern family (each single element, each
 *    all-but-one, the two checkerboards) topped up with seeded
 *    Rng-drawn masks, deduplicated, capped at `cap`.
 *
 * Byte-identical across runs and platforms for equal arguments: the
 * pattern order is fixed and the fill uses the repo's own
 * deterministic xoshiro Rng seeded with `seed ^ n`. Unit-tested for
 * exactly that property.
 */
std::vector<std::uint64_t> subsetMasks(std::size_t n, unsigned cap,
                                       std::uint64_t seed,
                                       unsigned exhaustive_bits);

/** Trigger logic deciding when a fault fires. */
class FaultPlan
{
  public:
    virtual ~FaultPlan() = default;

    /** Called on every observed access; return an action to fire it.
     *  Plans fire at most once unless they re-arm themselves. */
    virtual std::optional<FaultAction> onAccess(const AccessInfo &info) = 0;
};

/** Fire `kind` at the Nth observed access (1-based), faulting on the
 *  address of that access. */
class NthAccessPlan : public FaultPlan
{
  public:
    NthAccessPlan(FaultKind kind, std::uint64_t nth, Tick delay = 0,
                  std::uint64_t mask = 0)
        : kind(kind), nth(nth), delay(delay), mask(mask)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (fired || ++seen != nth)
            return std::nullopt;
        fired = true;
        return FaultAction{kind, info.addr, 0, delay, mask};
    }

  private:
    FaultKind kind;
    std::uint64_t nth;
    Tick delay;
    std::uint64_t mask;
    std::uint64_t seen = 0;
    bool fired = false;
};

/** Fire `kind` the first time a chosen cache block is touched. */
class AddrTouchPlan : public FaultPlan
{
  public:
    AddrTouchPlan(FaultKind kind, Addr addr, Tick delay = 0,
                  std::uint64_t mask = 0)
        : kind(kind), block(blockAlign(addr)), delay(delay), mask(mask)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (fired || blockAlign(info.addr) != block)
            return std::nullopt;
        fired = true;
        return FaultAction{kind, info.addr, 0, delay, mask};
    }

  private:
    FaultKind kind;
    Addr block;
    Tick delay;
    std::uint64_t mask;
    bool fired = false;
};

/**
 * Re-arming plan: fire `kind` on the observed access every `period`
 * accesses (counted from arming), up to `count` total fires, each on
 * the address of the triggering access. The chaos/service harness
 * uses it for misspeculation *storms* -- a burst of LoadStale events
 * dense enough to drive a FASE into its abort budget -- but any
 * per-access fault kind works.
 */
class PeriodicPlan : public FaultPlan
{
  public:
    PeriodicPlan(FaultKind kind, std::uint64_t period,
                 std::uint64_t count, Tick delay = 0)
        : kind(kind), period(period ? period : 1), remaining(count),
          delay(delay)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (remaining == 0)
            return std::nullopt;
        if (++seen % period != 0)
            return std::nullopt;
        --remaining;
        return FaultAction{kind, info.addr, 0, delay, 0};
    }

    /** Fires left before the storm is spent. */
    std::uint64_t firesRemaining() const { return remaining; }

  private:
    FaultKind kind;
    std::uint64_t period;
    std::uint64_t remaining;
    Tick delay;
    std::uint64_t seen = 0;
};

/**
 * Cut power so that exactly `prefix` in-flight persists are durable.
 *
 * Counts persist-queue entries (writes) from the moment it is armed;
 * when entry prefix+1 is queued, the injector crashes keeping the
 * first `prefix` entries and throws PowerFailure. Arm it while the
 * queue is empty (e.g. at a FASE boundary) so the count and the
 * queue agree. If the run queues `prefix` entries or fewer, the plan
 * never fires and the run completes -- the crash-point explorer uses
 * exactly this to detect that it has enumerated every prefix.
 */
class PowerCutPlan : public FaultPlan
{
  public:
    /** @param capture_depth Window entries to capture at the crash
     *  frontier for reorder exploration (0 = plain power cut). */
    explicit PowerCutPlan(std::size_t prefix,
                          std::size_t capture_depth = 0)
        : prefix(prefix), captureDepth(capture_depth)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (fired || info.op != runtime::MemOp::Write)
            return std::nullopt;
        if (++writesSeen != prefix + 1)
            return std::nullopt;
        fired = true;
        return FaultAction{FaultKind::PowerCut, info.addr, prefix, 0,
                           0, captureDepth};
    }

  private:
    std::size_t prefix;
    std::size_t captureDepth;
    std::size_t writesSeen = 0;
    bool fired = false;
};

/**
 * Cut power at durable prefix `prefix` with a *torn* frontier: the
 * word subset `mask` of persist prefix+1 is durable too. Trigger
 * logic matches PowerCutPlan (fires when write prefix+1 is queued,
 * arm on an empty persist queue); the crash itself goes through
 * PersistentMemory::crashTorn, so 8-byte atomicity is preserved but
 * multi-word entries land partially. The torn-write explorer mode
 * enumerates masks over the frontier of every crash point.
 */
class TornWritePlan : public FaultPlan
{
  public:
    TornWritePlan(std::size_t prefix, std::uint64_t mask)
        : prefix(prefix), mask(mask)
    {
    }

    std::optional<FaultAction>
    onAccess(const AccessInfo &info) override
    {
        if (fired || info.op != runtime::MemOp::Write)
            return std::nullopt;
        if (++writesSeen != prefix + 1)
            return std::nullopt;
        fired = true;
        return FaultAction{FaultKind::TornWrite, info.addr, prefix, 0,
                           mask};
    }

  private:
    std::size_t prefix;
    std::uint64_t mask;
    std::size_t writesSeen = 0;
    bool fired = false;
};

} // namespace pmemspec::faultinject

#endif // PMEMSPEC_FAULTINJECT_FAULT_PLAN_HH
