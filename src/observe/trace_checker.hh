/**
 * @file
 * Offline trace checker: an independent implementation of the
 * paper's misspeculation detection rules, replayed over an event log.
 *
 * From the SpecBuffer input events (SbWriteBack / SbRead / SbPersist,
 * plus SbInputDropped) the checker re-derives the per-block automaton
 * of Figure 5 -- including window expiries, computed from
 * Meta::specWindow rather than trusted from the stream -- and from the
 * PmcPersistAccept events it re-derives the spec-ID ordering check of
 * Section 5.2.2. Its verdicts are then diffed, both directions,
 * against what the hardware reported (SbMisspec / SbExpire /
 * PmcStoreOrderViolation events): a misspeculation the hardware
 * detected but the checker cannot derive is as much a disagreement as
 * one the hardware missed. Zero disagreements is the contract the
 * fault-injection suite and the CI trace-check job assert.
 *
 * The replay mirrors two exact hardware semantics:
 *  - tie-breaking: the event queue runs same-tick events in insertion
 *    order, so a window expiry armed at tick T beats any persist
 *    delivered at T + window (expiries are applied before any input
 *    carrying an equal or later tick);
 *  - the PMC's spec-ID tracker keeps the max ID seen within the
 *    window and ages entries with a one-shot lazy sweep scheduled
 *    window + 1 ticks after first insertion.
 *
 * The checker requires a lossless stream: a trace with dropped events
 * cannot be certified and is reported as a disagreement.
 */

#ifndef PMEMSPEC_OBSERVE_TRACE_CHECKER_HH
#define PMEMSPEC_OBSERVE_TRACE_CHECKER_HH

#include <string>
#include <vector>

#include "common/trace.hh"

namespace pmemspec::observe
{

/** Verdict of one checker run. */
struct CheckResult
{
    std::uint64_t events = 0; ///< events replayed

    /** Which rule sets the stream's flags allowed us to replay. */
    bool automatonChecked = false;  ///< needs SpecBuffer events
    bool storeOrderChecked = false; ///< needs PmController events

    std::uint64_t loadMisspecsDerived = 0;
    std::uint64_t loadMisspecsDetected = 0; ///< hardware SbMisspec
    std::uint64_t storeMisspecsDerived = 0;
    std::uint64_t storeMisspecsDetected = 0;
    std::uint64_t expiriesDerived = 0;
    std::uint64_t expiriesDetected = 0;

    /** Checker/hardware mismatches; empty means the log certifies. */
    std::vector<std::string> disagreements;
    /** Non-fatal observations (skipped rule sets etc.). */
    std::vector<std::string> notes;

    bool ok() const { return disagreements.empty(); }
    std::string summary() const;
};

/** Replay a stream recorded with the given metadata. `dropped` is
 *  the manager's dropped-event count (non-zero disqualifies). */
CheckResult checkEvents(const std::vector<trace::Event> &events,
                        const trace::Meta &meta,
                        std::uint64_t dropped = 0);

/** Load a PMTRACE1 binary log and check it. */
CheckResult checkTraceFile(const std::string &path);

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_TRACE_CHECKER_HH
