#include "binary_log.hh"

#include <cstdio>
#include <cstring>

namespace pmemspec::observe
{

namespace
{

constexpr char kMagic[8] = {'P', 'M', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kEventBytes = 48;

void
put16(std::string &out, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
put32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
put64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

class Reader
{
  public:
    Reader(const std::string &data) : buf(data) {}

    bool
    bytes(void *dst, std::size_t n)
    {
        if (pos + n > buf.size())
            return false;
        std::memcpy(dst, buf.data() + pos, n);
        pos += n;
        return true;
    }

    bool
    u8(std::uint8_t &v)
    {
        return bytes(&v, 1);
    }

    bool
    u16(std::uint16_t &v)
    {
        std::uint8_t b[2];
        if (!bytes(b, 2))
            return false;
        v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        std::uint8_t b[4];
        if (!bytes(b, 4))
            return false;
        v = b[0] | (std::uint32_t{b[1]} << 8) | (std::uint32_t{b[2]} << 16) |
            (std::uint32_t{b[3]} << 24);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        std::uint32_t lo, hi;
        if (!u32(lo) || !u32(hi))
            return false;
        v = lo | (std::uint64_t{hi} << 32);
        return true;
    }

    bool
    skip(std::size_t n)
    {
        if (pos + n > buf.size())
            return false;
        pos += n;
        return true;
    }

  private:
    const std::string &buf;
    std::size_t pos = 0;
};

} // namespace

bool
writeBinaryTrace(const std::string &path, const trace::Meta &meta,
                 const std::vector<trace::Event> &events,
                 std::uint64_t dropped)
{
    std::string out;
    out.reserve(64 + meta.design.size() + events.size() * kEventBytes);
    out.append(kMagic, sizeof(kMagic));
    put32(out, kVersion);
    put32(out, meta.flags);
    put64(out, meta.specWindow);
    put32(out, meta.specEntries);
    put32(out, meta.numCores);
    out.push_back(meta.specAutomaton ? 1 : 0);
    out.append(7, '\0');
    put32(out, static_cast<std::uint32_t>(meta.design.size()));
    out.append(meta.design);
    put64(out, events.size());
    put64(out, dropped);
    for (const trace::Event &e : events) {
        put64(out, e.tick);
        put64(out, e.seq);
        put64(out, e.addr);
        put64(out, e.arg);
        put32(out, e.specId);
        put32(out, e.core);
        put16(out, e.unit);
        out.push_back(static_cast<char>(e.flagBit));
        out.push_back(static_cast<char>(e.kind));
        out.push_back(static_cast<char>(e.stateBefore));
        out.push_back(static_cast<char>(e.stateAfter));
        out.append(2, '\0');
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::size_t n = std::fwrite(out.data(), 1, out.size(), f);
    const bool ok = n == out.size() && std::fclose(f) == 0;
    if (!ok && n != out.size())
        std::fclose(f);
    return ok;
}

std::optional<BinaryTrace>
readBinaryTrace(const std::string &path, std::string *err)
{
    auto fail = [&](const std::string &why) -> std::optional<BinaryTrace> {
        if (err)
            *err = path + ": " + why;
        return std::nullopt;
    };

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open");
    std::string data;
    char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        data.append(chunk, n);
    std::fclose(f);

    Reader r(data);
    char magic[8];
    if (!r.bytes(magic, 8) || std::memcmp(magic, kMagic, 8) != 0)
        return fail("bad magic (not a PMTRACE1 file)");
    std::uint32_t version;
    if (!r.u32(version) || version != kVersion)
        return fail("unsupported version");

    BinaryTrace bt;
    std::uint8_t automaton;
    std::uint32_t design_len;
    std::uint64_t event_count;
    if (!r.u32(bt.meta.flags) || !r.u64(bt.meta.specWindow) ||
        !r.u32(bt.meta.specEntries))
        return fail("truncated header");
    std::uint32_t cores;
    if (!r.u32(cores) || !r.u8(automaton) || !r.skip(7) ||
        !r.u32(design_len))
        return fail("truncated header");
    bt.meta.numCores = cores;
    bt.meta.specAutomaton = automaton != 0;
    bt.meta.design.resize(design_len);
    if (design_len && !r.bytes(bt.meta.design.data(), design_len))
        return fail("truncated design name");
    if (!r.u64(event_count) || !r.u64(bt.dropped))
        return fail("truncated header");

    bt.events.resize(event_count);
    for (std::uint64_t i = 0; i < event_count; ++i) {
        trace::Event &e = bt.events[i];
        std::uint8_t kind;
        if (!r.u64(e.tick) || !r.u64(e.seq) || !r.u64(e.addr) ||
            !r.u64(e.arg) || !r.u32(e.specId) || !r.u32(e.core) ||
            !r.u16(e.unit) || !r.u8(e.flagBit) || !r.u8(kind) ||
            !r.u8(e.stateBefore) || !r.u8(e.stateAfter) || !r.skip(2))
            return fail("truncated event record");
        e.kind = static_cast<trace::EventKind>(kind);
    }
    return bt;
}

} // namespace pmemspec::observe
