/**
 * @file
 * Low-overhead time-series metrics registry.
 *
 * A MetricsRegistry holds named gauges (std::function<double()>) in
 * registration order; sample() evaluates every gauge and appends one
 * row stamped with the simulated tick. A MetricsSampler drives the
 * registry from a domain's EventQueue on a fixed simulated-time
 * cadence. One registry per simulation domain keeps the single-writer
 * discipline that DomainPool determinism depends on: rows are a pure
 * function of simulated state, so merged output is byte-identical for
 * any --sim-threads value.
 *
 * The sampled rows detach into a plain MetricsSeries (columns + rows)
 * which survives the registry/domain and supports deterministic
 * cross-shard summation (sumSeries) and JSON emission with the
 * integral-stays-integral formatting rule the bench envelope uses.
 */

#ifndef PMEMSPEC_OBSERVE_METRICS_HH
#define PMEMSPEC_OBSERVE_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace pmemspec::observe
{

/** Rides in MachineConfig / ServiceConfig, mirroring trace::Config. */
struct MetricsConfig
{
    bool sample = false;
    /** Simulated-time sampling cadence (default 100us). */
    Tick interval = nsToTicks(100000);

    bool enabled() const { return sample && interval > 0; }
};

/**
 * Detached, copyable sample matrix: one column per registered gauge,
 * one row per sampler firing. Ticks are absolute simulated time.
 */
struct MetricsSeries
{
    struct Row
    {
        Tick at = 0;
        std::vector<double> values;
    };

    std::vector<std::string> columns;
    std::vector<Row> rows;

    bool empty() const { return rows.empty(); }

    /** {"columns": [...], "rows": [[t_ns, v...], ...]} with integral
     *  values emitted as integers so output is bit-stable. */
    Json toJson() const;
};

/** Element-wise sum of per-shard series (columns must match; the
 *  result has max(rows) rows, absent rows contribute zero). Summation
 *  runs in `parts` order, so the result is deterministic. */
MetricsSeries sumSeries(const std::vector<MetricsSeries> &parts);

/**
 * Named-gauge registry. Single writer: owned by one simulation domain
 * (or one Machine) and only ever sampled from that domain's event
 * loop. Registration order defines the column order.
 */
class MetricsRegistry
{
  public:
    using Gauge = std::function<double()>;

    /** Register a gauge; evaluated at every sample(). */
    void
    addGauge(std::string name, Gauge fn)
    {
        series_.columns.push_back(std::move(name));
        gauges.push_back(std::move(fn));
    }

    /** Convenience: sample a Counter's running value. */
    void
    addCounter(std::string name, const Counter &c)
    {
        addGauge(std::move(name),
                 [&c] { return static_cast<double>(c.value()); });
    }

    std::size_t numColumns() const { return series_.columns.size(); }
    std::size_t numRows() const { return series_.rows.size(); }

    /** Evaluate every gauge and append one row at @p now. */
    void sample(Tick now);

    /** The accumulated series (columns + rows). */
    const MetricsSeries &series() const { return series_; }

    /** Move the series out (registry keeps its columns/gauges). */
    MetricsSeries takeSeries();

  private:
    MetricsSeries series_;
    std::vector<Gauge> gauges;
};

/**
 * Drives a MetricsRegistry from an EventQueue: fires every `interval`
 * simulated ticks, samples, and re-arms only while the queue still
 * has other pending work — so eq.run() terminates exactly when the
 * simulation would have without the sampler.
 */
class MetricsSampler
{
  public:
    MetricsSampler(sim::EventQueue &eq, MetricsRegistry &reg,
                   Tick interval)
        : eq(eq), reg(reg), interval(interval)
    {
    }

    /** Schedule the first sample one interval from now. */
    void
    start()
    {
        if (interval == 0)
            return;
        eq.schedule(sim::After{interval}, [this] { fire(); });
    }

    std::size_t fired() const { return firings; }

  private:
    void
    fire()
    {
        ++firings;
        reg.sample(eq.now());
        // The sampler must not keep an otherwise-drained queue alive.
        if (!eq.empty())
            eq.schedule(sim::After{interval}, [this] { fire(); });
    }

    sim::EventQueue &eq;
    MetricsRegistry &reg;
    Tick interval;
    std::size_t firings = 0;
};

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_METRICS_HH
