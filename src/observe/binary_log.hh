/**
 * @file
 * Compact binary trace log ("PMTRACE1").
 *
 * Layout (all integers little-endian):
 *
 *   char     magic[8]      "PMTRACE1"
 *   u32      version       1
 *   u32      flags         trace flag mask the stream was recorded with
 *   u64      specWindow    speculation window (ticks)
 *   u32      specEntries   speculation buffer capacity
 *   u32      numCores
 *   u8       specAutomaton 1 when the Figure 5 automaton was active
 *   u8       pad[7]
 *   u32      designLen     + that many bytes of design name
 *   u64      eventCount
 *   u64      droppedCount
 *   Event[eventCount]      48 bytes each:
 *     u64 tick, u64 seq, u64 addr, u64 arg,
 *     u32 specId, u32 core, u16 unit,
 *     u8 flagBit, u8 kind, u8 stateBefore, u8 stateAfter, u8 pad[2]
 *
 * This is the lossless format the offline trace checker consumes; the
 * Chrome exporter is for human timelines.
 */

#ifndef PMEMSPEC_OBSERVE_BINARY_LOG_HH
#define PMEMSPEC_OBSERVE_BINARY_LOG_HH

#include <optional>
#include <string>
#include <vector>

#include "common/trace.hh"

namespace pmemspec::observe
{

/** A fully parsed binary trace. */
struct BinaryTrace
{
    trace::Meta meta;
    std::uint64_t dropped = 0;
    std::vector<trace::Event> events;
};

/** Write a binary trace log. @return false on I/O failure. */
bool writeBinaryTrace(const std::string &path, const trace::Meta &meta,
                      const std::vector<trace::Event> &events,
                      std::uint64_t dropped);

/** Read a binary trace log. On failure returns nullopt and, when
 *  `err` is non-null, stores a diagnostic. */
std::optional<BinaryTrace> readBinaryTrace(const std::string &path,
                                           std::string *err = nullptr);

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_BINARY_LOG_HH
