#include "chrome_trace.hh"

#include <fstream>
#include <map>
#include <sstream>

namespace pmemspec::observe
{

namespace
{

/** Chrome has no "no thread": uncored events land on a per-unit lane
 *  well above any plausible core id. */
constexpr std::uint64_t kUncoredTidBase = 1000;

std::uint64_t
tidOf(const trace::Event &e)
{
    if (e.core != trace::kNoCore)
        return e.core;
    return kUncoredTidBase + e.unit;
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

Json
chromeTraceJson(const std::vector<trace::Event> &events,
                const trace::Meta &meta, std::uint64_t dropped,
                const MetricsSeries *counters)
{
    Json evs = Json::array();
    std::map<std::uint64_t, std::string> lanes;

    for (const trace::Event &e : events) {
        Json je = Json::object();
        je.set("name", Json(std::string(trace::kindName(e.kind))));
        je.set("cat", Json(std::string(trace::flagName(e.flagBit))));
        je.set("ph", Json(std::string("i")));
        // Ticks are picoseconds; Chrome's ts field is microseconds.
        je.set("ts", Json(static_cast<double>(e.tick) / 1e6));
        je.set("pid", Json(std::uint64_t{0}));
        const std::uint64_t tid = tidOf(e);
        je.set("tid", Json(tid));
        je.set("s", Json(std::string("t")));

        Json args = Json::object();
        args.set("seq", Json(e.seq));
        args.set("addr", Json(hexAddr(e.addr)));
        if (e.specId != trace::kNoSpecId)
            args.set("specId", Json(std::uint64_t{e.specId}));
        if (e.stateBefore != trace::kNoState)
            args.set("before", Json(std::string(
                trace::specStateName(e.stateBefore))));
        if (e.stateAfter != trace::kNoState)
            args.set("after", Json(std::string(
                trace::specStateName(e.stateAfter))));
        if (e.arg != 0)
            args.set("arg", Json(e.arg));
        args.set("unit", Json(std::uint64_t{e.unit}));
        je.set("args", std::move(args));
        evs.push(std::move(je));

        if (!lanes.count(tid)) {
            lanes[tid] = e.core != trace::kNoCore
                ? "core" + std::to_string(e.core)
                : "pm-unit" + std::to_string(e.unit);
        }
    }

    // Counter tracks from the sampled time series: one ph "C" event
    // per (row, column), emitted in row-major order so the document
    // stays deterministic.
    if (counters && !counters->empty()) {
        for (const MetricsSeries::Row &row : counters->rows) {
            for (std::size_t c = 0; c < counters->columns.size(); ++c) {
                Json ce = Json::object();
                ce.set("name", Json(counters->columns[c]));
                ce.set("ph", Json(std::string("C")));
                ce.set("ts", Json(static_cast<double>(row.at) / 1e6));
                ce.set("pid", Json(std::uint64_t{0}));
                Json args = Json::object();
                args.set("value", Json(row.values[c]));
                ce.set("args", std::move(args));
                evs.push(std::move(ce));
            }
        }
    }

    // Thread-name metadata so the viewer labels the lanes.
    for (const auto &[tid, name] : lanes) {
        Json md = Json::object();
        md.set("name", Json(std::string("thread_name")));
        md.set("ph", Json(std::string("M")));
        md.set("pid", Json(std::uint64_t{0}));
        md.set("tid", Json(tid));
        Json args = Json::object();
        args.set("name", Json(name));
        md.set("args", std::move(args));
        evs.push(std::move(md));
    }

    Json other = Json::object();
    other.set("schema", Json(std::string("pmemspec-trace-v1")));
    other.set("design", Json(meta.design));
    other.set("specWindowTicks", Json(meta.specWindow));
    other.set("specEntries", Json(std::uint64_t{meta.specEntries}));
    other.set("numCores", Json(std::uint64_t{meta.numCores}));
    other.set("flags", Json(trace::flagsToString(meta.flags)));
    other.set("events", Json(std::uint64_t{events.size()}));
    other.set("dropped", Json(dropped));

    Json doc = Json::object();
    doc.set("traceEvents", std::move(evs));
    doc.set("displayTimeUnit", Json(std::string("ns")));
    doc.set("otherData", std::move(other));
    return doc;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<trace::Event> &events,
                 const trace::Meta &meta, std::uint64_t dropped,
                 const MetricsSeries *counters)
{
    std::ofstream os(path);
    if (!os)
        return false;
    chromeTraceJson(events, meta, dropped, counters).write(os, 0);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace pmemspec::observe
