#include "spec_profile.hh"

namespace pmemspec::observe
{

const char *
abortCauseName(AbortCause c)
{
    switch (c) {
      case AbortCause::Misspec: return "misspec";
      case AbortCause::Budget: return "budget";
      case AbortCause::PowerCut: return "power_cut";
      case AbortCause::Media: return "media";
      case AbortCause::Corruption: return "corruption";
      case AbortCause::Other: return "other";
    }
    return "other";
}

std::uint64_t
SpecProfile::Site::abortsTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t a : aborts)
        total += a;
    return total;
}

unsigned
SpecProfile::site(const std::string &name)
{
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        if (sites_[i].name == name)
            return static_cast<unsigned>(i);
    }
    sites_.push_back(Site{});
    sites_.back().name = name;
    return static_cast<unsigned>(sites_.size() - 1);
}

void
SpecProfile::mergeFrom(const SpecProfile &other)
{
    for (const Site &o : other.sites_) {
        Site &s = sites_.at(site(o.name));
        s.executions += o.executions;
        s.commits += o.commits;
        for (std::size_t c = 0; c < kNumAbortCauses; ++c)
            s.aborts[c] += o.aborts[c];
        s.persists += o.persists;
        s.dirtyBlocks += o.dirtyBlocks;
        s.residency.absorb(o.residency);
    }
}

Json
SpecProfile::toJson() const
{
    Json j = Json::object();
    j.set("schema", Json("pmemspec-profile-v1"));
    Json arr = Json::array();
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        const Site &s = sites_[i];
        Json e = Json::object();
        e.set("site", Json(static_cast<std::uint64_t>(i)));
        e.set("name", Json(s.name));
        e.set("executions", Json(s.executions));
        e.set("commits", Json(s.commits));
        Json ab = Json::object();
        for (std::size_t c = 0; c < kNumAbortCauses; ++c)
            ab.set(abortCauseName(static_cast<AbortCause>(c)),
                   Json(s.aborts[c]));
        e.set("aborts", std::move(ab));
        e.set("aborts_total", Json(s.abortsTotal()));
        e.set("persists", Json(s.persists));
        e.set("dirty_blocks", Json(s.dirtyBlocks));
        Json res = Json::object();
        res.set("mean_ns", Json(s.residency.mean()));
        res.set("max_ns", Json(s.residency.max()));
        res.set("total_ns", Json(s.residency.sum()));
        res.set("samples", Json(s.residency.samples()));
        e.set("residency", std::move(res));
        arr.push(std::move(e));
    }
    j.set("sites", std::move(arr));
    return j;
}

} // namespace pmemspec::observe
