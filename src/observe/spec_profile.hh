/**
 * @file
 * Per-FASE-site speculation profile.
 *
 * A SpecProfile aggregates, per FASE program site (a program counter
 * on the timing side, a named operation on the functional service
 * side): executions, commits, aborts split by cause, persisted
 * writes, distinct dirty blocks, and window-residency time. Sites are
 * registered in a deterministic order per simulation domain, which
 * makes cross-domain merges (mergeFrom) byte-stable.
 *
 * The profile serializes as a `pmemspec-profile-v1` JSON section in
 * the bench envelope; the ROADMAP's profile-guided adaptive
 * speculation item consumes exactly this shape.
 */

#ifndef PMEMSPEC_OBSERVE_SPEC_PROFILE_HH
#define PMEMSPEC_OBSERVE_SPEC_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pmemspec::observe
{

/** Why a FASE attempt failed to commit. */
enum class AbortCause : std::uint8_t
{
    Misspec,      ///< load/store misspeculation (eager trap or lazy flag)
    Budget,       ///< abort budget exhausted, FASE gave up
    PowerCut,     ///< injected power failure mid-FASE
    Media,        ///< poisoned media read escalated out of the FASE
    Corruption,   ///< unrecoverable corruption verdict
    Other,
};

constexpr std::size_t kNumAbortCauses = 6;

const char *abortCauseName(AbortCause c);

class SpecProfile
{
  public:
    struct Site
    {
        std::string name;
        std::uint64_t executions = 0; ///< FASE attempts (incl. retries)
        std::uint64_t commits = 0;
        std::array<std::uint64_t, kNumAbortCauses> aborts{};
        std::uint64_t persists = 0;     ///< logged writes that persisted
        std::uint64_t dirtyBlocks = 0;  ///< distinct blocks per commit, summed
        Accumulator residency;          ///< window residency per commit (ns)

        std::uint64_t abortsTotal() const;
    };

    void setEnabled(bool on) { on_ = on; }
    bool enabled() const { return on_; }

    /** Find-or-register a site; ids are assigned in first-use order,
     *  so identical registration sequences yield identical ids. */
    unsigned site(const std::string &name);

    void
    recordExecution(unsigned site)
    {
        if (on_)
            ++sites_.at(site).executions;
    }

    void
    recordCommit(unsigned site, std::uint64_t persists,
                 std::uint64_t dirtyBlocks)
    {
        if (!on_)
            return;
        Site &s = sites_.at(site);
        ++s.commits;
        s.persists += persists;
        s.dirtyBlocks += dirtyBlocks;
    }

    void
    recordAbort(unsigned site, AbortCause cause)
    {
        if (on_)
            ++sites_.at(site).aborts[static_cast<std::size_t>(cause)];
    }

    /** Window residency of one committed FASE, in simulated ticks. */
    void
    recordResidency(unsigned site, Tick t)
    {
        if (on_)
            sites_.at(site).residency.sample(
                static_cast<double>(t) / ticksPerNs);
    }

    std::size_t numSites() const { return sites_.size(); }
    const Site &siteInfo(unsigned id) const { return sites_.at(id); }

    /** Fold another domain's profile in. Sites are matched by name;
     *  domains that register sites in the same order merge into the
     *  same site table, byte-identically. */
    void mergeFrom(const SpecProfile &other);

    /** Stable `pmemspec-profile-v1` JSON section. */
    Json toJson() const;

  private:
    bool on_ = true;
    std::vector<Site> sites_;
};

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_SPEC_PROFILE_HH
