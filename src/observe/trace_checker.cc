#include "trace_checker.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "observe/binary_log.hh"

namespace pmemspec::observe
{

namespace
{

using trace::Event;
using trace::EventKind;

// SpecState ordinals as carried in Event::stateBefore/After.
constexpr std::uint8_t kInitial = 0;
constexpr std::uint8_t kEvict = 1;
constexpr std::uint8_t kSpeculated = 2;
constexpr std::uint8_t kMisspeculation = 3;

// MisspecKind ordinals as carried in SbMisspec's arg.
constexpr std::uint64_t kLoadStale = 0;
constexpr std::uint64_t kStoreOrder = 1;

/** (unit, addr, tick): identity of one verdict for multiset diffing. */
using VerdictKey = std::tuple<std::uint16_t, Addr, Tick>;

struct Checker
{
    const trace::Meta &meta;
    CheckResult &res;
    std::size_t reported = 0;
    std::size_t suppressed = 0;

    /** Load automaton replica: per (unit, block) entry. */
    struct SbEntry
    {
        std::uint8_t state = kInitial;
        Tick windowStart = 0;
    };
    std::map<std::pair<std::uint16_t, Addr>, SbEntry> sbLive;
    std::map<std::uint16_t, unsigned> sbCount;

    /** Spec-ID order replica: the PMC's per-block {id, at} metadata
     *  plus its pending lazy sweeps. */
    struct Track
    {
        std::uint32_t id = 0;
        Tick at = 0;
    };
    std::map<std::pair<std::uint16_t, Addr>, Track> stLive;
    /** (fire tick, unit, addr), sorted; one per fresh insertion. */
    std::vector<std::tuple<Tick, std::uint16_t, Addr>> stSweeps;

    /** Verdict multisets: derived +1, hardware-detected -1. */
    std::map<VerdictKey, long> loadDiff;
    std::map<VerdictKey, long> storeDiff;

    bool checkSb = false;
    bool checkSt = false;

    explicit Checker(const trace::Meta &m, CheckResult &r)
        : meta(m), res(r)
    {
    }

    void
    disagree(const std::string &msg)
    {
        if (reported < 64) {
            res.disagreements.push_back(msg);
            ++reported;
        } else {
            ++suppressed;
        }
    }

    static std::string
    where(const Event &e)
    {
        std::ostringstream os;
        os << "[seq " << e.seq << "] " << trace::Manager::format(e);
        return os.str();
    }

    SbEntry *
    findSb(std::uint16_t unit, Addr addr)
    {
        auto it = sbLive.find({unit, addr});
        return it == sbLive.end() ? nullptr : &it->second;
    }

    void
    eraseSb(std::uint16_t unit, Addr addr)
    {
        if (sbLive.erase({unit, addr}))
            --sbCount[unit];
    }

    void
    insertSb(std::uint16_t unit, Addr addr, std::uint8_t state, Tick t)
    {
        auto [it, fresh] = sbLive.try_emplace({unit, addr});
        it->second.state = state;
        it->second.windowStart = t;
        if (fresh)
            ++sbCount[unit];
    }

    /** A window that should have expired strictly before `t` and was
     *  neither refreshed nor reported expired: the hardware missed
     *  it. (At `t` == deadline the stream's own ordering decides, so
     *  the entry is still legitimately live here.) */
    void
    expireOverdueSb(std::uint16_t unit, Addr addr, Tick t)
    {
        SbEntry *e = findSb(unit, addr);
        if (!e || e->windowStart + meta.specWindow >= t)
            return;
        ++res.expiriesDerived;
        disagree("hardware failed to expire block 0x" + hex(addr) +
                 " (unit " + std::to_string(unit) + "): window armed at " +
                 std::to_string(e->windowStart) + " should have expired at " +
                 std::to_string(e->windowStart + meta.specWindow) +
                 ", still live at tick " + std::to_string(t));
        eraseSb(unit, addr);
    }

    static std::string
    hex(Addr a)
    {
        std::ostringstream os;
        os << std::hex << a;
        return os.str();
    }

    void
    claimCheck(const Event &e, const char *which, std::uint8_t claimed,
               std::uint8_t derived)
    {
        if (claimed == derived)
            return;
        disagree(std::string("hardware claims ") + which + " state " +
                 trace::specStateName(claimed) + " but checker derives " +
                 trace::specStateName(derived) + " at " + where(e));
    }

    /** Fire pending spec-ID sweeps scheduled strictly before `t`,
     *  mirroring PmController::checkStoreOrder's lazy sweep. Erasing
     *  sweeps emit PmcTrackExpire and are handled by their own event
     *  (exact interleaving); a sweep that would erase but produced no
     *  event by now was missed by the hardware. */
    void
    drainSweeps(Tick t)
    {
        std::size_t kept = 0;
        for (auto &sw : stSweeps) {
            auto [fire, unit, addr] = sw;
            if (fire >= t) {
                stSweeps[kept++] = sw;
                continue;
            }
            auto it = stLive.find({unit, addr});
            if (it == stLive.end() || fire - it->second.at <= meta.specWindow)
                continue; // fired without erasing: no event, no trace
            disagree("hardware failed to age out spec-ID tracking of "
                     "block 0x" + hex(addr) + " (unit " +
                     std::to_string(unit) + "): sweep at tick " +
                     std::to_string(fire) + " should have erased the entry "
                     "last touched at " + std::to_string(it->second.at));
            stLive.erase(it);
        }
        stSweeps.resize(kept);
    }

    void
    onSbWriteBack(const Event &e)
    {
        expireOverdueSb(e.unit, e.addr, e.tick);
        SbEntry *entry = findSb(e.unit, e.addr);
        claimCheck(e, "before", e.stateBefore,
                   entry ? entry->state : kInitial);
        claimCheck(e, "after", e.stateAfter, kEvict);
        insertSb(e.unit, e.addr, kEvict, e.tick);
        if (!entry && meta.specEntries &&
            sbCount[e.unit] > meta.specEntries) {
            disagree("checker tracks " + std::to_string(sbCount[e.unit]) +
                     " blocks on unit " + std::to_string(e.unit) +
                     ", beyond the hardware capacity of " +
                     std::to_string(meta.specEntries) + " at " + where(e));
        }
    }

    void
    onSbInputDropped(const Event &e)
    {
        expireOverdueSb(e.unit, e.addr, e.tick);
        if (findSb(e.unit, e.addr)) {
            disagree("hardware dropped a WriteBack for a block the "
                     "checker still tracks at " + where(e));
            return;
        }
        if (meta.specEntries && sbCount[e.unit] != meta.specEntries) {
            disagree("hardware dropped a WriteBack with only " +
                     std::to_string(sbCount[e.unit]) + "/" +
                     std::to_string(meta.specEntries) +
                     " entries derived live at " + where(e));
        }
    }

    void
    onSbAllocate(const Event &e)
    {
        expireOverdueSb(e.unit, e.addr, e.tick);
        if (findSb(e.unit, e.addr))
            disagree("hardware allocated an entry for a block the "
                     "checker already tracks at " + where(e));
        if (meta.specEntries && sbCount[e.unit] >= meta.specEntries)
            disagree("hardware allocated an entry but the checker "
                     "derives a full buffer at " + where(e));
    }

    void
    onSbRead(const Event &e)
    {
        expireOverdueSb(e.unit, e.addr, e.tick);
        SbEntry *entry = findSb(e.unit, e.addr);
        claimCheck(e, "before", e.stateBefore,
                   entry ? entry->state : kInitial);
        if (entry) {
            entry->state = kSpeculated;
            entry->windowStart = e.tick;
        }
        claimCheck(e, "after", e.stateAfter,
                   entry ? kSpeculated : kInitial);
    }

    void
    onSbPersist(const Event &e)
    {
        expireOverdueSb(e.unit, e.addr, e.tick);
        SbEntry *entry = findSb(e.unit, e.addr);
        claimCheck(e, "before", e.stateBefore,
                   entry ? entry->state : kInitial);
        std::uint8_t after = kInitial;
        if (entry && entry->state == kSpeculated) {
            // WriteBack(s) - Read(s) - Persist: the load speculated on
            // a stale PM value. This is the checker's own verdict.
            after = kMisspeculation;
            ++res.loadMisspecsDerived;
            ++loadDiff[{e.unit, e.addr, e.tick}];
            eraseSb(e.unit, e.addr);
        } else if (entry) {
            // Evict: the in-flight store superseded the eviction.
            eraseSb(e.unit, e.addr);
        }
        claimCheck(e, "after", e.stateAfter, after);
    }

    void
    onSbExpire(const Event &e)
    {
        SbEntry *entry = findSb(e.unit, e.addr);
        ++res.expiriesDetected;
        if (!entry) {
            disagree("hardware expired a block the checker does not "
                     "track at " + where(e));
            return;
        }
        const Tick deadline = entry->windowStart + meta.specWindow;
        if (e.tick != deadline) {
            disagree("hardware expired a window at tick " +
                     std::to_string(e.tick) + " but the checker derives "
                     "deadline " + std::to_string(deadline) + " at " +
                     where(e));
        }
        ++res.expiriesDerived;
        eraseSb(e.unit, e.addr);
    }

    void
    onSbMisspec(const Event &e)
    {
        if (e.arg == kLoadStale) {
            ++res.loadMisspecsDetected;
            --loadDiff[{e.unit, e.addr, e.tick}];
        } else if (e.arg == kStoreOrder) {
            ++res.storeMisspecsDetected;
            if (!checkSt) {
                // Without PmController events the store-order side has
                // nothing to diff against; count only.
                return;
            }
            --storeDiff[{e.unit, e.addr, e.tick}];
        }
    }

    void
    onPmcPersistAccept(const Event &e)
    {
        drainSweeps(e.tick);
        if (e.specId == trace::kNoSpecId)
            return; // untagged persists carry no ordering constraint
        const auto key = std::make_pair(e.unit, e.addr);
        auto it = stLive.find(key);
        if (it != stLive.end()) {
            if (e.tick - it->second.at <= meta.specWindow &&
                e.specId < it->second.id) {
                ++res.storeMisspecsDerived;
                ++storeDiff[{e.unit, e.addr, e.tick}];
                stLive.erase(it);
                return;
            }
            it->second.id = std::max(it->second.id, e.specId);
            it->second.at = e.tick;
        } else {
            stLive[key] = Track{e.specId, e.tick};
            stSweeps.emplace_back(e.tick + meta.specWindow + 1, e.unit,
                                  e.addr);
        }
    }

    void
    onPmcStoreOrderViolation(const Event &e)
    {
        if (checkSb) {
            // The SbMisspec event for the same violation is the one
            // diffed (the buffer raises the actual interrupt); the
            // PMC-side event would double-count it.
            return;
        }
        ++res.storeMisspecsDetected;
        --storeDiff[{e.unit, e.addr, e.tick}];
    }

    void
    onPmcTrackExpire(const Event &e)
    {
        auto it = stLive.find({e.unit, e.addr});
        if (it == stLive.end()) {
            disagree("hardware aged out spec-ID tracking the checker "
                     "does not hold at " + where(e));
            return;
        }
        if (e.tick - it->second.at <= meta.specWindow) {
            disagree("hardware aged out spec-ID tracking last touched "
                     "at " + std::to_string(it->second.at) +
                     ", still inside the window at " + where(e));
        }
        stLive.erase(it);
    }

    void
    run(const std::vector<Event> &events)
    {
        Tick max_tick = 0;
        for (const Event &e : events) {
            max_tick = std::max(max_tick, e.tick);
            switch (e.kind) {
              case EventKind::SbWriteBack:
                if (checkSb)
                    onSbWriteBack(e);
                break;
              case EventKind::SbInputDropped:
                if (checkSb)
                    onSbInputDropped(e);
                break;
              case EventKind::SbAllocate:
                if (checkSb)
                    onSbAllocate(e);
                break;
              case EventKind::SbRead:
                if (checkSb)
                    onSbRead(e);
                break;
              case EventKind::SbPersist:
                if (checkSb)
                    onSbPersist(e);
                break;
              case EventKind::SbExpire:
                if (checkSb)
                    onSbExpire(e);
                break;
              case EventKind::SbMisspec:
                if (checkSb)
                    onSbMisspec(e);
                break;
              case EventKind::PmcPersistAccept:
                if (checkSt)
                    onPmcPersistAccept(e);
                break;
              case EventKind::PmcStoreOrderViolation:
                if (checkSt)
                    onPmcStoreOrderViolation(e);
                break;
              case EventKind::PmcTrackExpire:
                if (checkSt)
                    onPmcTrackExpire(e);
                break;
              default:
                break;
            }
        }

        // Windows whose deadline passed strictly before the last
        // event must have expired by then; later deadlines are beyond
        // the recorded horizon and stay unknowable.
        if (checkSb) {
            std::vector<std::pair<std::uint16_t, Addr>> overdue;
            for (const auto &[key, entry] : sbLive) {
                if (entry.windowStart + meta.specWindow < max_tick)
                    overdue.push_back(key);
            }
            for (const auto &[unit, addr] : overdue)
                expireOverdueSb(unit, addr, max_tick);
        }
        if (checkSt)
            drainSweeps(max_tick);

        diffVerdicts(loadDiff, "load (stale-read)");
        diffVerdicts(storeDiff, "store (spec-ID order)");
        if (suppressed)
            res.notes.push_back(std::to_string(suppressed) +
                                " further disagreements suppressed");
    }

    void
    diffVerdicts(const std::map<VerdictKey, long> &diff, const char *what)
    {
        for (const auto &[key, count] : diff) {
            if (count == 0)
                continue;
            const auto &[unit, addr, tick] = key;
            const std::string id = std::string(what) +
                " misspeculation of block 0x" + hex(addr) + " (unit " +
                std::to_string(unit) + ") at tick " + std::to_string(tick);
            if (count > 0)
                disagree("checker derives a " + id +
                         " that the hardware did not report");
            else
                disagree("hardware reports a " + id +
                         " that the checker cannot derive");
        }
    }
};

} // namespace

std::string
CheckResult::summary() const
{
    std::ostringstream os;
    os << events << " events";
    if (automatonChecked) {
        os << "; load automaton: " << loadMisspecsDerived << " derived / "
           << loadMisspecsDetected << " detected misspecs, "
           << expiriesDerived << "/" << expiriesDetected << " expiries";
    }
    if (storeOrderChecked) {
        os << "; store order: " << storeMisspecsDerived << " derived / "
           << storeMisspecsDetected << " detected";
    }
    if (!automatonChecked && !storeOrderChecked)
        os << "; nothing checkable";
    os << "; " << disagreements.size() << " disagreement"
       << (disagreements.size() == 1 ? "" : "s");
    return os.str();
}

CheckResult
checkEvents(const std::vector<trace::Event> &events,
            const trace::Meta &meta, std::uint64_t dropped)
{
    CheckResult res;
    res.events = events.size();

    if (dropped != 0) {
        res.disagreements.push_back(
            "stream dropped " + std::to_string(dropped) +
            " events; the checker requires a lossless trace "
            "(raise ringEntries or narrow the flags)");
        return res;
    }
    if (!meta.specAutomaton) {
        res.notes.push_back("design \"" + meta.design +
                            "\" has no speculation automaton; "
                            "nothing to check");
        return res;
    }
    if (meta.specWindow == 0) {
        res.disagreements.push_back(
            "metadata carries no speculation window; cannot re-derive "
            "expiries");
        return res;
    }

    Checker chk(meta, res);
    chk.checkSb = (meta.flags & trace::FlagSpecBuffer) != 0;
    chk.checkSt = (meta.flags & trace::FlagPmController) != 0;
    res.automatonChecked = chk.checkSb;
    res.storeOrderChecked = chk.checkSt;
    if (!chk.checkSb)
        res.notes.push_back("SpecBuffer flag not traced: load automaton "
                            "not checked");
    if (!chk.checkSt)
        res.notes.push_back("PmController flag not traced: spec-ID "
                            "order not checked");
    if (!chk.checkSb && !chk.checkSt)
        return res;

    std::vector<trace::Event> sorted = events;
    std::sort(sorted.begin(), sorted.end(),
              [](const trace::Event &a, const trace::Event &b) {
                  return a.seq < b.seq;
              });
    chk.run(sorted);
    return res;
}

CheckResult
checkTraceFile(const std::string &path)
{
    std::string err;
    std::optional<BinaryTrace> bt = readBinaryTrace(path, &err);
    if (!bt) {
        CheckResult res;
        res.disagreements.push_back("unreadable trace: " + err);
        return res;
    }
    return checkEvents(bt->events, bt->meta, bt->dropped);
}

} // namespace pmemspec::observe
