#include "metrics.hh"

#include <cassert>

namespace pmemspec::observe
{

namespace
{

/** Emit integral doubles as JSON integers (matches StatGroup::toJson)
 *  so repeated runs serialize bit-identically. */
Json
numberJson(double v)
{
    const auto u = static_cast<std::uint64_t>(v);
    if (v >= 0 && static_cast<double>(u) == v)
        return Json(u);
    return Json(v);
}

} // namespace

Json
MetricsSeries::toJson() const
{
    Json j = Json::object();
    Json cols = Json::array();
    for (const std::string &c : columns)
        cols.push(Json(c));
    j.set("columns", std::move(cols));
    Json rws = Json::array();
    for (const Row &r : rows) {
        Json row = Json::array();
        row.push(Json(static_cast<std::uint64_t>(r.at / ticksPerNs)));
        for (double v : r.values)
            row.push(numberJson(v));
        rws.push(std::move(row));
    }
    j.set("rows", std::move(rws));
    return j;
}

MetricsSeries
sumSeries(const std::vector<MetricsSeries> &parts)
{
    MetricsSeries out;
    if (parts.empty())
        return out;
    out.columns = parts.front().columns;
    std::size_t nrows = 0;
    for (const MetricsSeries &p : parts) {
        assert(p.columns == out.columns && "series columns must match");
        nrows = std::max(nrows, p.rows.size());
    }
    out.rows.resize(nrows);
    for (std::size_t i = 0; i < nrows; ++i) {
        MetricsSeries::Row &row = out.rows[i];
        row.values.assign(out.columns.size(), 0.0);
        for (const MetricsSeries &p : parts) {
            if (i >= p.rows.size())
                continue;
            // Samplers fire on a shared cadence, so row i carries the
            // same tick in every part that reached it.
            row.at = p.rows[i].at;
            for (std::size_t c = 0; c < row.values.size(); ++c)
                row.values[c] += p.rows[i].values[c];
        }
    }
    return out;
}

void
MetricsRegistry::sample(Tick now)
{
    MetricsSeries::Row row;
    row.at = now;
    row.values.reserve(gauges.size());
    for (const Gauge &g : gauges)
        row.values.push_back(g());
    series_.rows.push_back(std::move(row));
}

MetricsSeries
MetricsRegistry::takeSeries()
{
    MetricsSeries out = std::move(series_);
    series_.columns = out.columns;
    series_.rows.clear();
    return out;
}

} // namespace pmemspec::observe
