/**
 * @file
 * Export front-end: snapshot a trace::Manager to disk, picking the
 * format from the destination's extension (".json" selects Chrome
 * trace-event JSON, anything else the PMTRACE1 binary log).
 */

#ifndef PMEMSPEC_OBSERVE_TRACE_EXPORT_HH
#define PMEMSPEC_OBSERVE_TRACE_EXPORT_HH

#include <string>

#include "common/trace.hh"
#include "observe/metrics.hh"

namespace pmemspec::observe
{

/** "out.json" + "lat500" -> "out.lat500.json"; no label or no
 *  extension degrade gracefully. '/' in the label becomes '_'. */
std::string tracePathWithLabel(const std::string &path,
                               const std::string &label);

/**
 * Export the manager's retained events to cfg.outPath (with
 * cfg.label applied). @return the path written, "" when the manager
 * has no outPath or on I/O failure (with a warn()).
 *
 * `counters`, when non-null, attaches a sampled metrics series as
 * Chrome counter events -- JSON exports only; the binary log format
 * carries instants and ignores it.
 */
std::string exportTraceFile(const trace::Manager &mgr,
                            const MetricsSeries *counters = nullptr);

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_TRACE_EXPORT_HH
