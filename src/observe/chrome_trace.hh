/**
 * @file
 * Chrome trace-event JSON exporter (chrome://tracing / Perfetto).
 *
 * Schema ("pmemspec-trace-v1"): the top-level object has
 *
 *   traceEvents     array of instant events, one per trace::Event:
 *     name            EventKind name (e.g. "SbPersist")
 *     cat             component flag name (e.g. "SpecBuffer")
 *     ph              "i" (instant; "M" for thread-name metadata)
 *     ts              microseconds (tick / 1e6; ticks are ps)
 *     pid             0 (one simulated machine per file)
 *     tid             originating core, or 1000 + unit for events with
 *                     no core (PMC, persist path, runtime)
 *     s               "t" (thread-scoped instant)
 *     args            { seq, addr ("0x..."), and when present: specId,
 *                       before/after (automaton state names), arg, unit }
 *   plus, when a sampled metrics series is attached, counter events:
 *     name            metrics column (e.g. "pmc0.spec_occupancy")
 *     ph              "C", ts in microseconds, pid 0,
 *     args            { value }
 *   displayTimeUnit "ns"
 *   otherData       { schema, design, specWindowTicks, specEntries,
 *                     numCores, flags, events, dropped }
 */

#ifndef PMEMSPEC_OBSERVE_CHROME_TRACE_HH
#define PMEMSPEC_OBSERVE_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/trace.hh"
#include "observe/metrics.hh"

namespace pmemspec::observe
{

/** Build the Chrome trace-event document for an event stream.
 *  When `counters` is non-null, each sampled metrics row is also
 *  emitted as Chrome counter events (ph "C", one per column, value
 *  in args.value) so the viewer renders the time series as counter
 *  tracks alongside the instants. */
Json chromeTraceJson(const std::vector<trace::Event> &events,
                     const trace::Meta &meta, std::uint64_t dropped,
                     const MetricsSeries *counters = nullptr);

/** Serialize chromeTraceJson() to a file. @return false on I/O error. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<trace::Event> &events,
                      const trace::Meta &meta, std::uint64_t dropped,
                      const MetricsSeries *counters = nullptr);

} // namespace pmemspec::observe

#endif // PMEMSPEC_OBSERVE_CHROME_TRACE_HH
