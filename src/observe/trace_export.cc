#include "trace_export.hh"

#include "common/logging.hh"
#include "observe/binary_log.hh"
#include "observe/chrome_trace.hh"

namespace pmemspec::observe
{

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

std::string
tracePathWithLabel(const std::string &path, const std::string &label)
{
    if (label.empty())
        return path;
    std::string clean = label;
    for (char &c : clean) {
        if (c == '/' || c == '\\')
            c = '_';
    }
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + clean;
    return path.substr(0, dot) + "." + clean + path.substr(dot);
}

std::string
exportTraceFile(const trace::Manager &mgr, const MetricsSeries *counters)
{
    const trace::Config &cfg = mgr.config();
    if (cfg.outPath.empty())
        return "";
    const std::string path = tracePathWithLabel(cfg.outPath, cfg.label);
    const std::vector<trace::Event> events = mgr.snapshot();
    const bool ok = endsWith(path, ".json")
        ? writeChromeTrace(path, events, mgr.meta, mgr.dropped(),
                           counters)
        : writeBinaryTrace(path, mgr.meta, events, mgr.dropped());
    if (!ok) {
        warn("trace export to %s failed", path.c_str());
        return "";
    }
    return path;
}

} // namespace pmemspec::observe
