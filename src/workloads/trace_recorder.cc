#include "trace_recorder.hh"

#include "common/logging.hh"

namespace pmemspec::workloads
{

using persistency::EventKind;
using persistency::LogicalEvent;

TraceRecorder::TraceRecorder(runtime::PersistentMemory &pm_,
                             unsigned num_threads)
    : pm(pm_), traces(num_threads)
{
    fatal_if(num_threads == 0, "recorder needs threads");
    pm.setObserver([this](runtime::MemOp op, Addr a,
                          std::uint32_t size) { onAccess(op, a, size); });
}

TraceRecorder::~TraceRecorder()
{
    pm.setObserver(nullptr);
}

void
TraceRecorder::addLogRegion(Addr base, std::size_t len)
{
    logRegions.push_back(Region{base, len});
}

void
TraceRecorder::setThread(unsigned t)
{
    fatal_if(t >= traces.size(), "bad recorder thread %u", t);
    curThread = t;
}

bool
TraceRecorder::inLogRegion(Addr a) const
{
    for (const Region &r : logRegions) {
        if (a >= r.base && a < r.base + r.len)
            return true;
    }
    return false;
}

void
TraceRecorder::onAccess(runtime::MemOp op, Addr a, std::uint32_t size)
{
    if (!enabled)
        return;
    switch (op) {
      case runtime::MemOp::Write:
        if (inLogRegion(a)) {
            cur().push_back(
                LogicalEvent{EventKind::LogWrite, a, size});
            pendingLogWrites = true;
        } else {
            if (pendingLogWrites) {
                // Undo-log discipline: order the pending log entries
                // before this guarded data write.
                cur().push_back(LogicalEvent{EventKind::Boundary, 0, 0});
                pendingLogWrites = false;
            }
            cur().push_back(
                LogicalEvent{EventKind::DataStore, a, size});
        }
        break;
      case runtime::MemOp::Read:
        cur().push_back(LogicalEvent{EventKind::PmLoad, a, size});
        break;
      case runtime::MemOp::ReadDep:
        cur().push_back(LogicalEvent{EventKind::PmLoadDep, a, size});
        break;
    }
}

void
TraceRecorder::faseBegin()
{
    if (!enabled)
        return;
    pendingLogWrites = false;
    cur().push_back(LogicalEvent{EventKind::FaseBegin, 0, 0});
}

void
TraceRecorder::faseEnd()
{
    if (!enabled)
        return;
    pendingLogWrites = false;
    cur().push_back(LogicalEvent{EventKind::FaseEnd, 0, 0});
}

void
TraceRecorder::lockAcq(unsigned lock_id)
{
    if (!enabled)
        return;
    cur().push_back(LogicalEvent{EventKind::LockAcq, lock_id, 0});
}

void
TraceRecorder::lockRel(unsigned lock_id)
{
    if (!enabled)
        return;
    cur().push_back(LogicalEvent{EventKind::LockRel, lock_id, 0});
}

void
TraceRecorder::compute(std::uint64_t cycles)
{
    if (!enabled || cycles == 0)
        return;
    cur().push_back(LogicalEvent{EventKind::Compute, cycles, 0});
}

std::vector<persistency::LogicalTrace>
TraceRecorder::takeTraces()
{
    auto out = std::move(traces);
    traces.assign(out.size(), {});
    return out;
}

} // namespace pmemspec::workloads
