#include "workload.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pmds/kv_store.hh"
#include "pmds/pm_array.hh"
#include "pmds/pm_hashmap.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_rbtree.hh"
#include "pmds/tatp.hh"
#include "pmds/tpcc.hh"
#include "pmds/vacation.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"
#include "workloads/trace_recorder.hh"

namespace pmemspec::workloads
{

using persistency::LogicalTrace;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

const char *
benchName(BenchId id)
{
    switch (id) {
      case BenchId::ArraySwaps: return "ArraySwaps";
      case BenchId::Queue:      return "Queue";
      case BenchId::Hashmap:    return "Hashmap";
      case BenchId::RbTree:     return "RB-Tree";
      case BenchId::Tatp:       return "TATP";
      case BenchId::Tpcc:       return "TPCC";
      case BenchId::Vacation:   return "Vacation";
      case BenchId::Memcached:  return "Memcached";
    }
    return "unknown";
}

std::vector<BenchId>
allBenchmarks()
{
    return {BenchId::ArraySwaps, BenchId::Queue, BenchId::Hashmap,
            BenchId::RbTree, BenchId::Tatp, BenchId::Tpcc,
            BenchId::Vacation, BenchId::Memcached};
}

namespace
{

/** Shared scaffolding: PM + OS + runtime + recorder. */
struct GenContext
{
    GenContext(std::size_t pm_bytes, unsigned num_threads,
               std::uint64_t seed,
               runtime::LogGranularity granularity =
                   runtime::LogGranularity::Block)
        : pm(pm_bytes),
          rt(pm, os, num_threads, RecoveryPolicy::Lazy, 1 << 16,
             granularity),
          rng(seed)
    {
    }

    /** Attach the recorder (after setup writes). */
    void
    startRecording(unsigned num_threads)
    {
        pm.persistAll();
        rec = std::make_unique<TraceRecorder>(pm, num_threads);
        for (unsigned t = 0; t < num_threads; ++t) {
            auto [base, len] = rt.logRegion(t);
            rec->addLogRegion(base, len);
        }
    }

    /**
     * One recorded FASE on thread t holding `locks` (must already be
     * sorted ascending and deduplicated).
     */
    void
    fase(unsigned t, const std::vector<unsigned> &locks,
         const FaseRuntime::FaseFn &fn, std::uint64_t think_cycles = 80)
    {
        rec->setThread(t);
        rec->compute(think_cycles);
        rec->faseBegin();
        for (unsigned l : locks)
            rec->lockAcq(l);
        rt.runFase(t, fn);
        rec->faseEnd();
        for (auto it = locks.rbegin(); it != locks.rend(); ++it)
            rec->lockRel(*it);
    }

    PersistentMemory pm;
    VirtualOs os;
    FaseRuntime rt;
    Rng rng;
    std::unique_ptr<TraceRecorder> rec;
};

constexpr unsigned numStripes = 64;

std::vector<LogicalTrace>
genArraySwaps(const WorkloadParams &p)
{
    // As in DPO/HOPS, each thread owns a private array instance:
    // microbenchmark FASEs have (almost) no inter-thread dependency
    // (Section 8.4 cites this as why store misspeculation is rare).
    // The benchmark's total footprint is fixed (the paper scales
    // threads, not data), so per-thread slices shrink with threads.
    const std::size_t elems =
        std::max<std::size_t>(1 << 10, (std::size_t{1} << 17) /
                                           p.numThreads);
    GenContext ctx(p.numThreads * elems * 64 + (16u << 20),
                   p.numThreads, p.seed);
    std::vector<std::unique_ptr<pmds::PmArray>> arrays;
    for (unsigned t = 0; t < p.numThreads; ++t) {
        arrays.push_back(
            std::make_unique<pmds::PmArray>(ctx.pm, elems, 64));
        for (std::size_t i = 0; i < elems; ++i)
            arrays[t]->init(i, i);
    }
    ctx.startRecording(p.numThreads);

    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            pmds::PmArray &arr = *arrays[t];
            std::size_t i = ctx.rng.below(elems);
            std::size_t j = ctx.rng.below(elems);
            if (i == j)
                j = (j + 1) % elems;
            ctx.fase(t, {},
                     [&](Transaction &tx) { arr.swap(tx, i, j); });
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genQueue(const WorkloadParams &p)
{
    // Per-thread queue instances (DPO/HOPS methodology).
    const std::uint64_t total_ops = p.opsPerThread * p.numThreads;
    GenContext ctx(total_ops * 192 + (16u << 20), p.numThreads,
                   p.seed);
    std::vector<std::unique_ptr<pmds::PmQueue>> queues;
    for (unsigned t = 0; t < p.numThreads; ++t)
        queues.push_back(std::make_unique<pmds::PmQueue>(ctx.pm, 64));
    ctx.startRecording(p.numThreads);

    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            pmds::PmQueue &q = *queues[t];
            // Bias towards enqueue so the queue stays non-trivial.
            const bool enq = (op + t) % 2 == 0 || ctx.rng.chance(0.1);
            ctx.fase(t, {}, [&](Transaction &tx) {
                if (enq)
                    q.enqueue(tx, op * p.numThreads + t);
                else
                    q.dequeue(tx);
            });
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genHashmap(const WorkloadParams &p)
{
    // Per-thread hashmap + record-table instances over a fixed
    // total footprint.
    const std::size_t key_space = std::max<std::size_t>(
        1 << 10, (std::size_t{1} << 16) / p.numThreads);
    const std::size_t buckets =
        std::max<std::size_t>(256, key_space / 4);
    GenContext ctx(p.numThreads * key_space * (128 + 64) +
                       (16u << 20),
                   p.numThreads, p.seed);
    struct Inst
    {
        pmds::PmHashmap hm;
        pmds::PmArray records;
    };
    std::vector<std::unique_ptr<Inst>> insts;
    for (unsigned t = 0; t < p.numThreads; ++t) {
        insts.push_back(std::unique_ptr<Inst>(new Inst{
            pmds::PmHashmap(ctx.pm, buckets),
            pmds::PmArray(ctx.pm, key_space, 64)}));
        // Pre-populate half the key space.
        for (std::uint64_t k = 0; k < key_space; k += 2) {
            ctx.rt.runFase(0, [&](Transaction &tx) {
                insts[t]->hm.put(tx, k, k + 1);
            });
        }
    }
    ctx.startRecording(p.numThreads);

    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Inst &in = *insts[t];
            const std::uint64_t key = ctx.rng.below(key_space);
            const bool update = ctx.rng.chance(0.5);
            ctx.fase(t, {}, [&](Transaction &tx) {
                if (update) {
                    in.hm.put(tx, key, op);
                    // The paper's FASEs move 64B of data: update the
                    // key's record row alongside the index.
                    std::uint8_t row[64];
                    std::memset(row, static_cast<int>(op & 0xff),
                                sizeof(row));
                    tx.write(in.records.elemAddr(key), row,
                             sizeof(row));
                } else {
                    auto v = in.hm.get(tx, key);
                    if (v) {
                        std::uint8_t row[64];
                        tx.read(in.records.elemAddr(key), row,
                                sizeof(row));
                    }
                }
            });
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genRbTree(const WorkloadParams &p)
{
    // Per-thread red-black tree instances over a fixed total
    // footprint.
    const std::uint64_t key_space = std::max<std::uint64_t>(
        1 << 9, (std::uint64_t{1} << 15) / p.numThreads);
    const std::uint64_t total_ops = p.opsPerThread * p.numThreads;
    GenContext ctx(p.numThreads * key_space * 128 + total_ops * 128 +
                       (16u << 20),
                   p.numThreads, p.seed);
    std::vector<std::unique_ptr<pmds::PmRbTree>> trees;
    for (unsigned t = 0; t < p.numThreads; ++t) {
        trees.push_back(std::make_unique<pmds::PmRbTree>(ctx.pm));
        for (std::uint64_t k = 1; k < key_space; k += 2) {
            ctx.rt.runFase(0, [&](Transaction &tx) {
                trees[t]->insert(tx, k, k);
            });
        }
    }
    ctx.startRecording(p.numThreads);

    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            pmds::PmRbTree &tree = *trees[t];
            const std::uint64_t key = 1 + ctx.rng.below(key_space);
            const bool ins = ctx.rng.chance(0.5);
            ctx.fase(t, {}, [&](Transaction &tx) {
                if (ins)
                    tree.insert(tx, key, op);
                else
                    tree.erase(tx, key);
            });
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genTatp(const WorkloadParams &p)
{
    // One shared subscriber table; each thread updates a disjoint
    // subscriber range (rows are one cache block each, so the
    // partitioning is race-free without locks). The index is only
    // read during the measured phase.
    const std::size_t subscribers = 65536;
    GenContext ctx(subscribers * 256 + (32u << 20), p.numThreads,
                   p.seed);
    pmds::TatpDb db(ctx.pm, subscribers);
    ctx.startRecording(p.numThreads);

    const std::size_t per_thread = subscribers / p.numThreads;
    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t s_id =
                t * per_thread + ctx.rng.below(per_thread);
            const std::uint64_t sub_nbr =
                s_id * 2654435761ULL % (1ULL << 40);
            const auto loc =
                static_cast<std::uint32_t>(ctx.rng.next());
            ctx.fase(t, {}, [&](Transaction &tx) {
                db.updateLocation(tx, sub_nbr, loc);
            }, 150);
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genTpcc(const WorkloadParams &p)
{
    // Terminal-per-district, as in TPC-C: thread t drives district
    // t (districts >= threads), and line items are drawn from a
    // per-district item partition so new-order transactions from
    // different terminals never conflict (microbenchmark style).
    pmds::TpccConfig tc;
    tc.districts = std::max(10u, p.numThreads);
    tc.maxOrders = static_cast<unsigned>(
        tc.districts * (p.opsPerThread + 64));
    const std::size_t pm_bytes =
        std::size_t{tc.maxOrders} * 64 * 6 + (48u << 20);
    GenContext ctx(pm_bytes, p.numThreads, p.seed);
    pmds::TpccDb db(ctx.pm, tc);
    ctx.startRecording(p.numThreads);

    const unsigned items_per_d = tc.items / tc.districts;
    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const unsigned district = t;
            const unsigned customer = static_cast<unsigned>(
                ctx.rng.below(tc.customersPerDistrict));
            const unsigned n =
                static_cast<unsigned>(ctx.rng.range(5, 15));
            std::vector<pmds::OrderLineReq> lines(n);
            for (auto &l : lines) {
                l.itemId = district * items_per_d +
                           static_cast<std::uint32_t>(
                               ctx.rng.below(items_per_d));
                l.quantity =
                    static_cast<std::uint32_t>(ctx.rng.range(1, 10));
            }
            ctx.fase(t, {}, [&](Transaction &tx) {
                db.newOrder(tx, district, customer, lines);
            }, 300);
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genVacation(const WorkloadParams &p)
{
    pmds::VacationConfig vc;
    vc.resourcesPerTable = 1 << 13;
    vc.customers = 4096;
    vc.numQueries = 8;
    vc.partitionsPerTable = 16;
    const std::uint64_t total_ops = p.opsPerThread * p.numThreads;
    const std::size_t pm_bytes =
        vc.resourcesPerTable * 3 * 128 + total_ops * 64 + (48u << 20);
    GenContext ctx(pm_bytes, p.numThreads, p.seed,
                   runtime::LogGranularity::Word);
    pmds::VacationDb db(ctx.pm, vc);
    ctx.startRecording(p.numThreads);

    // Lock ids: partition locks are kind*P+part (0..47); customer
    // stripes start at 100 (eight heads share a block, so stripe by
    // block for block-level DRF).
    constexpr unsigned cust_lock_base = 100;
    const unsigned P = vc.partitionsPerTable;
    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t customer =
                ctx.rng.below(vc.customers);
            const auto cust_stripe = static_cast<unsigned>(
                cust_lock_base + (customer / 8) % numStripes);
            const auto kind =
                static_cast<pmds::ResourceKind>(ctx.rng.below(3));
            const unsigned kind_base =
                static_cast<unsigned>(kind) * P;
            if (ctx.rng.chance(0.9)) {
                // MAKE_RESERVATION over numQueries candidates.
                std::vector<std::uint64_t> cands(vc.numQueries);
                std::vector<unsigned> locks{cust_stripe};
                for (auto &id : cands) {
                    id = ctx.rng.below(vc.resourcesPerTable);
                    locks.push_back(kind_base + db.partitionOf(id));
                }
                std::sort(locks.begin(), locks.end());
                locks.erase(std::unique(locks.begin(), locks.end()),
                            locks.end());
                ctx.fase(t, locks, [&](Transaction &tx) {
                    db.makeReservation(tx, kind, cands, customer);
                }, 400);
            } else {
                // UPDATE_TABLES: reprice one resource.
                const std::uint64_t id =
                    ctx.rng.below(vc.resourcesPerTable);
                const auto price = static_cast<std::uint32_t>(
                    50 + ctx.rng.below(800));
                ctx.fase(t, {kind_base + db.partitionOf(id)},
                         [&](Transaction &tx) {
                             db.updateTables(tx, kind, id, price);
                         },
                         200);
            }
        }
    }
    return ctx.rec->takeTraces();
}

std::vector<LogicalTrace>
genMemcached(const WorkloadParams &p)
{
    pmds::KvConfig kc;
    kc.buckets = 1 << 13;
    kc.valueBytes = 1024; // paper: memcached data size is 1024B
    const std::size_t key_space = 1 << 13;
    const std::size_t pm_bytes =
        key_space * (1024 + 256) + (32u << 20);
    // Mnemosyne-style word-granular logging, as in the real port.
    GenContext ctx(pm_bytes, p.numThreads, p.seed,
                   runtime::LogGranularity::Word);
    pmds::KvStore kv(ctx.pm, kc);
    // Pre-populate the store.
    for (std::uint64_t k = 0; k < key_space; ++k) {
        ctx.rt.runFase(0, [&](Transaction &tx) {
            kv.set(tx, k, static_cast<std::uint8_t>(k));
        });
    }
    ctx.startRecording(p.numThreads);

    // memcached's global cache lock serialises item and LRU updates.
    const unsigned cache_lock = 0;
    for (std::uint64_t op = 0; op < p.opsPerThread; ++op) {
        for (unsigned t = 0; t < p.numThreads; ++t) {
            const std::uint64_t key = ctx.rng.below(key_space);
            const bool is_set = ctx.rng.chance(0.5);
            ctx.fase(t, {cache_lock}, [&](Transaction &tx) {
                if (is_set)
                    kv.set(tx, key,
                           static_cast<std::uint8_t>(op & 0xff));
                else
                    kv.get(tx, key);
            }, 250);
        }
    }
    return ctx.rec->takeTraces();
}

} // namespace

std::vector<LogicalTrace>
generateTraces(BenchId id, const WorkloadParams &params)
{
    fatal_if(params.numThreads == 0 || params.opsPerThread == 0,
             "bad workload params");
    switch (id) {
      case BenchId::ArraySwaps: return genArraySwaps(params);
      case BenchId::Queue:      return genQueue(params);
      case BenchId::Hashmap:    return genHashmap(params);
      case BenchId::RbTree:     return genRbTree(params);
      case BenchId::Tatp:       return genTatp(params);
      case BenchId::Tpcc:       return genTpcc(params);
      case BenchId::Vacation:   return genVacation(params);
      case BenchId::Memcached:  return genMemcached(params);
    }
    panic("unknown benchmark id");
}

} // namespace pmemspec::workloads
