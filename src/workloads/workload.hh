/**
 * @file
 * The benchmarks of Table 4 as logical-trace generators.
 *
 * Each generator executes the workload functionally against the
 * runtime layer while a TraceRecorder captures per-thread logical
 * streams; the persistency lowering pass then produces the
 * design-specific instruction traces replayed by the timing machine.
 *
 * Locking disciplines (all deadlock-free: lock ids are acquired in
 * ascending order within a FASE):
 *   Array Swaps : 64 stripe locks over the element index space;
 *   Queue       : one global lock (a FIFO is inherently serial);
 *   Hashmap     : 64 stripe locks over buckets;
 *   RB-Tree     : one global lock (rotations touch many nodes);
 *   TATP        : 64 stripe locks over subscriber ids;
 *   TPCC        : one lock per district + 16 stock stripe locks;
 *   Vacation    : one lock per resource table + customer stripes;
 *   Memcached   : 64 stripe locks over buckets.
 */

#ifndef PMEMSPEC_WORKLOADS_WORKLOAD_HH
#define PMEMSPEC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persistency/logical_trace.hh"

namespace pmemspec::workloads
{

/** The eight benchmarks of Table 4. */
enum class BenchId
{
    ArraySwaps,
    Queue,
    Hashmap,
    RbTree,
    Tatp,
    Tpcc,
    Vacation,
    Memcached,
};

/** Paper-facing benchmark name. */
const char *benchName(BenchId id);

/** All benchmarks in the paper's figure order. */
std::vector<BenchId> allBenchmarks();

/** Generation knobs. */
struct WorkloadParams
{
    unsigned numThreads = 8;
    /** FASEs per thread (paper: 100K; benches scale this down --
     *  throughput is steady-state). */
    std::uint64_t opsPerThread = 2000;
    std::uint64_t seed = 1;
};

/**
 * Run the benchmark functionally and capture one logical trace per
 * thread. Deterministic in (id, params).
 */
std::vector<persistency::LogicalTrace>
generateTraces(BenchId id, const WorkloadParams &params);

} // namespace pmemspec::workloads

#endif // PMEMSPEC_WORKLOADS_WORKLOAD_HH
