/**
 * @file
 * Records logical PM traces while a workload executes functionally.
 *
 * The recorder installs itself as the PersistentMemory observer and
 * classifies each access:
 *
 *  - writes inside a registered undo-log region become LogWrite;
 *  - other writes become DataStore, preceded by a Boundary event
 *    whenever un-ordered log writes are pending (the undo-log
 *    discipline: a log entry must be ordered before the data write
 *    it guards);
 *  - reads become PmLoad / PmLoadDep.
 *
 * The workload driver brackets operations with faseBegin/faseEnd and
 * lockAcq/lockRel and selects the recording thread; the lowering pass
 * then turns each thread's logical stream into a design-specific
 * instruction trace.
 */

#ifndef PMEMSPEC_WORKLOADS_TRACE_RECORDER_HH
#define PMEMSPEC_WORKLOADS_TRACE_RECORDER_HH

#include <vector>

#include "persistency/logical_trace.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::workloads
{

/** Observer turning functional execution into logical traces. */
class TraceRecorder
{
  public:
    TraceRecorder(runtime::PersistentMemory &pm, unsigned num_threads);
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Classify writes into [base, base+len) as undo-log traffic. */
    void addLogRegion(Addr base, std::size_t len);

    /** Route subsequent events to thread t's trace. */
    void setThread(unsigned t);

    /** Suspend/resume recording (setup phases, checkers). */
    void setEnabled(bool on) { enabled = on; }

    /** Driver-visible structural events. */
    void faseBegin();
    void faseEnd();
    void lockAcq(unsigned lock_id);
    void lockRel(unsigned lock_id);
    void compute(std::uint64_t cycles);

    /** Take the recorded traces (recorder becomes empty). */
    std::vector<persistency::LogicalTrace> takeTraces();

    /** Peek at a thread's trace (tests). */
    const persistency::LogicalTrace &trace(unsigned t) const
    {
        return traces.at(t);
    }

  private:
    void onAccess(runtime::MemOp op, Addr a, std::uint32_t size);
    bool inLogRegion(Addr a) const;
    persistency::LogicalTrace &cur() { return traces[curThread]; }

    struct Region
    {
        Addr base;
        std::size_t len;
    };

    runtime::PersistentMemory &pm;
    std::vector<persistency::LogicalTrace> traces;
    std::vector<Region> logRegions;
    unsigned curThread = 0;
    bool enabled = true;
    /** Log writes since the last Boundary (per current thread --
     *  drivers switch threads only at FASE boundaries). */
    bool pendingLogWrites = false;
};

} // namespace pmemspec::workloads

#endif // PMEMSPEC_WORKLOADS_TRACE_RECORDER_HH
