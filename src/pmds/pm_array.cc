#include "pm_array.hh"

#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace pmemspec::pmds
{

PmArray::PmArray(runtime::PersistentMemory &pm_, std::size_t n,
                 std::size_t elem_bytes)
    : pm(pm_),
      base(pm_.alloc(n * elem_bytes, 64)),
      expectedSumSlot(pm_.alloc(8, 8)),
      count(n),
      elemSize(elem_bytes)
{
    fatal_if(n == 0, "empty PmArray");
    fatal_if(elem_bytes < 8, "PmArray elements must hold a u64");
    pm.writeU64(expectedSumSlot, 0);
}

Addr
PmArray::elemAddr(std::size_t i) const
{
    panic_if(i >= count, "PmArray index %zu out of %zu", i, count);
    return base + i * elemSize;
}

void
PmArray::init(std::size_t i, std::uint64_t v)
{
    // Maintain the expected-sum record: init overwrites the previous
    // (zero or earlier) value of the slot's checksum word.
    const std::uint64_t old = pm.readU64(elemAddr(i));
    pm.writeU64(elemAddr(i), v);
    pm.writeU64(expectedSumSlot,
                pm.readU64(expectedSumSlot) - old + v);
}

void
PmArray::swap(runtime::Transaction &tx, std::size_t i, std::size_t j)
{
    std::vector<std::uint8_t> a(elemSize);
    std::vector<std::uint8_t> b(elemSize);
    tx.read(elemAddr(i), a.data(), elemSize);
    tx.read(elemAddr(j), b.data(), elemSize);
    tx.write(elemAddr(i), b.data(), elemSize);
    tx.write(elemAddr(j), a.data(), elemSize);
}

std::uint64_t
PmArray::get(std::size_t i) const
{
    return pm.readU64(elemAddr(i));
}

std::uint64_t
PmArray::checksum() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < count; ++i)
        sum += get(i);
    return sum;
}

bool
PmArray::checkInvariants() const
{
    return checksum() == pm.readU64(expectedSumSlot);
}

std::uint64_t
PmArray::persistedChecksum() const
{
    std::uint64_t sum = 0;
    const std::uint8_t *img = pm.persistedImage();
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t v;
        std::memcpy(&v, img + base + i * elemSize, 8);
        sum += v;
    }
    return sum;
}

} // namespace pmemspec::pmds
