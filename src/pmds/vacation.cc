#include "vacation.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/virtual_os.hh"

namespace pmemspec::pmds
{

std::uint64_t
VacationDb::pack(std::uint16_t free_seats, std::uint16_t used,
                 std::uint32_t price)
{
    return (std::uint64_t{free_seats}) | (std::uint64_t{used} << 16) |
           (std::uint64_t{price} << 32);
}

std::uint16_t
VacationDb::freeOf(std::uint64_t rec)
{
    return static_cast<std::uint16_t>(rec & 0xffff);
}

std::uint16_t
VacationDb::usedOf(std::uint64_t rec)
{
    return static_cast<std::uint16_t>((rec >> 16) & 0xffff);
}

std::uint32_t
VacationDb::priceOf(std::uint64_t rec)
{
    return static_cast<std::uint32_t>(rec >> 32);
}

VacationDb::VacationDb(runtime::PersistentMemory &pm_,
                       const VacationConfig &cfg_)
    : pm(pm_), cfg(cfg_),
      customerLists(pm_.alloc(cfg_.customers * 8, 64)),
      initialSeatsPerResource(10)
{
    fatal_if(cfg.resourcesPerTable == 0 || cfg.customers == 0 ||
                 cfg.numQueries == 0 || cfg.partitionsPerTable == 0,
             "bad vacation config");
    tables.resize(3);
    for (auto &parts : tables) {
        for (unsigned p = 0; p < cfg.partitionsPerTable; ++p)
            parts.push_back(std::make_unique<PmRbTree>(pm));
    }
    for (std::size_t c = 0; c < cfg.customers; ++c)
        pm.writeU64(customerHead(c), 0);

    // Populate the three tables (setup phase, via a local runtime).
    runtime::VirtualOs os;
    runtime::FaseRuntime setup(pm, os, 1,
                               runtime::RecoveryPolicy::Lazy, 1 << 16);
    Rng price_rng(0xbadc0ffee0ddf00dULL);
    for (std::size_t r = 0; r < cfg.resourcesPerTable; ++r) {
        setup.runFase(0, [&](runtime::Transaction &tx) {
            const auto seats =
                static_cast<std::uint16_t>(initialSeatsPerResource);
            tree(ResourceKind::Car, r)
                .insert(tx, r,
                        pack(seats, 0,
                             100 + static_cast<std::uint32_t>(
                                       price_rng.below(400))));
            tree(ResourceKind::Room, r)
                .insert(tx, r,
                        pack(seats, 0,
                             50 + static_cast<std::uint32_t>(
                                      price_rng.below(300))));
            tree(ResourceKind::Flight, r)
                .insert(tx, r,
                        pack(seats, 0,
                             200 + static_cast<std::uint32_t>(
                                       price_rng.below(600))));
        });
    }
    pm.persistAll();
}

PmRbTree &
VacationDb::tree(ResourceKind k, std::uint64_t id)
{
    return *tables[static_cast<unsigned>(k)][partitionOf(id)];
}

const PmRbTree &
VacationDb::tree(ResourceKind k, std::uint64_t id) const
{
    return const_cast<VacationDb *>(this)->tree(k, id);
}

Addr
VacationDb::customerHead(std::uint64_t customer) const
{
    panic_if(customer >= cfg.customers, "bad customer id");
    return customerLists + customer * 8;
}

bool
VacationDb::makeReservation(runtime::Transaction &tx,
                            ResourceKind kind,
                            const std::vector<std::uint64_t> &candidates,
                            std::uint64_t customer)
{
    // Query phase: examine the candidates, remember the cheapest with
    // free capacity (read-dominant).
    std::optional<std::uint64_t> best_id;
    std::uint32_t best_price = ~0u;
    for (std::uint64_t id : candidates) {
        auto rec = tree(kind, id).find(tx, id);
        if (!rec)
            continue;
        if (freeOf(*rec) > 0 && priceOf(*rec) < best_price) {
            best_price = priceOf(*rec);
            best_id = id;
        }
    }
    if (!best_id)
        return false;

    // Reserve: move one seat free -> used.
    PmRbTree &tbl = tree(kind, *best_id);
    const std::uint64_t rec = *tbl.find(tx, *best_id);
    tbl.insert(tx, *best_id,
               pack(static_cast<std::uint16_t>(freeOf(rec) - 1),
                    static_cast<std::uint16_t>(usedOf(rec) + 1),
                    priceOf(rec)));

    // Record the reservation on the customer's list.
    // Node: [kind:8][resource:8][price:8][next:8]
    const Addr node = pm.alloc(32, 64);
    pm.writeU64(node, static_cast<std::uint64_t>(kind));
    pm.writeU64(node + 8, *best_id);
    pm.writeU64(node + 16, best_price);
    pm.writeU64(node + 24, pm.readU64(customerHead(customer)));
    tx.writeU64(customerHead(customer), node);
    return true;
}

unsigned
VacationDb::deleteCustomerReservations(runtime::Transaction &tx,
                                       std::uint64_t customer)
{
    unsigned released = 0;
    Addr node = tx.readU64Dep(customerHead(customer));
    while (node != 0) {
        const auto kind =
            static_cast<ResourceKind>(tx.readU64(node));
        const std::uint64_t id = tx.readU64(node + 8);
        PmRbTree &tbl = tree(kind, id);
        const std::uint64_t rec = *tbl.find(tx, id);
        tbl.insert(tx, id,
                   pack(static_cast<std::uint16_t>(freeOf(rec) + 1),
                        static_cast<std::uint16_t>(usedOf(rec) - 1),
                        priceOf(rec)));
        ++released;
        node = tx.readU64Dep(node + 24);
    }
    tx.writeU64(customerHead(customer), 0);
    return released;
}

void
VacationDb::updateTables(runtime::Transaction &tx, ResourceKind kind,
                         std::uint64_t id, std::uint32_t new_price)
{
    PmRbTree &tbl = tree(kind, id);
    auto rec = tbl.find(tx, id);
    if (!rec)
        return;
    tbl.insert(tx, id, pack(freeOf(*rec), usedOf(*rec), new_price));
}

std::uint64_t
VacationDb::totalReservations() const
{
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < cfg.customers; ++c) {
        for (Addr node = pm.readU64(customerHead(c)); node != 0;
             node = pm.readU64(node + 24))
            ++n;
    }
    return n;
}

std::uint64_t
VacationDb::totalUsedSeats() const
{
    std::uint64_t used = 0;
    for (int k = 0; k < 3; ++k) {
        for (std::size_t r = 0; r < cfg.resourcesPerTable; ++r) {
            auto rec =
                tree(static_cast<ResourceKind>(k), r).lookup(r);
            if (rec)
                used += usedOf(*rec);
        }
    }
    return used;
}

bool
VacationDb::checkInvariants() const
{
    // Seats conserved per resource; every sub-tree stays red-black.
    for (int k = 0; k < 3; ++k) {
        for (unsigned p = 0; p < cfg.partitionsPerTable; ++p) {
            if (!tables[k][p]->checkInvariants())
                return false;
        }
        for (std::size_t r = 0; r < cfg.resourcesPerTable; ++r) {
            auto rec =
                tree(static_cast<ResourceKind>(k), r).lookup(r);
            if (!rec)
                return false;
            if (freeOf(*rec) + usedOf(*rec) != initialSeatsPerResource)
                return false;
        }
    }
    // Reservations on customer lists match the used seats.
    return totalReservations() == totalUsedSeats();
}

} // namespace pmemspec::pmds
