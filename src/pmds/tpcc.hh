/**
 * @file
 * TPC-C database for the NEW_ORDER transaction (Table 4).
 *
 * The paper runs only the new-order transaction; we model the tables
 * it touches (warehouse, district, customer, item, stock) as fixed
 * rows in PM plus append-only regions for orders, new-orders and
 * order lines. The transaction follows the TPC-C section 2.4 steps:
 * read warehouse tax, read+bump district next_o_id, read customer,
 * insert order + new-order rows, and for each of 5..15 items read
 * the item, read+update its stock, and insert an order line.
 */

#ifndef PMEMSPEC_PMDS_TPCC_HH
#define PMEMSPEC_PMDS_TPCC_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** Sizing knobs for the TPC-C subset. */
struct TpccConfig
{
    unsigned districts = 10;
    unsigned customersPerDistrict = 128;
    unsigned items = 1024;
    /** Capacity of the append-only order/order-line regions. */
    unsigned maxOrders = 1 << 17;
};

/** One line item request of a new-order transaction. */
struct OrderLineReq
{
    std::uint32_t itemId;
    std::uint32_t quantity;
};

/** The single-warehouse TPC-C subset. */
class TpccDb
{
  public:
    TpccDb(runtime::PersistentMemory &pm, const TpccConfig &cfg);

    /**
     * The NEW_ORDER transaction.
     * @return the order id assigned.
     */
    std::uint64_t newOrder(runtime::Transaction &tx, unsigned district,
                           unsigned customer,
                           const std::vector<OrderLineReq> &lines);

    /** Draw a random well-formed new-order request. */
    std::vector<OrderLineReq> randomLines(Rng &rng) const;

    /** next_o_id of a district (checker). */
    std::uint64_t nextOrderId(unsigned district) const;

    /** Sum of stock quantities (decreases by ordered quantities). */
    std::uint64_t totalStock() const;

    /** Orders recorded so far (checker). */
    std::uint64_t ordersPlaced() const;

    /** Order ids are dense per district; stock rows are sane. */
    bool checkInvariants() const;

    const TpccConfig &config() const { return cfg; }

  private:
    static constexpr std::size_t rowBytes = 64;

    Addr districtAddr(unsigned d) const;
    Addr customerAddr(unsigned d, unsigned c) const;
    Addr itemAddr(unsigned i) const;
    Addr stockAddr(unsigned i) const;

    runtime::PersistentMemory &pm;
    TpccConfig cfg;
    Addr warehouse;  ///< one 64B row
    Addr districts;  ///< cfg.districts rows
    Addr customers;  ///< districts x customersPerDistrict rows
    Addr items;      ///< cfg.items rows
    Addr stock;      ///< cfg.items rows
    Addr orders;     ///< append region, 64B rows, district-partitioned
    Addr orderLines; ///< append region, 64B rows, district-partitioned
    Addr newOrders;  ///< append region, 8B entries, district-partitioned

    /** Order slots per district (maxOrders / districts). */
    std::size_t perDistrictOrders() const
    {
        return cfg.maxOrders / cfg.districts;
    }
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_TPCC_HH
