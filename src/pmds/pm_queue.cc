#include "pm_queue.hh"

#include <vector>

#include "common/logging.hh"

namespace pmemspec::pmds
{

PmQueue::PmQueue(runtime::PersistentMemory &pm_,
                 std::size_t value_bytes)
    : pm(pm_),
      valBytes(value_bytes),
      headAddr(pm_.alloc(8, 64)),
      tailAddr(pm_.alloc(8, 8))
{
    fatal_if(value_bytes < 8, "queue values must hold a u64");
    pm.writeU64(headAddr, 0);
    pm.writeU64(tailAddr, 0);
    pm.persistAll();
}

Addr
PmQueue::allocNode(std::uint64_t value)
{
    Addr node = pm.alloc(8 + valBytes, 64);
    pm.writeU64(node, 0); // next = null
    std::vector<std::uint8_t> payload(valBytes, 0);
    std::memcpy(payload.data(), &value, 8);
    pm.write(valueAddr(node), payload.data(), valBytes);
    return node;
}

void
PmQueue::enqueue(runtime::Transaction &tx, std::uint64_t value)
{
    // The fresh node is initialised outside the log (it is
    // unreachable until linked, so no undo entry is needed for it).
    const Addr node = allocNode(value);
    const Addr tail = tx.readU64Dep(tailAddr);
    if (tail == 0) {
        tx.writeU64(headAddr, node);
        tx.writeU64(tailAddr, node);
    } else {
        tx.writeU64(tail, node); // old tail's next
        tx.writeU64(tailAddr, node);
    }
}

std::optional<std::uint64_t>
PmQueue::dequeue(runtime::Transaction &tx)
{
    const Addr head = tx.readU64Dep(headAddr);
    if (head == 0)
        return std::nullopt;
    const std::uint64_t value = tx.readU64(valueAddr(head));
    const Addr next = tx.readU64Dep(head);
    tx.writeU64(headAddr, next);
    if (next == 0)
        tx.writeU64(tailAddr, 0);
    return value;
}

std::size_t
PmQueue::size() const
{
    std::size_t n = 0;
    for (Addr p = pm.readU64(headAddr); p != 0; p = nextOf(p))
        ++n;
    return n;
}

std::optional<std::uint64_t>
PmQueue::front() const
{
    const Addr head = pm.readU64(headAddr);
    if (head == 0)
        return std::nullopt;
    return pm.readU64(valueAddr(head));
}

std::vector<std::uint64_t>
PmQueue::contents() const
{
    std::vector<std::uint64_t> out;
    for (Addr p = pm.readU64(headAddr); p != 0; p = nextOf(p))
        out.push_back(pm.readU64(valueAddr(p)));
    return out;
}

bool
PmQueue::checkInvariants() const
{
    const Addr head = pm.readU64(headAddr);
    const Addr tail = pm.readU64(tailAddr);
    if ((head == 0) != (tail == 0))
        return false;
    if (head == 0)
        return true;
    // The tail must be reachable from the head and must be last.
    Addr p = head;
    std::size_t hops = 0;
    while (p != tail) {
        p = nextOf(p);
        if (p == 0)
            return false; // tail unreachable
        if (++hops > 100'000'000)
            return false; // cycle
    }
    return nextOf(tail) == 0;
}

} // namespace pmemspec::pmds
