/**
 * @file
 * Persistent FIFO queue for the Concurrent Queue microbenchmark
 * (Table 4): "insert/delete nodes in a queue".
 *
 * Singly-linked list with head/tail anchors in PM and configurable
 * value size (the paper's FASEs move 64 bytes). Nodes come from the
 * PM arena; dequeued nodes are leaked (a real system would use a
 * persistent allocator -- allocation metadata is orthogonal to the
 * persist-ordering behaviour this reproduction studies, and an
 * unlinked node is unreachable, hence harmless after a crash).
 */

#ifndef PMEMSPEC_PMDS_PM_QUEUE_HH
#define PMEMSPEC_PMDS_PM_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** A failure-atomic FIFO queue in PM. */
class PmQueue
{
  public:
    /** @param value_bytes Payload per node (first 8B carry the
     *  checker-visible value word). */
    explicit PmQueue(runtime::PersistentMemory &pm,
                     std::size_t value_bytes = 8);

    /** Failure-atomic enqueue of a value word (payload zero-padded
     *  to value_bytes). */
    void enqueue(runtime::Transaction &tx, std::uint64_t value);

    /** Failure-atomic dequeue; nullopt when empty. */
    std::optional<std::uint64_t> dequeue(runtime::Transaction &tx);

    /** Walk the list and count nodes (checker). */
    std::size_t size() const;

    /** Front value without removal; nullopt when empty. */
    std::optional<std::uint64_t> front() const;

    /** Every value head-to-tail (checker / crash-oracle access). */
    std::vector<std::uint64_t> contents() const;

    /** Validate head/tail/next-pointer consistency. */
    bool checkInvariants() const;

    std::size_t valueBytes() const { return valBytes; }

  private:
    // Node layout: [next:8][value:valBytes]
    Addr allocNode(std::uint64_t value);
    Addr nextOf(Addr node) const { return pm.readU64(node); }
    Addr valueAddr(Addr node) const { return node + 8; }

    runtime::PersistentMemory &pm;
    std::size_t valBytes;
    Addr headAddr; ///< PM slot holding the head pointer
    Addr tailAddr; ///< PM slot holding the tail pointer
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_PM_QUEUE_HH
