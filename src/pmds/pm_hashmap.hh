/**
 * @file
 * Persistent chained hashmap for the Hashmap microbenchmark
 * (Table 4): "read/update values in a hashmap". Also the substrate
 * for TATP's subscriber index and the memcached-like KV store.
 */

#ifndef PMEMSPEC_PMDS_PM_HASHMAP_HH
#define PMEMSPEC_PMDS_PM_HASHMAP_HH

#include <cstdint>
#include <optional>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** A failure-atomic chained hashmap: u64 key -> u64 value. */
class PmHashmap
{
  public:
    PmHashmap(runtime::PersistentMemory &pm, std::size_t num_buckets);

    /** Insert or update, failure-atomically. */
    void put(runtime::Transaction &tx, std::uint64_t key,
             std::uint64_t value);

    /** Transactional lookup (dependent pointer chase). */
    std::optional<std::uint64_t> get(runtime::Transaction &tx,
                                     std::uint64_t key);

    /** Failure-atomic removal. @return true if the key existed. */
    bool erase(runtime::Transaction &tx, std::uint64_t key);

    /** Non-transactional lookup for checkers / setup. */
    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    /** Total keys currently stored (walks every chain). */
    std::size_t size() const;

    /** Every key hashes into the bucket that chains it. */
    bool checkInvariants() const;

    std::size_t buckets() const { return numBuckets; }

    /** Bucket a key hashes to (used for striped locking). */
    std::size_t bucketOf(std::uint64_t key) const
    {
        return bucketIndex(key);
    }

  private:
    // Node layout: [key:8][value:8][next:8]
    static constexpr std::size_t nodeBytes = 24;

    std::size_t bucketIndex(std::uint64_t key) const;
    Addr bucketAddr(std::size_t b) const;

    runtime::PersistentMemory &pm;
    Addr table; ///< array of numBuckets head pointers
    std::size_t numBuckets;
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_PM_HASHMAP_HH
