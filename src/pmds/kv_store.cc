#include "kv_store.hh"

#include <cstring>

#include "common/logging.hh"

namespace pmemspec::pmds
{

KvStore::KvStore(runtime::PersistentMemory &pm_, const KvConfig &cfg_)
    : pm(pm_), cfg(cfg_), index(pm_, cfg_.buckets),
      lruHeadSlot(pm_.alloc(8, 64)),
      lruTailSlot(pm_.alloc(8, 8))
{
    fatal_if(cfg.valueBytes == 0, "zero-sized KV values");
    pm.writeU64(lruHeadSlot, 0);
    pm.writeU64(lruTailSlot, 0);
    pm.persistAll();
}

void
KvStore::unlink(runtime::Transaction &tx, Addr meta)
{
    const Addr prev = tx.readU64Dep(meta + offPrev);
    const Addr next = tx.readU64Dep(meta + offNext);
    if (prev)
        tx.writeU64(prev + offNext, next);
    else
        tx.writeU64(lruHeadSlot, next);
    if (next)
        tx.writeU64(next + offPrev, prev);
    else
        tx.writeU64(lruTailSlot, prev);
}

void
KvStore::pushFront(runtime::Transaction &tx, Addr meta)
{
    const Addr head = tx.readU64Dep(lruHeadSlot);
    tx.writeU64(meta + offPrev, 0);
    tx.writeU64(meta + offNext, head);
    if (head)
        tx.writeU64(head + offPrev, meta);
    else
        tx.writeU64(lruTailSlot, meta);
    tx.writeU64(lruHeadSlot, meta);
}

void
KvStore::touch(runtime::Transaction &tx, Addr meta)
{
    if (!cfg.lruTracking)
        return;
    tx.writeU64(meta + offHits, tx.readU64(meta + offHits) + 1);
    if (tx.readU64Dep(lruHeadSlot) == meta)
        return; // already at the front
    unlink(tx, meta);
    pushFront(tx, meta);
}

void
KvStore::set(runtime::Transaction &tx, std::uint64_t key,
             std::uint8_t fill_byte)
{
    std::vector<std::uint8_t> value(cfg.valueBytes, fill_byte);
    auto meta = index.get(tx, key);
    if (meta) {
        // Overwrite in place, undo-logged, and bump the LRU.
        const Addr slab = tx.readU64Dep(*meta + offSlab);
        tx.write(slab, value.data(), value.size());
        touch(tx, *meta);
        return;
    }
    // Fresh item: slab and metadata are unreachable until the index
    // points at them, so their payload needs no undo entry.
    const Addr slab = pm.alloc(cfg.valueBytes, 64);
    pm.write(slab, value.data(), value.size());
    const Addr fresh = pm.alloc(metaBytes, 64);
    pm.writeU64(fresh + offKey, key);
    pm.writeU64(fresh + offSlab, slab);
    pm.writeU64(fresh + offPrev, 0);
    pm.writeU64(fresh + offNext, 0);
    pm.writeU64(fresh + offHits, 0);
    index.put(tx, key, fresh);
    if (cfg.lruTracking)
        pushFront(tx, fresh);
}

std::optional<std::uint8_t>
KvStore::get(runtime::Transaction &tx, std::uint64_t key)
{
    auto meta = index.get(tx, key);
    if (!meta)
        return std::nullopt;
    const Addr slab = tx.readU64Dep(*meta + offSlab);
    std::vector<std::uint8_t> value(cfg.valueBytes);
    tx.read(slab, value.data(), value.size());
    for (std::size_t i = 1; i < value.size(); ++i) {
        panic_if(value[i] != value[0],
                 "torn KV value observed for key %llu",
                 static_cast<unsigned long long>(key));
    }
    // memcached updates the item's LRU position on every hit.
    touch(tx, *meta);
    return value[0];
}

bool
KvStore::erase(runtime::Transaction &tx, std::uint64_t key)
{
    auto meta = index.get(tx, key);
    if (!meta)
        return false;
    if (cfg.lruTracking)
        unlink(tx, *meta);
    return index.erase(tx, key);
}

std::optional<std::uint8_t>
KvStore::lookup(std::uint64_t key) const
{
    auto meta = index.lookup(key);
    if (!meta)
        return std::nullopt;
    const Addr slab = pm.readU64(*meta + offSlab);
    std::uint8_t b;
    pm.read(slab, &b, 1);
    return b;
}

std::optional<std::pair<Addr, std::size_t>>
KvStore::slabRegion(std::uint64_t key) const
{
    auto meta = index.lookup(key);
    if (!meta)
        return std::nullopt;
    const Addr slab = pm.readU64(*meta + offSlab);
    return std::pair<Addr, std::size_t>{slab, cfg.valueBytes};
}

std::optional<std::uint64_t>
KvStore::hitCount(std::uint64_t key) const
{
    auto meta = index.lookup(key);
    if (!meta)
        return std::nullopt;
    return pm.readU64(*meta + offHits);
}

std::uint64_t
KvStore::lruFrontKey() const
{
    const Addr head = pm.readU64(lruHeadSlot);
    return head ? pm.readU64(head + offKey) : 0;
}

bool
KvStore::checkInvariants() const
{
    if (!index.checkInvariants())
        return false;
    if (!cfg.lruTracking)
        return true;
    // Forward walk matches the index size; back-links are coherent.
    std::size_t n = 0;
    Addr prev = 0;
    for (Addr m = pm.readU64(lruHeadSlot); m != 0;
         m = pm.readU64(m + offNext)) {
        if (pm.readU64(m + offPrev) != prev)
            return false;
        // Every listed item must be index-reachable under its key.
        auto found = index.lookup(pm.readU64(m + offKey));
        if (!found || *found != m)
            return false;
        prev = m;
        if (++n > index.size())
            return false; // cycle
    }
    if (pm.readU64(lruTailSlot) != prev)
        return false;
    return n == index.size();
}

} // namespace pmemspec::pmds
