/**
 * @file
 * Vacation: the STAMP travel-reservation OLTP system, as ported to
 * persistent memory by Mnemosyne (Table 4).
 *
 * Three resource tables (cars, rooms, flights) map resource id to a
 * packed (free seats, used seats, price) record; reservations hang
 * off customers as PM linked lists. Each table is partitioned into
 * independent red-black sub-trees so that the lock-based stand-in for
 * Mnemosyne's STM keeps the optimistic concurrency of the original
 * (callers lock only the partitions a transaction touches).
 *
 * The MAKE_RESERVATION transaction queries several random resources
 * (read-dominant pointer chases through the trees -- this is why the
 * paper's Mnemosyne benchmarks are load-heavy), picks the cheapest
 * available one, and reserves it.
 */

#ifndef PMEMSPEC_PMDS_VACATION_HH
#define PMEMSPEC_PMDS_VACATION_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "pmds/pm_rbtree.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** Which resource table a reservation targets. */
enum class ResourceKind : std::uint8_t
{
    Car = 0,
    Room = 1,
    Flight = 2,
};

/** Sizing knobs. */
struct VacationConfig
{
    std::size_t resourcesPerTable = 4096;
    std::size_t customers = 1024;
    /** Resources examined per MAKE_RESERVATION query phase. */
    unsigned numQueries = 8;
    /** Independent sub-trees per table (lock domains). */
    unsigned partitionsPerTable = 16;
};

/** The vacation reservation system. */
class VacationDb
{
  public:
    VacationDb(runtime::PersistentMemory &pm,
               const VacationConfig &cfg);

    /** Partition (lock domain) a resource id belongs to. */
    unsigned
    partitionOf(std::uint64_t id) const
    {
        return static_cast<unsigned>(id % cfg.partitionsPerTable);
    }

    /**
     * MAKE_RESERVATION: examine the candidate resources of one kind,
     * reserve the cheapest with free capacity for the customer.
     * The caller must hold the locks of every candidate's partition
     * and of the customer's stripe.
     * @return true if a reservation was made.
     */
    bool makeReservation(runtime::Transaction &tx, ResourceKind kind,
                         const std::vector<std::uint64_t> &candidates,
                         std::uint64_t customer);

    /** DELETE_CUSTOMER: release every reservation of the customer.
     *  Callers must hold all table partitions (tests only). */
    unsigned deleteCustomerReservations(runtime::Transaction &tx,
                                        std::uint64_t customer);

    /** UPDATE_TABLES: change the price of one resource. */
    void updateTables(runtime::Transaction &tx, ResourceKind kind,
                      std::uint64_t id, std::uint32_t new_price);

    /** free+used seats is conserved per resource; reservation lists
     *  are acyclic and match the used counts in total. */
    bool checkInvariants() const;

    /** Total reservations across all customers (walks lists). */
    std::uint64_t totalReservations() const;

    /** Total used seats across every table. */
    std::uint64_t totalUsedSeats() const;

    const VacationConfig &config() const { return cfg; }

  private:
    // Packed resource record: free:16 | used:16 | price:32.
    static std::uint64_t pack(std::uint16_t free_seats,
                              std::uint16_t used, std::uint32_t price);
    static std::uint16_t freeOf(std::uint64_t rec);
    static std::uint16_t usedOf(std::uint64_t rec);
    static std::uint32_t priceOf(std::uint64_t rec);

    PmRbTree &tree(ResourceKind k, std::uint64_t id);
    const PmRbTree &tree(ResourceKind k, std::uint64_t id) const;

    Addr customerHead(std::uint64_t customer) const;

    runtime::PersistentMemory &pm;
    VacationConfig cfg;
    /** trees[kind][partition] */
    std::vector<std::vector<std::unique_ptr<PmRbTree>>> tables;
    Addr customerLists; ///< per-customer list-head slots
    std::uint64_t initialSeatsPerResource;
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_VACATION_HH
