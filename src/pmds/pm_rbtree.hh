/**
 * @file
 * Persistent red-black tree for the RB-Tree microbenchmark
 * (Table 4): "insert/delete entries in a Red-Black tree".
 *
 * Classic CLRS algorithms executed through the failure-atomic
 * Transaction interface, with every pointer and colour stored in PM.
 * A real nil sentinel node (black) lives in PM, as in CLRS, so the
 * delete fixup can hang a parent off it.
 */

#ifndef PMEMSPEC_PMDS_PM_RBTREE_HH
#define PMEMSPEC_PMDS_PM_RBTREE_HH

#include <cstdint>
#include <optional>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** A failure-atomic red-black tree: u64 key -> u64 value. */
class PmRbTree
{
  public:
    explicit PmRbTree(runtime::PersistentMemory &pm);

    /** Failure-atomic insert-or-update. */
    void insert(runtime::Transaction &tx, std::uint64_t key,
                std::uint64_t value);

    /** Failure-atomic removal. @return true if the key existed. */
    bool erase(runtime::Transaction &tx, std::uint64_t key);

    /** Transactional lookup. */
    std::optional<std::uint64_t> find(runtime::Transaction &tx,
                                      std::uint64_t key);

    /** Non-transactional lookup (checker / setup). */
    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    /** Number of keys (in-order walk). */
    std::size_t size() const;

    /**
     * Verify every red-black property on the volatile image:
     * BST order, red nodes have black children, equal black heights,
     * black root, consistent parent pointers.
     */
    bool checkInvariants() const;

  private:
    // Node layout:
    // [key:8][value:8][left:8][right:8][parent:8][color:8]
    static constexpr std::size_t nodeBytes = 48;
    static constexpr std::uint64_t red = 0;
    static constexpr std::uint64_t black = 1;

    static constexpr Addr offKey = 0;
    static constexpr Addr offVal = 8;
    static constexpr Addr offLeft = 16;
    static constexpr Addr offRight = 24;
    static constexpr Addr offParent = 32;
    static constexpr Addr offColor = 40;

    using Tx = runtime::Transaction;

    Addr rootAddr() const;

    // Transactional field access.
    Addr getRoot(Tx &tx) { return tx.readU64Dep(rootAddr()); }
    void setRoot(Tx &tx, Addr n) { tx.writeU64(rootAddr(), n); }
    std::uint64_t key(Tx &tx, Addr n) { return tx.readU64(n + offKey); }
    std::uint64_t val(Tx &tx, Addr n) { return tx.readU64(n + offVal); }
    Addr left(Tx &tx, Addr n) { return tx.readU64Dep(n + offLeft); }
    Addr right(Tx &tx, Addr n) { return tx.readU64Dep(n + offRight); }
    Addr parent(Tx &tx, Addr n)
    {
        return tx.readU64Dep(n + offParent);
    }
    std::uint64_t color(Tx &tx, Addr n)
    {
        return tx.readU64(n + offColor);
    }
    void setLeft(Tx &tx, Addr n, Addr v)
    {
        tx.writeU64(n + offLeft, v);
    }
    void setRight(Tx &tx, Addr n, Addr v)
    {
        tx.writeU64(n + offRight, v);
    }
    void setParent(Tx &tx, Addr n, Addr v)
    {
        tx.writeU64(n + offParent, v);
    }
    void setColor(Tx &tx, Addr n, std::uint64_t c)
    {
        tx.writeU64(n + offColor, c);
    }
    void setVal(Tx &tx, Addr n, std::uint64_t v)
    {
        tx.writeU64(n + offVal, v);
    }

    Addr allocNode(std::uint64_t k, std::uint64_t v);

    void rotateLeft(Tx &tx, Addr x);
    void rotateRight(Tx &tx, Addr x);
    void insertFixup(Tx &tx, Addr z);
    void transplant(Tx &tx, Addr u, Addr v);
    Addr minimum(Tx &tx, Addr n);
    void eraseFixup(Tx &tx, Addr x);

    // Checker helpers on the volatile image (non-transactional).
    bool checkNode(Addr n, std::uint64_t lo, std::uint64_t hi,
                   int &black_height) const;

    runtime::PersistentMemory &pm;
    Addr rootSlot; ///< PM slot holding the root pointer
    Addr nil;      ///< the black sentinel node
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_PM_RBTREE_HH
