#include "tatp.hh"

#include "common/logging.hh"

namespace pmemspec::pmds
{

TatpDb::TatpDb(runtime::PersistentMemory &pm_,
               std::size_t num_subscribers)
    : pm(pm_),
      rows(pm_.alloc(num_subscribers * rowBytes, 64)),
      count(num_subscribers),
      index(pm_, num_subscribers) // ~1 entry per bucket
{
    fatal_if(num_subscribers == 0, "TATP needs subscribers");
    // Populate (setup phase, outside FASEs). sub_nbr is a simple
    // reversible permutation of s_id, as in the TATP spec's
    // leading-zero-padded numbering.
    runtime::VirtualOs os;
    runtime::FaseRuntime setup(pm, os, 1,
                               runtime::RecoveryPolicy::Lazy, 1 << 14);
    for (std::uint64_t s = 0; s < count; ++s) {
        const std::uint64_t sub_nbr = s * 2654435761ULL % (1ULL << 40);
        const Addr r = rowAddr(s);
        pm.writeU64(r + offSId, s);
        pm.writeU64(r + offSubNbr, sub_nbr);
        pm.writeU64(r + offVlrLocation, 0);
        setup.runFase(0, [&](runtime::Transaction &tx) {
            index.put(tx, sub_nbr, s);
        });
    }
    pm.persistAll();
}

Addr
TatpDb::rowAddr(std::uint64_t s_id) const
{
    panic_if(s_id >= count, "bad subscriber id");
    return rows + s_id * rowBytes;
}

bool
TatpDb::updateLocation(runtime::Transaction &tx, std::uint64_t sub_nbr,
                       std::uint32_t new_location)
{
    // Index probe: SELECT s_id FROM subscriber WHERE sub_nbr = ?
    auto s_id = index.get(tx, sub_nbr);
    if (!s_id)
        return false;
    const Addr r = rowAddr(*s_id);
    // Sanity read of the row (the real transaction reads the row
    // before updating), then UPDATE ... SET vlr_location = ?.
    const std::uint64_t stored = tx.readU64(r + offSId);
    panic_if(stored != *s_id, "TATP row/id mismatch");
    tx.writeU64(r + offVlrLocation, new_location);
    return true;
}

std::uint32_t
TatpDb::location(std::uint64_t s_id) const
{
    return static_cast<std::uint32_t>(
        pm.readU64(rowAddr(s_id) + offVlrLocation));
}

bool
TatpDb::checkInvariants() const
{
    for (std::uint64_t s = 0; s < count; ++s) {
        if (pm.readU64(rowAddr(s) + offSId) != s)
            return false;
    }
    return true;
}

} // namespace pmemspec::pmds
