#include "pm_hashmap.hh"

#include "common/logging.hh"

namespace pmemspec::pmds
{

PmHashmap::PmHashmap(runtime::PersistentMemory &pm_,
                     std::size_t num_buckets)
    : pm(pm_),
      table(pm_.alloc(num_buckets * 8, 64)),
      numBuckets(num_buckets)
{
    fatal_if(num_buckets == 0, "hashmap needs at least one bucket");
    for (std::size_t b = 0; b < numBuckets; ++b)
        pm.writeU64(table + b * 8, 0);
    pm.persistAll();
}

std::size_t
PmHashmap::bucketIndex(std::uint64_t key) const
{
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h % numBuckets);
}

Addr
PmHashmap::bucketAddr(std::size_t b) const
{
    return table + b * 8;
}

void
PmHashmap::put(runtime::Transaction &tx, std::uint64_t key,
               std::uint64_t value)
{
    const Addr bucket = bucketAddr(bucketIndex(key));
    // Chase the chain looking for the key.
    for (Addr p = tx.readU64Dep(bucket); p != 0;
         p = tx.readU64Dep(p + 16)) {
        if (tx.readU64(p) == key) {
            tx.writeU64(p + 8, value);
            return;
        }
    }
    // Not found: link a fresh node at the head. The node itself is
    // unreachable until the bucket pointer flips, so only the bucket
    // pointer needs the undo log.
    const Addr node = pm.alloc(nodeBytes, 64);
    pm.writeU64(node, key);
    pm.writeU64(node + 8, value);
    pm.writeU64(node + 16, pm.readU64(bucket));
    tx.writeU64(bucket, node);
}

std::optional<std::uint64_t>
PmHashmap::get(runtime::Transaction &tx, std::uint64_t key)
{
    const Addr bucket = bucketAddr(bucketIndex(key));
    for (Addr p = tx.readU64Dep(bucket); p != 0;
         p = tx.readU64Dep(p + 16)) {
        if (tx.readU64(p) == key)
            return tx.readU64(p + 8);
    }
    return std::nullopt;
}

bool
PmHashmap::erase(runtime::Transaction &tx, std::uint64_t key)
{
    const Addr bucket = bucketAddr(bucketIndex(key));
    Addr prev_link = bucket;
    for (Addr p = tx.readU64Dep(bucket); p != 0;
         p = tx.readU64Dep(p + 16)) {
        if (tx.readU64(p) == key) {
            tx.writeU64(prev_link, tx.readU64(p + 16));
            return true;
        }
        prev_link = p + 16;
    }
    return false;
}

std::optional<std::uint64_t>
PmHashmap::lookup(std::uint64_t key) const
{
    const Addr bucket = bucketAddr(bucketIndex(key));
    for (Addr p = pm.readU64(bucket); p != 0; p = pm.readU64(p + 16)) {
        if (pm.readU64(p) == key)
            return pm.readU64(p + 8);
    }
    return std::nullopt;
}

std::size_t
PmHashmap::size() const
{
    std::size_t n = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        for (Addr p = pm.readU64(bucketAddr(b)); p != 0;
             p = pm.readU64(p + 16))
            ++n;
    }
    return n;
}

bool
PmHashmap::checkInvariants() const
{
    for (std::size_t b = 0; b < numBuckets; ++b) {
        std::size_t hops = 0;
        for (Addr p = pm.readU64(bucketAddr(b)); p != 0;
             p = pm.readU64(p + 16)) {
            if (bucketIndex(pm.readU64(p)) != b)
                return false;
            if (++hops > 10'000'000)
                return false; // cycle
        }
    }
    return true;
}

} // namespace pmemspec::pmds
