/**
 * @file
 * Memcached-like persistent key-value store (Table 4): an in-memory
 * KV store ported to Mnemosyne-style transactions, with 1024-byte
 * values as in the paper's evaluation.
 *
 * Like the real memcached, every item sits on a global LRU list that
 * is updated on *every* access -- a GET is not read-only: it bumps
 * the item to the LRU head and increments its hit counter inside the
 * transaction (this is why memcached is persistence-intensive under
 * Mnemosyne and why the paper sees its largest speedups there). The
 * LRU list is protected by memcached's global cache lock.
 */

#ifndef PMEMSPEC_PMDS_KV_STORE_HH
#define PMEMSPEC_PMDS_KV_STORE_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "pmds/pm_hashmap.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** Sizing knobs. */
struct KvConfig
{
    std::size_t buckets = 4096;
    std::uint32_t valueBytes = 1024; ///< paper: 1024B for memcached
    /** Maintain the memcached LRU list on every access. */
    bool lruTracking = true;
};

/** The persistent KV store. */
class KvStore
{
  public:
    KvStore(runtime::PersistentMemory &pm, const KvConfig &cfg);

    /** SET: insert or overwrite, failure-atomically; bumps LRU. */
    void set(runtime::Transaction &tx, std::uint64_t key,
             std::uint8_t fill_byte);

    /**
     * GET: read the full value and update the LRU metadata.
     * @return the fill byte if present, nullopt on miss.
     */
    std::optional<std::uint8_t> get(runtime::Transaction &tx,
                                    std::uint64_t key);

    /** DELETE. @return true if present. */
    bool erase(runtime::Transaction &tx, std::uint64_t key);

    /** Non-transactional checker read. */
    std::optional<std::uint8_t> lookup(std::uint64_t key) const;

    /** PM region of a stored item's value slab (checker / chaos
     *  targeting hook); nullopt when the key is absent. */
    std::optional<std::pair<Addr, std::size_t>>
    slabRegion(std::uint64_t key) const;

    /** LRU hit count of a key (checker). */
    std::optional<std::uint64_t> hitCount(std::uint64_t key) const;

    /** Key at the LRU head (most recently used); 0 if empty. */
    std::uint64_t lruFrontKey() const;

    /** Index is sane and the LRU list links every stored item
     *  exactly once, in both directions. */
    bool checkInvariants() const;

    std::size_t size() const { return index.size(); }
    const KvConfig &config() const { return cfg; }

    /** Index bucket of a key (used for striped locking). */
    std::size_t bucketOf(std::uint64_t key) const
    {
        return index.bucketOf(key);
    }

  private:
    // Item metadata block (64B-aligned):
    // [key:8][slab:8][prev:8][next:8][hits:8]
    static constexpr Addr offKey = 0;
    static constexpr Addr offSlab = 8;
    static constexpr Addr offPrev = 16;
    static constexpr Addr offNext = 24;
    static constexpr Addr offHits = 32;
    static constexpr std::size_t metaBytes = 64;

    /** Unlink + reinsert at the LRU head, bump the hit counter. */
    void touch(runtime::Transaction &tx, Addr meta);
    void pushFront(runtime::Transaction &tx, Addr meta);
    void unlink(runtime::Transaction &tx, Addr meta);

    runtime::PersistentMemory &pm;
    KvConfig cfg;
    PmHashmap index; ///< key -> item metadata address
    Addr lruHeadSlot;
    Addr lruTailSlot;
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_KV_STORE_HH
