/**
 * @file
 * Persistent array for the Array Swaps microbenchmark (Table 4):
 * "random swaps of array elements", failure-atomic via undo logging.
 * Element size is configurable; the paper's FASEs move 64 bytes of
 * data, so the benchmark uses 64-byte elements (one cache block).
 */

#ifndef PMEMSPEC_PMDS_PM_ARRAY_HH
#define PMEMSPEC_PMDS_PM_ARRAY_HH

#include <cstdint>

#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** A fixed-size array of fixed-size elements in PM. */
class PmArray
{
  public:
    /**
     * Allocate n elements of elem_bytes each (zero-initialised).
     * The first 8 bytes of an element carry its checksum word.
     */
    PmArray(runtime::PersistentMemory &pm, std::size_t n,
            std::size_t elem_bytes = 64);

    /** Element PM address. */
    Addr elemAddr(std::size_t i) const;

    /** Initialise element i's checksum word (setup phase). */
    void init(std::size_t i, std::uint64_t v);

    /** Failure-atomic swap of the full elements i and j. */
    void swap(runtime::Transaction &tx, std::size_t i, std::size_t j);

    /** Read element i's checksum word (checker access). */
    std::uint64_t get(std::size_t i) const;

    std::size_t size() const { return count; }
    std::size_t elemBytes() const { return elemSize; }

    /** Sum of all checksum words -- invariant under swaps. */
    std::uint64_t checksum() const;

    /** Checksum over the *persisted* image (crash-consistency). */
    std::uint64_t persistedChecksum() const;

    /**
     * Self-check entry point for crash/fault harnesses: the current
     * checksum must equal the expected sum recorded (in PM) during
     * init() -- swaps only permute elements, so any divergence means
     * a torn or half-applied swap survived recovery.
     */
    bool checkInvariants() const;

  private:
    runtime::PersistentMemory &pm;
    Addr base;
    Addr expectedSumSlot; ///< PM cell: sum of all init() values
    std::size_t count;
    std::size_t elemSize;
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_PM_ARRAY_HH
