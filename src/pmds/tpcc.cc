#include "tpcc.hh"

#include "common/logging.hh"

namespace pmemspec::pmds
{

// Row field offsets.
namespace
{
// warehouse: [w_tax:8][w_ytd:8]
constexpr Addr offWTax = 0;
// district: [d_tax:8][d_ytd:8][d_next_o_id:8]
constexpr Addr offDTax = 0;
constexpr Addr offDNextOid = 16;
constexpr Addr offDOrderCnt = 24; // orders appended in this district
constexpr Addr offDLineCnt = 32;  // order lines appended
// customer: [c_discount:8][c_balance:8][c_ytd:8]
constexpr Addr offCDiscount = 0;
// item: [i_price:8][i_im_id:8]
constexpr Addr offIPrice = 0;
// stock: [s_quantity:8][s_ytd:8][s_order_cnt:8]
constexpr Addr offSQuantity = 0;
constexpr Addr offSYtd = 8;
constexpr Addr offSOrderCnt = 16;
// order row: [o_id:8][o_d_id:8][o_c_id:8][o_ol_cnt:8]
// order line: [ol_o_id:8][ol_number:8][ol_i_id:8][ol_qty:8][ol_amt:8]
} // namespace

TpccDb::TpccDb(runtime::PersistentMemory &pm_, const TpccConfig &cfg_)
    : pm(pm_), cfg(cfg_)
{
    fatal_if(cfg.districts == 0 || cfg.items == 0 ||
                 cfg.customersPerDistrict == 0,
             "bad TPCC config");
    warehouse = pm.alloc(rowBytes, 64);
    districts = pm.alloc(cfg.districts * rowBytes, 64);
    customers =
        pm.alloc(cfg.districts * cfg.customersPerDistrict * rowBytes, 64);
    items = pm.alloc(cfg.items * rowBytes, 64);
    stock = pm.alloc(cfg.items * rowBytes, 64);
    orders = pm.alloc(std::size_t{cfg.maxOrders} * rowBytes, 64);
    orderLines =
        pm.alloc(std::size_t{cfg.maxOrders} * 16 * rowBytes, 64);
    newOrders = pm.alloc(std::size_t{cfg.maxOrders} * 8, 64);

    // Populate (setup phase).
    pm.writeU64(warehouse + offWTax, 7);
    for (unsigned d = 0; d < cfg.districts; ++d) {
        pm.writeU64(districtAddr(d) + offDTax, 5);
        pm.writeU64(districtAddr(d) + offDNextOid, 1);
        pm.writeU64(districtAddr(d) + offDOrderCnt, 0);
        pm.writeU64(districtAddr(d) + offDLineCnt, 0);
    }
    for (unsigned d = 0; d < cfg.districts; ++d) {
        for (unsigned c = 0; c < cfg.customersPerDistrict; ++c)
            pm.writeU64(customerAddr(d, c) + offCDiscount, c % 50);
    }
    for (unsigned i = 0; i < cfg.items; ++i) {
        pm.writeU64(itemAddr(i) + offIPrice, 100 + i % 900);
        pm.writeU64(stockAddr(i) + offSQuantity, 10'000);
        pm.writeU64(stockAddr(i) + offSYtd, 0);
        pm.writeU64(stockAddr(i) + offSOrderCnt, 0);
    }
    pm.persistAll();
}

Addr
TpccDb::districtAddr(unsigned d) const
{
    panic_if(d >= cfg.districts, "bad district");
    return districts + std::size_t{d} * rowBytes;
}

Addr
TpccDb::customerAddr(unsigned d, unsigned c) const
{
    panic_if(d >= cfg.districts || c >= cfg.customersPerDistrict,
             "bad customer");
    return customers +
           (std::size_t{d} * cfg.customersPerDistrict + c) * rowBytes;
}

Addr
TpccDb::itemAddr(unsigned i) const
{
    panic_if(i >= cfg.items, "bad item");
    return items + std::size_t{i} * rowBytes;
}

Addr
TpccDb::stockAddr(unsigned i) const
{
    panic_if(i >= cfg.items, "bad stock item");
    return stock + std::size_t{i} * rowBytes;
}

std::vector<OrderLineReq>
TpccDb::randomLines(Rng &rng) const
{
    const unsigned n = static_cast<unsigned>(rng.range(5, 15));
    std::vector<OrderLineReq> lines(n);
    for (auto &l : lines) {
        l.itemId = static_cast<std::uint32_t>(rng.below(cfg.items));
        l.quantity = static_cast<std::uint32_t>(rng.range(1, 10));
    }
    return lines;
}

std::uint64_t
TpccDb::newOrder(runtime::Transaction &tx, unsigned district,
                 unsigned customer,
                 const std::vector<OrderLineReq> &lines)
{
    panic_if(lines.empty(), "new-order with no lines");
    // 1. Read warehouse and district tax rates.
    const std::uint64_t w_tax = tx.readU64(warehouse + offWTax);
    const Addr d_row = districtAddr(district);
    const std::uint64_t d_tax = tx.readU64(d_row + offDTax);
    // 2. Read and bump the district's next order id.
    const std::uint64_t o_id = tx.readU64(d_row + offDNextOid);
    tx.writeU64(d_row + offDNextOid, o_id + 1);
    // 3. Read the customer's discount.
    const std::uint64_t c_disc =
        tx.readU64(customerAddr(district, customer) + offCDiscount);
    // 4. Insert the order and new-order rows. Append regions are
    //    partitioned per district so the whole transaction stays
    //    inside the district's lock domain (plus the stock stripes).
    const std::size_t per_d = perDistrictOrders();
    const std::uint64_t o_cnt = tx.readU64(d_row + offDOrderCnt);
    fatal_if(o_cnt >= per_d, "order region exhausted");
    tx.writeU64(d_row + offDOrderCnt, o_cnt + 1);
    const std::uint64_t o_slot = district * per_d + o_cnt;
    const Addr o_row = orders + o_slot * rowBytes;
    tx.writeU64(o_row, o_id);
    tx.writeU64(o_row + 8, district);
    tx.writeU64(o_row + 16, customer);
    tx.writeU64(o_row + 24, lines.size());
    tx.writeU64(newOrders + o_slot * 8, o_id);
    // 5. Per line item: read item price, update stock, insert line.
    std::uint64_t total = 0;
    for (std::size_t n = 0; n < lines.size(); ++n) {
        const OrderLineReq &l = lines[n];
        const std::uint64_t price =
            tx.readU64(itemAddr(l.itemId) + offIPrice);
        const Addr s_row = stockAddr(l.itemId);
        std::uint64_t qty = tx.readU64(s_row + offSQuantity);
        qty = (qty >= l.quantity + 10) ? qty - l.quantity
                                       : qty + 91 - l.quantity;
        tx.writeU64(s_row + offSQuantity, qty);
        tx.writeU64(s_row + offSYtd,
                    tx.readU64(s_row + offSYtd) + l.quantity);
        tx.writeU64(s_row + offSOrderCnt,
                    tx.readU64(s_row + offSOrderCnt) + 1);

        const std::uint64_t l_cnt = tx.readU64(d_row + offDLineCnt);
        fatal_if(l_cnt >= per_d * 16, "order-line region exhausted");
        tx.writeU64(d_row + offDLineCnt, l_cnt + 1);
        const std::uint64_t ol_slot = district * per_d * 16 + l_cnt;
        const Addr ol_row = orderLines + ol_slot * rowBytes;
        tx.writeU64(ol_row, o_id);
        tx.writeU64(ol_row + 8, n);
        tx.writeU64(ol_row + 16, l.itemId);
        tx.writeU64(ol_row + 24, l.quantity);
        const std::uint64_t amount = price * l.quantity;
        tx.writeU64(ol_row + 32, amount);
        total += amount;
    }
    // The computed total exercises the tax/discount reads.
    (void)w_tax;
    (void)d_tax;
    (void)c_disc;
    (void)total;
    return o_id;
}

std::uint64_t
TpccDb::nextOrderId(unsigned district) const
{
    return pm.readU64(districtAddr(district) + offDNextOid);
}

std::uint64_t
TpccDb::totalStock() const
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < cfg.items; ++i)
        sum += pm.readU64(stockAddr(i) + offSQuantity);
    return sum;
}

std::uint64_t
TpccDb::ordersPlaced() const
{
    std::uint64_t n = 0;
    for (unsigned d = 0; d < cfg.districts; ++d)
        n += pm.readU64(districtAddr(d) + offDOrderCnt);
    return n;
}

bool
TpccDb::checkInvariants() const
{
    // Sum of district next_o_id bumps must equal orders placed.
    std::uint64_t bumps = 0;
    for (unsigned d = 0; d < cfg.districts; ++d)
        bumps += nextOrderId(d) - 1;
    if (bumps != ordersPlaced())
        return false;
    // Every recorded order row has a sane line count.
    const std::size_t per_d = perDistrictOrders();
    for (unsigned d = 0; d < cfg.districts; ++d) {
        const std::uint64_t placed =
            pm.readU64(districtAddr(d) + offDOrderCnt);
        for (std::uint64_t s = 0; s < placed; ++s) {
            const Addr row = orders + (d * per_d + s) * rowBytes;
            const std::uint64_t cnt = pm.readU64(row + 24);
            if (cnt < 5 || cnt > 15)
                return false;
        }
    }
    return true;
}

} // namespace pmemspec::pmds
