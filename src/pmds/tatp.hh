/**
 * @file
 * TATP database for the "update location" transaction (Table 4).
 *
 * The Telecom Application Transaction Processing benchmark's
 * UPDATE_LOCATION transaction looks a subscriber up by number through
 * an index and overwrites its VLR location. We model the subscriber
 * table as fixed 64-byte rows plus a hash index from subscriber
 * number to row id, failure-atomic via undo logging -- the single
 * transaction type the paper evaluates.
 */

#ifndef PMEMSPEC_PMDS_TATP_HH
#define PMEMSPEC_PMDS_TATP_HH

#include <cstdint>

#include "pmds/pm_hashmap.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"

namespace pmemspec::pmds
{

/** The TATP subscriber table + index. */
class TatpDb
{
  public:
    /** Build and populate num_subscribers rows. */
    TatpDb(runtime::PersistentMemory &pm, std::size_t num_subscribers);

    /** The UPDATE_LOCATION transaction. @return true if found. */
    bool updateLocation(runtime::Transaction &tx,
                        std::uint64_t sub_nbr,
                        std::uint32_t new_location);

    /** Current VLR location of a subscriber (checker). */
    std::uint32_t location(std::uint64_t s_id) const;

    std::size_t subscribers() const { return count; }

    /** Rows are self-consistent: s_id field matches the row slot. */
    bool checkInvariants() const;

  private:
    // Row layout (64B): [s_id:8][sub_nbr:8][bits:8][hex:8]
    //                   [byte2:8][msc_location:8][vlr_location:8][pad:8]
    static constexpr std::size_t rowBytes = 64;
    static constexpr Addr offSId = 0;
    static constexpr Addr offSubNbr = 8;
    static constexpr Addr offVlrLocation = 48;

    Addr rowAddr(std::uint64_t s_id) const;

    runtime::PersistentMemory &pm;
    Addr rows;
    std::size_t count;
    PmHashmap index; ///< sub_nbr -> s_id
};

} // namespace pmemspec::pmds

#endif // PMEMSPEC_PMDS_TATP_HH
