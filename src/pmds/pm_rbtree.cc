#include "pm_rbtree.hh"

#include "common/logging.hh"

namespace pmemspec::pmds
{

PmRbTree::PmRbTree(runtime::PersistentMemory &pm_)
    : pm(pm_),
      rootSlot(pm_.alloc(8, 8)),
      nil(pm_.alloc(nodeBytes, 64))
{
    pm.writeU64(nil + offKey, 0);
    pm.writeU64(nil + offVal, 0);
    pm.writeU64(nil + offLeft, nil);
    pm.writeU64(nil + offRight, nil);
    pm.writeU64(nil + offParent, nil);
    pm.writeU64(nil + offColor, black);
    pm.writeU64(rootSlot, nil);
    pm.persistAll();
}

Addr
PmRbTree::rootAddr() const
{
    return rootSlot;
}

Addr
PmRbTree::allocNode(std::uint64_t k, std::uint64_t v)
{
    // Fresh nodes are unreachable until linked; initialise them
    // outside the undo log.
    Addr n = pm.alloc(nodeBytes, 64);
    pm.writeU64(n + offKey, k);
    pm.writeU64(n + offVal, v);
    pm.writeU64(n + offLeft, nil);
    pm.writeU64(n + offRight, nil);
    pm.writeU64(n + offParent, nil);
    pm.writeU64(n + offColor, red);
    return n;
}

void
PmRbTree::rotateLeft(Tx &tx, Addr x)
{
    Addr y = right(tx, x);
    setRight(tx, x, left(tx, y));
    if (left(tx, y) != nil)
        setParent(tx, left(tx, y), x);
    setParent(tx, y, parent(tx, x));
    if (parent(tx, x) == nil)
        setRoot(tx, y);
    else if (x == left(tx, parent(tx, x)))
        setLeft(tx, parent(tx, x), y);
    else
        setRight(tx, parent(tx, x), y);
    setLeft(tx, y, x);
    setParent(tx, x, y);
}

void
PmRbTree::rotateRight(Tx &tx, Addr x)
{
    Addr y = left(tx, x);
    setLeft(tx, x, right(tx, y));
    if (right(tx, y) != nil)
        setParent(tx, right(tx, y), x);
    setParent(tx, y, parent(tx, x));
    if (parent(tx, x) == nil)
        setRoot(tx, y);
    else if (x == right(tx, parent(tx, x)))
        setRight(tx, parent(tx, x), y);
    else
        setLeft(tx, parent(tx, x), y);
    setRight(tx, y, x);
    setParent(tx, x, y);
}

void
PmRbTree::insert(Tx &tx, std::uint64_t k, std::uint64_t v)
{
    Addr y = nil;
    Addr x = getRoot(tx);
    while (x != nil) {
        y = x;
        const std::uint64_t xk = key(tx, x);
        if (k == xk) {
            setVal(tx, x, v); // update in place
            return;
        }
        x = (k < xk) ? left(tx, x) : right(tx, x);
    }
    Addr z = allocNode(k, v);
    setParent(tx, z, y);
    if (y == nil)
        setRoot(tx, z);
    else if (k < key(tx, y))
        setLeft(tx, y, z);
    else
        setRight(tx, y, z);
    insertFixup(tx, z);
}

void
PmRbTree::insertFixup(Tx &tx, Addr z)
{
    while (color(tx, parent(tx, z)) == red) {
        Addr zp = parent(tx, z);
        Addr zpp = parent(tx, zp);
        if (zp == left(tx, zpp)) {
            Addr y = right(tx, zpp); // uncle
            if (color(tx, y) == red) {
                setColor(tx, zp, black);
                setColor(tx, y, black);
                setColor(tx, zpp, red);
                z = zpp;
            } else {
                if (z == right(tx, zp)) {
                    z = zp;
                    rotateLeft(tx, z);
                    zp = parent(tx, z);
                    zpp = parent(tx, zp);
                }
                setColor(tx, zp, black);
                setColor(tx, zpp, red);
                rotateRight(tx, zpp);
            }
        } else {
            Addr y = left(tx, zpp); // uncle
            if (color(tx, y) == red) {
                setColor(tx, zp, black);
                setColor(tx, y, black);
                setColor(tx, zpp, red);
                z = zpp;
            } else {
                if (z == left(tx, zp)) {
                    z = zp;
                    rotateRight(tx, z);
                    zp = parent(tx, z);
                    zpp = parent(tx, zp);
                }
                setColor(tx, zp, black);
                setColor(tx, zpp, red);
                rotateLeft(tx, zpp);
            }
        }
    }
    setColor(tx, getRoot(tx), black);
}

void
PmRbTree::transplant(Tx &tx, Addr u, Addr v)
{
    Addr up = parent(tx, u);
    if (up == nil)
        setRoot(tx, v);
    else if (u == left(tx, up))
        setLeft(tx, up, v);
    else
        setRight(tx, up, v);
    setParent(tx, v, up);
}

Addr
PmRbTree::minimum(Tx &tx, Addr n)
{
    while (left(tx, n) != nil)
        n = left(tx, n);
    return n;
}

bool
PmRbTree::erase(Tx &tx, std::uint64_t k)
{
    // Find the node.
    Addr z = getRoot(tx);
    while (z != nil) {
        const std::uint64_t zk = key(tx, z);
        if (k == zk)
            break;
        z = (k < zk) ? left(tx, z) : right(tx, z);
    }
    if (z == nil)
        return false;

    Addr y = z;
    std::uint64_t y_orig_color = color(tx, y);
    Addr x;
    if (left(tx, z) == nil) {
        x = right(tx, z);
        transplant(tx, z, x);
    } else if (right(tx, z) == nil) {
        x = left(tx, z);
        transplant(tx, z, x);
    } else {
        y = minimum(tx, right(tx, z));
        y_orig_color = color(tx, y);
        x = right(tx, y);
        if (parent(tx, y) == z) {
            setParent(tx, x, y);
        } else {
            transplant(tx, y, x);
            setRight(tx, y, right(tx, z));
            setParent(tx, right(tx, y), y);
        }
        transplant(tx, z, y);
        setLeft(tx, y, left(tx, z));
        setParent(tx, left(tx, y), y);
        setColor(tx, y, color(tx, z));
    }
    if (y_orig_color == black)
        eraseFixup(tx, x);
    return true;
}

void
PmRbTree::eraseFixup(Tx &tx, Addr x)
{
    while (x != getRoot(tx) && color(tx, x) == black) {
        Addr xp = parent(tx, x);
        if (x == left(tx, xp)) {
            Addr w = right(tx, xp);
            if (color(tx, w) == red) {
                setColor(tx, w, black);
                setColor(tx, xp, red);
                rotateLeft(tx, xp);
                w = right(tx, xp);
            }
            if (color(tx, left(tx, w)) == black &&
                color(tx, right(tx, w)) == black) {
                setColor(tx, w, red);
                x = xp;
            } else {
                if (color(tx, right(tx, w)) == black) {
                    setColor(tx, left(tx, w), black);
                    setColor(tx, w, red);
                    rotateRight(tx, w);
                    w = right(tx, xp);
                }
                setColor(tx, w, color(tx, xp));
                setColor(tx, xp, black);
                setColor(tx, right(tx, w), black);
                rotateLeft(tx, xp);
                x = getRoot(tx);
            }
        } else {
            Addr w = left(tx, xp);
            if (color(tx, w) == red) {
                setColor(tx, w, black);
                setColor(tx, xp, red);
                rotateRight(tx, xp);
                w = left(tx, xp);
            }
            if (color(tx, right(tx, w)) == black &&
                color(tx, left(tx, w)) == black) {
                setColor(tx, w, red);
                x = xp;
            } else {
                if (color(tx, left(tx, w)) == black) {
                    setColor(tx, right(tx, w), black);
                    setColor(tx, w, red);
                    rotateLeft(tx, w);
                    w = left(tx, xp);
                }
                setColor(tx, w, color(tx, xp));
                setColor(tx, xp, black);
                setColor(tx, left(tx, w), black);
                rotateRight(tx, xp);
                x = getRoot(tx);
            }
        }
    }
    setColor(tx, x, black);
}

std::optional<std::uint64_t>
PmRbTree::find(Tx &tx, std::uint64_t k)
{
    Addr n = getRoot(tx);
    while (n != nil) {
        const std::uint64_t nk = key(tx, n);
        if (k == nk)
            return val(tx, n);
        n = (k < nk) ? left(tx, n) : right(tx, n);
    }
    return std::nullopt;
}

std::optional<std::uint64_t>
PmRbTree::lookup(std::uint64_t k) const
{
    Addr n = pm.readU64(rootSlot);
    while (n != nil) {
        const std::uint64_t nk = pm.readU64(n + offKey);
        if (k == nk)
            return pm.readU64(n + offVal);
        n = (k < nk) ? pm.readU64(n + offLeft)
                     : pm.readU64(n + offRight);
    }
    return std::nullopt;
}

std::size_t
PmRbTree::size() const
{
    // Iterative in-order walk using parent pointers.
    std::size_t n = 0;
    Addr cur = pm.readU64(rootSlot);
    if (cur == nil)
        return 0;
    // Explicit stack-free traversal: descend leftmost, then follow
    // successor links.
    while (pm.readU64(cur + offLeft) != nil)
        cur = pm.readU64(cur + offLeft);
    while (cur != nil) {
        ++n;
        // Successor.
        if (pm.readU64(cur + offRight) != nil) {
            cur = pm.readU64(cur + offRight);
            while (pm.readU64(cur + offLeft) != nil)
                cur = pm.readU64(cur + offLeft);
        } else {
            Addr p = pm.readU64(cur + offParent);
            while (p != nil && cur == pm.readU64(p + offRight)) {
                cur = p;
                p = pm.readU64(p + offParent);
            }
            cur = p;
        }
    }
    return n;
}

bool
PmRbTree::checkNode(Addr n, std::uint64_t lo, std::uint64_t hi,
                    int &black_height) const
{
    if (n == nil) {
        black_height = 1;
        return true;
    }
    const std::uint64_t k = pm.readU64(n + offKey);
    if (k < lo || k > hi)
        return false; // BST order violated
    const std::uint64_t c = pm.readU64(n + offColor);
    const Addr l = pm.readU64(n + offLeft);
    const Addr r = pm.readU64(n + offRight);
    if (c == red) {
        if ((l != nil && pm.readU64(l + offColor) == red) ||
            (r != nil && pm.readU64(r + offColor) == red))
            return false; // red node with a red child
    }
    if (l != nil && pm.readU64(l + offParent) != n)
        return false;
    if (r != nil && pm.readU64(r + offParent) != n)
        return false;
    int lh = 0;
    int rh = 0;
    if (!checkNode(l, lo, k == 0 ? 0 : k - 1, lh))
        return false;
    if (!checkNode(r, k + 1, hi, rh))
        return false;
    if (lh != rh)
        return false; // unequal black heights
    black_height = lh + (c == black ? 1 : 0);
    return true;
}

bool
PmRbTree::checkInvariants() const
{
    const Addr root = pm.readU64(rootSlot);
    if (root == nil)
        return true;
    if (pm.readU64(root + offColor) != black)
        return false;
    int bh = 0;
    return checkNode(root, 0, ~0ULL, bh);
}

} // namespace pmemspec::pmds
