#include "lowering.hh"

#include <set>

#include "common/logging.hh"

namespace pmemspec::persistency
{

using cpu::Trace;
using cpu::TraceInstr;
using cpu::TraceOp;

namespace
{

/** Emit one store instruction per grain over [addr, addr+size). */
void
emitStores(Trace &out, Addr addr, std::uint32_t size, unsigned grain,
           std::set<Addr> *dirty_blocks)
{
    const Addr end = addr + (size ? size : 1);
    for (Addr a = addr; a < end; a += grain) {
        out.push_back(TraceInstr{TraceOp::Store, a});
        if (dirty_blocks)
            dirty_blocks->insert(blockAlign(a));
    }
}

/** Emit one load instruction per grain; the first may be dependent. */
void
emitLoads(Trace &out, Addr addr, std::uint32_t size, unsigned grain,
          bool dependent)
{
    const Addr end = addr + (size ? size : 1);
    bool first = true;
    for (Addr a = addr; a < end; a += grain) {
        out.push_back(TraceInstr{
            first && dependent ? TraceOp::LoadDep : TraceOp::Load, a});
        first = false;
    }
}

/** CLWB every dirty block, then SFENCE (the x86 epoch idiom). */
void
flushAndFence(Trace &out, std::set<Addr> &dirty_blocks)
{
    for (Addr b : dirty_blocks)
        out.push_back(TraceInstr{TraceOp::Clwb, b});
    dirty_blocks.clear();
    out.push_back(TraceInstr{TraceOp::Sfence, 0});
}

} // namespace

Trace
lower(const LogicalTrace &events, Design design,
      const LoweringOptions &opts)
{
    Trace out;
    out.reserve(events.size() * 4);
    // Blocks dirtied since the last flush point (IntelX86/DPO only).
    std::set<Addr> dirty;
    const bool x86_style =
        design == Design::IntelX86 || design == Design::DPO;

    for (const LogicalEvent &ev : events) {
        switch (ev.kind) {
          case EventKind::FaseBegin:
            out.push_back(TraceInstr{TraceOp::FaseBegin, 0});
            break;

          case EventKind::LogWrite:
          case EventKind::DataStore:
            emitStores(out, ev.addr, ev.size, opts.storeGrainBytes,
                       x86_style ? &dirty : nullptr);
            break;

          case EventKind::Boundary:
            // The log/data ordering point.
            switch (design) {
              case Design::IntelX86:
                flushAndFence(out, dirty);
                break;
              case Design::DPO:
                // Same binary as IntelX86, but DPO targeted ARM's
                // relaxed consistency and "enforces the persist-order
                // for not only SFENCE but other barriers inherited in
                // programs" (Section 8.2.2): every barrier waits for
                // the (globally serialised) persist buffer to drain.
                flushAndFence(out, dirty);
                out.push_back(TraceInstr{TraceOp::Ofence, 0});
                out.push_back(TraceInstr{TraceOp::DrainBuffer, 0});
                break;
              case Design::HOPS:
                out.push_back(TraceInstr{TraceOp::Ofence, 0});
                break;
              case Design::PmemSpec:
                // The persist-path delivers stores in commit order:
                // no instruction needed (Section 4.2).
                break;
            }
            break;

          case EventKind::FaseEnd:
            switch (design) {
              case Design::IntelX86:
                flushAndFence(out, dirty);
                break;
              case Design::DPO:
                flushAndFence(out, dirty);
                out.push_back(TraceInstr{TraceOp::Ofence, 0});
                // Durability at commit: wait for the persist buffer.
                out.push_back(TraceInstr{TraceOp::DrainBuffer, 0});
                break;
              case Design::HOPS:
                out.push_back(TraceInstr{TraceOp::Dfence, 0});
                break;
              case Design::PmemSpec:
                out.push_back(TraceInstr{TraceOp::SpecBarrier, 0});
                break;
            }
            out.push_back(TraceInstr{TraceOp::FaseEnd, 0});
            break;

          case EventKind::PmLoad:
            emitLoads(out, ev.addr, ev.size, opts.loadGrainBytes,
                      false);
            break;

          case EventKind::PmLoadDep:
            emitLoads(out, ev.addr, ev.size, opts.loadGrainBytes,
                      true);
            break;

          case EventKind::LockAcq:
            out.push_back(TraceInstr{TraceOp::LockAcq, ev.addr});
            if (design == Design::PmemSpec) {
                // Compiler-inserted instrumentation at the critical-
                // section entrance (Section 5.2.2).
                out.push_back(TraceInstr{TraceOp::SpecAssign, 0});
            }
            break;

          case EventKind::LockRel:
            if (design == Design::PmemSpec)
                out.push_back(TraceInstr{TraceOp::SpecRevoke, 0});
            out.push_back(TraceInstr{TraceOp::LockRel, ev.addr});
            break;

          case EventKind::Compute:
            if (ev.addr != 0)
                out.push_back(TraceInstr{TraceOp::Compute, ev.addr});
            break;
        }
    }
    return out;
}

InstrMix
instrMix(const cpu::Trace &t)
{
    InstrMix m;
    for (const auto &i : t) {
        switch (i.op) {
          case TraceOp::Store:       ++m.stores; break;
          case TraceOp::Load:
          case TraceOp::LoadDep:     ++m.loads; break;
          case TraceOp::Clwb:        ++m.clwbs; break;
          case TraceOp::Sfence:      ++m.sfences; break;
          case TraceOp::Ofence:      ++m.ofences; break;
          case TraceOp::Dfence:      ++m.dfences; break;
          case TraceOp::SpecBarrier: ++m.specBarriers; break;
          case TraceOp::DrainBuffer: ++m.drainBuffers; break;
          default: break;
        }
    }
    return m;
}

} // namespace pmemspec::persistency
