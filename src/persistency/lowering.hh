/**
 * @file
 * Lowering of logical traces into design-specific instruction streams.
 *
 * This pass plays the role of the compiler/library in each system:
 * the x86 library inserts CLWB/SFENCE; the HOPS compiler inserts
 * ofence/dfence; the PMEM-Spec compiler inserts only spec-barrier at
 * FASE ends plus spec-assign/spec-revoke around critical sections
 * (Sections 3.2, 4.2 and 5.2.2 of the paper).
 */

#ifndef PMEMSPEC_PERSISTENCY_LOWERING_HH
#define PMEMSPEC_PERSISTENCY_LOWERING_HH

#include "cpu/trace.hh"
#include "persistency/design.hh"
#include "persistency/logical_trace.hh"

namespace pmemspec::persistency
{

/** Knobs of the lowering pass. */
struct LoweringOptions
{
    /** Bytes written per store instruction (an x86 64-bit store). */
    unsigned storeGrainBytes = 8;
    /** Bytes read per load instruction. */
    unsigned loadGrainBytes = 8;
};

/**
 * Expand one thread's logical trace into the instruction stream for
 * the given design.
 */
cpu::Trace lower(const LogicalTrace &events, Design design,
                 const LoweringOptions &opts = {});

/** Summary of a lowered trace's instruction mix (tests/ablations). */
struct InstrMix
{
    std::size_t stores = 0;
    std::size_t loads = 0;
    std::size_t clwbs = 0;
    std::size_t sfences = 0;
    std::size_t ofences = 0;
    std::size_t dfences = 0;
    std::size_t specBarriers = 0;
    std::size_t drainBuffers = 0;
};

/** Count the ordering-relevant instructions in a lowered trace. */
InstrMix instrMix(const cpu::Trace &t);

} // namespace pmemspec::persistency

#endif // PMEMSPEC_PERSISTENCY_LOWERING_HH
