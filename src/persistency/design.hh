/**
 * @file
 * The four evaluated persistency-model implementations (Section 8.1).
 */

#ifndef PMEMSPEC_PERSISTENCY_DESIGN_HH
#define PMEMSPEC_PERSISTENCY_DESIGN_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace pmemspec::persistency
{

/**
 * Hardware design under evaluation. Mirrors the four configurations the
 * paper compares in Figure 9.
 */
enum class Design
{
    /** Epoch persistency with CLWB + SFENCE on stock Intel X86. */
    IntelX86,
    /** Delegated Persist Ordering: buffered strict persistency with
     *  persist buffers in the coherence domain and one global flush in
     *  flight at a time (Kolli et al., MICRO'16). */
    DPO,
    /** Buffered epoch persistency with ofence/dfence, per-core persist
     *  buffers and a PMC bloom filter (Nalli et al., ASPLOS'17). */
    HOPS,
    /** This paper: speculative strict persistency with a decoupled
     *  persist-path and a speculation buffer in the PMC. */
    PmemSpec,
};

/** Human-readable design name as used in the paper's figures. */
inline std::string
designName(Design d)
{
    switch (d) {
      case Design::IntelX86: return "IntelX86";
      case Design::DPO:      return "DPO";
      case Design::HOPS:     return "HOPS";
      case Design::PmemSpec: return "PMEM-Spec";
    }
    return "unknown";
}

/** The four designs in the paper's figure/column order. */
inline std::vector<Design>
allDesigns()
{
    return {Design::IntelX86, Design::DPO, Design::HOPS,
            Design::PmemSpec};
}

/** Parse a design from its paper name ("PMEM-Spec") or enumerator
 *  spelling ("PmemSpec"); returns false on no match. */
inline bool
designFromName(const std::string &name, Design &out)
{
    for (Design d : allDesigns()) {
        if (name == designName(d)) {
            out = d;
            return true;
        }
    }
    if (name == "PmemSpec") {
        out = Design::PmemSpec;
        return true;
    }
    return false;
}

/** Number of Design enumerators (DesignTable's extent). */
inline constexpr std::size_t kNumDesigns = 4;

/**
 * Fixed-size value table indexed by Design: the drop-in replacement
 * for std::map<Design, T> in per-row results. Four inline slots,
 * value-initialized -- no allocation, no tree walk, trivially
 * copyable for T like double. The map-style at() spelling is kept so
 * read sites work unchanged against either container.
 */
template <typename T>
class DesignTable
{
  public:
    T &operator[](Design d) { return v_[index(d)]; }
    const T &operator[](Design d) const { return v_[index(d)]; }

    T &at(Design d) { return v_[index(d)]; }
    const T &at(Design d) const { return v_[index(d)]; }

    bool
    operator==(const DesignTable &o) const
    {
        return v_ == o.v_;
    }

  private:
    static constexpr std::size_t
    index(Design d)
    {
        return static_cast<std::size_t>(d);
    }

    std::array<T, kNumDesigns> v_{};
};

/** True for the designs that keep persistent updates in per-core
 *  persist buffers beside the L1 (Figure 1a/1b). */
inline bool
usesPersistBuffers(Design d)
{
    return d == Design::DPO || d == Design::HOPS;
}

} // namespace pmemspec::persistency

#endif // PMEMSPEC_PERSISTENCY_DESIGN_HH
