/**
 * @file
 * Design-independent logical PM events.
 *
 * Workloads record what they *do* (log writes, data stores, loads,
 * lock operations); the lowering pass then expands the stream into the
 * design-specific instruction mix of the paper's Figure 2:
 *
 *   IntelX86 : CLWB per dirty block + SFENCE at each ordering point;
 *   DPO      : same binary as IntelX86; the hardware persists via
 *              buffers, with a durability drain at FASE end;
 *   HOPS     : ofence at the log/data boundary, dfence at FASE end;
 *   PMEM-Spec: nothing but spec-barrier at FASE end, with
 *              spec-assign / spec-revoke around critical sections.
 */

#ifndef PMEMSPEC_PERSISTENCY_LOGICAL_TRACE_HH
#define PMEMSPEC_PERSISTENCY_LOGICAL_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pmemspec::persistency
{

/** What the program logically did, before ISA lowering. */
enum class EventKind : std::uint8_t
{
    /** A failure-atomic section (transaction) begins. */
    FaseBegin,
    /** Undo/redo-log append of `size` bytes at `addr`. */
    LogWrite,
    /** The log/data ordering point: log entries must be durable (or
     *  ordered) before the data writes that follow. */
    Boundary,
    /** In-place data store of `size` bytes at `addr`. */
    DataStore,
    /** The FASE commits; its writes must be durable. */
    FaseEnd,
    /** Independent PM load of `size` bytes. */
    PmLoad,
    /** Dependent PM load (pointer chase); blocks the core. */
    PmLoadDep,
    /** Acquire lock `addr`. */
    LockAcq,
    /** Release lock `addr`. */
    LockRel,
    /** `addr` cycles of non-memory work. */
    Compute,
};

/** One logical event. */
struct LogicalEvent
{
    EventKind kind;
    Addr addr = 0;
    std::uint32_t size = 0;
};

/** One thread's logical stream. */
using LogicalTrace = std::vector<LogicalEvent>;

} // namespace pmemspec::persistency

#endif // PMEMSPEC_PERSISTENCY_LOGICAL_TRACE_HH
