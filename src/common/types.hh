/**
 * @file
 * Fundamental scalar types and address arithmetic shared by every
 * pmemspec library.
 *
 * The simulation measures time in integral picoseconds (Tick) so that a
 * 2 GHz core clock (500 ps) and the nanosecond-granularity device
 * latencies of the paper's Table 3 can both be represented exactly.
 */

#ifndef PMEMSPEC_COMMON_TYPES_HH
#define PMEMSPEC_COMMON_TYPES_HH

#include <cstdint>

namespace pmemspec
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** CPU clock cycles (frequency-dependent; see sim::Clock). */
using Cycles = std::uint64_t;

/** Physical byte address inside the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a hardware thread / core. */
using CoreId = std::uint32_t;

/** Monotonically increasing speculation ID (Section 5.2.2). */
using SpecId = std::uint32_t;

/** Ticks per nanosecond. */
constexpr Tick ticksPerNs = 1000;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * ticksPerNs);
}

/** Cache block size used throughout the memory system (bytes). */
constexpr unsigned blockBytes = 64;

/** log2(blockBytes). */
constexpr unsigned blockShift = 6;

/** Align an address down to its cache-block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockBytes - 1);
}

/** Byte offset of an address within its cache block. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (blockBytes - 1));
}

/** Block number (address / 64). */
constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

/** True iff x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_TYPES_HH
