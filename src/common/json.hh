/**
 * @file
 * Minimal JSON value tree + writer/parser for machine-readable results.
 *
 * The bench harness serializes every run (`BENCH_*.json`); the
 * simulator itself never parses JSON, but offline report tools
 * (tools/pm_top) read envelopes back through Json::parse. Two
 * properties matter more than generality:
 *
 *   - Determinism: objects preserve insertion order and numbers are
 *     formatted with std::to_chars (shortest round-trip, locale
 *     independent), so equal value trees serialize to equal bytes.
 *   - Precision: unsigned 64-bit counters (tick counts, event
 *     counters) are kept integral instead of being squeezed through
 *     a double.
 */

#ifndef PMEMSPEC_COMMON_JSON_HH
#define PMEMSPEC_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pmemspec
{

/** An insertion-ordered JSON value. */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Unsigned,
        Number,
        String,
        Array,
        Object,
    };

    Json() : kind(Type::Null) {}
    Json(bool v) : kind(Type::Bool), boolVal(v) {}
    Json(double v) : kind(Type::Number), numVal(v) {}
    Json(std::uint64_t v) : kind(Type::Unsigned), uintVal(v) {}
    Json(int v) : kind(Type::Number), numVal(v) {}
    Json(unsigned v) : kind(Type::Unsigned), uintVal(v) {}
    Json(std::string v) : kind(Type::String), strVal(std::move(v)) {}
    Json(const char *v) : kind(Type::String), strVal(v) {}

    static Json array() { Json j; j.kind = Type::Array; return j; }
    static Json object() { Json j; j.kind = Type::Object; return j; }

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::Null; }

    /** Object access: replaces the value if the key already exists
     *  (insertion position is kept), appends otherwise. */
    void set(const std::string &key, Json v);

    /** Object lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    Json *find(const std::string &key);

    /** Array append. */
    void push(Json v);

    std::size_t size() const;
    const Json &at(std::size_t i) const { return arr.at(i); }
    const std::vector<std::pair<std::string, Json>> &
    members() const { return obj; }

    bool boolean() const { return boolVal; }
    double number() const
    {
        return kind == Type::Unsigned ? static_cast<double>(uintVal)
                                      : numVal;
    }
    std::uint64_t uintValue() const { return uintVal; }
    const std::string &str() const { return strVal; }

    /** Serialize; indent > 0 pretty-prints with that step. */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /** Write a JSON string literal (with quotes and escapes). */
    static void writeEscaped(std::ostream &os, const std::string &s);

    /**
     * Parse a JSON document (used by report tools such as pm_top to
     * read back bench envelopes). Non-negative integer literals
     * without fraction/exponent become Unsigned, everything else
     * numeric becomes Number — so parse(dump()) round-trips the
     * writer's output byte-identically. On failure returns Null and,
     * when @p err is non-null, stores a message with the offset.
     */
    static Json parse(const std::string &text, std::string *err = nullptr);

  private:
    void writeRec(std::ostream &os, int indent, int depth) const;

    Type kind;
    bool boolVal = false;
    double numVal = 0;
    std::uint64_t uintVal = 0;
    std::string strVal;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_JSON_HH
