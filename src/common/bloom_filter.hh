/**
 * @file
 * Counting Bloom filter.
 *
 * HOPS (Nalli et al., ASPLOS'17) places a Bloom filter in the PM
 * controller holding the addresses of blocks pending in the per-core
 * persist buffers; every PM load must consult it and is delayed on a
 * (possibly false-positive) hit. A *counting* filter is required because
 * addresses are removed again when the persist buffers drain.
 */

#ifndef PMEMSPEC_COMMON_BLOOM_FILTER_HH
#define PMEMSPEC_COMMON_BLOOM_FILTER_HH

#include <cstdint>
#include <vector>

#include "types.hh"

namespace pmemspec
{

/** Counting Bloom filter over cache-block addresses. */
class BloomFilter
{
  public:
    /**
     * @param num_counters Number of 8-bit counters (power of two).
     * @param num_hashes   Hash functions per key.
     */
    explicit BloomFilter(std::size_t num_counters = 1024,
                         unsigned num_hashes = 3);

    /** Insert a block address. */
    void insert(Addr block_addr);

    /**
     * Remove one previous insertion of a block address.
     * Removing an address that was never inserted corrupts the filter;
     * callers must keep insert/remove balanced.
     */
    void remove(Addr block_addr);

    /** @return true if the address *may* be present (false positives
     *  possible, false negatives impossible). */
    bool mayContain(Addr block_addr) const;

    /** Number of live insertions. */
    std::size_t population() const { return populationCount; }

    /** Drop all contents. */
    void clear();

  private:
    std::uint64_t hash(Addr block_addr, unsigned i) const;

    std::vector<std::uint8_t> counters;
    std::uint64_t mask;
    unsigned numHashes;
    std::size_t populationCount = 0;
};

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_BLOOM_FILTER_HH
