/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- an internal invariant of the simulator was violated; abort.
 * fatal()  -- the user supplied an impossible configuration; exit(1).
 * warn()   -- something is modelled approximately; keep running.
 * inform() -- neutral progress information.
 */

#ifndef PMEMSPEC_COMMON_LOGGING_HH
#define PMEMSPEC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pmemspec
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace pmemspec

#define panic(...)                                                       \
    ::pmemspec::detail::panicImpl(__FILE__, __LINE__,                    \
        ::pmemspec::detail::format(__VA_ARGS__))

#define fatal(...)                                                       \
    ::pmemspec::detail::fatalImpl(__FILE__, __LINE__,                    \
        ::pmemspec::detail::format(__VA_ARGS__))

#define warn(...)                                                        \
    ::pmemspec::detail::warnImpl(::pmemspec::detail::format(__VA_ARGS__))

#define inform(...)                                                      \
    ::pmemspec::detail::informImpl(                                      \
        ::pmemspec::detail::format(__VA_ARGS__))

/** panic() unless the given simulator invariant holds. */
#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

/** fatal() unless the given user-facing precondition holds. */
#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // PMEMSPEC_COMMON_LOGGING_HH
