/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- an internal invariant of the simulator was violated; abort.
 * fatal()  -- the user supplied an impossible configuration; exit(1).
 * warn()   -- something is modelled approximately; keep running.
 * inform() -- neutral progress information.
 *
 * warn() and inform() honor the PMEMSPEC_LOG_LEVEL environment
 * variable ("silent"/"0" suppresses both, "warn"/"1" suppresses
 * inform, "info"/"2" -- the default -- shows everything), read once at
 * first use and routed through the same mutexed sinks. warn_once()
 * fires at most once per call site, for hot paths.
 */

#ifndef PMEMSPEC_COMMON_LOGGING_HH
#define PMEMSPEC_COMMON_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pmemspec
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Verbosity, from PMEMSPEC_LOG_LEVEL (default Info). */
enum class LogLevel
{
    Silent = 0, ///< suppress warn() and inform()
    Warn = 1,   ///< suppress inform()
    Info = 2,   ///< everything
};

LogLevel logLevel();

/** Programmatic override (tests; wins over the env var). */
void setLogLevel(LogLevel level);

/** Re-read PMEMSPEC_LOG_LEVEL, dropping any override. */
void refreshLogLevelFromEnv();

/** Pre-abort hook: the tracing layer installs a flight-recorder dump
 *  here so panic() can show how the machine got into the bad state. */
using PanicHook = void (*)();
void setPanicHook(PanicHook hook);

/** Write a preformatted block to `out` under the process-wide sink
 *  lock (one unbroken unit even with concurrent sweep workers). */
void rawSinkWrite(std::FILE *out, const std::string &text);

} // namespace detail

} // namespace pmemspec

#define panic(...)                                                       \
    ::pmemspec::detail::panicImpl(__FILE__, __LINE__,                    \
        ::pmemspec::detail::format(__VA_ARGS__))

#define fatal(...)                                                       \
    ::pmemspec::detail::fatalImpl(__FILE__, __LINE__,                    \
        ::pmemspec::detail::format(__VA_ARGS__))

#define warn(...)                                                        \
    ::pmemspec::detail::warnImpl(::pmemspec::detail::format(__VA_ARGS__))

#define inform(...)                                                      \
    ::pmemspec::detail::informImpl(                                      \
        ::pmemspec::detail::format(__VA_ARGS__))

/** warn(), but at most once per call site (hot paths). */
#define warn_once(...)                                                   \
    do {                                                                 \
        static std::atomic<bool> pmemspec_warned_{false};                \
        if (!pmemspec_warned_.exchange(true,                             \
                                       std::memory_order_relaxed))       \
            warn(__VA_ARGS__);                                           \
    } while (0)

/** panic() unless the given simulator invariant holds. */
#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

/** fatal() unless the given user-facing precondition holds. */
#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // PMEMSPEC_COMMON_LOGGING_HH
