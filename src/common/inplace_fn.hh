/**
 * @file
 * A move-only callable wrapper with a large inline buffer.
 *
 * The timing layer chains latencies by passing continuations down
 * the memory hierarchy; with std::function each hand-off whose
 * captures exceed the 16-byte libstdc++ SBO costs a heap allocation,
 * and the malloc/free pair shows up directly in the simulator's host
 * profile. InplaceFn stores callables up to Cap bytes inline (the
 * hot continuations capture `this` + address + a nested continuation
 * and fit comfortably), boxing only oversized ones. Move-only on
 * purpose: continuations are consumed exactly once, and copyability
 * is what forces std::function to reject move-only captures.
 */

#ifndef PMEMSPEC_COMMON_INPLACE_FN_HH
#define PMEMSPEC_COMMON_INPLACE_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pmemspec
{

template <typename Sig, std::size_t Cap = 64>
class InplaceFn;

template <typename R, typename... Args, std::size_t Cap>
class InplaceFn<R(Args...), Cap>
{
  public:
    InplaceFn() = default;
    InplaceFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InplaceFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= Cap &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (buf) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            ::new (buf) Fn *(new Fn(std::forward<F>(f)));
            ops = &boxedOps<Fn>;
        }
    }

    InplaceFn(InplaceFn &&o) noexcept : ops(o.ops)
    {
        if (ops) {
            ops->relocate(o.buf, buf);
            o.ops = nullptr;
        }
    }

    InplaceFn &
    operator=(InplaceFn &&o) noexcept
    {
        if (this == &o)
            return *this;
        if (ops)
            ops->destroy(buf);
        ops = o.ops;
        if (ops) {
            ops->relocate(o.buf, buf);
            o.ops = nullptr;
        }
        return *this;
    }

    InplaceFn &
    operator=(std::nullptr_t)
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
        return *this;
    }

    ~InplaceFn()
    {
        if (ops)
            ops->destroy(buf);
    }

    explicit operator bool() const { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        return ops->invoke(buf, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        /** Move-construct into dst and destroy src. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p, Args &&...args) -> R {
            return (*static_cast<Fn *>(p))(
                std::forward<Args>(args)...);
        },
        [](void *src, void *dst) {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops boxedOps = {
        [](void *p, Args &&...args) -> R {
            return (**static_cast<Fn **>(p))(
                std::forward<Args>(args)...);
        },
        [](void *src, void *dst) {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    alignas(std::max_align_t) unsigned char buf[Cap];
    const Ops *ops = nullptr;
};

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_INPLACE_FN_HH
