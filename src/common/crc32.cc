#include "crc32.hh"

#include <array>

namespace pmemspec
{

namespace
{

/** Build the byte-at-a-time lookup table for the reflected
 *  Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78). */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<std::uint32_t, 256> table = makeTable();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t n, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return ~c;
}

} // namespace pmemspec
