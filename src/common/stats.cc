#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace pmemspec
{

Histogram::Histogram(double lo_, double hi_, std::size_t buckets)
    : lo(lo_), hi(hi_),
      width(buckets ? (hi_ - lo_) / buckets : 1),
      bins(buckets, 0)
{
    fatal_if(hi_ <= lo_ || buckets == 0,
             "histogram needs hi > lo and at least one bucket");
}

void
Histogram::sample(double v)
{
    ++total;
    sum += v;
    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= bins.size())
            idx = bins.size() - 1; // fp rounding at the upper edge
        ++bins[idx];
    }
}

double
Histogram::quantile(double q) const
{
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Nearest-rank with in-bucket interpolation: find the bucket that
    // holds the quantileRank(q, total)-th sample (1-based).
    const std::uint64_t target = quantileRank(q, total);
    std::uint64_t cum = underflow;
    if (cum >= target)
        return lo;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        if (cum + bins[i] >= target) {
            const double frac =
                static_cast<double>(target - cum) /
                static_cast<double>(bins[i]);
            return lo + (static_cast<double>(i) + frac) * width;
        }
        cum += bins[i];
    }
    return hi;
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    underflow = overflow = total = 0;
    sum = 0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent_)
    : groupName(std::move(name)), parent(parent_)
{
    if (parent)
        parent->children.push_back(this);
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters.push_back({name, c, desc});
}

void
StatGroup::addAccumulator(const std::string &name, const Accumulator *a,
                          const std::string &desc)
{
    accums.push_back({name, a, desc});
}

void
StatGroup::addHistogram(const std::string &name, const Histogram *h,
                        const std::string &desc)
{
    hists.push_back({name, h, desc});
}

std::string
StatGroup::fullName() const
{
    if (!parent)
        return groupName;
    return parent->fullName() + "." + groupName;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = fullName();
    for (const auto &e : counters) {
        os << prefix << '.' << e.name << ' ' << e.counter->value();
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
    for (const auto &e : accums) {
        os << prefix << '.' << e.name << ".mean " << e.accum->mean()
           << " (n=" << e.accum->samples() << ")";
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
    for (const auto &e : hists) {
        os << prefix << '.' << e.name << ".mean " << e.hist->mean()
           << " (n=" << e.hist->samples() << ")";
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
    for (const auto *child : children)
        child->dump(os);
}

void
StatGroup::visit(const StatVisitor &fn) const
{
    const std::string prefix = fullName() + ".";
    for (const auto &e : counters)
        fn({prefix + e.name,
            static_cast<double>(e.counter->value()), e.desc});
    for (const auto &e : accums) {
        fn({prefix + e.name + ".mean", e.accum->mean(), e.desc});
        fn({prefix + e.name + ".min", e.accum->min(), e.desc});
        fn({prefix + e.name + ".max", e.accum->max(), e.desc});
        fn({prefix + e.name + ".samples",
            static_cast<double>(e.accum->samples()), e.desc});
    }
    for (const auto &e : hists) {
        fn({prefix + e.name + ".mean", e.hist->mean(), e.desc});
        fn({prefix + e.name + ".samples",
            static_cast<double>(e.hist->samples()), e.desc});
        fn({prefix + e.name + ".underflows",
            static_cast<double>(e.hist->underflows()), e.desc});
        fn({prefix + e.name + ".overflows",
            static_cast<double>(e.hist->overflows()), e.desc});
        fn({prefix + e.name + ".p50", e.hist->quantile(0.50), e.desc});
        fn({prefix + e.name + ".p90", e.hist->quantile(0.90), e.desc});
        fn({prefix + e.name + ".p99", e.hist->quantile(0.99), e.desc});
    }
    for (const auto *child : children)
        child->visit(fn);
}

std::vector<StatValue>
StatGroup::flatten() const
{
    std::vector<StatValue> out;
    visit([&out](const StatValue &sv) { out.push_back(sv); });
    return out;
}

Json
StatGroup::toJson() const
{
    Json obj = Json::object();
    visit([&obj](const StatValue &sv) {
        // Counters and sample counts are exact unsigned values;
        // everything integral stays integral in the JSON.
        const auto u = static_cast<std::uint64_t>(sv.value);
        if (sv.value >= 0 && static_cast<double>(u) == sv.value)
            obj.set(sv.name, Json(u));
        else
            obj.set(sv.name, Json(sv.value));
    });
    return obj;
}

void
StatGroup::resetAll()
{
    for (auto &e : counters)
        const_cast<Counter *>(e.counter)->reset();
    for (auto &e : accums)
        const_cast<Accumulator *>(e.accum)->reset();
    for (auto &e : hists)
        const_cast<Histogram *>(e.hist)->reset();
    for (auto *child : children)
        child->resetAll();
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0;
    double log_sum = 0;
    for (double v : vals)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(vals.size()));
}

} // namespace pmemspec
