#include "stats.hh"

#include <cmath>

#include "logging.hh"

namespace pmemspec
{

Histogram::Histogram(double lo_, double hi_, std::size_t buckets)
    : lo(lo_), hi(hi_),
      width(buckets ? (hi_ - lo_) / buckets : 1),
      bins(buckets, 0)
{
    fatal_if(hi_ <= lo_ || buckets == 0,
             "histogram needs hi > lo and at least one bucket");
}

void
Histogram::sample(double v)
{
    ++total;
    sum += v;
    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= bins.size())
            idx = bins.size() - 1; // fp rounding at the upper edge
        ++bins[idx];
    }
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    underflow = overflow = total = 0;
    sum = 0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent_)
    : groupName(std::move(name)), parent(parent_)
{
    if (parent)
        parent->children.push_back(this);
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters.push_back({name, c, desc});
}

void
StatGroup::addAccumulator(const std::string &name, const Accumulator *a,
                          const std::string &desc)
{
    accums.push_back({name, a, desc});
}

std::string
StatGroup::fullName() const
{
    if (!parent)
        return groupName;
    return parent->fullName() + "." + groupName;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = fullName();
    for (const auto &e : counters) {
        os << prefix << '.' << e.name << ' ' << e.counter->value();
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
    for (const auto &e : accums) {
        os << prefix << '.' << e.name << ".mean " << e.accum->mean()
           << " (n=" << e.accum->samples() << ")";
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << '\n';
    }
    for (const auto *child : children)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (auto &e : counters)
        const_cast<Counter *>(e.counter)->reset();
    for (auto &e : accums)
        const_cast<Accumulator *>(e.accum)->reset();
    for (auto *child : children)
        child->resetAll();
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0;
    double log_sum = 0;
    for (double v : vals)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(vals.size()));
}

} // namespace pmemspec
