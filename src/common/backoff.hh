/**
 * @file
 * Deterministic bounded exponential backoff.
 *
 * One policy object shared by every retry loop in the repo: the
 * persist-path and persist-buffer PMC-backpressure retries (which
 * used to carry two copy-pasted fixed-delay loops) and the service
 * harness's client-side retry policy. The schedule is pure
 * arithmetic on the attempt counter -- no randomisation -- so a
 * retry storm replays tick-identically on every run: delay(n) =
 * min(base << n, cap) for the n-th consecutive failure, reset to
 * `base` on the first success.
 */

#ifndef PMEMSPEC_COMMON_BACKOFF_HH
#define PMEMSPEC_COMMON_BACKOFF_HH

#include <cstdint>

#include "common/types.hh"

namespace pmemspec
{

/** Deterministic bounded exponential backoff schedule. */
class BoundedBackoff
{
  public:
    /**
     * @param base First-retry delay (ticks); must be non-zero.
     * @param cap  Upper clamp on any delay (ticks).
     */
    constexpr BoundedBackoff(Tick base, Tick cap)
        : baseDelay(base ? base : 1), capDelay(cap < base ? base : cap)
    {
    }

    /** Delay before the next retry, then advance the schedule. */
    Tick
    next()
    {
        const Tick d = peek();
        if (d < capDelay)
            ++attempt;
        return d;
    }

    /** Delay the next next() call would return, without advancing. */
    Tick
    peek() const
    {
        // base << attempt, saturating at the cap (attempt is bounded
        // by the early-out, so the shift never overflows).
        Tick d = baseDelay;
        for (unsigned i = 0; i < attempt && d < capDelay; ++i)
            d <<= 1;
        return d < capDelay ? d : capDelay;
    }

    /** Consecutive failures recorded since the last reset. */
    unsigned attempts() const { return attempt; }

    /** Success: the next failure starts again from `base`. */
    void reset() { attempt = 0; }

    Tick base() const { return baseDelay; }
    Tick cap() const { return capDelay; }

  private:
    Tick baseDelay;
    Tick capDelay;
    unsigned attempt = 0;
};

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_BACKOFF_HH
