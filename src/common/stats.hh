/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalars and histograms into a StatGroup;
 * the Experiment layer dumps them after a run. This is a deliberately
 * small subset of the gem5 stats package: enough to report the
 * quantities the paper's evaluation needs (throughput, stall cycles,
 * queue occupancies, misspeculation counts).
 */

#ifndef PMEMSPEC_COMMON_STATS_HH
#define PMEMSPEC_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "json.hh"

namespace pmemspec
{

/**
 * Nearest-rank quantile index: the 1-based rank of the q-quantile in
 * a population of n samples (ceil(q * n), clamped to [1, n]); 0 when
 * n == 0. Shared by Histogram::quantile and the service harness's
 * sorted-vector latency quantiles so both agree on the convention.
 */
inline std::uint64_t
quantileRank(double q, std::uint64_t n)
{
    if (n == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return rank;
}

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t n) { val += n; return *this; }
    void reset() { val = 0; }

    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Running scalar statistic tracking sum / min / max / count. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        sumVal += v;
        if (count == 0 || v < minVal)
            minVal = v;
        if (count == 0 || v > maxVal)
            maxVal = v;
        ++count;
    }

    void
    reset()
    {
        sumVal = minVal = maxVal = 0;
        count = 0;
    }

    /** Fold another accumulator's samples into this one. */
    void
    absorb(const Accumulator &o)
    {
        if (o.count == 0)
            return;
        if (count == 0 || o.minVal < minVal)
            minVal = o.minVal;
        if (count == 0 || o.maxVal > maxVal)
            maxVal = o.maxVal;
        sumVal += o.sumVal;
        count += o.count;
    }

    double sum() const { return sumVal; }
    double mean() const { return count ? sumVal / count : 0; }
    double min() const { return minVal; }
    double max() const { return maxVal; }
    std::uint64_t samples() const { return count; }

  private:
    double sumVal = 0;
    double minVal = 0;
    double maxVal = 0;
    std::uint64_t count = 0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram() : Histogram(0, 1, 1) {}

    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const { return bins[i]; }
    std::size_t buckets() const { return bins.size(); }
    std::uint64_t underflows() const { return underflow; }
    std::uint64_t overflows() const { return overflow; }
    std::uint64_t samples() const { return total; }
    double mean() const { return total ? sum / total : 0; }

    /**
     * Approximate q-quantile (q in [0, 1]) by linear interpolation
     * within the owning bucket. Underflow mass sits at lo, overflow
     * mass at hi (the clamped tails of the recorded range); 0 with no
     * samples.
     */
    double quantile(double q) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0;
};

/** One enumerated statistic: fully qualified dotted name + value. */
struct StatValue
{
    std::string name;
    double value = 0;
    std::string desc;
};

/** Visitation callback: receives every scalar of a subtree. */
using StatVisitor = std::function<void(const StatValue &)>;

/**
 * Registry of named statistics belonging to one component.
 *
 * Groups form a tree through the parent pointer; fully qualified names
 * are dotted paths (e.g. "core0.sq.stallCycles").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    /** Register statistics under this group's namespace. */
    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc = "");
    void addAccumulator(const std::string &name, const Accumulator *a,
                        const std::string &desc = "");
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc = "");

    /** Write "name value # desc" lines for this group and children. */
    void dump(std::ostream &os) const;

    /**
     * Visit every statistic of this subtree as flat name→value pairs
     * in registration order (deterministic). Accumulators expand to
     * .mean/.min/.max/.samples, histograms to .mean/.samples/
     * .underflows/.overflows/.p50/.p90/.p99.
     */
    void visit(const StatVisitor &fn) const;

    /** All scalars of the subtree, in visitation order. */
    std::vector<StatValue> flatten() const;

    /** Flat JSON object mapping qualified names to values. Counter
     *  and sample-count scalars stay integral; the rest are doubles. */
    Json toJson() const;

    /** Reset every registered statistic in this subtree. */
    void resetAll();

    const std::string &name() const { return groupName; }
    std::string fullName() const;

  private:
    std::string groupName;
    StatGroup *parent;
    std::vector<StatGroup *> children;

    struct CounterEntry
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };
    struct AccumEntry
    {
        std::string name;
        const Accumulator *accum;
        std::string desc;
    };
    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };
    std::vector<CounterEntry> counters;
    std::vector<AccumEntry> accums;
    std::vector<HistEntry> hists;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
double geomean(const std::vector<double> &vals);

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_STATS_HH
