/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator and the workload generators
 * draws from an explicitly seeded Rng so that runs are reproducible
 * bit-for-bit. The engine is xoshiro256** seeded through splitmix64.
 */

#ifndef PMEMSPEC_COMMON_RNG_HH
#define PMEMSPEC_COMMON_RNG_HH

#include <cstdint>

namespace pmemspec
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling, biased by at
        // most 2^-64 which is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child generator for stream `stream` of a
     * parent `seed` (clients, shards, domains...). The stream index
     * is itself passed through splitmix64 -- a bijection on 64-bit
     * words -- before being folded into the parent seed, so for a
     * fixed seed two distinct stream indices can never produce the
     * same child seed (unlike the previous ad-hoc
     * `seed * GOLDEN + stream` folding, where seeds a multiple of
     * GOLDEN apart aliased whole stream families).
     */
    static Rng
    split(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t s = stream;
        const std::uint64_t mixed = splitmix64(s);
        std::uint64_t p = seed;
        return Rng(splitmix64(p) ^ mixed);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_RNG_HH
