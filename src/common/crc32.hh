/**
 * @file
 * CRC-32C (Castagnoli) checksums for persistent-log integrity.
 *
 * The undo log stores a per-entry checksum so recovery can *verify*
 * entries instead of trusting the persist order alone: a torn or
 * bit-flipped entry fails its CRC and is reported, never replayed.
 * CRC-32C is the polynomial real storage stacks use (iSCSI, ext4,
 * btrfs, SSE4.2 crc32 instruction); this is the portable table-driven
 * form -- integrity checking here is correctness machinery, not a
 * modelled latency, so the software implementation is fine.
 */

#ifndef PMEMSPEC_COMMON_CRC32_HH
#define PMEMSPEC_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace pmemspec
{

/**
 * CRC-32C over a byte range.
 * @param seed Chain value from a previous call (0 to start); pass the
 *        previous return value to checksum discontiguous pieces as
 *        one logical record.
 */
std::uint32_t crc32c(const void *data, std::size_t n,
                     std::uint32_t seed = 0);

} // namespace pmemspec

#endif // PMEMSPEC_COMMON_CRC32_HH
