/**
 * @file
 * Low-overhead event tracing for the persist path (the observability
 * layer; see src/observe/ for the exporters and the offline checker).
 *
 * Components carry an optional trace::Manager pointer (setter
 * injection; nullptr means tracing is off and costs one branch per
 * trace point). Each trace point is runtime-gated by a per-component
 * flag (gem5-DPRINTF style) and can additionally be compiled out with
 * -DPMEMSPEC_TRACE_DISABLED. Events are typed records -- tick, core,
 * physical address, speculation ID, automaton state before/after --
 * appended to per-core single-writer ring buffers (one extra ring
 * collects events with no originating core, e.g. PMC activity).
 *
 * Two recording policies share the machinery:
 *
 *  - trace mode (flags != 0): large rings that *drop* (and count)
 *    events on overflow, exported post-run as Chrome trace JSON or a
 *    compact binary log;
 *  - flight recorder (flightRecorder = true): small rings that
 *    *overwrite*, always cheaply on, dumped on panic(), on a
 *    misspeculation trap, and on UnrecoverableCorruption.
 *
 * A Manager belongs to exactly one simulated machine (or fault
 * injector) and is only ever written from that machine's event loop
 * thread, which keeps parallel sweeps deterministic and the rings
 * lock-free. The thread-local "current" pointer lets panic() find the
 * right recorder without global state leaking across sweep workers.
 */

#ifndef PMEMSPEC_COMMON_TRACE_HH
#define PMEMSPEC_COMMON_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pmemspec::trace
{

/** Per-component trace flags (a bitmask; registry in trace.cc). */
enum Flag : std::uint32_t
{
    FlagNone = 0,
    FlagPersistPath = 1u << 0,
    FlagPmController = 1u << 1,
    FlagSpecBuffer = 1u << 2,
    FlagCore = 1u << 3,
    FlagFaseRuntime = 1u << 4,
    FlagFaultInject = 1u << 5,
    FlagAll = (1u << 6) - 1,
};

/** Number of defined flag bits. */
constexpr unsigned numFlags = 6;

/** Canonical name of one flag bit (by bit index). */
const char *flagName(unsigned bit);

/** "PersistPath,SpecBuffer" -> mask. Accepts "all"/"All". @return
 *  false (mask untouched) on an unknown name. */
bool parseFlags(const std::string &list, std::uint32_t &mask);

/** Mask -> comma list ("" for 0, "all" for FlagAll). */
std::string flagsToString(std::uint32_t mask);

/** What happened at a trace point. */
enum class EventKind : std::uint8_t
{
    // persist path (FlagPersistPath)
    PathSend,     ///< persist pushed onto a path FIFO (arg: occupancy)
    PathDeliver,  ///< persist accepted by the PMC (arg: occupancy)
    PathRetry,    ///< delivery retried on PMC backpressure
    // PM controller (FlagPmController)
    PmcWriteBack,           ///< regular-path writeback reached the PMC
    PmcRead,                ///< PM device read starts (Read input)
    PmcPersistAccept,       ///< persist accepted (Persist input + order check)
    PmcPersistRefuse,       ///< persist refused on a full write queue
    PmcStoreOrderViolation, ///< spec-ID order check fired (arg: recorded ID)
    PmcTrackExpire,         ///< spec-ID tracker entry aged out (lazy sweep)
    // speculation buffer (FlagSpecBuffer)
    SbWriteBack,    ///< WriteBack input applied (stateBefore/After)
    SbRead,         ///< Read input applied
    SbPersist,      ///< Persist input applied
    SbAllocate,     ///< entry allocated (arg: occupancy after)
    SbExpire,       ///< speculation window expired benignly (arg: residency ns)
    SbInputDropped, ///< WriteBack input dropped: buffer full
    SbPause,        ///< machine-wide pause requested (arg: window ticks)
    SbMisspec,      ///< misspeculation detected (arg: MisspecKind)
    // core (FlagCore)
    CoreFaseBegin,  ///< FASE opens (arg: pc)
    CoreFaseCommit, ///< FASE commits (arg: latency ns)
    CoreFaseAbort,  ///< FASE aborted for rollback (arg: penalty ticks)
    CorePause,      ///< core paused, buffer full (arg: resume tick)
    // runtime / timing-layer OS (FlagFaseRuntime)
    OsTrap,     ///< misspec interrupt relayed to the rollback handler
    RtTrap,     ///< runtime's signal handler flagged in-FASE threads
    RtCommit,   ///< functional FASE committed (core: tid)
    RtAbort,    ///< functional FASE aborted and rolled back (core: tid)
    RtRecovery, ///< recoverAll() pass (arg: entries replayed)
    // fault injection (FlagFaultInject)
    InjectFault, ///< an armed FaultPlan fired (arg: FaultKind)
    // manager housekeeping
    FlightDump, ///< the flight recorder was dumped
};

const char *kindName(EventKind k);

/** Name of a mem::SpecState ordinal carried in stateBefore/After. */
const char *specStateName(std::uint8_t s);

/** Sentinels for the optional Event fields. */
constexpr CoreId kNoCore = ~CoreId{0};
constexpr std::uint32_t kNoSpecId = ~std::uint32_t{0};
constexpr std::uint8_t kNoState = 0xff;

/** One typed trace event (fixed-size POD; 48 bytes). */
struct Event
{
    Tick tick = 0;          ///< simulated time (ps)
    std::uint64_t seq = 0;  ///< global record order within one Manager
    Addr addr = 0;          ///< block/byte address (0 when n/a)
    std::uint64_t arg = 0;  ///< kind-specific payload (see EventKind)
    std::uint32_t specId = kNoSpecId;
    CoreId core = kNoCore;  ///< originating core (kNoCore: uncored)
    std::uint16_t unit = 0; ///< PMC index / path lane
    std::uint8_t flagBit = 0; ///< bit index of the emitting component
    EventKind kind = EventKind::FlightDump;
    std::uint8_t stateBefore = kNoState; ///< mem::SpecState before
    std::uint8_t stateAfter = kNoState;  ///< mem::SpecState after

    bool operator==(const Event &) const = default;
};

/** Optional fields of a record() call (designated-initializer style
 *  at the trace points keeps them readable). */
struct Detail
{
    std::uint32_t specId = kNoSpecId;
    std::uint8_t stateBefore = kNoState;
    std::uint8_t stateAfter = kNoState;
    std::uint64_t arg = 0;
    std::uint16_t unit = 0;
};

/** Run-level facts the exporters and the offline checker need to
 *  interpret a stream (embedded in both export formats). */
struct Meta
{
    std::string design;       ///< persistency design name ("" unknown)
    std::uint32_t flags = 0;  ///< flag mask the stream was recorded with
    Tick specWindow = 0;      ///< speculation window (ticks)
    unsigned specEntries = 0; ///< speculation buffer capacity
    unsigned numCores = 0;
    /** True when WriteBack/Read/Persist inputs feed the Figure 5
     *  automaton (Design::PmemSpec); the checker re-derives it. */
    bool specAutomaton = false;
};

/** Recording configuration, wired through --trace / --trace-out /
 *  --flight-recorder. */
struct Config
{
    /** Flag mask of the components to trace (0: trace mode off). */
    std::uint32_t flags = 0;
    /** Bounded always-on recorder (overwrite policy, dump-on-fault).
     *  Implies recording every flag into the small rings. */
    bool flightRecorder = false;
    /** Export destination; ".json" selects Chrome trace-event JSON,
     *  anything else the compact binary log. Empty: no export. */
    std::string outPath;
    /** Inserted before the outPath extension (sweep point id). */
    std::string label;
    /** Per-core ring capacity in trace mode (drop-on-full). The
     *  uncored ring gets 4x (it collects every PMC's activity). */
    std::size_t ringEntries = std::size_t{1} << 16;
    /** Per-ring capacity in flight-recorder mode (overwrite). */
    std::size_t flightEntries = 512;

    bool enabled() const { return flags != 0 || flightRecorder; }
};

/**
 * The per-machine event recorder. Single-writer: only the owning
 * machine's event-loop thread may call record(); everything else
 * (snapshot, export) happens after the run.
 */
class Manager
{
  public:
    /** @param num_cores rings for cores [0, num_cores) plus one
     *  uncored ring (PMC, persist path with unknown core, runtime). */
    Manager(Config cfg, unsigned num_cores);
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    /** Fast gate for the trace points. */
    bool wants(std::uint32_t flag) const { return (mask & flag) != 0; }

    /** Append one event; the Manager assigns tick-independent global
     *  sequence numbers so a merged snapshot reproduces record order
     *  even at equal ticks. */
    void record(std::uint32_t flag, EventKind kind, Tick tick,
                CoreId core, Addr addr, const Detail &d = {});

    /** Events recorded (stored) / dropped on a full trace-mode ring. */
    std::uint64_t recorded() const { return numRecorded; }
    std::uint64_t dropped() const { return numDropped; }

    /** All retained events merged across rings in record order. */
    std::vector<Event> snapshot() const;

    /** The last n retained events in record order (flight window). */
    std::vector<Event> tail(std::size_t n) const;

    /** tail(n), one formatted line per event. */
    std::vector<std::string> formatTail(std::size_t n) const;

    /** Human-readable one-liner for an event. */
    static std::string format(const Event &e);

    /** Write the flight window ("last_n" events) to `out` as one
     *  locked block through the logging sink. */
    void dump(std::FILE *out, std::size_t last_n = 64);

    const Config &config() const { return cfg; }

    /** Run-level metadata; the owning machine fills it in. */
    Meta meta;

    /** Tick source for components with no event queue (the functional
     *  runtime); unset, now() falls back to a monotonic counter. */
    void setClock(std::function<Tick()> clock) { clockFn = std::move(clock); }
    Tick now();

    /** Make this the thread's recorder: panic() on this thread dumps
     *  its flight window before aborting. Cleared on destruction. */
    void makeCurrent();
    static Manager *current();

  private:
    struct Ring
    {
        std::vector<Event> buf;
        std::size_t head = 0;  ///< next write slot
        std::size_t count = 0; ///< valid events (<= buf.size())
        bool overwrite = false;
    };

    Ring &ringFor(CoreId core);

    Config cfg;
    std::uint32_t mask = 0;
    std::vector<Ring> rings;
    std::uint64_t nextSeq = 0;
    std::uint64_t numRecorded = 0;
    std::uint64_t numDropped = 0;
    std::function<Tick()> clockFn;
    Tick fallbackTick = 0;
};

} // namespace pmemspec::trace

/**
 * gem5-DPRINTF-style trace point: evaluates its arguments only when
 * `mgr` is installed and wants `flag`; compiles to nothing under
 * -DPMEMSPEC_TRACE_DISABLED.
 *
 *   PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, EventKind::SbPersist,
 *                  curTick(), kNoCore, addr,
 *                  {.stateBefore = b, .stateAfter = a, .unit = unit});
 */
#ifndef PMEMSPEC_TRACE_DISABLED
#define PMEMSPEC_TRACE(mgr, flag, ...)                                   \
    do {                                                                 \
        ::pmemspec::trace::Manager *pmemspec_tm_ = (mgr);                \
        if (pmemspec_tm_ != nullptr &&                                   \
            pmemspec_tm_->wants(::pmemspec::trace::flag))                \
            pmemspec_tm_->record(::pmemspec::trace::flag, __VA_ARGS__);  \
    } while (0)
#else
#define PMEMSPEC_TRACE(mgr, flag, ...)                                   \
    do {                                                                 \
    } while (0)
#endif

#endif // PMEMSPEC_COMMON_TRACE_HH
