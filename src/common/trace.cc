#include "trace.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace pmemspec::trace
{

namespace
{

const char *const flagNames[numFlags] = {
    "PersistPath", "PmController", "SpecBuffer",
    "Core",        "FaseRuntime",  "FaultInject",
};

thread_local Manager *currentMgr = nullptr;

/** The thread's flight recorder, called from panic() before abort. */
void
panicDumpHook()
{
    Manager *m = Manager::current();
    if (m && m->config().flightRecorder)
        m->dump(stderr);
}

} // namespace

const char *
specStateName(std::uint8_t s)
{
    switch (s) {
      case 0: return "Initial";
      case 1: return "Evict";
      case 2: return "Speculated";
      case 3: return "Misspeculation";
      default: return "?";
    }
}

const char *
flagName(unsigned bit)
{
    return bit < numFlags ? flagNames[bit] : "?";
}

bool
parseFlags(const std::string &list, std::uint32_t &mask)
{
    std::uint32_t out = 0;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            continue;
        if (tok == "all" || tok == "All") {
            out |= FlagAll;
            continue;
        }
        bool found = false;
        for (unsigned bit = 0; bit < numFlags; ++bit) {
            if (tok == flagNames[bit]) {
                out |= 1u << bit;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    mask = out;
    return true;
}

std::string
flagsToString(std::uint32_t mask)
{
    if ((mask & FlagAll) == FlagAll)
        return "all";
    std::string s;
    for (unsigned bit = 0; bit < numFlags; ++bit) {
        if (!(mask & (1u << bit)))
            continue;
        if (!s.empty())
            s += ',';
        s += flagNames[bit];
    }
    return s;
}

const char *
kindName(EventKind k)
{
    switch (k) {
      case EventKind::PathSend: return "PathSend";
      case EventKind::PathDeliver: return "PathDeliver";
      case EventKind::PathRetry: return "PathRetry";
      case EventKind::PmcWriteBack: return "PmcWriteBack";
      case EventKind::PmcRead: return "PmcRead";
      case EventKind::PmcPersistAccept: return "PmcPersistAccept";
      case EventKind::PmcPersistRefuse: return "PmcPersistRefuse";
      case EventKind::PmcStoreOrderViolation: return "PmcStoreOrderViolation";
      case EventKind::PmcTrackExpire: return "PmcTrackExpire";
      case EventKind::SbWriteBack: return "SbWriteBack";
      case EventKind::SbRead: return "SbRead";
      case EventKind::SbPersist: return "SbPersist";
      case EventKind::SbAllocate: return "SbAllocate";
      case EventKind::SbExpire: return "SbExpire";
      case EventKind::SbInputDropped: return "SbInputDropped";
      case EventKind::SbPause: return "SbPause";
      case EventKind::SbMisspec: return "SbMisspec";
      case EventKind::CoreFaseBegin: return "CoreFaseBegin";
      case EventKind::CoreFaseCommit: return "CoreFaseCommit";
      case EventKind::CoreFaseAbort: return "CoreFaseAbort";
      case EventKind::CorePause: return "CorePause";
      case EventKind::OsTrap: return "OsTrap";
      case EventKind::RtTrap: return "RtTrap";
      case EventKind::RtCommit: return "RtCommit";
      case EventKind::RtAbort: return "RtAbort";
      case EventKind::RtRecovery: return "RtRecovery";
      case EventKind::InjectFault: return "InjectFault";
      case EventKind::FlightDump: return "FlightDump";
    }
    return "?";
}

Manager::Manager(Config config, unsigned num_cores)
    : cfg(std::move(config))
{
    // The flight recorder listens to everything; trace mode only to
    // the requested components.
    mask = cfg.flags | (cfg.flightRecorder ? FlagAll : 0u);
    const bool overwrite = cfg.flags == 0 && cfg.flightRecorder;
    const std::size_t per_core =
        overwrite ? cfg.flightEntries : cfg.ringEntries;
    rings.resize(num_cores + 1);
    for (std::size_t i = 0; i < rings.size(); ++i) {
        // The uncored ring absorbs every PMC and runtime event.
        const std::size_t cap =
            (i + 1 == rings.size() && !overwrite) ? per_core * 4 : per_core;
        rings[i].buf.resize(std::max<std::size_t>(cap, 1));
        rings[i].overwrite = overwrite;
    }
}

Manager::~Manager()
{
    if (currentMgr == this)
        currentMgr = nullptr;
}

Manager::Ring &
Manager::ringFor(CoreId core)
{
    if (core == kNoCore)
        return rings.back();
    const std::size_t n = rings.size() - 1;
    return rings[core < n ? core : n];
}

void
Manager::record(std::uint32_t flag, EventKind kind, Tick tick,
                CoreId core, Addr addr, const Detail &d)
{
    Ring &r = ringFor(core);
    if (!r.overwrite && r.count == r.buf.size()) {
        ++numDropped;
        return;
    }
    Event &e = r.buf[r.head];
    e.tick = tick;
    e.seq = nextSeq++;
    e.addr = addr;
    e.arg = d.arg;
    e.specId = d.specId;
    e.core = core;
    e.unit = d.unit;
    e.flagBit = static_cast<std::uint8_t>(
        flag ? std::countr_zero(flag) : 0);
    e.kind = kind;
    e.stateBefore = d.stateBefore;
    e.stateAfter = d.stateAfter;
    r.head = (r.head + 1) % r.buf.size();
    if (r.count < r.buf.size())
        ++r.count;
    ++numRecorded;
}

std::vector<Event>
Manager::snapshot() const
{
    std::vector<Event> out;
    std::size_t total = 0;
    for (const auto &r : rings)
        total += r.count;
    out.reserve(total);
    for (const auto &r : rings) {
        // Oldest retained event first within each ring.
        const std::size_t cap = r.buf.size();
        const std::size_t first = (r.head + cap - r.count) % cap;
        for (std::size_t i = 0; i < r.count; ++i)
            out.push_back(r.buf[(first + i) % cap]);
    }
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    return out;
}

std::vector<Event>
Manager::tail(std::size_t n) const
{
    std::vector<Event> all = snapshot();
    if (all.size() > n)
        all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
    return all;
}

std::vector<std::string>
Manager::formatTail(std::size_t n) const
{
    std::vector<std::string> lines;
    for (const Event &e : tail(n))
        lines.push_back(format(e));
    return lines;
}

std::string
Manager::format(const Event &e)
{
    std::ostringstream os;
    os << e.tick << " " << flagName(e.flagBit) << "." << kindName(e.kind);
    if (e.core != kNoCore)
        os << " core" << e.core;
    os << " unit" << e.unit;
    if (e.addr != 0)
        os << " addr=0x" << std::hex << e.addr << std::dec;
    if (e.specId != kNoSpecId)
        os << " spec=" << e.specId;
    if (e.stateBefore != kNoState || e.stateAfter != kNoState)
        os << " " << specStateName(e.stateBefore) << "->"
           << specStateName(e.stateAfter);
    if (e.arg != 0)
        os << " arg=" << e.arg;
    return os.str();
}

void
Manager::dump(std::FILE *out, std::size_t last_n)
{
    std::vector<Event> window = tail(last_n);
    std::ostringstream os;
    os << "=== flight recorder: last " << window.size() << " of "
       << numRecorded << " events";
    if (!meta.design.empty())
        os << " (" << meta.design << ")";
    os << " ===\n";
    for (const Event &e : window)
        os << "  " << format(e) << "\n";
    os << "=== end flight recorder ===\n";
    detail::rawSinkWrite(out, os.str());
    record(0, EventKind::FlightDump, now(), kNoCore, 0,
           {.arg = window.size()});
}

Tick
Manager::now()
{
    if (clockFn)
        return clockFn();
    return ++fallbackTick;
}

void
Manager::makeCurrent()
{
    currentMgr = this;
    detail::setPanicHook(&panicDumpHook);
}

Manager *
Manager::current()
{
    return currentMgr;
}

} // namespace pmemspec::trace
