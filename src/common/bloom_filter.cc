#include "bloom_filter.hh"

#include "logging.hh"

namespace pmemspec
{

BloomFilter::BloomFilter(std::size_t num_counters, unsigned num_hashes)
    : counters(num_counters, 0),
      mask(num_counters - 1),
      numHashes(num_hashes)
{
    fatal_if(!isPowerOf2(num_counters),
             "bloom filter size %zu is not a power of two", num_counters);
    fatal_if(num_hashes == 0, "bloom filter needs at least one hash");
}

std::uint64_t
BloomFilter::hash(Addr block_addr, unsigned i) const
{
    // Two independent mixes combined a la Kirsch-Mitzenmacher:
    // h_i(x) = h1(x) + i * h2(x).
    std::uint64_t x = blockNumber(block_addr);
    std::uint64_t h1 = x * 0xff51afd7ed558ccdULL;
    h1 ^= h1 >> 33;
    std::uint64_t h2 = x * 0xc4ceb9fe1a85ec53ULL;
    h2 ^= h2 >> 29;
    h2 |= 1; // ensure the stride is odd
    return h1 + i * h2;
}

void
BloomFilter::insert(Addr block_addr)
{
    for (unsigned i = 0; i < numHashes; ++i) {
        auto &c = counters[hash(block_addr, i) & mask];
        if (c != 0xff)
            ++c;
    }
    ++populationCount;
}

void
BloomFilter::remove(Addr block_addr)
{
    panic_if(populationCount == 0,
             "bloom filter remove with empty population");
    for (unsigned i = 0; i < numHashes; ++i) {
        auto &c = counters[hash(block_addr, i) & mask];
        panic_if(c == 0, "bloom filter counter underflow");
        if (c != 0xff)
            --c;
    }
    --populationCount;
}

bool
BloomFilter::mayContain(Addr block_addr) const
{
    for (unsigned i = 0; i < numHashes; ++i) {
        if (counters[hash(block_addr, i) & mask] == 0)
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    std::fill(counters.begin(), counters.end(), 0);
    populationCount = 0;
}

} // namespace pmemspec
