#include "logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace pmemspec
{
namespace detail
{

namespace
{

// One process-wide sink lock: the sweep runner executes simulated
// machines on concurrent host threads, and each fprintf below must
// come out as one unbroken line regardless of which machine emits it.
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pmemspec
