#include "logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <mutex>
#include <vector>

namespace pmemspec
{
namespace detail
{

namespace
{

// One process-wide sink lock: the sweep runner executes simulated
// machines on concurrent host threads, and each fprintf below must
// come out as one unbroken line regardless of which machine emits it.
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

LogLevel
levelFromEnv()
{
    const char *v = std::getenv("PMEMSPEC_LOG_LEVEL");
    if (!v)
        return LogLevel::Info;
    if (!std::strcmp(v, "silent") || !std::strcmp(v, "0"))
        return LogLevel::Silent;
    if (!std::strcmp(v, "warn") || !std::strcmp(v, "1"))
        return LogLevel::Warn;
    return LogLevel::Info;
}

std::atomic<int> &
levelCell()
{
    // -1: not yet read from the environment.
    static std::atomic<int> level{-1};
    return level;
}

std::atomic<PanicHook> &
panicHookCell()
{
    static std::atomic<PanicHook> hook{nullptr};
    return hook;
}

} // namespace

LogLevel
logLevel()
{
    int lv = levelCell().load(std::memory_order_relaxed);
    if (lv < 0) {
        lv = static_cast<int>(levelFromEnv());
        levelCell().store(lv, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(lv);
}

void
setLogLevel(LogLevel level)
{
    levelCell().store(static_cast<int>(level), std::memory_order_relaxed);
}

void
refreshLogLevelFromEnv()
{
    levelCell().store(static_cast<int>(levelFromEnv()),
                      std::memory_order_relaxed);
}

void
setPanicHook(PanicHook hook)
{
    panicHookCell().store(hook, std::memory_order_relaxed);
}

void
rawSinkWrite(std::FILE *out, const std::string &text)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(text.data(), 1, text.size(), out);
    std::fflush(out);
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    // Give the flight recorder (if one is armed on this thread) a
    // chance to show the events leading up to the invariant failure.
    if (PanicHook hook = panicHookCell().load(std::memory_order_relaxed))
        hook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pmemspec
