#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace pmemspec
{

void
Json::set(const std::string &key, Json v)
{
    panic_if(kind != Type::Object, "Json::set on a non-object");
    for (auto &member : obj) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &member : obj)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    return const_cast<Json *>(
        static_cast<const Json *>(this)->find(key));
}

void
Json::push(Json v)
{
    panic_if(kind != Type::Array, "Json::push on a non-array");
    arr.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind == Type::Array)
        return arr.size();
    if (kind == Type::Object)
        return obj.size();
    return 0;
}

void
Json::writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

namespace
{

void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os << "null";
        return;
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

void
writeIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::writeRec(std::ostream &os, int indent, int depth) const
{
    switch (kind) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (boolVal ? "true" : "false");
        break;
      case Type::Unsigned:
        os << uintVal;
        break;
      case Type::Number:
        writeNumber(os, numVal);
        break;
      case Type::String:
        writeEscaped(os, strVal);
        break;
      case Type::Array:
        os << '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                writeIndent(os, indent, depth + 1);
            arr[i].writeRec(os, indent, depth + 1);
        }
        if (indent && !arr.empty())
            writeIndent(os, indent, depth);
        os << ']';
        break;
      case Type::Object:
        os << '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                writeIndent(os, indent, depth + 1);
            writeEscaped(os, obj[i].first);
            os << (indent ? ": " : ":");
            obj[i].second.writeRec(os, indent, depth + 1);
        }
        if (indent && !obj.empty())
            writeIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeRec(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace
{

/** Recursive-descent parser over the grammar the writer emits (which
 *  is plain RFC 8259). Depth-limited to keep malicious inputs from
 *  blowing the stack. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : s(text), err(err)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue(0);
        if (failed)
            return Json();
        skipWs();
        if (pos != s.size()) {
            fail("trailing characters");
            return Json();
        }
        return v;
    }

  private:
    static constexpr int maxDepth = 128;

    void
    fail(const std::string &msg)
    {
        if (!failed && err)
            *err = msg + " at offset " + std::to_string(pos);
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    parseValue(int depth)
    {
        if (depth > maxDepth) {
            fail("nesting too deep");
            return Json();
        }
        skipWs();
        if (pos >= s.size()) {
            fail("unexpected end of input");
            return Json();
        }
        switch (s[pos]) {
          case 'n':
            if (!literal("null"))
                fail("bad literal");
            return Json();
          case 't':
            if (!literal("true"))
                fail("bad literal");
            return Json(true);
          case 'f':
            if (!literal("false"))
                fail("bad literal");
            return Json(false);
          case '"':
            return Json(parseString());
          case '[':
            return parseArray(depth);
          case '{':
            return parseObject(depth);
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                break;
            const char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                // Basic-plane only (the writer never emits surrogate
                // pairs); encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
            ++pos;
        bool integral = pos > start && s[start] != '-';
        if (consume('.')) {
            integral = false;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        if (pos == start) {
            fail("expected value");
            return Json();
        }
        const char *first = s.data() + start;
        const char *last = s.data() + pos;
        if (integral) {
            std::uint64_t u = 0;
            auto res = std::from_chars(first, last, u);
            if (res.ec == std::errc() && res.ptr == last)
                return Json(u);
        }
        double d = 0;
        auto res = std::from_chars(first, last, d);
        if (res.ec != std::errc() || res.ptr != last) {
            fail("bad number");
            return Json();
        }
        return Json(d);
    }

    Json
    parseArray(int depth)
    {
        Json a = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return a;
        while (!failed) {
            a.push(parseValue(depth + 1));
            skipWs();
            if (consume(']'))
                return a;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return a;
            }
        }
        return a;
    }

    Json
    parseObject(int depth)
    {
        Json o = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return o;
        while (!failed) {
            skipWs();
            const std::string key = parseString();
            if (failed)
                return o;
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return o;
            }
            o.set(key, parseValue(depth + 1));
            skipWs();
            if (consume('}'))
                return o;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return o;
            }
        }
        return o;
    }

    const std::string &s;
    std::string *err;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *err)
{
    return Parser(text, err).parseDocument();
}

} // namespace pmemspec
