#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace pmemspec
{

void
Json::set(const std::string &key, Json v)
{
    panic_if(kind != Type::Object, "Json::set on a non-object");
    for (auto &member : obj) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &member : obj)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    return const_cast<Json *>(
        static_cast<const Json *>(this)->find(key));
}

void
Json::push(Json v)
{
    panic_if(kind != Type::Array, "Json::push on a non-array");
    arr.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind == Type::Array)
        return arr.size();
    if (kind == Type::Object)
        return obj.size();
    return 0;
}

void
Json::writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

namespace
{

void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os << "null";
        return;
    }
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

void
writeIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::writeRec(std::ostream &os, int indent, int depth) const
{
    switch (kind) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (boolVal ? "true" : "false");
        break;
      case Type::Unsigned:
        os << uintVal;
        break;
      case Type::Number:
        writeNumber(os, numVal);
        break;
      case Type::String:
        writeEscaped(os, strVal);
        break;
      case Type::Array:
        os << '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                writeIndent(os, indent, depth + 1);
            arr[i].writeRec(os, indent, depth + 1);
        }
        if (indent && !arr.empty())
            writeIndent(os, indent, depth);
        os << ']';
        break;
      case Type::Object:
        os << '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                writeIndent(os, indent, depth + 1);
            writeEscaped(os, obj[i].first);
            os << (indent ? ": " : ":");
            obj[i].second.writeRec(os, indent, depth + 1);
        }
        if (indent && !obj.empty())
            writeIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeRec(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

} // namespace pmemspec
