/**
 * @file
 * The public top-level API: configure a simulated machine (Table 3
 * defaults), pick a benchmark (Table 4) and a design (Section 8.1),
 * and measure throughput. The bench harness builds every figure of
 * the paper out of these calls.
 */

#ifndef PMEMSPEC_CORE_EXPERIMENT_HH
#define PMEMSPEC_CORE_EXPERIMENT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "cpu/machine.hh"
#include "persistency/design.hh"
#include "workloads/workload.hh"

namespace pmemspec::core
{

/**
 * One experiment: a benchmark on a design with machine knobs.
 *
 * The named setters chain, so bench code builds a point in one
 * expression instead of hand-assembling WorkloadParams:
 *
 *   ExperimentConfig()
 *       .withBench(BenchId::Tpcc)
 *       .withDesign(Design::PmemSpec)
 *       .withMachine(defaultMachineConfig(8))
 *       .withThreads(8)
 *       .withOps(400);
 */
struct ExperimentConfig
{
    workloads::BenchId bench = workloads::BenchId::ArraySwaps;
    persistency::Design design = persistency::Design::IntelX86;
    cpu::MachineConfig machine;
    workloads::WorkloadParams workload;

    ExperimentConfig &
    withBench(workloads::BenchId b)
    {
        bench = b;
        return *this;
    }

    ExperimentConfig &
    withDesign(persistency::Design d)
    {
        design = d;
        return *this;
    }

    ExperimentConfig &
    withMachine(const cpu::MachineConfig &m)
    {
        machine = m;
        return *this;
    }

    ExperimentConfig &
    withThreads(unsigned n)
    {
        workload.numThreads = n;
        return *this;
    }

    ExperimentConfig &
    withOps(std::uint64_t ops)
    {
        workload.opsPerThread = ops;
        return *this;
    }

    ExperimentConfig &
    withSeed(std::uint64_t seed)
    {
        workload.seed = seed;
        return *this;
    }

    /** Event tracing / flight recorder for the run (trace.hh). */
    ExperimentConfig &
    withTrace(const trace::Config &t)
    {
        machine.trace = t;
        return *this;
    }

    /** Time-series metrics sampling + FASE speculation profile. */
    ExperimentConfig &
    withMetrics(const observe::MetricsConfig &m)
    {
        machine.metrics = m;
        return *this;
    }
};

/** Measured outcome of one experiment. */
struct ExperimentResult
{
    cpu::RunResult run;
    /** FASEs per second (the figures' throughput metric). */
    double throughput = 0;
    /** Flat snapshot of the machine's StatGroup tree, taken after the
     *  run (the machine itself dies with runExperiment). */
    std::vector<StatValue> stats;

    /** Trace metadata (zero / empty when tracing was off): events
     *  retained, events dropped on full rings, and the file the
     *  stream was exported to ("" when no outPath was configured or
     *  the export failed). */
    std::uint64_t traceEvents = 0;
    std::uint64_t traceDropped = 0;
    std::string traceFile;

    /** Sampled time series + pmemspec-profile-v1 section, captured
     *  before the machine dies; null Json when metrics were off. */
    bool metricsEnabled = false;
    Json metrics;
    Json profile;

    /** Look up one snapshot scalar by qualified name. */
    double statOr(const std::string &name, double fallback = 0) const;
};

/**
 * Generate the traces once, lower them for the design, and run the
 * timing machine. Deterministic in its config, and safe to call from
 * concurrent host threads (every run owns its machine, event queue,
 * RNGs and stats).
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/**
 * One figure row: a benchmark's raw and normalised throughput per
 * design (the paper normalises every figure to IntelX86).
 */
struct NormalizedRow
{
    workloads::BenchId bench = workloads::BenchId::ArraySwaps;
    persistency::Design baseline = persistency::Design::IntelX86;
    /** Designs of this row in column order. */
    std::vector<persistency::Design> designs;
    /** Raw FASEs per second, one inline slot per design (designs not
     *  measured in this row read as 0). */
    persistency::DesignTable<double> throughput;
    /** Throughput divided by the baseline design's. */
    persistency::DesignTable<double> normalized;
};

/** Assemble a NormalizedRow from raw per-design throughputs. */
NormalizedRow
makeNormalizedRow(workloads::BenchId bench,
                  const std::vector<persistency::Design> &designs,
                  const persistency::DesignTable<double> &raw,
                  persistency::Design baseline =
                      persistency::Design::IntelX86);

/**
 * Run one benchmark across the given designs (default: all four)
 * with a common machine configuration, serially on the calling
 * thread. The baseline design is always measured, even when it is
 * not in the requested list. For whole-matrix runs use the parallel
 * runNormalizedSweep in core/sweep.hh instead.
 */
NormalizedRow
runNormalized(workloads::BenchId bench,
              const cpu::MachineConfig &machine,
              const workloads::WorkloadParams &params,
              const std::vector<persistency::Design> &designs =
                  persistency::allDesigns());

/** Print the Table 3 configuration of a machine. */
void printConfig(std::ostream &os, const cpu::MachineConfig &cfg);

/** Table 3 defaults: 2GHz 8-way cores, 32-entry SQ, 64KB L1, 16MB
 *  LLC, Optane latencies, 20ns persist-path, 4-entry spec buffer. */
cpu::MachineConfig defaultMachineConfig(unsigned num_cores = 8);

} // namespace pmemspec::core

#endif // PMEMSPEC_CORE_EXPERIMENT_HH
