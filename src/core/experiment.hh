/**
 * @file
 * The public top-level API: configure a simulated machine (Table 3
 * defaults), pick a benchmark (Table 4) and a design (Section 8.1),
 * and measure throughput. The bench harness builds every figure of
 * the paper out of these calls.
 */

#ifndef PMEMSPEC_CORE_EXPERIMENT_HH
#define PMEMSPEC_CORE_EXPERIMENT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "persistency/design.hh"
#include "workloads/workload.hh"

namespace pmemspec::core
{

/** One experiment: a benchmark on a design with machine knobs. */
struct ExperimentConfig
{
    workloads::BenchId bench = workloads::BenchId::ArraySwaps;
    persistency::Design design = persistency::Design::IntelX86;
    cpu::MachineConfig machine;
    workloads::WorkloadParams workload;
};

/** Measured outcome of one experiment. */
struct ExperimentResult
{
    cpu::RunResult run;
    /** FASEs per second (the figures' throughput metric). */
    double throughput = 0;
};

/**
 * Generate the traces once, lower them for the design, and run the
 * timing machine. Deterministic in its config.
 */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/**
 * Run one benchmark across the four designs with a common machine
 * configuration; returns throughput normalised to IntelX86 (how the
 * paper reports every figure).
 */
std::map<persistency::Design, double>
runNormalized(workloads::BenchId bench,
              const cpu::MachineConfig &machine,
              const workloads::WorkloadParams &params);

/** Print the Table 3 configuration of a machine. */
void printConfig(std::ostream &os, const cpu::MachineConfig &cfg);

/** Table 3 defaults: 2GHz 8-way cores, 32-entry SQ, 64KB L1, 16MB
 *  LLC, Optane latencies, 20ns persist-path, 4-entry spec buffer. */
cpu::MachineConfig defaultMachineConfig(unsigned num_cores = 8);

} // namespace pmemspec::core

#endif // PMEMSPEC_CORE_EXPERIMENT_HH
