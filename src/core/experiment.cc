#include "experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "observe/trace_export.hh"
#include "persistency/lowering.hh"

namespace pmemspec::core
{

using persistency::Design;

cpu::MachineConfig
defaultMachineConfig(unsigned num_cores)
{
    cpu::MachineConfig m;
    m.mem.numCores = num_cores;
    return m; // every default already encodes Table 3
}

double
ExperimentResult::statOr(const std::string &name, double fallback) const
{
    for (const auto &sv : stats)
        if (sv.name == name)
            return sv.value;
    return fallback;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    cpu::MachineConfig machine = cfg.machine;
    machine.design = cfg.design;
    machine.mem.numCores = cfg.workload.numThreads;
    // HOPS pays one extra bus cycle between private and shared
    // caches for the sticky-M bit, on both the request and the
    // response crossing (Section 8.2.2).
    machine.mem.l1ToLlcExtra =
        (cfg.design == Design::HOPS) ? nsToTicks(1.0) : 0;

    auto logical = workloads::generateTraces(cfg.bench, cfg.workload);
    std::vector<cpu::Trace> traces;
    traces.reserve(logical.size());
    for (const auto &lt : logical)
        traces.push_back(persistency::lower(lt, cfg.design));

    cpu::Machine m(machine);
    m.setTraces(std::move(traces));

    ExperimentResult res;
    res.run = m.run();
    res.throughput = res.run.throughput();
    res.stats = m.stats().flatten();
    observe::MetricsRegistry *mreg = m.metricsRegistry();
    if (mreg) {
        res.metricsEnabled = true;
        res.metrics = mreg->series().toJson();
        res.profile = m.specProfile()->toJson();
    }
    if (trace::Manager *tm = m.traceManager()) {
        res.traceEvents = tm->recorded();
        res.traceDropped = tm->dropped();
        if (!tm->config().outPath.empty())
            res.traceFile = observe::exportTraceFile(
                *tm, mreg ? &mreg->series() : nullptr);
    }
    return res;
}

NormalizedRow
makeNormalizedRow(workloads::BenchId bench,
                  const std::vector<Design> &designs,
                  const persistency::DesignTable<double> &raw,
                  Design baseline)
{
    NormalizedRow row;
    row.bench = bench;
    row.baseline = baseline;
    row.designs = designs;
    row.throughput = raw;
    const double base = raw.at(baseline);
    panic_if(base <= 0, "zero baseline throughput");
    for (Design d : persistency::allDesigns())
        row.normalized[d] = raw.at(d) / base;
    return row;
}

NormalizedRow
runNormalized(workloads::BenchId bench,
              const cpu::MachineConfig &machine,
              const workloads::WorkloadParams &params,
              const std::vector<Design> &designs)
{
    std::vector<Design> to_run = designs;
    const Design baseline = Design::IntelX86;
    if (std::find(to_run.begin(), to_run.end(), baseline) ==
        to_run.end())
        to_run.insert(to_run.begin(), baseline);

    persistency::DesignTable<double> raw;
    for (Design d : to_run) {
        ExperimentConfig cfg;
        cfg.withBench(bench).withDesign(d).withMachine(machine);
        cfg.workload = params;
        raw[d] = runExperiment(cfg).throughput;
    }
    return makeNormalizedRow(bench, designs, raw, baseline);
}

void
printConfig(std::ostream &os, const cpu::MachineConfig &cfg)
{
    const auto &m = cfg.mem;
    os << "Core            " << cfg.core.freqGhz << "GHz, "
       << cfg.core.issueWidth << "way-OoO (approx)\n"
       << "                " << cfg.core.sqEntries
       << "-entry Ld/St Queue, MLP " << cfg.core.maxLoads << "\n"
       << "L1 D Cache      " << m.l1Bytes / 1024 << "KB, " << m.l1Ways
       << "-way, private, " << m.l1HitLatency / ticksPerNs
       << "ns hit latency\n"
       << "L2 Cache        " << m.llcBytes / (1024 * 1024) << "MB, "
       << m.llcWays << "-way, shared, "
       << m.llcHitLatency / ticksPerNs << "ns hit latency\n"
       << "PM Controller   " << m.pmcReadQueue << "/" << m.pmcWriteQueue
       << "-entry read/write queue, " << m.specBufferEntries
       << "-entry speculation buffer\n"
       << "PM              Read = " << m.pmReadLatency / ticksPerNs
       << "ns / Write = " << m.pmWriteLatency / ticksPerNs << "ns, "
       << m.pmBanks << " banks\n"
       << "Persist-Path    " << m.persistPathLatency / ticksPerNs
       << "ns (speculation window "
       << m.effectiveSpecWindow() / ticksPerNs << "ns)\n"
       << "Cores           " << m.numCores << "\n";
}

} // namespace pmemspec::core
