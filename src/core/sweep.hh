/**
 * @file
 * Parallel sweep runner + machine-readable result sink.
 *
 * The paper's evaluation is one big sweep: every figure runs a
 * (benchmark x design x machine) matrix. Each simulated machine is an
 * independent event queue — runExperiment owns its Machine, traces,
 * RNGs and StatGroup tree, and the process-wide logging sink is
 * mutex-protected — so the points embarrassingly parallelise across
 * host threads.
 *
 * Determinism contract: results come back in submission order and
 * every point is deterministic in its config, so `--jobs 1` and
 * `--jobs N` produce byte-identical output (tests/test_sweep_runner
 * enforces this, and a TSan CI job watches for data races).
 */

#ifndef PMEMSPEC_CORE_SWEEP_HH
#define PMEMSPEC_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/experiment.hh"

namespace pmemspec::core
{

/** One labelled point of a sweep. */
struct SweepPoint
{
    /** Stable identifier, e.g. "c16/TPCC/PMEM-Spec". */
    std::string id;
    ExperimentConfig cfg;
};

/** Outcome of one point: the result, or the error that ended it. */
struct SweepResult
{
    std::string id;
    ExperimentConfig cfg;
    ExperimentResult result;
    /** Empty on success; the exception text otherwise. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Executes sweep points across a worker pool of `jobs` host threads
 * (0 = hardware concurrency). Results are collected in submission
 * order; an exception in one point is captured into its SweepResult
 * and does not poison the pool.
 */
class SweepRunner
{
  public:
    /** Upper clamp on --jobs (a typo guard, not a tuning limit). */
    static constexpr unsigned maxJobs = 256;

    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return njobs; }

    /**
     * Deterministic parallel for: run task(i) for every i in [0, n)
     * across the pool. When `errors` is non-null it is resized to n
     * and each task's exception text lands at its own index; when
     * null, the first (lowest-index) exception is rethrown as
     * std::runtime_error after every task finished.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &task,
                 std::vector<std::string> *errors = nullptr) const;

    /** Run every point; results in submission order. */
    std::vector<SweepResult>
    run(const std::vector<SweepPoint> &points) const;

  private:
    unsigned njobs;
};

/**
 * Run benchmarks x designs through the runner and fold the raw
 * throughputs into per-benchmark NormalizedRows (the shape of every
 * figure). The baseline design is always measured; `sink`, when
 * non-null, additionally receives every machine-level point.
 */
std::vector<NormalizedRow>
runNormalizedSweep(const std::vector<workloads::BenchId> &benches,
                   const cpu::MachineConfig &machine,
                   const workloads::WorkloadParams &params,
                   const SweepRunner &runner,
                   const std::vector<persistency::Design> &designs =
                       persistency::allDesigns(),
                   class ResultSink *sink = nullptr,
                   const std::string &id_prefix = "");

/**
 * Collects one bench binary's results into the common JSON envelope:
 *
 *   {
 *     "schema": "pmemspec-bench-v1",
 *     "figure": "<binary name>",
 *     "meta":   { "ops_per_thread": ..., ... },
 *     "points": [ { "id", "bench", "design", "cores",
 *                   "throughput", "sim_ticks", "fases", ...,
 *                   "stats": { "<qualified name>": value, ... } } ],
 *     "tables": { "<table>": [ { <figure-specific row> }, ... ] }
 *   }
 *
 * Host-dependent values (wall clock, job count) are deliberately
 * excluded so the same sweep always serializes to the same bytes.
 */
class ResultSink
{
  public:
    static constexpr const char *schemaName = "pmemspec-bench-v1";

    explicit ResultSink(std::string figure);

    /** Record a run-level metadata value (ops, design list, ...). */
    void setMeta(const std::string &key, Json value);

    /** Append one machine-level point. */
    void addPoint(const SweepResult &r);
    void addPoints(const std::vector<SweepResult> &rs);

    /** Append one row to a figure-specific derived table. */
    void addRow(const std::string &table, Json row);

    /** A normalized row in table form (benchmark + one key per
     *  design, paper names). */
    static Json rowJson(const std::string &label,
                        const NormalizedRow &row);

    Json toJson() const;
    void write(std::ostream &os) const;

    /** Serialize to `path`; no-op when the path is empty. Returns
     *  false (with a warn) when the file cannot be written. */
    bool writeFile(const std::string &path) const;

  private:
    std::string figure;
    Json meta = Json::object();
    Json points = Json::array();
    Json tables = Json::object();
};

} // namespace pmemspec::core

#endif // PMEMSPEC_CORE_SWEEP_HH
