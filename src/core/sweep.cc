#include "sweep.hh"

#include <algorithm>
#include <fstream>
#include <thread>

#include "common/logging.hh"
#include "sim/domain_pool.hh"

namespace pmemspec::core
{

using persistency::Design;

SweepRunner::SweepRunner(unsigned jobs)
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    njobs = std::clamp(jobs, 1u, maxJobs);
}

void
SweepRunner::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &task,
                     std::vector<std::string> *errors) const
{
    // Each sweep point is an independent simulation domain; the
    // generic pool provides the dispatch + per-index error capture.
    // Only the error prefix ("sweep point" vs "domain") is ours.
    std::vector<std::string> local_errors;
    sim::DomainPool(njobs).run(n, task, &local_errors);

    if (errors) {
        *errors = std::move(local_errors);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!local_errors[i].empty())
            throw std::runtime_error("sweep point " +
                                     std::to_string(i) + ": " +
                                     local_errors[i]);
    }
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<SweepResult> results(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        results[i].id = points[i].id;
        results[i].cfg = points[i].cfg;
        // Per-point trace exports must not clobber each other: label
        // every unlabelled point with its id (the exporter inserts it
        // before the outPath extension, sanitizing separators).
        auto &tc = results[i].cfg.machine.trace;
        if (!tc.outPath.empty() && tc.label.empty())
            tc.label = points[i].id;
    }
    std::vector<std::string> errors;
    forEach(points.size(),
            [&](std::size_t i) {
                results[i].result = runExperiment(results[i].cfg);
            },
            &errors);
    for (std::size_t i = 0; i < points.size(); ++i)
        results[i].error = errors[i];
    return results;
}

std::vector<NormalizedRow>
runNormalizedSweep(const std::vector<workloads::BenchId> &benches,
                   const cpu::MachineConfig &machine,
                   const workloads::WorkloadParams &params,
                   const SweepRunner &runner,
                   const std::vector<Design> &designs, ResultSink *sink,
                   const std::string &id_prefix)
{
    const Design baseline = Design::IntelX86;
    std::vector<Design> to_run = designs;
    if (std::find(to_run.begin(), to_run.end(), baseline) ==
        to_run.end())
        to_run.insert(to_run.begin(), baseline);

    std::vector<SweepPoint> points;
    points.reserve(benches.size() * to_run.size());
    for (auto b : benches) {
        for (Design d : to_run) {
            SweepPoint p;
            p.id = id_prefix + workloads::benchName(b) + "/" +
                   persistency::designName(d);
            p.cfg.withBench(b).withDesign(d).withMachine(machine);
            p.cfg.workload = params;
            points.push_back(std::move(p));
        }
    }

    const auto results = runner.run(points);
    if (sink)
        sink->addPoints(results);

    std::vector<NormalizedRow> rows;
    rows.reserve(benches.size());
    std::size_t idx = 0;
    for (auto b : benches) {
        persistency::DesignTable<double> raw;
        for (Design d : to_run) {
            const auto &r = results[idx++];
            fatal_if(!r.ok(), "sweep point %s failed: %s",
                     r.id.c_str(), r.error.c_str());
            raw[d] = r.result.throughput;
        }
        rows.push_back(makeNormalizedRow(b, designs, raw, baseline));
    }
    return rows;
}

ResultSink::ResultSink(std::string figure_) : figure(std::move(figure_))
{
}

void
ResultSink::setMeta(const std::string &key, Json value)
{
    meta.set(key, std::move(value));
}

void
ResultSink::addPoint(const SweepResult &r)
{
    Json p = Json::object();
    p.set("id", Json(r.id));
    p.set("bench", Json(workloads::benchName(r.cfg.bench)));
    p.set("design", Json(persistency::designName(r.cfg.design)));
    p.set("cores", Json(r.cfg.workload.numThreads));
    p.set("ops_per_thread",
          Json(std::uint64_t{r.cfg.workload.opsPerThread}));
    p.set("seed", Json(std::uint64_t{r.cfg.workload.seed}));
    if (!r.ok()) {
        p.set("error", Json(r.error));
        points.push(std::move(p));
        return;
    }
    p.set("throughput", Json(r.result.throughput));
    const auto &run = r.result.run;
    p.set("sim_ticks", Json(std::uint64_t{run.simTicks}));
    p.set("fases", Json(std::uint64_t{run.fases}));
    p.set("instructions", Json(std::uint64_t{run.instructions}));
    p.set("load_misspecs", Json(std::uint64_t{run.loadMisspecs}));
    p.set("store_misspecs", Json(std::uint64_t{run.storeMisspecs}));
    p.set("aborts", Json(std::uint64_t{run.aborts}));
    p.set("spec_buf_full_pauses",
          Json(std::uint64_t{run.specBufFullPauses}));
    p.set("cross_pmc_reorder_hazards",
          Json(std::uint64_t{run.crossPmcReorderHazards}));
    Json stats = Json::object();
    for (const auto &sv : r.result.stats) {
        const auto u = static_cast<std::uint64_t>(sv.value);
        if (sv.value >= 0 && static_cast<double>(u) == sv.value)
            stats.set(sv.name, Json(u));
        else
            stats.set(sv.name, Json(sv.value));
    }
    p.set("stats", std::move(stats));
    if (r.cfg.machine.trace.enabled()) {
        Json t = Json::object();
        t.set("events", Json(std::uint64_t{r.result.traceEvents}));
        t.set("dropped", Json(std::uint64_t{r.result.traceDropped}));
        if (!r.result.traceFile.empty())
            t.set("file", Json(r.result.traceFile));
        p.set("trace", std::move(t));
    }
    if (r.result.metricsEnabled) {
        p.set("metrics", r.result.metrics);
        p.set("profile", r.result.profile);
    }
    points.push(std::move(p));
}

void
ResultSink::addPoints(const std::vector<SweepResult> &rs)
{
    for (const auto &r : rs)
        addPoint(r);
}

void
ResultSink::addRow(const std::string &table, Json row)
{
    Json *arr = tables.find(table);
    if (!arr) {
        tables.set(table, Json::array());
        arr = tables.find(table);
    }
    arr->push(std::move(row));
}

Json
ResultSink::rowJson(const std::string &label, const NormalizedRow &row)
{
    Json r = Json::object();
    r.set("benchmark", Json(label));
    r.set("baseline", Json(persistency::designName(row.baseline)));
    for (Design d : row.designs)
        r.set(persistency::designName(d),
              Json(row.normalized.at(d)));
    Json raw = Json::object();
    for (Design d : row.designs)
        raw.set(persistency::designName(d), Json(row.throughput.at(d)));
    r.set("throughput", std::move(raw));
    return r;
}

Json
ResultSink::toJson() const
{
    Json root = Json::object();
    root.set("schema", Json(schemaName));
    root.set("figure", Json(figure));
    root.set("meta", meta);
    // Tools that never run machine-level experiments (crash_check,
    // ycsb_service) only fill tables; an always-empty points array
    // just misleads consumers into thinking the sweep ran dry.
    if (points.size() != 0)
        root.set("points", points);
    root.set("tables", tables);
    return root;
}

void
ResultSink::write(std::ostream &os) const
{
    toJson().write(os, 2);
    os << '\n';
}

bool
ResultSink::writeFile(const std::string &path) const
{
    if (path.empty())
        return true;
    std::ofstream os(path);
    if (!os) {
        warn("cannot write JSON results to %s", path.c_str());
        return false;
    }
    write(os);
    return static_cast<bool>(os);
}

} // namespace pmemspec::core
