#include "machine.hh"

#include "common/logging.hh"

namespace pmemspec::cpu
{

using persistency::Design;

Machine::Machine(const MachineConfig &cfg_)
    : cfg(cfg_), root("machine")
{
    if (cfg.trace.enabled()) {
        traceMgr = std::make_unique<trace::Manager>(cfg.trace,
                                                    cfg.mem.numCores);
        traceMgr->meta.design = persistency::designName(cfg.design);
        traceMgr->meta.flags = cfg.trace.flags;
        traceMgr->meta.specWindow = cfg.mem.effectiveSpecWindow();
        traceMgr->meta.specEntries = cfg.mem.specBufferEntries;
        traceMgr->meta.numCores = cfg.mem.numCores;
        traceMgr->meta.specAutomaton = cfg.design == Design::PmemSpec;
        traceMgr->setClock([this] { return eq.now(); });
        traceMgr->makeCurrent();
    }

    memsys = std::make_unique<mem::MemorySystem>(eq, &root, cfg.mem,
                                                 cfg.design);
    locks = std::make_unique<LockTable>(eq, &root);
    memsys->setTraceManager(traceMgr.get());

    for (CoreId c = 0; c < cfg.mem.numCores; ++c) {
        cores.push_back(std::make_unique<Core>(eq, &root, c, cfg.core,
                                               *memsys, *locks));
        cores.back()->setTraceManager(traceMgr.get());
        cores.back()->setSpecIdSource([this] {
            // spec-assign: read the counter, then increment -- the
            // atomicity is provided by the lock the thread holds.
            return specCounter++;
        });
        cores.back()->setDoneCallback([this](CoreId) { ++coresDone; });
    }

    if (cfg.design == Design::PmemSpec) {
        // The machine's one "process" image: its rollback handler is
        // reached through the OS reverse map, exactly like the
        // functional runtime's (Section 6.1.1). All of simulated PM
        // belongs to it.
        vosPid = vos.registerProcess(
            [this](Addr fault) { deliverMisspecSignal(fault); });
        vos.registerRegion(vosPid, 0, Addr{1} << 62);
        for (unsigned i = 0; i < memsys->numPmcs(); ++i) {
            auto &sb = memsys->pmc(i).specBuffer();
            sb.setMisspecCallback([this](Addr a, mem::MisspecKind k) {
                onMisspeculation(a, k);
            });
            sb.setPauseCallback(
                [this](Tick w) { onSpecBufferFull(w); });
        }
    }
    root.addCounter("misspecInterrupts", &misspecInterrupts,
                    "virtual-power-failure interrupts delivered");

    if (cfg.metrics.enabled())
        buildMetrics();
}

void
Machine::buildMetrics()
{
    specProf = std::make_unique<observe::SpecProfile>();
    for (auto &core : cores)
        core->setSpecProfile(specProf.get());

    metricsReg = std::make_unique<observe::MetricsRegistry>();
    observe::MetricsRegistry &reg = *metricsReg;
    for (unsigned i = 0; i < memsys->numPmcs(); ++i) {
        const std::string p = "pmc" + std::to_string(i) + ".";
        mem::PmController &pmc = memsys->pmc(i);
        reg.addGauge(p + "read_q",
                     [&pmc] { return double(pmc.readQueueOccupancy()); });
        reg.addGauge(p + "write_q",
                     [&pmc] { return double(pmc.writeQueueOccupancy()); });
        reg.addCounter(p + "persists", pmc.persistsAccepted);
        reg.addCounter(p + "poison_retries", pmc.poisonRetries);
        reg.addCounter(p + "poisoned_reads", pmc.poisonedReads);
        if (cfg.design == Design::PmemSpec) {
            auto &sb = pmc.specBuffer();
            reg.addGauge(p + "spec_occupancy",
                         [&sb] { return double(sb.occupancy()); });
            reg.addCounter(p + "spec_full_pauses", sb.fullPauses);
        }
    }
    // In-flight persists summed over every persist-path lane: the
    // "queue depth" the speculation window has to cover.
    reg.addGauge("path.in_flight", [this] {
        std::size_t n = 0;
        for (std::size_t i = 0; i < memsys->numPaths(); ++i)
            n += memsys->pathAt(i).occupancy();
        return double(n);
    });
    for (CoreId c = 0; c < cores.size(); ++c) {
        const std::string p = "core" + std::to_string(c) + ".";
        Core &core = *cores[c];
        reg.addGauge(p + "state",
                     [&core] { return double(core.stateCode()); });
        reg.addGauge(p + "in_fase",
                     [&core] { return core.inFase() ? 1.0 : 0.0; });
        reg.addCounter(p + "aborts", core.aborts);
    }
    reg.addCounter("misspec_interrupts", misspecInterrupts);

    metricsSampler = std::make_unique<observe::MetricsSampler>(
        eq, reg, cfg.metrics.interval);
}

void
Machine::setTraces(std::vector<Trace> traces)
{
    fatal_if(traces.size() != cores.size(),
             "%zu traces for %zu cores", traces.size(), cores.size());
    for (CoreId c = 0; c < cores.size(); ++c)
        cores[c]->setTrace(std::move(traces[c]));
}

void
Machine::onMisspeculation(Addr addr, mem::MisspecKind kind)
{
    (void)kind;
    // The hardware stores the faulting address in the designated
    // mailbox and raises the interrupt; the OS resolves the owner
    // through its reverse map and relays the signal.
    const auto pid = vos.raiseMisspecInterrupt(addr);
    panic_if(!pid, "misspec interrupt at %#llx owned by no process",
             static_cast<unsigned long long>(addr));
}

void
Machine::deliverMisspecSignal(Addr fault_addr)
{
    ++misspecInterrupts;
    PMEMSPEC_TRACE(traceMgr.get(), FlagFaseRuntime,
                   trace::EventKind::OsTrap, eq.now(), trace::kNoCore,
                   fault_addr, {.arg = misspecInterrupts.value()});
    if (traceMgr && traceMgr->config().flightRecorder)
        traceMgr->dump(stderr);
    // After the relay latency, every thread currently inside a FASE
    // aborts and re-executes (conservative rollback, Section 6.2).
    eq.schedule(After{cfg.misspecInterruptLatency}, [this] {
        for (auto &core : cores)
            core->abortCurrentFase(cfg.abortHandlerLatency);
    });
}

void
Machine::onSpecBufferFull(Tick window)
{
    // "All cores pause and resume after the speculation window to
    // make free spaces in the speculation buffer" (Section 5.3).
    const Tick until = eq.now() + window;
    for (auto &core : cores)
        core->pauseUntil(until);
}

RunResult
Machine::run()
{
    for (auto &core : cores)
        core->start();
    if (metricsSampler)
        metricsSampler->start();

    const bool drained = eq.run(cfg.maxEvents);
    panic_if(!drained, "event budget exhausted: deadlock or runaway "
                       "(executed %llu events)",
             static_cast<unsigned long long>(eq.executed()));
    panic_if(coresDone != cores.size(),
             "event queue drained but only %u/%zu cores finished "
             "(deadlock)", coresDone, cores.size());

    RunResult r;
    r.events = eq.executed();
    for (auto &core : cores) {
        r.simTicks = std::max(r.simTicks, core->finishTick());
        r.fases += core->fasesCompleted();
        r.instructions += core->instructions.value();
        r.aborts += core->aborts.value();
    }
    if (cfg.design == Design::PmemSpec) {
        for (unsigned i = 0; i < memsys->numPmcs(); ++i) {
            auto &sb = memsys->pmc(i).specBuffer();
            r.loadMisspecs += sb.loadMisspecs.value();
            r.storeMisspecs += sb.storeMisspecs.value();
            r.specBufFullPauses += sb.fullPauses.value();
        }
        r.crossPmcReorderHazards =
            memsys->crossPmcReorderHazards.value();
    }
    return r;
}

} // namespace pmemspec::cpu
