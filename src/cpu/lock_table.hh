/**
 * @file
 * Simulated-time mutexes.
 *
 * The workloads are data-race free (Section 5.2.2): every conflicting
 * PM access is protected by a lock. The trace generator records which
 * lock a thread took; at replay time the LockTable enforces mutual
 * exclusion in *simulated* time, which both serialises the replay
 * correctly and establishes the happens-before order that the
 * persistency hardware models consume (spec-IDs, persist-buffer
 * watermarks).
 */

#ifndef PMEMSPEC_CPU_LOCK_TABLE_HH
#define PMEMSPEC_CPU_LOCK_TABLE_HH

#include <deque>
#include <functional>
#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace pmemspec::cpu
{

/** FIFO-fair simulated mutexes, keyed by an integer lock id. */
class LockTable : public sim::SimObject
{
  public:
    LockTable(sim::EventQueue &eq, StatGroup *parent,
              Tick acquire_latency = nsToTicks(20),
              Tick release_latency = nsToTicks(10));

    /**
     * Request the lock for a core. on_acquired runs (after the
     * acquire latency) as soon as the lock is granted -- immediately
     * if free, or after the current holder and queued waiters.
     */
    void acquire(unsigned lock_id, CoreId core,
                 std::function<void()> on_acquired);

    /** Release a held lock; the next waiter (if any) is granted. */
    void release(unsigned lock_id, CoreId core);

    /** Remove a core from a lock's wait queue (FASE abort while
     *  blocked). @return true if the core was queued. */
    bool cancelWait(unsigned lock_id, CoreId core);

    /** @return true if the lock is currently held. */
    bool held(unsigned lock_id) const;

    /** Holder of a lock; only valid when held(). */
    CoreId holder(unsigned lock_id) const;

    Counter acquires;
    Counter contendedAcquires;

  private:
    struct Waiter
    {
        CoreId core;
        std::function<void()> cb;
    };

    struct LockState
    {
        bool locked = false;
        CoreId owner = 0;
        std::deque<Waiter> waiters;
    };

    void grant(unsigned lock_id, LockState &ls, CoreId core,
               std::function<void()> cb);

    Tick acquireLatency;
    Tick releaseLatency;
    std::map<unsigned, LockState> locks;
};

} // namespace pmemspec::cpu

#endif // PMEMSPEC_CPU_LOCK_TABLE_HH
