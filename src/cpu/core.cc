#include "core.hh"

#include "common/logging.hh"

namespace pmemspec::cpu
{

Core::Core(sim::EventQueue &eq, StatGroup *parent, CoreId id_,
           const CoreConfig &cfg_, mem::MemorySystem &memsys_,
           LockTable &lock_table)
    : sim::SimObject("core" + std::to_string(id_), eq, parent),
      id(id_),
      cfg(cfg_),
      clock(cfg_.freqGhz),
      memsys(memsys_),
      locks(lock_table)
{
    stats().addCounter("instructions", &instructions,
                       "trace instructions retired");
    stats().addCounter("fases", &fases, "failure-atomic sections done");
    stats().addCounter("aborts", &aborts, "FASEs aborted and retried");
    stats().addCounter("sfenceStalls", &sfenceStalls, "SFENCE stalls");
    stats().addCounter("dfenceStalls", &dfenceStalls, "dfence stalls");
    stats().addCounter("specBarrierStalls", &specBarrierStalls,
                       "spec-barrier stalls");
    stats().addCounter("sqFullStalls", &sqFullStalls,
                       "stalls on a full store queue");
    stats().addAccumulator("faseLatency", &faseLatency,
                           "latency of committed FASEs (ns)");
}

void
Core::setTrace(Trace t)
{
    trace = std::move(t);
    pc = 0;
    pcDone = trace.empty();
}

void
Core::setSpecIdSource(std::function<SpecId()> src)
{
    specIdSource = std::move(src);
}

void
Core::setDoneCallback(std::function<void(CoreId)> cb)
{
    doneCallback = std::move(cb);
}

void
Core::start()
{
    panic_if(state != State::Idle, "core %u started twice", id);
    state = State::Running;
    requestAdvance();
}

void
Core::pauseUntil(Tick t)
{
    if (t > pausedUntil) {
        pausedUntil = t;
        PMEMSPEC_TRACE(traceMgr, FlagCore, trace::EventKind::CorePause,
                       curTick(), id, 0, {.arg = t});
    }
}

std::function<void()>
Core::guardedWake()
{
    const std::uint64_t gen = generation;
    return [this, gen] {
        if (gen != generation)
            return; // the FASE this wake belonged to was aborted
        if (state == State::Waiting) {
            state = State::Running;
            requestAdvance();
        }
    };
}

void
Core::requestAdvance()
{
    if (advancePending)
        return;
    advancePending = true;
    Tick delay = pausedUntil > curTick() ? pausedUntil - curTick() : 0;
    schedule(After{delay}, [this] {
        advancePending = false;
        advance();
    });
}

bool
Core::chargeIssue()
{
    ++issueDebtCycles;
    if (issueDebtCycles >= cfg.issueWidth * 16) {
        // Pay the accumulated issue debt as simulated time.
        const Cycles cycles = issueDebtCycles / cfg.issueWidth;
        issueDebtCycles %= cfg.issueWidth;
        schedule(After{clock.cyclesToTicks(cycles)},
                   [this] { requestAdvance(); });
        return false; // stop advancing until the debt is paid
    }
    return true;
}

void
Core::advance()
{
    if (state != State::Running)
        return;
    if (curTick() < pausedUntil) {
        requestAdvance(); // re-schedules at pausedUntil
        return;
    }
    while (state == State::Running) {
        if (pc >= trace.size()) {
            if (!quiesced()) {
                // Retirement waits for in-flight stores, flushes,
                // loads and barriers; completions re-invoke us.
                waitingFinish = true;
                return;
            }
            state = State::Idle;
            pcDone = true;
            doneTick = curTick();
            if (doneCallback)
                doneCallback(id);
            return;
        }
        const TraceInstr &instr = trace[pc];
        if (!execute(instr))
            return;
    }
}

bool
Core::execute(const TraceInstr &instr)
{
    switch (instr.op) {
      case TraceOp::Compute: {
        ++instructions;
        ++pc;
        state = State::Waiting;
        schedule(After{clock.cyclesToTicks(instr.addr)}, guardedWake());
        return false;
      }

      case TraceOp::Load:
      case TraceOp::LoadDep: {
        if (outstandingLoads >= cfg.maxLoads) {
            waitingLoadSlot = true;
            return false; // woken by a load completion
        }
        const bool dependent = (instr.op == TraceOp::LoadDep);
        ++instructions;
        ++pc;
        ++outstandingLoads;
        const std::uint64_t gen = generation;
        memsys.load(id, instr.addr, [this, dependent, gen] {
            onLoadDone(dependent, gen);
        });
        if (dependent) {
            state = State::Waiting;
            return false;
        }
        return chargeIssue();
      }

      case TraceOp::Store:
      case TraceOp::Clwb: {
        if (barriersOutstanding > 0) {
            // Persist ordering: no later persist may pass a pending
            // durability barrier.
            waitingBarrier = true;
            return false; // woken at barrier completion
        }
        if (sq.size() >= cfg.sqEntries) {
            ++sqFullStalls;
            waitingSqSlot = true;
            return false; // woken when the SQ head drains
        }
        ++instructions;
        ++pc;
        if (insideFase && instr.op == TraceOp::Store && specProf &&
            specProf->enabled()) {
            ++faseStores;
            faseBlocks.insert(blockAlign(instr.addr));
        }
        pushSq(instr.addr, instr.op == TraceOp::Clwb);
        return chargeIssue();
      }

      case TraceOp::Sfence: {
        // x86 SFENCE: block everything until the SQ has drained and
        // every outstanding CLWB flush has been acknowledged by the
        // persistent domain.
        if (!drained()) {
            ++sfenceStalls;
            state = State::Waiting;
            waitDrained(guardedWake());
            return false;
        }
        ++instructions;
        ++pc;
        return chargeIssue();
      }

      case TraceOp::Ofence: {
        ++instructions;
        ++pc;
        memsys.ofence(id);
        return chargeIssue();
      }

      case TraceOp::Dfence:
      case TraceOp::DrainBuffer: {
        if (barriersOutstanding > 0) {
            waitingBarrier = true;
            return false; // barriers are ordered among themselves
        }
        ++instructions;
        ++pc;
        ++dfenceStalls;
        ++barriersOutstanding;
        const std::uint64_t gen = generation;
        waitDrained([this, gen] {
            memsys.dfence(id, [this, gen] { onBarrierDone(gen); });
        });
        return true; // volatile work continues past the dfence
      }

      case TraceOp::SpecBarrier: {
        if (barriersOutstanding > 0) {
            waitingBarrier = true;
            return false;
        }
        ++instructions;
        ++pc;
        ++specBarrierStalls;
        ++barriersOutstanding;
        const std::uint64_t gen = generation;
        waitDrained([this, gen] {
            memsys.specBarrier(id,
                               [this, gen] { onBarrierDone(gen); });
        });
        return true; // volatile work continues past the barrier
      }

      case TraceOp::SpecAssign: {
        ++instructions;
        ++pc;
        panic_if(!specIdSource, "spec-assign without an ID source");
        specIdReg = specIdSource();
        return chargeIssue();
      }

      case TraceOp::SpecRevoke: {
        ++instructions;
        ++pc;
        specIdReg.reset();
        return chargeIssue();
      }

      case TraceOp::LockAcq: {
        ++instructions;
        ++pc;
        const unsigned lock_id = static_cast<unsigned>(instr.addr);
        state = State::Waiting;
        waitingLockId = lock_id;
        const std::uint64_t gen = generation;
        locks.acquire(lock_id, id, [this, lock_id, gen] {
            if (gen != generation) {
                // Granted after this FASE aborted: give it back.
                locks.release(lock_id, id);
                return;
            }
            waitingLockId.reset();
            fasesLocks.push_back(lock_id);
            memsys.onLockAcquire(id, lock_id);
            if (state == State::Waiting) {
                state = State::Running;
                requestAdvance();
            }
        });
        return false;
      }

      case TraceOp::LockRel: {
        if (barriersOutstanding > 0) {
            // The FASE's durability barrier must complete before its
            // effects become visible to other threads.
            waitingBarrier = true;
            return false;
        }
        ++instructions;
        ++pc;
        const unsigned lock_id = static_cast<unsigned>(instr.addr);
        memsys.onLockRelease(id, lock_id);
        locks.release(lock_id, id);
        std::erase(fasesLocks, lock_id);
        return chargeIssue();
      }

      case TraceOp::FaseBegin: {
        if (barriersOutstanding > 0) {
            // The previous FASE's durability barrier must land
            // before a new failure-atomic section opens; this also
            // bounds post-barrier runahead to the inter-FASE work.
            waitingBarrier = true;
            return false;
        }
        ++instructions;
        insideFase = true;
        faseBeginPc = pc;
        faseBeginTick = curTick();
        if (specProf && specProf->enabled()) {
            faseSite = specProf->site("pc:" + std::to_string(pc));
            specProf->recordExecution(faseSite);
            faseStores = 0;
            faseBlocks.clear();
        }
        PMEMSPEC_TRACE(traceMgr, FlagCore,
                       trace::EventKind::CoreFaseBegin, curTick(), id, 0,
                       {.arg = pc});
        ++pc;
        return true;
      }

      case TraceOp::FaseEnd: {
        ++instructions;
        ++pc;
        if (barriersOutstanding > 0) {
            // The marker retires, but the FASE only commits -- and
            // stops being abortable -- once its barrier completes.
            faseClosePending = true;
        } else {
            closeFase();
        }
        return true;
      }
    }
    panic("unhandled trace op");
}

void
Core::closeFase()
{
    insideFase = false;
    faseClosePending = false;
    ++fases;
    faseLatency.sample(
        static_cast<double>(curTick() - faseBeginTick) / ticksPerNs);
    if (specProf && specProf->enabled()) {
        specProf->recordCommit(faseSite, faseStores, faseBlocks.size());
        specProf->recordResidency(faseSite, curTick() - faseBeginTick);
    }
    PMEMSPEC_TRACE(traceMgr, FlagCore, trace::EventKind::CoreFaseCommit,
                   curTick(), id, 0,
                   {.arg = (curTick() - faseBeginTick) / ticksPerNs});
}

void
Core::onBarrierDone(std::uint64_t gen)
{
    panic_if(barriersOutstanding == 0, "barrier ack underflow");
    --barriersOutstanding;
    if (state == State::Aborting) {
        maybeFinishAbort();
        return;
    }
    if (gen != generation)
        return;
    if (faseClosePending && barriersOutstanding == 0)
        closeFase();
    if (waitingBarrier && barriersOutstanding == 0) {
        waitingBarrier = false;
        if (state == State::Running)
            requestAdvance();
    }
    if (waitingFinish && quiesced()) {
        waitingFinish = false;
        requestAdvance();
    }
}

void
Core::onLoadDone(bool dependent, std::uint64_t gen)
{
    panic_if(outstandingLoads == 0, "load completion underflow");
    --outstandingLoads;
    if (state == State::Aborting) {
        maybeFinishAbort();
        return;
    }
    if (gen != generation)
        return;
    if (dependent && state == State::Waiting) {
        state = State::Running;
        requestAdvance();
        return;
    }
    if (waitingLoadSlot) {
        waitingLoadSlot = false;
        if (state == State::Running)
            requestAdvance();
    }
    if (waitingFinish && quiesced()) {
        waitingFinish = false;
        requestAdvance();
    }
}

void
Core::pushSq(Addr addr, bool is_clwb)
{
    sq.push_back(SqEntry{addr, specIdReg, is_clwb});
    pumpSq();
}

void
Core::pumpSq()
{
    if (sqDraining || sq.empty())
        return;
    sqDraining = true;
    const SqEntry &head = sq.front();
    if (head.isClwb) {
        // CLWB retires from the SQ once issued; the flush proceeds
        // asynchronously and a later SFENCE waits for its ack.
        ++clwbOutstanding;
        memsys.clwb(id, head.addr, [this] {
            panic_if(clwbOutstanding == 0, "clwb ack underflow");
            --clwbOutstanding;
            if (state == State::Aborting) {
                maybeFinishAbort();
                return;
            }
            wakeDrainWaiters();
            if (waitingFinish && quiesced()) {
                waitingFinish = false;
                requestAdvance();
            }
        });
        schedule(After{clock.period()}, [this] { onSqHeadDone(); });
    } else {
        memsys.store(id, head.addr, head.specId,
                     [this] { onSqHeadDone(); });
    }
}

void
Core::onSqHeadDone()
{
    panic_if(sq.empty(), "SQ drain completion with empty SQ");
    sq.pop_front();
    sqDraining = false;

    if (state == State::Aborting) {
        // Pending barrier/fence continuations must still fire so the
        // barrier count can drain and the abort can quiesce.
        wakeDrainWaiters();
        pumpSq();
        maybeFinishAbort();
        return;
    }
    if (waitingSqSlot) {
        waitingSqSlot = false;
        if (state == State::Running)
            requestAdvance();
    }
    wakeDrainWaiters();
    if (waitingFinish && quiesced()) {
        waitingFinish = false;
        requestAdvance();
    }
    pumpSq();
}

void
Core::wakeDrainWaiters()
{
    if (drained() && !drainWaiters.empty()) {
        auto w = std::move(drainWaiters);
        drainWaiters.clear();
        for (auto &cb : w)
            cb();
    }
}

void
Core::waitDrained(InplaceFn<void()> then)
{
    if (drained()) {
        then();
        return;
    }
    drainWaiters.push_back(std::move(then));
}

void
Core::abortCurrentFase(Tick penalty)
{
    if (!insideFase || state == State::Aborting)
        return;
    ++aborts;
    if (specProf && specProf->enabled())
        specProf->recordAbort(faseSite, observe::AbortCause::Misspec);
    state = State::Aborting;
    abortPenalty = penalty;
    PMEMSPEC_TRACE(traceMgr, FlagCore, trace::EventKind::CoreFaseAbort,
                   curTick(), id, 0, {.arg = penalty});
    // A FASE blocked on a lock abandons the wait.
    if (waitingLockId) {
        locks.cancelWait(*waitingLockId, id);
        waitingLockId.reset();
    }
    maybeFinishAbort();
}

void
Core::maybeFinishAbort()
{
    if (state != State::Aborting)
        return;
    if (!sq.empty() || outstandingLoads != 0 || clwbOutstanding != 0 ||
        barriersOutstanding != 0)
        return; // still draining in-flight work
    finishAbort();
}

void
Core::finishAbort()
{
    // Invalidate wakes and in-flight grants from the aborted epoch.
    ++generation;
    // The abort handler releases the FASE's locks so other threads
    // can make progress while this one re-executes (Section 6.1.2).
    for (unsigned lock_id : fasesLocks)
        locks.release(lock_id, id);
    fasesLocks.clear();
    drainWaiters.clear();
    waitingLoadSlot = false;
    waitingSqSlot = false;
    waitingBarrier = false;
    specIdReg.reset();
    pc = faseBeginPc;
    insideFase = false;
    faseClosePending = false;
    state = State::Waiting;
    schedule(After{abortPenalty}, [this] {
        if (state == State::Waiting) {
            state = State::Running;
            requestAdvance();
        }
    });
}

} // namespace pmemspec::cpu
