#include "trace.hh"

namespace pmemspec::cpu
{

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::Load:        return "Load";
      case TraceOp::LoadDep:     return "LoadDep";
      case TraceOp::Store:       return "Store";
      case TraceOp::Clwb:        return "Clwb";
      case TraceOp::Sfence:      return "Sfence";
      case TraceOp::Ofence:      return "Ofence";
      case TraceOp::Dfence:      return "Dfence";
      case TraceOp::SpecBarrier: return "SpecBarrier";
      case TraceOp::SpecAssign:  return "SpecAssign";
      case TraceOp::SpecRevoke:  return "SpecRevoke";
      case TraceOp::LockAcq:     return "LockAcq";
      case TraceOp::LockRel:     return "LockRel";
      case TraceOp::FaseBegin:   return "FaseBegin";
      case TraceOp::FaseEnd:     return "FaseEnd";
      case TraceOp::Compute:     return "Compute";
      case TraceOp::DrainBuffer: return "DrainBuffer";
    }
    return "unknown";
}

std::size_t
countOps(const Trace &t, TraceOp op)
{
    std::size_t n = 0;
    for (const auto &i : t)
        n += (i.op == op) ? 1 : 0;
    return n;
}

} // namespace pmemspec::cpu
