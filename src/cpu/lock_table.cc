#include "lock_table.hh"

#include "common/logging.hh"

namespace pmemspec::cpu
{

LockTable::LockTable(sim::EventQueue &eq, StatGroup *parent,
                     Tick acquire_latency, Tick release_latency)
    : sim::SimObject("locks", eq, parent),
      acquireLatency(acquire_latency),
      releaseLatency(release_latency)
{
    stats().addCounter("acquires", &acquires, "lock acquisitions");
    stats().addCounter("contendedAcquires", &contendedAcquires,
                       "acquisitions that had to wait");
}

void
LockTable::grant(unsigned lock_id, LockState &ls, CoreId core,
                 std::function<void()> cb)
{
    (void)lock_id;
    ls.locked = true;
    ls.owner = core;
    ++acquires;
    schedule(After{acquireLatency}, std::move(cb));
}

void
LockTable::acquire(unsigned lock_id, CoreId core,
                   std::function<void()> on_acquired)
{
    LockState &ls = locks[lock_id];
    if (!ls.locked) {
        grant(lock_id, ls, core, std::move(on_acquired));
        return;
    }
    ++contendedAcquires;
    ls.waiters.push_back(Waiter{core, std::move(on_acquired)});
}

void
LockTable::release(unsigned lock_id, CoreId core)
{
    auto it = locks.find(lock_id);
    panic_if(it == locks.end() || !it->second.locked,
             "release of unheld lock %u", lock_id);
    LockState &ls = it->second;
    panic_if(ls.owner != core, "lock %u released by core %u, held by %u",
             lock_id, core, ls.owner);
    if (ls.waiters.empty()) {
        ls.locked = false;
        return;
    }
    // Ownership transfers directly to the next waiter so the lock
    // never appears free mid-handoff; the handoff costs the release
    // latency before the grant fires.
    Waiter w = std::move(ls.waiters.front());
    ls.waiters.pop_front();
    ls.owner = w.core;
    ++acquires;
    schedule(After{releaseLatency + acquireLatency}, std::move(w.cb));
}

bool
LockTable::cancelWait(unsigned lock_id, CoreId core)
{
    auto it = locks.find(lock_id);
    if (it == locks.end())
        return false;
    auto &waiters = it->second.waiters;
    for (auto wit = waiters.begin(); wit != waiters.end(); ++wit) {
        if (wit->core == core) {
            waiters.erase(wit);
            return true;
        }
    }
    return false;
}

bool
LockTable::held(unsigned lock_id) const
{
    auto it = locks.find(lock_id);
    return it != locks.end() && it->second.locked;
}

CoreId
LockTable::holder(unsigned lock_id) const
{
    auto it = locks.find(lock_id);
    panic_if(it == locks.end() || !it->second.locked,
             "holder() of unheld lock %u", lock_id);
    return it->second.owner;
}

} // namespace pmemspec::cpu
