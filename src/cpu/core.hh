/**
 * @file
 * The timing core replaying one thread's trace.
 *
 * The model approximates the paper's 8-way out-of-order core at the
 * granularity that matters for persistency-model comparisons:
 *
 *  - a 32-entry store queue drains to the L1 in the background; the
 *    core only stalls when it fills (Table 3);
 *  - independent PM loads overlap up to an MLP limit; dependent loads
 *    (pointer chases) block the core until data returns;
 *  - non-memory work is charged through Compute ticks and a per-
 *    instruction issue debt;
 *  - fences implement the design-specific semantics: SFENCE blocks
 *    *everything* until the SQ drains and all CLWBs are acknowledged;
 *    dfence and spec-barrier are non-blocking for volatile work
 *    (Section 8.2.1: they "do not block volatile memory operations as
 *    SFENCE does") -- loads and compute continue, while later stores,
 *    CLWBs, lock releases and barriers wait for completion.
 *
 * Misspeculation recovery (Section 6) is modelled as a true rollback:
 * the machine asks every core inside a FASE to abort; once the core
 * quiesces it releases the FASE's locks, rewinds its program counter
 * to the FaseBegin marker and resumes after the recovery penalty.
 */

#ifndef PMEMSPEC_CPU_CORE_HH
#define PMEMSPEC_CPU_CORE_HH

#include <deque>
#include <functional>
#include <optional>
#include <set>

#include "common/inplace_fn.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "cpu/lock_table.hh"
#include "cpu/trace.hh"
#include "mem/memory_system.hh"
#include "observe/spec_profile.hh"
#include "sim/clock.hh"
#include "sim/sim_object.hh"

namespace pmemspec::cpu
{

/** Per-core microarchitectural knobs (Table 3 defaults). */
struct CoreConfig
{
    /** Store queue entries (Table 3: 32-entry Ld/St queue). */
    unsigned sqEntries = 32;
    /** Maximum overlapped loads (miss-level parallelism). */
    unsigned maxLoads = 8;
    /** Issue width used to charge per-instruction issue debt. */
    unsigned issueWidth = 8;
    /** Core clock. */
    double freqGhz = 2.0;
};

/** One timing core. */
class Core : public sim::SimObject
{
  public:
    Core(sim::EventQueue &eq, StatGroup *parent, CoreId id,
         const CoreConfig &cfg, mem::MemorySystem &memsys,
         LockTable &lock_table);

    /** Provide the thread's instruction stream before start(). */
    void setTrace(Trace t);

    /** Provide the spec-assign source (the machine's global
     *  monotonically increasing counter). */
    void setSpecIdSource(std::function<SpecId()> src);

    /** Called when the core retires its last instruction. */
    void setDoneCallback(std::function<void(CoreId)> cb);

    /** Begin execution at the current tick. */
    void start();

    bool done() const { return pcDone; }
    Tick finishTick() const { return doneTick; }
    std::uint64_t fasesCompleted() const { return fases.value(); }

    /** Machine-wide pause (speculation buffer full, Section 5.3). */
    void pauseUntil(Tick t);

    /**
     * Abort the FASE in flight (virtual power failure, Section 6.2).
     * No-op if the core is not inside a FASE. The core quiesces,
     * releases its FASE locks, rewinds to FaseBegin and resumes after
     * `penalty` (the interrupt + abort-handler cost).
     */
    void abortCurrentFase(Tick penalty);

    bool inFase() const { return insideFase; }

    /** Attach the machine's event recorder. */
    void setTraceManager(trace::Manager *mgr) { traceMgr = mgr; }

    /** Attach the machine's per-FASE-site speculation profile.
     *  Timing-side sites are keyed by FaseBegin program counter. */
    void setSpecProfile(observe::SpecProfile *p) { specProf = p; }

    /** Execution state as a small integer for metrics gauges
     *  (0 Idle, 1 Running, 2 Waiting, 3 Aborting). */
    unsigned stateCode() const { return static_cast<unsigned>(state); }

    Counter instructions;
    Counter fases;
    Counter aborts;
    Counter sfenceStalls;
    Counter dfenceStalls;
    Counter specBarrierStalls;
    Counter sqFullStalls;
    Accumulator faseLatency; ///< committed FASE latency (ns)

  private:
    enum class State
    {
        Idle,      ///< before start() / after the trace ends
        Running,   ///< advance() is processing instructions
        Waiting,   ///< blocked on a completion callback
        Aborting,  ///< draining in-flight work before rollback
    };

    struct SqEntry
    {
        Addr addr;
        std::optional<SpecId> specId;
        bool isClwb;
    };

    /** Schedule advance() at now (or resumeAt) if not already queued. */
    void requestAdvance();
    void advance();

    /** Execute one instruction; @return true to keep advancing. */
    bool execute(const TraceInstr &instr);

    /** Charge 1/issueWidth cycle; may schedule a debt payment. */
    bool chargeIssue();

    void pushSq(Addr addr, bool is_clwb);
    void pumpSq();
    void onSqHeadDone();

    void onLoadDone(bool dependent, std::uint64_t gen);
    void onBarrierDone(std::uint64_t gen);

    /** Block until the SQ is empty and every issued CLWB has been
     *  acknowledged, then run `then`. */
    void waitDrained(InplaceFn<void()> then);

    bool drained() const { return sq.empty() && clwbOutstanding == 0; }
    /** No instruction in flight anywhere. */
    bool
    quiesced() const
    {
        return drained() && outstandingLoads == 0 &&
               barriersOutstanding == 0;
    }
    void wakeDrainWaiters();

    void maybeFinishAbort();
    void finishAbort();
    /** Commit the open FASE (throughput + latency accounting). */
    void closeFase();

    /** A guarded wake: ignores callbacks from a pre-abort epoch. */
    std::function<void()> guardedWake();

    CoreId id;
    CoreConfig cfg;
    sim::Clock clock;
    mem::MemorySystem &memsys;
    LockTable &locks;

    Trace trace;
    std::size_t pc = 0;
    bool pcDone = false;
    Tick doneTick = 0;
    State state = State::Idle;
    bool advancePending = false;
    Tick pausedUntil = 0;
    std::uint64_t issueDebtCycles = 0;

    std::deque<SqEntry> sq;
    bool sqDraining = false;
    unsigned outstandingLoads = 0;
    /** CLWB flushes issued but not yet acknowledged by the PMC. */
    unsigned clwbOutstanding = 0;
    /** Non-blocking persist barriers (dfence/spec-barrier) still in
     *  flight; they gate stores and lock releases, not loads. */
    unsigned barriersOutstanding = 0;
    bool waitingLoadSlot = false;
    bool waitingSqSlot = false;
    bool waitingBarrier = false;
    /** Trace exhausted; waiting for in-flight work before done. */
    bool waitingFinish = false;
    std::vector<InplaceFn<void()>> drainWaiters;

    std::optional<SpecId> specIdReg;
    std::function<SpecId()> specIdSource;
    std::function<void(CoreId)> doneCallback;

    bool insideFase = false;
    /** FaseEnd retired while the durability barrier was pending; the
     *  FASE commits (and stops being abortable) when it completes. */
    bool faseClosePending = false;
    std::size_t faseBeginPc = 0;
    Tick faseBeginTick = 0;
    /** Per-FASE persist accounting for the speculation profile; only
     *  maintained while a profile is attached and enabled. */
    std::uint64_t faseStores = 0;
    std::set<Addr> faseBlocks;
    observe::SpecProfile *specProf = nullptr;
    /** Site id of the open FASE in specProf (by FaseBegin pc). */
    unsigned faseSite = 0;
    std::vector<unsigned> fasesLocks; ///< locks held by the open FASE
    std::optional<unsigned> waitingLockId;
    Tick abortPenalty = 0;
    std::uint64_t generation = 0;

    trace::Manager *traceMgr = nullptr;
};

} // namespace pmemspec::cpu

#endif // PMEMSPEC_CPU_CORE_HH
