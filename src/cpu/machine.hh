/**
 * @file
 * A simulated multicore machine: cores, lock table, memory system and
 * the misspeculation-recovery glue (the "OS" of the timing layer).
 */

#ifndef PMEMSPEC_CPU_MACHINE_HH
#define PMEMSPEC_CPU_MACHINE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "cpu/core.hh"
#include "cpu/lock_table.hh"
#include "cpu/trace.hh"
#include "mem/memory_system.hh"
#include "observe/metrics.hh"
#include "observe/spec_profile.hh"
#include "persistency/design.hh"
#include "runtime/virtual_os.hh"
#include "sim/event_queue.hh"

namespace pmemspec::cpu
{

/** Whole-machine configuration. */
struct MachineConfig
{
    mem::MemConfig mem;
    CoreConfig core;
    persistency::Design design = persistency::Design::PmemSpec;

    /** HW-interrupt + OS relay latency on misspeculation detection
     *  (Section 6.1.1) before the rollback begins. */
    Tick misspecInterruptLatency = nsToTicks(2000);
    /** Abort-handler cost before a FASE re-executes. */
    Tick abortHandlerLatency = nsToTicks(1000);

    /** Safety valve: panic if a run exceeds this many events. */
    std::uint64_t maxEvents = 4'000'000'000ULL;

    /** Event-trace / flight-recorder configuration (off by default;
     *  wired from --trace / --trace-out / --flight-recorder). */
    trace::Config trace;

    /** Time-series metrics sampling (off by default; wired from
     *  --metrics / --metrics-interval-us). */
    observe::MetricsConfig metrics;
};

/** Result of one timing run. */
struct RunResult
{
    Tick simTicks = 0;          ///< last core's finish tick
    std::uint64_t fases = 0;    ///< committed FASEs across cores
    std::uint64_t instructions = 0;
    std::uint64_t loadMisspecs = 0;
    std::uint64_t storeMisspecs = 0;
    std::uint64_t aborts = 0;
    std::uint64_t specBufFullPauses = 0;
    /** Section 7 oracle: undetectable cross-PMC order violations. */
    std::uint64_t crossPmcReorderHazards = 0;
    /** Host-side cost metric: discrete events the kernel executed. */
    std::uint64_t events = 0;

    /** Committed FASEs per simulated second. */
    double
    throughput() const
    {
        if (simTicks == 0)
            return 0;
        return static_cast<double>(fases) /
               (static_cast<double>(simTicks) * 1e-12);
    }
};

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    /** One trace per core; must match cfg.mem.numCores. */
    void setTraces(std::vector<Trace> traces);

    /** Run to completion and gather the result. */
    RunResult run();

    sim::EventQueue &eventQueue() { return eq; }
    mem::MemorySystem &memory() { return *memsys; }
    Core &core(CoreId c) { return *cores.at(c); }
    LockTable &lockTable() { return *locks; }
    StatGroup &stats() { return root; }
    const MachineConfig &config() const { return cfg; }

    /** The OS half of the trap path: the speculation buffer raises
     *  its interrupt into this relay, which resolves the faulting
     *  address through the reverse map and invokes the machine's
     *  rollback handler (Section 6.1.1). */
    runtime::VirtualOs &os() { return vos; }

    /** Next spec-assign value (exposed for tests). */
    SpecId specCounterValue() const { return specCounter; }

    /** The machine's event recorder (nullptr when tracing is off). */
    trace::Manager *traceManager() { return traceMgr.get(); }

    /** The machine's metrics registry (nullptr when metrics are off).
     *  Columns cover per-PMC speculation-window occupancy, read/write
     *  queue depth, persist-path in-flight persists, and per-core
     *  state; sampled every cfg.metrics.interval simulated ticks. */
    observe::MetricsRegistry *metricsRegistry() { return metricsReg.get(); }

    /** Per-FASE-site speculation profile (sites keyed by FaseBegin
     *  pc; nullptr when metrics are off). */
    observe::SpecProfile *specProfile() { return specProf.get(); }

  private:
    void onMisspeculation(Addr addr, mem::MisspecKind kind);
    /** OS-relayed half of the trap: broadcast the rollback. */
    void deliverMisspecSignal(Addr fault_addr);
    void onSpecBufferFull(Tick window);

    void buildMetrics();

    MachineConfig cfg;
    sim::EventQueue eq;
    StatGroup root;
    std::unique_ptr<trace::Manager> traceMgr;
    std::unique_ptr<observe::MetricsRegistry> metricsReg;
    std::unique_ptr<observe::MetricsSampler> metricsSampler;
    std::unique_ptr<observe::SpecProfile> specProf;
    std::unique_ptr<mem::MemorySystem> memsys;
    std::unique_ptr<LockTable> locks;
    std::vector<std::unique_ptr<Core>> cores;
    runtime::VirtualOs vos;
    runtime::Pid vosPid = 0;
    SpecId specCounter = 1;
    unsigned coresDone = 0;
    Counter misspecInterrupts;
};

} // namespace pmemspec::cpu

#endif // PMEMSPEC_CPU_MACHINE_HH
