/**
 * @file
 * The trace instruction set replayed by the timing cores.
 *
 * Workloads execute functionally against the runtime layer and record
 * *logical* PM events; the per-design lowering pass (src/persistency)
 * expands those into this instruction set, mirroring the programming
 * models of the paper's Figure 2. A trace is one thread's instruction
 * stream.
 */

#ifndef PMEMSPEC_CPU_TRACE_HH
#define PMEMSPEC_CPU_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pmemspec::cpu
{

/** Operations a timing core can replay. */
enum class TraceOp : std::uint8_t
{
    /** PM load; issues without blocking the core (up to the MLP
     *  limit) -- models OoO overlap of independent loads. */
    Load,
    /** Dependent PM load (e.g. pointer chase); the core cannot
     *  advance until the data returns. */
    LoadDep,
    /** PM store; occupies a store-queue entry until drained. */
    Store,
    /** x86 CLWB; occupies a store-queue entry, flushes the block to
     *  the PMC; outstanding until accepted (ADR). */
    Clwb,
    /** x86 SFENCE: stall until the store queue is empty and every
     *  prior CLWB has been accepted. Blocks volatile ops too. */
    Sfence,
    /** HOPS ofence: close the persist-buffer epoch, no stall. */
    Ofence,
    /** HOPS dfence: stall until the persist buffer is durable. */
    Dfence,
    /** PMEM-Spec spec-barrier: stall until the store queue has
     *  drained and the persist-path is durable. */
    SpecBarrier,
    /** PMEM-Spec spec-assign: latch a fresh speculation ID. */
    SpecAssign,
    /** PMEM-Spec spec-revoke: clear the speculation ID register. */
    SpecRevoke,
    /** Acquire the mutex identified by `addr`. */
    LockAcq,
    /** Release the mutex identified by `addr`. */
    LockRel,
    /** Marker: a failure-atomic section begins (rollback point). */
    FaseBegin,
    /** Marker: the FASE committed (throughput event). */
    FaseEnd,
    /** Spend `addr` core cycles of non-memory work. */
    Compute,
    /** DPO: stall until the core's own persist buffer drains; DPO
     *  enforces persist order on every program barrier, including
     *  lock operations (Section 8.2.2). */
    DrainBuffer,
};

/** One replayed instruction. `addr` is overloaded per op (byte
 *  address, lock id, or compute cycles). */
struct TraceInstr
{
    TraceOp op;
    Addr addr;
};

/** A single thread's instruction stream. */
using Trace = std::vector<TraceInstr>;

/** Human-readable op name (debugging and tests). */
const char *traceOpName(TraceOp op);

/** Count occurrences of an op in a trace. */
std::size_t countOps(const Trace &t, TraceOp op);

} // namespace pmemspec::cpu

#endif // PMEMSPEC_CPU_TRACE_HH
