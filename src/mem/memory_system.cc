#include "memory_system.hh"

#include <memory>

#include "common/logging.hh"

namespace pmemspec::mem
{

using persistency::Design;

MemorySystem::MemorySystem(sim::EventQueue &eq, StatGroup *parent,
                           const MemConfig &cfg_, Design design_)
    : sim::SimObject("memsys", eq, parent),
      cfg(cfg_),
      dsgn(design_),
      l1Mshrs(cfg_.numCores)
{
    fatal_if(cfg.numPmcs == 0, "need at least one PM controller");
    stats().addCounter("coherenceInvalidations", &coherenceInvalidations,
                       "remote L1 invalidations on store drains");
    stats().addCounter("storeAllocFetches", &storeAllocFetches,
                       "write-allocate fetches triggered by stores");
    stats().addCounter("crossPmcReorderHazards", &crossPmcReorderHazards,
                       "per-core persists arriving across controllers "
                       "out of store order (Section 7 oracle)");
    stats().addCounter("poisonedFills", &poisonedFills,
                       "PM fills that delivered poison to the core "
                       "after the PMC retry budget ran out");

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s.push_back(std::make_unique<SetAssocCache>(
            "l1d" + std::to_string(c), cfg.l1Bytes, cfg.l1Ways));
    }
    l1DirEnabled = cfg.numCores <= 64;
    sharedLlc = std::make_unique<SetAssocCache>("llc", cfg.llcBytes,
                                                cfg.llcWays);
    for (unsigned i = 0; i < cfg.numPmcs; ++i) {
        pmControllers.push_back(std::make_unique<PmController>(
            eq, &stats(), cfg, dsgn,
            i == 0 ? "pmc" : "pmc" + std::to_string(i)));
    }

    if (dsgn == Design::PmemSpec) {
        // One lane per core with an ordered NoC (the Section 7
        // extension serialises a core's persists across controllers);
        // one independent lane per controller otherwise.
        pathLanes = (cfg.numPmcs > 1 && !cfg.orderedNoc)
                        ? cfg.numPmcs
                        : 1;
        persistSeqCounter.assign(cfg.numCores, 0);
        laneSeqs.assign(std::size_t{cfg.numCores} * pathLanes, {});
        outstandingSeqs.assign(cfg.numCores, {});
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            for (unsigned lane = 0; lane < pathLanes; ++lane) {
                const Tick lat =
                    cfg.persistPathLatency + lane * cfg.nocSkew;
                const std::size_t lane_idx =
                    std::size_t{c} * pathLanes + lane;
                paths.push_back(std::make_unique<PersistPath>(
                    eq, &stats(), c, lat, cfg.persistPathCapacity,
                    [this, lane_idx](CoreId core, Addr a,
                                     std::optional<SpecId> s) {
                        if (!pmcFor(a).acceptPersist(core, a, s))
                            return false;
                        if (pathLanes > 1) {
                            auto &fifo = laneSeqs[lane_idx];
                            recordPersistArrival(core, fifo.front());
                            fifo.pop_front();
                        }
                        return true;
                    }));
            }
        }
    }

    if (usesPersistBuffers(dsgn)) {
        const bool strict = (dsgn == Design::DPO);
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            pbufs.push_back(std::make_unique<PersistBuffer>(
                eq, &stats(), c, cfg.persistPathLatency,
                cfg.persistBufferEntries, cfg.persistBufferDrainWidth,
                strict, strict ? &dpoToken : nullptr,
                [this](CoreId core, Addr a) {
                    return pmcFor(a).acceptPersist(core, a,
                                                   std::nullopt);
                }));
        }
        if (dsgn == Design::HOPS) {
            for (auto &pb : pbufs) {
                pb->setFilterHooks(
                    [this](Addr a) { pmcFor(a).filterInsert(a); },
                    [this](Addr a) { pmcFor(a).filterRemove(a); });
            }
        }
        // Cross-buffer dependencies can clear whenever any buffer
        // makes progress; re-pump everyone.
        for (auto &pb : pbufs) {
            pb->setProgressHook([this] {
                for (auto &other : pbufs)
                    other->pump();
            });
        }
    }
}

unsigned
MemorySystem::pmcIndexFor(Addr block) const
{
    return static_cast<unsigned>(blockNumber(block) %
                                 pmControllers.size());
}

PmController &
MemorySystem::pmcFor(Addr block)
{
    return *pmControllers[pmcIndexFor(block)];
}

void
MemorySystem::recordPersistArrival(CoreId c, std::uint64_t seq)
{
    auto &outstanding = outstandingSeqs[c];
    auto it = outstanding.find(seq);
    panic_if(it == outstanding.end(), "unknown persist sequence");
    if (it != outstanding.begin()) {
        // An older persist of this core is still in flight on another
        // lane: the store order was violated across controllers.
        ++crossPmcReorderHazards;
    }
    outstanding.erase(it);
}

void
MemorySystem::invalidateOtherL1s(CoreId c, Addr block)
{
    if (!l1DirEnabled) {
        for (CoreId o = 0; o < cfg.numCores; ++o) {
            if (o == c)
                continue;
            if (l1s[o]->invalidate(block))
                ++coherenceInvalidations;
        }
        return;
    }
    std::uint64_t mask =
        l1Dir.get(block) & ~(std::uint64_t{1} << c);
    while (mask) {
        const auto o = static_cast<CoreId>(__builtin_ctzll(mask));
        mask &= mask - 1;
        if (l1s[o]->invalidate(block))
            ++coherenceInvalidations;
        l1Dir.clearBit(block, o);
    }
}

void
MemorySystem::handleLlcEviction(const Eviction &ev)
{
    if (!ev.dirty)
        return;
    // Design-specific: IntelX86 writes back; the buffered designs and
    // PMEM-Spec drop the data (PMEM-Spec notifies its spec buffer).
    pmcFor(ev.blockAddr).writeBack(ev.blockAddr, [] {});
}

void
MemorySystem::fillL1(CoreId c, Addr block, bool dirty)
{
    // Mostly-inclusive: the LLC receives the block alongside the L1.
    if (auto llc_ev = sharedLlc->insert(block, false))
        handleLlcEviction(*llc_ev);
    if (auto l1_ev = l1s[c]->insert(block, dirty)) {
        l1Dir.clearBit(l1_ev->blockAddr, c);
        if (l1_ev->dirty) {
            // Dirty L1 victim migrates into the LLC.
            if (sharedLlc->contains(l1_ev->blockAddr)) {
                sharedLlc->markDirty(l1_ev->blockAddr);
            } else if (auto llc_ev = sharedLlc->insert(l1_ev->blockAddr,
                                                       true)) {
                handleLlcEviction(*llc_ev);
            }
        }
    }
    l1Dir.setBit(block, c);
}

void
MemorySystem::fillFromPm(CoreId c, Addr block, bool for_store,
                         Done on_done)
{
    auto it = llcMshrs.find(block);
    if (it != llcMshrs.end()) {
        it->second.push_back(std::move(on_done));
        return;
    }
    llcMshrs[block].push_back(std::move(on_done));
    (void)for_store;
    pmcFor(block).readChecked(block, [this, c, block](ReadStatus st) {
        if (st == ReadStatus::Poisoned)
            ++poisonedFills;
        fillL1(c, block, false);
        auto node = llcMshrs.extract(block);
        panic_if(node.empty(), "LLC MSHR vanished for block");
        for (auto &cb : node.mapped())
            cb();
    });
}

void
MemorySystem::missToLlc(CoreId c, Addr block, bool for_store,
                        Done on_done)
{
    Tick llc_lat = cfg.llcHitLatency + cfg.l1ToLlcExtra;
    schedule(After{llc_lat}, [this, c, block, for_store,
                         cb = std::move(on_done)]() mutable {
        if (sharedLlc->access(block)) {
            fillL1(c, block, false);
            cb();
        } else {
            fillFromPm(c, block, for_store, std::move(cb));
        }
    });
}

void
MemorySystem::load(CoreId c, Addr addr, Done on_done)
{
    const Addr block = blockAlign(addr);
    schedule(After{cfg.l1HitLatency}, [this, c, block,
                                  cb = std::move(on_done)]() mutable {
        if (l1s[c]->access(block)) {
            cb();
            return;
        }
        // Merge with an outstanding miss to the same block (MSHR).
        auto &mshr = l1Mshrs[c];
        auto it = mshr.find(block);
        if (it != mshr.end()) {
            it->second.push_back(std::move(cb));
            return;
        }
        mshr[block].push_back(std::move(cb));
        missToLlc(c, block, false, [this, c, block] {
            auto node = l1Mshrs[c].extract(block);
            panic_if(node.empty(), "L1 MSHR vanished for block");
            for (auto &waiter : node.mapped())
                waiter();
        });
    });
}

void
MemorySystem::captureStore(CoreId c, Addr block,
                           std::optional<SpecId> spec_id,
                           Done on_captured)
{
    switch (dsgn) {
      case Design::IntelX86:
        on_captured();
        return;
      case Design::PmemSpec: {
        const unsigned lane =
            (pathLanes > 1) ? pmcIndexFor(block) : 0;
        PersistPath &p = path(c, lane);
        if (p.full()) {
            p.notifyWhenNotFull([this, c, block, spec_id,
                                 cb = std::move(on_captured)]() mutable {
                captureStore(c, block, spec_id, std::move(cb));
            });
            return;
        }
        if (pathLanes > 1) {
            const std::uint64_t seq = persistSeqCounter[c]++;
            laneSeqs[std::size_t{c} * pathLanes + lane].push_back(seq);
            outstandingSeqs[c].emplace(seq, true);
        }
        p.send(block, spec_id);
        on_captured();
        return;
      }
      case Design::DPO:
      case Design::HOPS: {
        PersistBuffer &pb = *pbufs[c];
        if (pb.full()) {
            pb.notifyWhenNotFull([this, c, block, spec_id,
                                  cb = std::move(on_captured)]() mutable {
                captureStore(c, block, spec_id, std::move(cb));
            });
            return;
        }
        pb.append(block);
        on_captured();
        return;
      }
    }
}

void
MemorySystem::store(CoreId c, Addr addr, std::optional<SpecId> spec_id,
                    Done on_done)
{
    const Addr block = blockAlign(addr);
    // "PMEM-Spec sends PM data being stored to both the CPU caches and
    // the persist-path simultaneously when they leave the store queue"
    // (Section 4.2); the buffered designs capture at the same point.
    captureStore(c, block, spec_id,
                 [this, c, block, cb = std::move(on_done)]() mutable {
        schedule(After{cfg.l1HitLatency}, [this, c, block,
                                      cb = std::move(cb)]() mutable {
            invalidateOtherL1s(c, block);
            if (l1s[c]->access(block)) {
                l1s[c]->markDirty(block);
                cb();
                return;
            }
            // Write-allocate: fetch the block, then dirty it.
            ++storeAllocFetches;
            auto &mshr = l1Mshrs[c];
            auto dirty_then = [this, c, block,
                               cb2 = std::move(cb)]() mutable {
                if (l1s[c]->contains(block))
                    l1s[c]->markDirty(block);
                else
                    fillL1(c, block, true);
                cb2();
            };
            auto it = mshr.find(block);
            if (it != mshr.end()) {
                it->second.push_back(std::move(dirty_then));
                return;
            }
            mshr[block].push_back(std::move(dirty_then));
            missToLlc(c, block, true, [this, c, block] {
                auto node = l1Mshrs[c].extract(block);
                panic_if(node.empty(), "L1 MSHR vanished for block");
                for (auto &waiter : node.mapped())
                    waiter();
            });
        });
    });
}

void
MemorySystem::clwb(CoreId c, Addr addr, Done on_done)
{
    const Addr block = blockAlign(addr);
    schedule(After{cfg.l1HitLatency}, [this, c, block,
                                  cb = std::move(on_done)]() mutable {
        if (dsgn == Design::DPO) {
            // DPO's persist buffers already captured the stores; the
            // CLWB microcode completes without touching PM.
            cb();
            return;
        }
        const bool l1_dirty =
            l1s[c]->contains(block) && l1s[c]->isDirty(block);
        const bool llc_dirty =
            sharedLlc->contains(block) && sharedLlc->isDirty(block);
        if (!l1_dirty && !llc_dirty) {
            cb(); // nothing to flush
            return;
        }
        l1s[c]->markClean(block);
        sharedLlc->markClean(block);
        // Transport to the PMC, acceptance into the ADR domain, then
        // the completion acknowledgment travelling back to the core
        // (what a following SFENCE actually waits for).
        schedule(After{cfg.l1ToPmcLatency},
                   [this, block, cb = std::move(cb)]() mutable {
                       pmcFor(block).writeBack(
                           block, [this, cb = std::move(cb)]() mutable {
                               schedule(After{cfg.l1ToPmcLatency},
                                          std::move(cb));
                           });
                   });
    });
}

void
MemorySystem::specBarrier(CoreId c, Done on_done)
{
    panic_if(dsgn != Design::PmemSpec,
             "spec-barrier only exists under PMEM-Spec");
    // The core learns that its persists reached the PM controller(s)
    // through small acks on the regular on-chip network (the persist
    // path itself is write-only), one transport delay after the last
    // arrival, across every lane.
    auto remaining = std::make_shared<unsigned>(pathLanes);
    auto cb = std::make_shared<Done>(std::move(on_done));
    for (unsigned lane = 0; lane < pathLanes; ++lane) {
        path(c, lane).notifyWhenEmpty([this, remaining, cb] {
            if (--*remaining == 0) {
                schedule(After{cfg.l1ToPmcLatency}, [cb] { (*cb)(); });
            }
        });
    }
}

void
MemorySystem::dfence(CoreId c, Done on_done)
{
    panic_if(!usesPersistBuffers(dsgn),
             "dfence requires persist buffers");
    // The durability ack for the last drained entry returns over the
    // regular on-chip network.
    pbufs[c]->notifyWhenEmpty([this, cb = std::move(on_done)]() mutable {
        schedule(After{cfg.l1ToPmcLatency}, std::move(cb));
    });
}

void
MemorySystem::ofence(CoreId c)
{
    panic_if(!usesPersistBuffers(dsgn),
             "ofence requires persist buffers");
    pbufs[c]->ofence();
}

void
MemorySystem::onLockRelease(CoreId c, unsigned lock_id)
{
    if (!usesPersistBuffers(dsgn))
        return;
    // Watermark: everything core c buffered before this release must
    // be durable before the next acquirer's later persists drain.
    lockWatermarks[lock_id] = LockWatermark{c, pbufs[c]->nextSeq()};
}

void
MemorySystem::onLockAcquire(CoreId c, unsigned lock_id)
{
    if (!usesPersistBuffers(dsgn))
        return;
    auto it = lockWatermarks.find(lock_id);
    if (it == lockWatermarks.end())
        return;
    const LockWatermark &wm = it->second;
    if (wm.releaser == c)
        return;
    pbufs[c]->addDependency(pbufs[wm.releaser].get(), wm.seq);
}

} // namespace pmemspec::mem
