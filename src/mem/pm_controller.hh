/**
 * @file
 * The persistent-memory controller.
 *
 * The PMC owns the read/write queues (32/64 entries, Table 3), a
 * banked Optane-like device model (read 175ns, write 94ns), and the
 * design-specific persistence machinery:
 *
 *  - IntelX86: dirty LLC writebacks and CLWB flushes enter the write
 *    queue; ADR makes a write durable at acceptance.
 *  - HOPS/DPO: regular-path writebacks are dropped (the persist
 *    buffers are the persistence agents); HOPS additionally keeps a
 *    counting bloom filter of buffered addresses that every PM read
 *    must consult, delaying on (possibly false-positive) hits.
 *  - PMEM-Spec: regular-path writebacks are dropped but reported to
 *    the speculation buffer as WriteBack inputs; persists arriving on
 *    the decoupled paths enter the write queue and feed the Persist
 *    input; PM reads feed the Read input.
 */

#ifndef PMEMSPEC_MEM_PM_CONTROLLER_HH
#define PMEMSPEC_MEM_PM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/bloom_filter.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/block_table.hh"
#include "mem/mem_config.hh"
#include "mem/speculation_buffer.hh"
#include "persistency/design.hh"
#include "sim/sim_object.hh"

namespace pmemspec::mem
{

/**
 * The Section 5.2.2 store-order predicate, shared by the timing
 * PMC's order check, the functional fault injector's mirror of it,
 * and the crash-state reorder explorer's ordering-edge construction:
 * given the highest speculation ID already recorded for a block
 * within the window, an arriving persist with a *lower* ID persisted
 * after a store that happens-before ordered later -- a WAW inversion
 * (missing-update hazard). Equal IDs are the same store re-observed
 * and are never a violation.
 */
constexpr bool
storeOrderViolated(SpecId recorded, SpecId arriving)
{
    return arriving < recorded;
}

/** Outcome of a checked PM read (media-fault aware read path). */
enum class ReadStatus
{
    Ok,
    /** The block is uncorrectable and the bounded retry budget is
     *  exhausted: the poison propagates to the requester (the
     *  device-level analogue of runtime::MediaError). */
    Poisoned,
};

/** The PM controller at the bottom of the memory system. */
class PmController : public sim::SimObject
{
  public:
    PmController(sim::EventQueue &eq, StatGroup *parent,
                 const MemConfig &cfg, persistency::Design design,
                 std::string name = "pmc");

    /**
     * Regular-path PM read (the request missed every cache).
     * @param on_done invoked when the data returns from the device.
     */
    void read(Addr block_addr, std::function<void()> on_done);

    /**
     * Media-fault-aware read: like read(), but if the block is
     * poisoned the PMC retries the device read up to
     * cfg.pmcPoisonRetries times (each paying full device latency --
     * a transient error may clear) and then delivers
     * ReadStatus::Poisoned instead of data. Graceful degradation:
     * one bad block fails one request, never the controller.
     */
    void readChecked(Addr block_addr,
                     std::function<void(ReadStatus)> on_done);

    /**
     * Mark a block uncorrectable. With transient_reads == 0 the
     * poison is hard (only clearPoison removes it); with N > 0 the
     * error clears after N completed device reads (a marginal cell
     * that the retry sequence scrubs back to health).
     */
    void poisonBlock(Addr block_addr, unsigned transient_reads = 0);

    /** Remove poison (host scrub / page retirement + remap).
     *  @return true if the block was poisoned. */
    bool clearPoisonedBlock(Addr block_addr);

    /** Is the block currently poisoned? */
    bool isBlockPoisoned(Addr block_addr) const
    {
        return blocks.poisoned(block_addr);
    }

    /**
     * Regular-path writeback (dirty LLC eviction or explicit CLWB
     * flush). Handling is design-specific; see the file comment.
     * @param on_accepted invoked once the writeback is accepted into
     *        the persistent domain (immediately for designs that drop
     *        it -- the caller's flush is then trivially "complete").
     */
    void writeBack(Addr block_addr, std::function<void()> on_accepted);

    /**
     * A persist arrives from a persist-path or persist buffer.
     * @return false when the write queue is full (backpressure).
     */
    bool acceptPersist(CoreId core, Addr block_addr,
                       std::optional<SpecId> spec_id);

    /** HOPS: keep the PMC bloom filter in sync with buffer contents. */
    void filterInsert(Addr block_addr);
    void filterRemove(Addr block_addr);

    /** The speculation buffer (valid only for Design::PmemSpec). */
    SpeculationBuffer &specBuffer();

    /** Attach the machine's event recorder; `unit` is this PMC's
     *  index (forwarded to the speculation buffer). */
    void setTraceManager(trace::Manager *mgr, std::uint16_t unit = 0);

    /** Occupancies, for tests. */
    unsigned readQueueOccupancy() const { return outstandingReads; }
    unsigned writeQueueOccupancy() const
    {
        return static_cast<unsigned>(writeQueue);
    }

    Counter reads;
    Counter writes;
    Counter writeCoalesces;
    Counter droppedWritebacks;
    Counter persistsAccepted;
    Counter persistsRefused;
    Counter bloomTrueHits;
    Counter bloomFalsePositives;
    Counter poisonRetries;
    Counter poisonedReads;
    Counter poisonHeals;
    Accumulator readLatencyStat;

  private:
    /** Issue a device read; completion callback at service end. */
    void serviceRead(Addr block_addr, Tick enq, std::function<void()> cb);

    /** One attempt of the poisoned-read retry loop. */
    void readAttempt(Addr block_addr, unsigned retries_left,
                     std::function<void(ReadStatus)> cb);

    /** Push one write into the banked device. */
    void serviceWrite(Addr block_addr);

    Tick &bankFree(Addr block_addr);

    const MemConfig cfg;
    persistency::Design design;

    std::vector<Tick> banks; ///< per-bank availability (reads)
    Tick writeServerFree = 0; ///< aggregate write-bandwidth server
    unsigned outstandingReads = 0;
    unsigned writeQueue = 0;

    /**
     * All per-block controller state -- write-queue coalescability
     * (Section 4.2), media poison, the HOPS pending-persist count and
     * read waiters, and the Section 5.2.2 spec-ID order automaton --
     * in one struct-of-arrays open-addressing table.
     */
    BlockTable blocks;

    /** HOPS: bloom filter over the persist buffers' contents; the
     *  block table holds the true counts behind it. */
    BloomFilter bloom;

    /** PMEM-Spec machinery. */
    std::optional<SpeculationBuffer> specBuf;

    /** Run the spec-ID check for a tagged persist. */
    void checkStoreOrder(Addr block_addr, SpecId spec_id);

    trace::Manager *traceMgr = nullptr;
    std::uint16_t traceUnit = 0;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_PM_CONTROLLER_HH
