/**
 * @file
 * Struct-of-arrays per-block state table for the PM controller.
 *
 * The PMC tracks several small automata per cache block: write-queue
 * coalescability, media poison (with a transient-heal countdown), the
 * HOPS pending-persist count plus its read-waiter list, and the
 * Section 5.2.2 speculation-ID order check. These used to live in
 * five separate std::map<Addr, ...> instances -- five red-black trees
 * allocating a node per block and chasing pointers on every persist.
 *
 * BlockTable replaces all of them with one open-addressing hash table
 * (linear probing, power-of-two capacity) whose per-block fields are
 * stored as parallel arrays: a probe touches only the key/flag lanes,
 * and each automaton's step is one method that probes once and
 * resolves the transition in place. Entries are never tombstoned --
 * clearing an automaton just drops its flag bit, and fully-dead
 * entries are compacted away at the next rehash -- so probe chains
 * stay intact without deletion bookkeeping.
 *
 * The durable automaton state (everything except the read-waiter
 * callbacks, which are volatile by nature) can be captured with
 * snapshot() and re-installed with restore(), giving the fault
 * injection layer a crash-consistent view of controller metadata.
 */

#ifndef PMEMSPEC_MEM_BLOCK_TABLE_HH
#define PMEMSPEC_MEM_BLOCK_TABLE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pmemspec::mem
{

/** See the file comment. */
class BlockTable
{
  public:
    explicit BlockTable(std::size_t capacity_hint = 256)
    {
        std::size_t cap = 16;
        while (cap < capacity_hint)
            cap <<= 1;
        rebuild(cap);
    }

    // ---- write-queue coalescing automaton --------------------------

    /** Is the block sitting in the write queue, still mergeable? */
    bool
    coalescable(Addr a) const
    {
        const std::uint32_t i = find(a);
        return i != kNil && (flags_[i] & kCoalescable);
    }

    /**
     * Mark the block coalescable.
     * @return false when it already was (the caller's store merges).
     */
    bool
    markCoalescable(Addr a)
    {
        const std::uint32_t i = findOrInsert(a);
        if (flags_[i] & kCoalescable)
            return false;
        flags_[i] |= kCoalescable;
        return true;
    }

    /** The device write started; the block stops being mergeable. */
    void
    clearCoalescable(Addr a)
    {
        const std::uint32_t i = find(a);
        if (i != kNil)
            flags_[i] &= static_cast<std::uint8_t>(~kCoalescable);
    }

    // ---- media-poison automaton ------------------------------------

    /** Mark the block uncorrectable; `transient_reads` completed
     *  device reads clear it (0 = hard poison). */
    void
    poison(Addr a, unsigned transient_reads)
    {
        const std::uint32_t i = findOrInsert(a);
        flags_[i] |= kPoisoned;
        poisonTtl_[i] = transient_reads;
    }

    /** Scrub / full-block-write heal. @return true if poisoned. */
    bool
    clearPoison(Addr a)
    {
        const std::uint32_t i = find(a);
        if (i == kNil || !(flags_[i] & kPoisoned))
            return false;
        flags_[i] &= static_cast<std::uint8_t>(~kPoisoned);
        return true;
    }

    bool
    poisoned(Addr a) const
    {
        const std::uint32_t i = find(a);
        return i != kNil && (flags_[i] & kPoisoned);
    }

    enum class PoisonRead
    {
        Clean,   ///< block is not poisoned
        Healed,  ///< this read's transient countdown cleared the error
        Faulted, ///< still uncorrectable
    };

    /** Step the poison automaton for one completed device read. */
    PoisonRead
    notePoisonRead(Addr a)
    {
        const std::uint32_t i = find(a);
        if (i == kNil || !(flags_[i] & kPoisoned))
            return PoisonRead::Clean;
        if (poisonTtl_[i] > 0 && --poisonTtl_[i] == 0) {
            flags_[i] &= static_cast<std::uint8_t>(~kPoisoned);
            return PoisonRead::Healed;
        }
        return PoisonRead::Faulted;
    }

    // ---- HOPS pending-persist counter + read waiters ---------------

    unsigned
    pendingPersists(Addr a) const
    {
        const std::uint32_t i = find(a);
        return i == kNil ? 0 : persistCnt_[i];
    }

    /** A persist to the block entered a persist buffer. */
    void
    persistBuffered(Addr a)
    {
        ++persistCnt_[findOrInsert(a)];
    }

    /**
     * A persist to the block drained from its buffer.
     * @return true when the block's count hit zero (waiters runnable).
     */
    bool
    persistDrained(Addr a)
    {
        const std::uint32_t i = find(a);
        panic_if(i == kNil || persistCnt_[i] == 0,
                 "persist drained without matching buffered persist");
        return --persistCnt_[i] == 0;
    }

    /** Queue a callback until the block's pending persists drain. */
    void
    addPersistWaiter(Addr a, std::function<void()> f)
    {
        const std::uint32_t i = findOrInsert(a);
        const std::uint32_t w = allocWaiter();
        waiters_[w].fn = std::move(f);
        waiters_[w].next = kNil;
        if (waiterHead_[i] == kNil)
            waiterHead_[i] = w;
        else
            waiters_[waiterTail_[i]].next = w;
        waiterTail_[i] = w;
    }

    /** Detach the block's waiters in FIFO order. */
    std::vector<std::function<void()>>
    takePersistWaiters(Addr a)
    {
        std::vector<std::function<void()>> out;
        const std::uint32_t i = find(a);
        if (i == kNil)
            return out;
        std::uint32_t w = waiterHead_[i];
        waiterHead_[i] = waiterTail_[i] = kNil;
        while (w != kNil) {
            out.push_back(std::move(waiters_[w].fn));
            const std::uint32_t next = waiters_[w].next;
            freeWaiter(w);
            w = next;
        }
        return out;
    }

    // ---- speculation-ID order automaton (Section 5.2.2) ------------

    enum class SpecStep
    {
        Inserted,  ///< first persist in a window: start tracking
        Refreshed, ///< in-order persist: max-merged, window refreshed
        Violation, ///< lower ID inside the window: WAW inversion
    };

    struct SpecResult
    {
        SpecStep step;
        SpecId prev; ///< ID recorded before this step (trace payload)
    };

    /**
     * Step the order automaton for a tagged persist: a violation
     * (storeOrderViolated against the ID recorded within `window`)
     * clears the entry; otherwise the recorded ID max-merges and the
     * window restarts. One probe resolves the whole transition.
     */
    SpecResult
    specPersist(Addr a, SpecId id, Tick now, Tick window)
    {
        const std::uint32_t i = findOrInsert(a);
        if (flags_[i] & kSpecTracked) {
            const SpecId prev = specId_[i];
            if (now - specAt_[i] <= window && id < prev) {
                flags_[i] &= static_cast<std::uint8_t>(~kSpecTracked);
                return {SpecStep::Violation, prev};
            }
            specId_[i] = prev > id ? prev : id;
            specAt_[i] = now;
            return {SpecStep::Refreshed, prev};
        }
        flags_[i] |= kSpecTracked;
        specId_[i] = id;
        specAt_[i] = now;
        return {SpecStep::Inserted, id};
    }

    /**
     * Lazy expiry sweep for one block: drops the entry if its window
     * elapsed without a refresh. @return the expired ID, or kNil32
     * sentinel via `expired=false` -- i.e. true + ID when expired.
     */
    bool
    specExpire(Addr a, Tick now, Tick window, SpecId *expired_id)
    {
        const std::uint32_t i = find(a);
        if (i == kNil || !(flags_[i] & kSpecTracked) ||
            now - specAt_[i] <= window)
            return false;
        if (expired_id)
            *expired_id = specId_[i];
        flags_[i] &= static_cast<std::uint8_t>(~kSpecTracked);
        return true;
    }

    bool
    specTracked(Addr a) const
    {
        const std::uint32_t i = find(a);
        return i != kNil && (flags_[i] & kSpecTracked);
    }

    // ---- snapshot / restore ----------------------------------------

    /**
     * Durable per-block automaton state, compacted to live entries.
     * Read-waiter callbacks are volatile (they reference simulation
     * objects of the running instance) and are deliberately excluded:
     * a restore re-installs metadata, not in-flight continuations.
     */
    struct Snapshot
    {
        std::vector<Addr> key;
        std::vector<std::uint8_t> flags;
        std::vector<std::uint32_t> poisonTtl;
        std::vector<std::uint32_t> persistCnt;
        std::vector<SpecId> specId;
        std::vector<Tick> specAt;
    };

    Snapshot
    snapshot() const
    {
        Snapshot s;
        for (std::uint32_t i = 0; i < cap_; ++i) {
            if (!(flags_[i] & kOccupied) || dead(i))
                continue;
            s.key.push_back(key_[i]);
            s.flags.push_back(
                flags_[i] & static_cast<std::uint8_t>(~kOccupied));
            s.poisonTtl.push_back(poisonTtl_[i]);
            s.persistCnt.push_back(persistCnt_[i]);
            s.specId.push_back(specId_[i]);
            s.specAt.push_back(specAt_[i]);
        }
        return s;
    }

    /** Replace the table contents with a snapshot's (waiters reset). */
    void
    restore(const Snapshot &s)
    {
        std::size_t cap = 16;
        while (cap * 10 < s.key.size() * 16)
            cap <<= 1;
        rebuild(cap);
        waiters_.clear();
        waiterFree_ = kNil;
        for (std::size_t n = 0; n < s.key.size(); ++n) {
            const std::uint32_t i = findOrInsert(s.key[n]);
            flags_[i] = static_cast<std::uint8_t>(s.flags[n] | kOccupied);
            poisonTtl_[i] = s.poisonTtl[n];
            persistCnt_[i] = s.persistCnt[n];
            specId_[i] = s.specId[n];
            specAt_[i] = s.specAt[n];
        }
    }

    /** Live (non-dead) entries; dead ones compact away on rehash. */
    std::size_t
    blocksTracked() const
    {
        std::size_t n = 0;
        for (std::uint32_t i = 0; i < cap_; ++i)
            if ((flags_[i] & kOccupied) && !dead(i))
                ++n;
        return n;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    enum : std::uint8_t
    {
        kOccupied = 1,
        kCoalescable = 2,
        kPoisoned = 4,
        kSpecTracked = 8,
    };

    /** An entry whose automata are all idle; rehash reclaims it. */
    bool
    dead(std::uint32_t i) const
    {
        return flags_[i] == kOccupied && persistCnt_[i] == 0 &&
               waiterHead_[i] == kNil;
    }

    static std::uint64_t
    hashBlock(Addr a)
    {
        return blockNumber(a) * 0x9E3779B97F4A7C15ull;
    }

    std::uint32_t
    find(Addr a) const
    {
        const Addr k = blockAlign(a);
        std::uint32_t i =
            static_cast<std::uint32_t>(hashBlock(k) >> shift_);
        while (flags_[i] & kOccupied) {
            if (key_[i] == k)
                return i;
            i = (i + 1) & (cap_ - 1);
        }
        return kNil;
    }

    std::uint32_t
    findOrInsert(Addr a)
    {
        const Addr k = blockAlign(a);
        std::uint32_t i =
            static_cast<std::uint32_t>(hashBlock(k) >> shift_);
        while (flags_[i] & kOccupied) {
            if (key_[i] == k)
                return i;
            i = (i + 1) & (cap_ - 1);
        }
        if ((occupied_ + 1) * 10 > cap_ * 7) {
            grow();
            return findOrInsert(k);
        }
        ++occupied_;
        key_[i] = k;
        flags_[i] = kOccupied;
        poisonTtl_[i] = 0;
        persistCnt_[i] = 0;
        specId_[i] = 0;
        specAt_[i] = 0;
        waiterHead_[i] = kNil;
        waiterTail_[i] = kNil;
        return i;
    }

    void
    rebuild(std::size_t cap)
    {
        cap_ = static_cast<std::uint32_t>(cap);
        shift_ = 64;
        while ((std::size_t{1} << (64 - shift_)) < cap)
            --shift_;
        occupied_ = 0;
        key_.assign(cap, 0);
        flags_.assign(cap, 0);
        poisonTtl_.assign(cap, 0);
        persistCnt_.assign(cap, 0);
        specId_.assign(cap, 0);
        specAt_.assign(cap, 0);
        waiterHead_.assign(cap, kNil);
        waiterTail_.assign(cap, kNil);
    }

    void
    grow()
    {
        // Re-file live entries into a larger table; dead entries (all
        // automata idle) are dropped here, which is what bounds the
        // footprint of long service runs.
        BlockTable bigger(cap_ * 2);
        for (std::uint32_t i = 0; i < cap_; ++i) {
            if (!(flags_[i] & kOccupied) || dead(i))
                continue;
            const std::uint32_t j = bigger.findOrInsert(key_[i]);
            bigger.flags_[j] = flags_[i];
            bigger.poisonTtl_[j] = poisonTtl_[i];
            bigger.persistCnt_[j] = persistCnt_[i];
            bigger.specId_[j] = specId_[i];
            bigger.specAt_[j] = specAt_[i];
            bigger.waiterHead_[j] = waiterHead_[i];
            bigger.waiterTail_[j] = waiterTail_[i];
        }
        cap_ = bigger.cap_;
        shift_ = bigger.shift_;
        occupied_ = bigger.occupied_;
        key_ = std::move(bigger.key_);
        flags_ = std::move(bigger.flags_);
        poisonTtl_ = std::move(bigger.poisonTtl_);
        persistCnt_ = std::move(bigger.persistCnt_);
        specId_ = std::move(bigger.specId_);
        specAt_ = std::move(bigger.specAt_);
        waiterHead_ = std::move(bigger.waiterHead_);
        waiterTail_ = std::move(bigger.waiterTail_);
        // The waiter pool is indexed independently of the key table
        // and moves untouched.
    }

    std::uint32_t
    allocWaiter()
    {
        if (waiterFree_ != kNil) {
            const std::uint32_t w = waiterFree_;
            waiterFree_ = waiters_[w].next;
            return w;
        }
        waiters_.push_back({});
        return static_cast<std::uint32_t>(waiters_.size() - 1);
    }

    void
    freeWaiter(std::uint32_t w)
    {
        waiters_[w].fn = nullptr;
        waiters_[w].next = waiterFree_;
        waiterFree_ = w;
    }

    struct WaiterNode
    {
        std::function<void()> fn;
        std::uint32_t next = kNil;
    };

    std::uint32_t cap_ = 0;
    unsigned shift_ = 64; ///< hash >> shift_ lands in [0, cap_)
    std::uint32_t occupied_ = 0;
    std::vector<Addr> key_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint32_t> poisonTtl_;
    std::vector<std::uint32_t> persistCnt_;
    std::vector<SpecId> specId_;
    std::vector<Tick> specAt_;
    std::vector<std::uint32_t> waiterHead_;
    std::vector<std::uint32_t> waiterTail_;

    std::vector<WaiterNode> waiters_;
    std::uint32_t waiterFree_ = kNil;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_BLOCK_TABLE_HH
