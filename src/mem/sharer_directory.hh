/**
 * @file
 * Host-side acceleration of the invalidation-based coherence model:
 * an exact block -> L1-sharer bitmask directory.
 *
 * The timing model broadcasts every store drain to all other L1s;
 * done literally that is numCores-1 tag-array probes per store, and
 * it dominates the simulator's host profile. The directory tracks
 * exactly which L1s hold each block so the broadcast only touches
 * actual sharers. It changes nothing observable: the caches stay
 * authoritative, the directory is pure bookkeeping kept in sync at
 * the three membership-mutation sites (fill, eviction, invalidate).
 *
 * Open-addressed, power-of-two capacity, linear probing, same
 * multiplicative hash as mem::BlockTable. Entries whose mask drops
 * to zero become tombstones (kept for probe continuity) and are
 * compacted away on growth.
 */

#ifndef PMEMSPEC_MEM_SHARER_DIRECTORY_HH
#define PMEMSPEC_MEM_SHARER_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pmemspec::mem
{

/** Exact map from block address to a bitmask of sharer cores. */
class SharerDirectory
{
  public:
    explicit SharerDirectory(std::size_t initial_capacity = 1024)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        rebuild(cap);
    }

    /** Sharer mask of a block (0 when nobody holds it). */
    std::uint64_t
    get(Addr block) const
    {
        const std::size_t i = find(block);
        return i == npos ? 0 : mask_[i];
    }

    /** Core `core` gained the block (idempotent). */
    void
    setBit(Addr block, unsigned core)
    {
        const std::size_t i = findOrInsert(block);
        mask_[i] |= std::uint64_t{1} << core;
    }

    /** Core `core` dropped the block; the entry tombstones at 0. */
    void
    clearBit(Addr block, unsigned core)
    {
        const std::size_t i = find(block);
        if (i == npos)
            return;
        mask_[i] &= ~(std::uint64_t{1} << core);
    }

    /** Number of slots holding a key (live + tombstoned). */
    std::size_t occupied() const { return used_; }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};

    std::size_t
    bucket(Addr block) const
    {
        return static_cast<std::size_t>(
                   (blockNumber(block) *
                    0x9E3779B97F4A7C15ull) >> shift_);
    }

    std::size_t
    find(Addr block) const
    {
        std::size_t i = bucket(block);
        for (;;) {
            if (!present_[i])
                return npos;
            if (key_[i] == block)
                return i;
            i = (i + 1) & (cap_ - 1);
        }
    }

    std::size_t
    findOrInsert(Addr block)
    {
        std::size_t i = bucket(block);
        for (;;) {
            if (!present_[i]) {
                if (used_ * 10 >= cap_ * 7) { // 0.7 load factor
                    grow();
                    return findOrInsert(block);
                }
                present_[i] = 1;
                key_[i] = block;
                mask_[i] = 0;
                ++used_;
                return i;
            }
            if (key_[i] == block)
                return i;
            i = (i + 1) & (cap_ - 1);
        }
    }

    void
    rebuild(std::size_t cap)
    {
        cap_ = cap;
        shift_ = 64;
        for (std::size_t c = cap; c > 1; c >>= 1)
            --shift_;
        used_ = 0;
        key_.assign(cap, 0);
        mask_.assign(cap, 0);
        present_.assign(cap, 0);
    }

    void
    grow()
    {
        SharerDirectory bigger(cap_ * 2);
        for (std::size_t i = 0; i < cap_; ++i) {
            if (!present_[i] || mask_[i] == 0)
                continue; // tombstones die here
            const std::size_t j = bigger.findOrInsert(key_[i]);
            bigger.mask_[j] = mask_[i];
        }
        *this = std::move(bigger);
    }

    std::size_t cap_ = 0;
    unsigned shift_ = 64;
    std::size_t used_ = 0;
    std::vector<Addr> key_;
    std::vector<std::uint64_t> mask_;
    std::vector<std::uint8_t> present_;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_SHARER_DIRECTORY_HH
