#include "cache.hh"

#include "common/logging.hh"

namespace pmemspec::mem
{

SetAssocCache::SetAssocCache(std::string name, std::size_t size_bytes,
                             unsigned ways)
    : cacheName(std::move(name)),
      sets(size_bytes / blockBytes / ways),
      waysPerSet(ways),
      lines(sets * ways)
{
    fatal_if(size_bytes % (blockBytes * ways) != 0,
             "%s: size %zu not divisible into %u-way 64B sets",
             cacheName.c_str(), size_bytes, ways);
    fatal_if(!isPowerOf2(sets),
             "%s: %zu sets is not a power of two", cacheName.c_str(),
             sets);
}

std::size_t
SetAssocCache::setIndex(Addr block_addr) const
{
    return static_cast<std::size_t>(blockNumber(block_addr)) &
           (sets - 1);
}

SetAssocCache::Line *
SetAssocCache::find(Addr block_addr)
{
    Line *set = &lines[setIndex(block_addr) * waysPerSet];
    for (unsigned w = 0; w < waysPerSet; ++w) {
        if (set[w].matches(block_addr))
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::find(Addr block_addr) const
{
    return const_cast<SetAssocCache *>(this)->find(block_addr);
}

bool
SetAssocCache::access(Addr block_addr)
{
    if (Line *line = find(block_addr)) {
        line->lastUse = ++useClock;
        ++hits;
        return true;
    }
    ++misses;
    return false;
}

bool
SetAssocCache::contains(Addr block_addr) const
{
    return find(block_addr) != nullptr;
}

bool
SetAssocCache::isDirty(Addr block_addr) const
{
    const Line *line = find(block_addr);
    panic_if(!line, "%s: isDirty on absent block %#llx",
             cacheName.c_str(),
             static_cast<unsigned long long>(block_addr));
    return line->dirty();
}

void
SetAssocCache::markDirty(Addr block_addr)
{
    Line *line = find(block_addr);
    panic_if(!line, "%s: markDirty on absent block %#llx",
             cacheName.c_str(),
             static_cast<unsigned long long>(block_addr));
    line->meta |= Line::kDirty;
    line->lastUse = ++useClock;
}

void
SetAssocCache::markClean(Addr block_addr)
{
    if (Line *line = find(block_addr))
        line->meta &= ~Line::kDirty;
}

std::optional<Eviction>
SetAssocCache::insert(Addr block_addr, bool dirty)
{
    panic_if(blockAlign(block_addr) != block_addr,
             "%s: inserting unaligned address", cacheName.c_str());
    if (Line *line = find(block_addr)) {
        // Re-insertion of a present block just updates metadata.
        if (dirty)
            line->meta |= Line::kDirty;
        line->lastUse = ++useClock;
        return std::nullopt;
    }

    Line *set = &lines[setIndex(block_addr) * waysPerSet];
    Line *victim = nullptr;
    for (unsigned w = 0; w < waysPerSet; ++w) {
        if (!set[w].valid()) {
            victim = &set[w];
            break;
        }
        if (!victim || set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }

    std::optional<Eviction> evicted;
    if (victim->valid()) {
        ++evictions;
        if (victim->dirty())
            ++dirtyEvictions;
        evicted = Eviction{victim->tag(), victim->dirty()};
    } else {
        ++validCount;
    }

    victim->meta = block_addr | Line::kValid |
                   (dirty ? Line::kDirty : std::uint64_t{0});
    victim->lastUse = ++useClock;
    return evicted;
}

std::optional<bool>
SetAssocCache::invalidate(Addr block_addr)
{
    Line *line = find(block_addr);
    if (!line)
        return std::nullopt;
    const bool was_dirty = line->dirty();
    line->meta = 0;
    --validCount;
    return was_dirty;
}

} // namespace pmemspec::mem
