#include "speculation_buffer.hh"

#include "common/logging.hh"

namespace pmemspec::mem
{

SpeculationBuffer::SpeculationBuffer(sim::EventQueue &eq,
                                     StatGroup *parent,
                                     unsigned num_entries, Tick window)
    : sim::SimObject("specbuf", eq, parent),
      entries(num_entries),
      specWindow(window)
{
    fatal_if(num_entries == 0, "speculation buffer needs >= 1 entry");
    fatal_if(window == 0, "speculation window must be non-zero");
    stats().addCounter("loadMisspecs", &loadMisspecs,
                       "PM load misspeculations (stale reads)");
    stats().addCounter("storeMisspecs", &storeMisspecs,
                       "PM store misspeculations (ordering violations)");
    stats().addCounter("allocations", &allocations,
                       "speculation buffer entries allocated");
    stats().addCounter("expirations", &expirations,
                       "speculation windows expired benignly");
    stats().addCounter("fullPauses", &fullPauses,
                       "machine pauses due to a full buffer");
    stats().addCounter("droppedInputs", &droppedInputs,
                       "inputs dropped while the buffer was full");
}

SpeculationBuffer::Entry *
SpeculationBuffer::find(Addr block_addr)
{
    for (auto &e : entries) {
        if (e.valid && e.addr == block_addr)
            return &e;
    }
    return nullptr;
}

const SpeculationBuffer::Entry *
SpeculationBuffer::find(Addr block_addr) const
{
    return const_cast<SpeculationBuffer *>(this)->find(block_addr);
}

unsigned
SpeculationBuffer::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

SpecState
SpeculationBuffer::stateOf(Addr block_addr) const
{
    const Entry *e = find(block_addr);
    return e ? e->state : SpecState::Initial;
}

SpeculationBuffer::Entry *
SpeculationBuffer::allocate(Addr block_addr)
{
    for (auto &e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.addr = block_addr;
            e.state = SpecState::Initial;
            ++allocations;
            return &e;
        }
    }
    // Buffer full: request a machine-wide pause for one speculation
    // window so that existing entries expire (Section 5.3). The input
    // that could not be tracked is safe to drop *because* of the
    // pause: no core can issue a conflicting access that would have
    // needed this entry while the whole machine is stopped, and the
    // window bounds the lifetime of any in-flight race.
    ++droppedInputs;
    if (curTick() >= pausedUntil) {
        ++fullPauses;
        pausedUntil = curTick() + specWindow;
        if (onPause)
            onPause(specWindow);
    }
    return nullptr;
}

void
SpeculationBuffer::armWindow(Entry &e)
{
    e.inserted = curTick();
    const std::uint64_t gen = ++e.generation;
    Entry *slot = &e;
    scheduleIn(specWindow, [this, slot, gen] {
        // Deallocate only if the entry was not reused or refreshed.
        if (slot->valid && slot->generation == gen) {
            slot->valid = false;
            ++expirations;
        }
    });
}

void
SpeculationBuffer::fireMisspec(Entry &e, MisspecKind kind)
{
    e.state = SpecState::Misspeculation;
    if (kind == MisspecKind::LoadStale)
        ++loadMisspecs;
    else
        ++storeMisspecs;
    const Addr addr = e.addr;
    // The entry's job is done; recovery wipes the offending FASEs.
    e.valid = false;
    ++e.generation;
    if (onMisspec)
        onMisspec(addr, kind);
}

void
SpeculationBuffer::writeBack(Addr block_addr)
{
    Entry *e = find(block_addr);
    if (!e) {
        e = allocate(block_addr);
        if (!e)
            return;
    }
    // WriteBack (re)starts monitoring: Initial -> Evict, and a repeated
    // WriteBack refreshes the window ("WriteBack(s)" in the Figure 6
    // pattern -- the block was fetched and evicted again).
    e->state = SpecState::Evict;
    armWindow(*e);
}

void
SpeculationBuffer::reportStoreMisspec(Addr block_addr)
{
    ++storeMisspecs;
    if (onMisspec)
        onMisspec(block_addr, MisspecKind::StoreOrder);
}

void
SpeculationBuffer::read(Addr block_addr)
{
    Entry *e = find(block_addr);
    if (!e)
        return; // not monitored: no prior eviction, cannot be stale
    if (e->state == SpecState::Evict || e->state == SpecState::Speculated) {
        e->state = SpecState::Speculated;
        // Restart the window: Section 5.1.2 specifies that the window
        // must still cover the worst-case persist-path latency *after*
        // the load reaches the PMC.
        armWindow(*e);
    }
}

void
SpeculationBuffer::persist(Addr block_addr)
{
    Entry *e = find(block_addr);
    if (!e)
        return;

    // --- Load misspeculation: WriteBack(s)-Read(s)-Persist. ---
    if (e->state == SpecState::Speculated) {
        fireMisspec(*e, MisspecKind::LoadStale);
        return;
    }

    if (e->state == SpecState::Evict) {
        // The in-flight store superseded the dropped eviction before
        // any read slipped in: the block's PM copy is now current, so
        // load monitoring for this eviction can stop.
        e->valid = false;
        ++e->generation;
    }
}

} // namespace pmemspec::mem
