#include "speculation_buffer.hh"

#include "common/logging.hh"

namespace pmemspec::mem
{

namespace
{

std::uint8_t
ord(SpecState s)
{
    return static_cast<std::uint8_t>(s);
}

} // namespace

SpeculationBuffer::SpeculationBuffer(sim::EventQueue &eq,
                                     StatGroup *parent,
                                     unsigned num_entries, Tick window)
    : sim::SimObject("specbuf", eq, parent),
      residencyHist(0, 2.0 * static_cast<double>(window) / ticksPerNs, 40),
      entries(num_entries),
      specWindow(window)
{
    fatal_if(num_entries == 0, "speculation buffer needs >= 1 entry");
    fatal_if(window == 0, "speculation window must be non-zero");
    stats().addCounter("loadMisspecs", &loadMisspecs,
                       "PM load misspeculations (stale reads)");
    stats().addCounter("storeMisspecs", &storeMisspecs,
                       "PM store misspeculations (ordering violations)");
    stats().addCounter("allocations", &allocations,
                       "speculation buffer entries allocated");
    stats().addCounter("expirations", &expirations,
                       "speculation windows expired benignly");
    stats().addCounter("fullPauses", &fullPauses,
                       "machine pauses due to a full buffer");
    stats().addCounter("droppedInputs", &droppedInputs,
                       "inputs dropped while the buffer was full");
    stats().addHistogram("windowResidency", &residencyHist,
                         "entry residency in the buffer (ns)");
}

SpeculationBuffer::Entry *
SpeculationBuffer::find(Addr block_addr)
{
    for (auto &e : entries) {
        if (e.valid && e.addr == block_addr)
            return &e;
    }
    return nullptr;
}

const SpeculationBuffer::Entry *
SpeculationBuffer::find(Addr block_addr) const
{
    return const_cast<SpeculationBuffer *>(this)->find(block_addr);
}

unsigned
SpeculationBuffer::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

SpecState
SpeculationBuffer::stateOf(Addr block_addr) const
{
    const Entry *e = find(block_addr);
    return e ? e->state : SpecState::Initial;
}

void
SpeculationBuffer::noteDeparture(const Entry &e)
{
    residencyHist.sample(
        static_cast<double>(curTick() - e.inserted) / ticksPerNs);
}

SpeculationBuffer::Entry *
SpeculationBuffer::allocate(Addr block_addr)
{
    for (auto &e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.addr = block_addr;
            e.state = SpecState::Initial;
            ++allocations;
            PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer,
                           trace::EventKind::SbAllocate, curTick(),
                           trace::kNoCore, block_addr,
                           {.arg = occupancy(), .unit = traceUnit});
            return &e;
        }
    }
    // Buffer full: request a machine-wide pause for one speculation
    // window so that existing entries expire (Section 5.3). The input
    // that could not be tracked is safe to drop *because* of the
    // pause: no core can issue a conflicting access that would have
    // needed this entry while the whole machine is stopped, and the
    // window bounds the lifetime of any in-flight race.
    ++droppedInputs;
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer,
                   trace::EventKind::SbInputDropped, curTick(),
                   trace::kNoCore, block_addr, {.unit = traceUnit});
    if (curTick() >= pausedUntil) {
        ++fullPauses;
        pausedUntil = curTick() + specWindow;
        PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer,
                       trace::EventKind::SbPause, curTick(),
                       trace::kNoCore, block_addr,
                       {.arg = specWindow, .unit = traceUnit});
        if (onPause)
            onPause(specWindow);
    }
    return nullptr;
}

void
SpeculationBuffer::armWindow(Entry &e)
{
    e.inserted = curTick();
    const std::uint64_t gen = ++e.generation;
    Entry *slot = &e;
    schedule(After{specWindow}, [this, slot, gen] {
        // Deallocate only if the entry was not reused or refreshed.
        if (slot->valid && slot->generation == gen) {
            noteDeparture(*slot);
            PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer,
                           trace::EventKind::SbExpire, curTick(),
                           trace::kNoCore, slot->addr,
                           {.arg = (curTick() - slot->inserted) / ticksPerNs,
                            .unit = traceUnit});
            slot->valid = false;
            ++expirations;
        }
    });
}

void
SpeculationBuffer::fireMisspec(Entry &e, MisspecKind kind)
{
    e.state = SpecState::Misspeculation;
    if (kind == MisspecKind::LoadStale)
        ++loadMisspecs;
    else
        ++storeMisspecs;
    const Addr addr = e.addr;
    noteDeparture(e);
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbMisspec,
                   curTick(), trace::kNoCore, addr,
                   {.arg = static_cast<std::uint64_t>(kind),
                    .unit = traceUnit});
    // The entry's job is done; recovery wipes the offending FASEs.
    e.valid = false;
    ++e.generation;
    if (onMisspec)
        onMisspec(addr, kind);
}

void
SpeculationBuffer::writeBack(Addr block_addr)
{
    Entry *e = find(block_addr);
    const std::uint8_t before = ord(e ? e->state : SpecState::Initial);
    if (!e) {
        e = allocate(block_addr);
        if (!e)
            return;
    }
    // WriteBack (re)starts monitoring: Initial -> Evict, and a repeated
    // WriteBack refreshes the window ("WriteBack(s)" in the Figure 6
    // pattern -- the block was fetched and evicted again).
    e->state = SpecState::Evict;
    armWindow(*e);
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbWriteBack,
                   curTick(), trace::kNoCore, block_addr,
                   {.stateBefore = before,
                    .stateAfter = ord(SpecState::Evict),
                    .unit = traceUnit});
}

void
SpeculationBuffer::reportStoreMisspec(Addr block_addr)
{
    ++storeMisspecs;
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbMisspec,
                   curTick(), trace::kNoCore, block_addr,
                   {.arg = static_cast<std::uint64_t>(MisspecKind::StoreOrder),
                    .unit = traceUnit});
    if (onMisspec)
        onMisspec(block_addr, MisspecKind::StoreOrder);
}

void
SpeculationBuffer::read(Addr block_addr)
{
    Entry *e = find(block_addr);
    const std::uint8_t before = ord(e ? e->state : SpecState::Initial);
    if (!e) {
        // Not monitored: no prior eviction, cannot be stale.
        PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbRead,
                       curTick(), trace::kNoCore, block_addr,
                       {.stateBefore = before,
                        .stateAfter = ord(SpecState::Initial),
                        .unit = traceUnit});
        return;
    }
    if (e->state == SpecState::Evict || e->state == SpecState::Speculated) {
        e->state = SpecState::Speculated;
        // Restart the window: Section 5.1.2 specifies that the window
        // must still cover the worst-case persist-path latency *after*
        // the load reaches the PMC.
        armWindow(*e);
    }
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbRead,
                   curTick(), trace::kNoCore, block_addr,
                   {.stateBefore = before,
                    .stateAfter = ord(e->state),
                    .unit = traceUnit});
}

void
SpeculationBuffer::persist(Addr block_addr)
{
    Entry *e = find(block_addr);
    const std::uint8_t before = ord(e ? e->state : SpecState::Initial);
    std::uint8_t after = ord(SpecState::Initial);

    if (e) {
        if (e->state == SpecState::Speculated) {
            // --- Load misspeculation: WriteBack(s)-Read(s)-Persist. ---
            after = ord(SpecState::Misspeculation);
            fireMisspec(*e, MisspecKind::LoadStale);
        } else if (e->state == SpecState::Evict) {
            // The in-flight store superseded the dropped eviction
            // before any read slipped in: the block's PM copy is now
            // current, so load monitoring for this eviction can stop.
            noteDeparture(*e);
            e->valid = false;
            ++e->generation;
        }
    }
    PMEMSPEC_TRACE(traceMgr, FlagSpecBuffer, trace::EventKind::SbPersist,
                   curTick(), trace::kNoCore, block_addr,
                   {.stateBefore = before,
                    .stateAfter = after,
                    .unit = traceUnit});
}

} // namespace pmemspec::mem
