/**
 * @file
 * Memory-system configuration (the paper's Table 3 defaults).
 */

#ifndef PMEMSPEC_MEM_MEM_CONFIG_HH
#define PMEMSPEC_MEM_MEM_CONFIG_HH

#include <cstddef>

#include "common/types.hh"

namespace pmemspec::mem
{

/**
 * All latency/size knobs of the simulated memory system. Defaults
 * reproduce Table 3 of the paper.
 */
struct MemConfig
{
    /** Number of cores / private L1 caches. */
    unsigned numCores = 8;

    /** L1 data cache capacity (bytes) and associativity. */
    std::size_t l1Bytes = 64 * 1024;
    unsigned l1Ways = 4;
    /** L1 hit latency: 1ns tag + 1ns data. */
    Tick l1HitLatency = nsToTicks(2);

    /** Shared L2 (the LLC) capacity and associativity. */
    std::size_t llcBytes = 16 * 1024 * 1024;
    unsigned llcWays = 16;
    /** LLC hit latency: 10ns tag + 10ns data. */
    Tick llcHitLatency = nsToTicks(20);

    /** Extra per-transfer latency between private and shared caches.
     *  HOPS pays one additional bus cycle for the sticky-M bit. */
    Tick l1ToLlcExtra = 0;

    /** PM device latencies measured from Optane (Table 3). */
    Tick pmReadLatency = nsToTicks(175);
    Tick pmWriteLatency = nsToTicks(94);

    /** PM controller queue capacities. */
    unsigned pmcReadQueue = 32;
    unsigned pmcWriteQueue = 64;

    /** Device reads the PMC retries on an uncorrectable (poisoned)
     *  block before propagating the poison to the requester --
     *  mirrors the bounded retry real controllers attempt on an
     *  Optane UE before raising a machine check. */
    unsigned pmcPoisonRetries = 3;

    /** Independent PM banks serving requests in parallel (Optane
     *  interleaves across DIMMs and internal buffers). */
    unsigned pmBanks = 16;

    /** Decoupled persist-path latency (store queue -> PMC). */
    Tick persistPathLatency = nsToTicks(20);

    /** Per-core persist-path FIFO capacity (entries). */
    unsigned persistPathCapacity = 64;

    /** Speculation buffer entries in the PMC (Section 5.3). */
    unsigned specBufferEntries = 4;

    /**
     * Speculation window. The paper assumes the persist-paths share a
     * ring bus, so the worst case is numCores x idle path latency
     * (160ns in the main experiment). Zero means "derive from cores".
     */
    Tick speculationWindow = 0;

    /** HOPS/DPO per-core persist buffer capacity (entries). */
    unsigned persistBufferEntries = 32;

    /** Persist-buffer drain: in-flight persists per core (HOPS). */
    unsigned persistBufferDrainWidth = 4;

    /** PMC bloom filter geometry (HOPS). */
    std::size_t bloomCounters = 2048;
    unsigned bloomHashes = 3;
    /** Latency of a bloom-filter lookup charged to every PM read. */
    Tick bloomLookupLatency = nsToTicks(1);
    /** Read delay on a bloom false positive before retry. */
    Tick bloomFalsePositivePenalty = nsToTicks(20);

    /** Transport latency from an L1 writeback to PMC acceptance; the
     *  paper quotes the L1-to-PMC latency as 11ns. */
    Tick l1ToPmcLatency = nsToTicks(11);

    /**
     * Section 7 extension: number of PM controllers (blocks are
     * interleaved across them). The base design supports exactly one;
     * with several, detection only stays sound if the on-chip network
     * preserves each core's store order across controllers.
     */
    unsigned numPmcs = 1;

    /** Multi-PMC mode: does the NoC preserve per-core store order
     *  across controllers (the extension the paper proposes)? */
    bool orderedNoc = true;

    /** Unordered-NoC lane skew: lane i to controller i adds
     *  i * nocSkew of latency, which lets a core's stores to
     *  different controllers arrive out of order. */
    Tick nocSkew = nsToTicks(5);

    /** Effective speculation window (derives the ring-bus default). */
    Tick
    effectiveSpecWindow() const
    {
        if (speculationWindow != 0)
            return speculationWindow;
        return numCores * persistPathLatency;
    }
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_MEM_CONFIG_HH
