/**
 * @file
 * The full memory system: per-core L1s, a shared LLC, the PM
 * controller, and the design-specific persistence plumbing
 * (persist-paths for PMEM-Spec, persist buffers for HOPS/DPO).
 *
 * The hierarchy is mostly-inclusive write-back/write-allocate with a
 * simple invalidation-based coherence model: a store drain invalidates
 * the block in every other L1. Requests are latency-chained through
 * the event queue; MSHRs merge concurrent misses to the same block at
 * both levels.
 */

#ifndef PMEMSPEC_MEM_MEMORY_SYSTEM_HH
#define PMEMSPEC_MEM_MEMORY_SYSTEM_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/mem_config.hh"
#include "mem/persist_buffer.hh"
#include "mem/persist_path.hh"
#include "mem/pm_controller.hh"
#include "mem/sharer_directory.hh"
#include "persistency/design.hh"
#include "sim/sim_object.hh"

namespace pmemspec::mem
{

/** Top-level memory system facade used by the cores. */
class MemorySystem : public sim::SimObject
{
  public:
    using Done = std::function<void()>;

    MemorySystem(sim::EventQueue &eq, StatGroup *parent,
                 const MemConfig &cfg, persistency::Design design);

    /** A demand load from core c; on_done fires when data is ready. */
    void load(CoreId c, Addr addr, Done on_done);

    /**
     * Drain one committed store from core c's store queue into the
     * hierarchy and, per design, capture it for persistence
     * (persist-path send or persist-buffer append). on_done fires when
     * the store has fully left the store queue; persistence capture
     * applies backpressure through it.
     */
    void store(CoreId c, Addr addr, std::optional<SpecId> spec_id,
               Done on_done);

    /** CLWB: flush the block towards the PMC; on_done fires when the
     *  flush is accepted into the persistent domain. */
    void clwb(CoreId c, Addr addr, Done on_done);

    /** spec-barrier: on_done once core c's persist-path is empty. */
    void specBarrier(CoreId c, Done on_done);

    /** dfence: on_done once core c's persist buffer is empty. */
    void dfence(CoreId c, Done on_done);

    /** ofence: close core c's current persist-buffer epoch. */
    void ofence(CoreId c);

    /** Lock-handoff hooks conveying inter-thread persist order. */
    void onLockRelease(CoreId c, unsigned lock_id);
    void onLockAcquire(CoreId c, unsigned lock_id);

    persistency::Design design() const { return dsgn; }
    const MemConfig &config() const { return cfg; }

    /** The (first) PM controller. */
    PmController &pmc() { return *pmControllers.front(); }
    /** Controller i of the Section 7 multi-PMC extension. */
    PmController &pmc(unsigned i) { return *pmControllers.at(i); }
    unsigned numPmcs() const
    {
        return static_cast<unsigned>(pmControllers.size());
    }
    /** Controller owning a block (address-interleaved). */
    PmController &pmcFor(Addr block);
    unsigned pmcIndexFor(Addr block) const;

    SetAssocCache &l1(CoreId c) { return *l1s.at(c); }
    SetAssocCache &llc() { return *sharedLlc; }
    /** Core c's persist-path lane towards controller `pmc_idx` (the
     *  single path when numPmcs == 1 or the NoC is ordered). */
    PersistPath &path(CoreId c, unsigned pmc_idx = 0)
    {
        return *paths.at(c * pathLanes + pmc_idx % pathLanes);
    }
    PersistBuffer &pbuf(CoreId c) { return *pbufs.at(c); }

    /** Flat persist-path enumeration (metrics gauges). */
    std::size_t numPaths() const { return paths.size(); }
    PersistPath &pathAt(std::size_t i) { return *paths.at(i); }

    /** Attach the machine's event recorder to every PMC (unit: PMC
     *  index, cascading to its speculation buffer) and persist-path
     *  lane (unit: lane index within the core's bundle). */
    void setTraceManager(trace::Manager *mgr)
    {
        for (unsigned i = 0; i < pmControllers.size(); ++i)
            pmControllers[i]->setTraceManager(
                mgr, static_cast<std::uint16_t>(i));
        for (unsigned i = 0; i < paths.size(); ++i)
            paths[i]->setTraceManager(
                mgr, static_cast<std::uint16_t>(i % pathLanes));
    }

    Counter coherenceInvalidations;
    Counter storeAllocFetches;
    /** Section 7 oracle: a core's persists arrived at different
     *  controllers out of store order -- a violation the hardware
     *  cannot detect without an ordered NoC. */
    Counter crossPmcReorderHazards;
    /** PM fills whose device read came back poisoned after the PMC's
     *  bounded retry: the poison propagated to the requesting core
     *  (a machine-check in real hardware; the functional layer
     *  models the consumer-visible MediaError). */
    Counter poisonedFills;

  private:
    void missToLlc(CoreId c, Addr block, bool for_store, Done on_done);
    void fillFromPm(CoreId c, Addr block, bool for_store, Done on_done);
    /** Install a block into core c's L1 (and the LLC), handling
     *  evictions at both levels. */
    void fillL1(CoreId c, Addr block, bool dirty);
    void handleLlcEviction(const Eviction &ev);
    void invalidateOtherL1s(CoreId c, Addr block);

    /** Per-design persistence capture of a committed store. */
    void captureStore(CoreId c, Addr block,
                      std::optional<SpecId> spec_id, Done on_captured);

    /** Oracle bookkeeping for the multi-PMC hazard counter. */
    void recordPersistArrival(CoreId c, std::uint64_t seq);

    MemConfig cfg;
    persistency::Design dsgn;

    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    /** Exact L1-sharer bitmasks so store-drain invalidations only
     *  probe cores that actually hold the block. Disabled (empty
     *  broadcast fallback) beyond 64 cores. */
    SharerDirectory l1Dir;
    bool l1DirEnabled = true;
    std::unique_ptr<SetAssocCache> sharedLlc;
    std::vector<std::unique_ptr<PmController>> pmControllers;
    /** Persist-path lanes: paths[c * pathLanes + lane]. */
    std::vector<std::unique_ptr<PersistPath>> paths;
    unsigned pathLanes = 1;
    std::vector<std::unique_ptr<PersistBuffer>> pbufs;
    GlobalDrainToken dpoToken;

    /** Per-core persist sequence stamps (send order) and the set of
     *  not-yet-arrived sequences, for the reorder oracle. */
    std::vector<std::uint64_t> persistSeqCounter;
    /** Per (core, lane): FIFO of sequence stamps in flight. */
    std::vector<std::deque<std::uint64_t>> laneSeqs;
    /** Per core: smallest not-yet-arrived sequence heap substitute. */
    std::vector<std::map<std::uint64_t, bool>> outstandingSeqs;

    /** L1-level MSHRs: block -> waiters (per core). */
    std::vector<std::map<Addr, std::vector<Done>>> l1Mshrs;
    /** LLC-level MSHRs: block -> fill callbacks. */
    std::map<Addr, std::vector<Done>> llcMshrs;

    /** Lock watermarks for persist-buffer dependencies. */
    struct LockWatermark
    {
        CoreId releaser;
        std::uint64_t seq;
    };
    std::map<unsigned, LockWatermark> lockWatermarks;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_MEMORY_SYSTEM_HH
