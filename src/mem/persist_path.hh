/**
 * @file
 * The decoupled persist-path of PMEM-Spec (Section 4.2).
 *
 * One FIFO per core connects the store queue directly to the PM
 * controller, bypassing the cache hierarchy. Entries leave the store
 * queue at commit and arrive at the PMC in commit order after the
 * configured path latency (20ns by default; the paths share a ring
 * bus, which the speculation window accounts for). Because the PMC is
 * inside the ADR persistent domain, a store is durable the moment it
 * is accepted there; spec-barrier therefore only waits for this FIFO
 * to drain and be accepted.
 */

#ifndef PMEMSPEC_MEM_PERSIST_PATH_HH
#define PMEMSPEC_MEM_PERSIST_PATH_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/backoff.hh"
#include "common/inplace_fn.hh"
#include "common/stats.hh"
#include "mem/pmc_retry.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace pmemspec::mem
{

/**
 * Upper bound on the persists of one core that can be *simultaneously*
 * inside the speculation window: entries leave the store queue at
 * commit and arrive at the PMC `path_latency` later, so at most one
 * window's worth of path slots can hold not-yet-accepted persists.
 * The crash-state reorder explorer uses this as the physical clamp
 * on its window depth -- exploring reorderings deeper than the
 * hardware window would check states no real outage can produce.
 */
constexpr std::size_t
persistsInWindow(Tick window, Tick path_latency)
{
    return path_latency == 0
               ? std::size_t{64}
               : static_cast<std::size_t>(window / path_latency) + 1;
}

/** Per-core FIFO from the store queue to the PM controller. */
class PersistPath : public sim::SimObject
{
  public:
    /**
     * Delivery hook into the PM controller: attempts to hand one
     * persist over. Returns false when the PMC write queue is full;
     * the path then retries, preserving FIFO order.
     */
    using DeliverFn =
        std::function<bool(CoreId, Addr, std::optional<SpecId>)>;

    /**
     * Fault-injection hook: extra in-flight latency for a given block
     * address, on top of the configured path latency. Lets a test or
     * chaos harness hold back (and thereby reorder relative to the
     * regular read path) chosen persist arrivals deterministically.
     */
    using DelayHook = std::function<Tick(Addr)>;

    PersistPath(sim::EventQueue &eq, StatGroup *parent, CoreId core,
                Tick latency, unsigned capacity, DeliverFn deliver);

    /** Install/replace the injection hook (nullptr to disable). */
    void setDelayHook(DelayHook hook) { delayHook = std::move(hook); }

    /** @return true if the FIFO cannot accept another entry. */
    bool full() const { return fifo.size() >= fifoCapacity; }

    /**
     * Push a committed PM store onto the path. Must not be called
     * while full(); the store queue applies backpressure instead.
     */
    void send(Addr block_addr, std::optional<SpecId> spec_id);

    /** @return true when nothing is in flight (spec-barrier test). */
    bool empty() const { return fifo.empty(); }

    /** In-flight persists currently buffered in the path (metrics). */
    std::size_t occupancy() const { return fifo.size(); }

    /** One-shot completion waiter (moved in, invoked once). */
    using Waiter = InplaceFn<void()>;

    /** Invoke cb once the path next becomes empty (immediately if it
     *  already is). Used by spec-barrier. */
    void notifyWhenEmpty(Waiter cb);

    /** Invoke cb once the path next has a free slot. Used by the
     *  store queue when it hit backpressure. */
    void notifyWhenNotFull(Waiter cb);

    Tick latency() const { return pathLatency; }

    /** Attach the machine's event recorder; `unit` is the path lane. */
    void setTraceManager(trace::Manager *mgr, std::uint16_t unit = 0)
    {
        traceMgr = mgr;
        traceUnit = unit;
    }

    Counter sends;
    Counter deliveries;
    /** Delivery retries due to PMC backpressure (stat "pathRetries",
     *  shared naming with PersistBuffer). */
    Counter pathRetries;
    Accumulator occupancyStat;
    /** FIFO occupancy distribution, sampled at each send (fig12). */
    Histogram occupancyHist;

  private:
    struct Flit
    {
        Addr addr;
        std::optional<SpecId> specId;
        Tick readyAt; ///< earliest tick it may reach the PMC
    };

    /** Try to deliver the FIFO head; reschedules itself as needed. */
    void pump();

    void drainWaiters();

    CoreId coreId;
    Tick pathLatency;
    unsigned fifoCapacity;
    /** PMC-backpressure retry schedule (shared policy, backoff.hh). */
    BoundedBackoff pmcBackoff = pmcRetryBackoff();
    DeliverFn deliver;
    DelayHook delayHook;
    std::deque<Flit> fifo;
    Tick lastArrival = 0;
    bool pumpScheduled = false;
    std::vector<Waiter> emptyWaiters;
    std::vector<Waiter> spaceWaiters;

    trace::Manager *traceMgr = nullptr;
    std::uint16_t traceUnit = 0;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_PERSIST_PATH_HH
