/**
 * @file
 * The one PMC-backpressure retry policy.
 *
 * Both agents that hand persists to the PM controller -- the
 * PMEM-Spec persist path and the HOPS/DPO persist buffers -- can see
 * the PMC write queue full and must retry without giving up FIFO
 * order. The schedule used to be two copy-pasted fixed-delay loops;
 * it is now one deterministic bounded-exponential policy (first
 * retry after 4ns, doubling to a 32ns clamp, reset on the first
 * accepted delivery) so a congested PMC is probed quickly but a
 * persistently full queue is not hammered every 4ns. Each user
 * surfaces the retry count as the "pathRetries" stat in its
 * StatGroup.
 */

#ifndef PMEMSPEC_MEM_PMC_RETRY_HH
#define PMEMSPEC_MEM_PMC_RETRY_HH

#include "common/backoff.hh"

namespace pmemspec::mem
{

/** The shared PMC-backpressure retry schedule (fresh instance). */
constexpr BoundedBackoff
pmcRetryBackoff()
{
    return BoundedBackoff{4 * ticksPerNs, 32 * ticksPerNs};
}

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_PMC_RETRY_HH
