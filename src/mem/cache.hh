/**
 * @file
 * Set-associative write-back cache tag array.
 *
 * Only tags and per-line metadata are modelled; the simulated data
 * values live in the functional runtime layer. The timing layer needs
 * hits, misses, evictions and dirty state, which this class provides.
 */

#ifndef PMEMSPEC_MEM_CACHE_HH
#define PMEMSPEC_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace pmemspec::mem
{

/** Result of inserting a block: the victim, if a dirty one was evicted. */
struct Eviction
{
    Addr blockAddr;
    bool dirty;
};

/**
 * An LRU set-associative cache of 64-byte blocks.
 *
 * All addresses passed in must already be block-aligned.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param ways       Associativity.
     */
    SetAssocCache(std::string name, std::size_t size_bytes,
                  unsigned ways);

    /**
     * Look a block up and update LRU state on a hit.
     * @return true on hit.
     */
    bool access(Addr block_addr);

    /** Look up without disturbing replacement state. */
    bool contains(Addr block_addr) const;

    /** @return the dirty bit; block must be present. */
    bool isDirty(Addr block_addr) const;

    /** Mark a present block dirty (store hit). */
    void markDirty(Addr block_addr);

    /**
     * Insert a block, evicting the LRU way if the set is full.
     * @return the eviction, if a valid block was displaced.
     */
    std::optional<Eviction> insert(Addr block_addr, bool dirty);

    /**
     * Remove a block if present (invalidation or explicit flush).
     * @return the dirty bit of the removed block, or nullopt if absent.
     */
    std::optional<bool> invalidate(Addr block_addr);

    /** Clear the dirty bit of a present block (clean writeback). */
    void markClean(Addr block_addr);

    std::size_t numSets() const { return sets; }
    unsigned numWays() const { return waysPerSet; }
    const std::string &name() const { return cacheName; }

    /** Number of valid blocks currently cached. */
    std::size_t population() const { return validCount; }

    Counter hits;
    Counter misses;
    Counter evictions;
    Counter dirtyEvictions;

  private:
    /**
     * One tag-array entry, packed to 16 bytes so a 4-way set probes a
     * single host cache line. The block tag is 64-byte aligned, so
     * its low bits carry the valid/dirty flags.
     */
    struct Line
    {
        static constexpr std::uint64_t kValid = 1;
        static constexpr std::uint64_t kDirty = 2;
        static constexpr std::uint64_t kTagMask =
            ~std::uint64_t{blockBytes - 1};

        std::uint64_t meta = 0; ///< tag | flags
        std::uint64_t lastUse = 0;

        bool valid() const { return meta & kValid; }
        bool dirty() const { return meta & kDirty; }
        Addr tag() const { return meta & kTagMask; }
        bool
        matches(Addr block_addr) const
        {
            return (meta & (kTagMask | kValid)) ==
                   (block_addr | kValid);
        }
    };

    std::size_t setIndex(Addr block_addr) const;
    Line *find(Addr block_addr);
    const Line *find(Addr block_addr) const;

    std::string cacheName;
    std::size_t sets;
    unsigned waysPerSet;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;
    std::size_t validCount = 0;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_CACHE_HH
