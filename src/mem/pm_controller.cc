#include "pm_controller.hh"

#include "common/logging.hh"

namespace pmemspec::mem
{

using persistency::Design;

PmController::PmController(sim::EventQueue &eq, StatGroup *parent,
                           const MemConfig &cfg_, Design design_,
                           std::string name)
    : sim::SimObject(std::move(name), eq, parent),
      cfg(cfg_),
      design(design_),
      banks(cfg_.pmBanks, 0),
      bloom(cfg_.bloomCounters, cfg_.bloomHashes)
{
    if (design == Design::PmemSpec) {
        specBuf.emplace(eq, &stats(), cfg.specBufferEntries,
                        cfg.effectiveSpecWindow());
    }
    stats().addCounter("reads", &reads, "PM device reads");
    stats().addCounter("writes", &writes, "PM device writes");
    stats().addCounter("writeCoalesces", &writeCoalesces,
                       "persists coalesced into a buffered block");
    stats().addCounter("droppedWritebacks", &droppedWritebacks,
                       "regular-path writebacks dropped by design");
    stats().addCounter("persistsAccepted", &persistsAccepted,
                       "persists accepted into the ADR domain");
    stats().addCounter("persistsRefused", &persistsRefused,
                       "persists refused on a full write queue");
    stats().addCounter("bloomTrueHits", &bloomTrueHits,
                       "PM reads delayed on a real buffer conflict");
    stats().addCounter("bloomFalsePositives", &bloomFalsePositives,
                       "PM reads delayed on a bloom false positive");
    stats().addCounter("poisonRetries", &poisonRetries,
                       "device re-reads of an uncorrectable block");
    stats().addCounter("poisonedReads", &poisonedReads,
                       "reads that propagated poison after retries");
    stats().addCounter("poisonHeals", &poisonHeals,
                       "transient media errors cleared by retrying");
    stats().addAccumulator("readLatency", &readLatencyStat,
                           "PM read latency (ns), enqueue to data");
}

SpeculationBuffer &
PmController::specBuffer()
{
    panic_if(!specBuf, "speculation buffer only exists for PMEM-Spec");
    return *specBuf;
}

void
PmController::setTraceManager(trace::Manager *mgr, std::uint16_t unit)
{
    traceMgr = mgr;
    traceUnit = unit;
    if (specBuf)
        specBuf->setTraceManager(mgr, unit);
}

Tick &
PmController::bankFree(Addr block_addr)
{
    return banks[blockNumber(block_addr) % banks.size()];
}

void
PmController::serviceRead(Addr block_addr, Tick enq,
                          std::function<void()> cb)
{
    if (outstandingReads >= cfg.pmcReadQueue) {
        // Read queue full: retry shortly.
        schedule(After{ticksPerNs},
                   [this, block_addr, enq, cb = std::move(cb)]() mutable {
                       serviceRead(block_addr, enq, std::move(cb));
                   });
        return;
    }
    ++outstandingReads;
    ++reads;
    PMEMSPEC_TRACE(traceMgr, FlagPmController, trace::EventKind::PmcRead,
                   curTick(), trace::kNoCore, block_addr,
                   {.arg = outstandingReads, .unit = traceUnit});

    if (design == Design::PmemSpec)
        specBuf->read(block_addr);

    Tick &free_at = bankFree(block_addr);
    Tick start = std::max(curTick(), free_at);
    Tick done = start + cfg.pmReadLatency;
    free_at = done;
    schedule(After{done - curTick()}, [this, enq, cb = std::move(cb)] {
        --outstandingReads;
        readLatencyStat.sample(
            static_cast<double>(curTick() - enq) / ticksPerNs);
        cb();
    });
}

void
PmController::read(Addr block_addr, std::function<void()> on_done)
{
    const Tick enq = curTick();

    if (design == Design::HOPS) {
        // Every PM read pays the bloom-filter lookup (Section 8.2.2).
        const Tick lookup = cfg.bloomLookupLatency;
        if (bloom.mayContain(block_addr)) {
            if (blocks.pendingPersists(block_addr) > 0) {
                // Real conflict: the block sits in a persist buffer.
                // HOPS postpones the read until the buffer drains it.
                ++bloomTrueHits;
                blocks.addPersistWaiter(
                    block_addr,
                    [this, block_addr, enq,
                     cb = std::move(on_done)]() mutable {
                        serviceRead(block_addr, enq, std::move(cb));
                    });
                return;
            }
            // False positive: delay by the configured penalty.
            ++bloomFalsePositives;
            schedule(After{lookup + cfg.bloomFalsePositivePenalty},
                       [this, block_addr, enq,
                        cb = std::move(on_done)]() mutable {
                           serviceRead(block_addr, enq, std::move(cb));
                       });
            return;
        }
        schedule(After{lookup}, [this, block_addr, enq,
                            cb = std::move(on_done)]() mutable {
            serviceRead(block_addr, enq, std::move(cb));
        });
        return;
    }

    serviceRead(block_addr, enq, std::move(on_done));
}

void
PmController::poisonBlock(Addr block_addr, unsigned transient_reads)
{
    blocks.poison(block_addr, transient_reads);
}

bool
PmController::clearPoisonedBlock(Addr block_addr)
{
    return blocks.clearPoison(block_addr);
}

void
PmController::readAttempt(Addr block_addr, unsigned retries_left,
                          std::function<void(ReadStatus)> cb)
{
    read(block_addr, [this, block_addr, retries_left,
                      cb = std::move(cb)]() mutable {
        switch (blocks.notePoisonRead(block_addr)) {
          case BlockTable::PoisonRead::Clean:
            cb(ReadStatus::Ok);
            return;
          case BlockTable::PoisonRead::Healed:
            // A transient error: this completed device read was the
            // one that scrubbed the cell back to health.
            ++poisonHeals;
            cb(ReadStatus::Ok);
            return;
          case BlockTable::PoisonRead::Faulted:
            break;
        }
        if (retries_left > 0) {
            ++poisonRetries;
            warn_once("PMC read of block %#llx hit poisoned media; "
                      "retrying (logged once; the poisonRetries "
                      "counter tracks the total)",
                      static_cast<unsigned long long>(block_addr));
            readAttempt(block_addr, retries_left - 1, std::move(cb));
            return;
        }
        // Retry budget exhausted: the poison propagates to the
        // requester (machine-check on data delivery), the controller
        // itself keeps serving every other block.
        ++poisonedReads;
        warn_once("PMC poison-retry budget exhausted for block %#llx; "
                  "delivering machine-check (logged once; the "
                  "poisonedReads counter tracks the total)",
                  static_cast<unsigned long long>(block_addr));
        cb(ReadStatus::Poisoned);
    });
}

void
PmController::readChecked(Addr block_addr,
                          std::function<void(ReadStatus)> on_done)
{
    readAttempt(block_addr, cfg.pmcPoisonRetries, std::move(on_done));
}

void
PmController::serviceWrite(Addr block_addr)
{
    // Coalesce into a queued (not yet started) write of this block:
    // the PMC buffers whole cache blocks, so another store to the
    // same block merges for free (Section 4.2). A coalesced store
    // consumes no extra write-queue entry.
    if (!blocks.markCoalescable(block_addr)) {
        ++writeCoalesces;
        return;
    }

    ++writeQueue;
    ++writes;
    // A full-block write remaps an uncorrectable line: fresh data
    // heals the poison (hard or transient alike).
    blocks.clearPoison(block_addr);
    // Writes drain in the background at the device's aggregate write
    // bandwidth; reads have priority and never queue behind them
    // (standard PMC scheduling -- ADR makes write *latency* invisible
    // to the program, only write-queue occupancy matters).
    Tick start = std::max(curTick(), writeServerFree);
    writeServerFree = start + cfg.pmWriteLatency / cfg.pmBanks;
    Tick done = start + cfg.pmWriteLatency;
    // The block stops being coalescable once its device write starts.
    schedule(After{start - curTick()},
               [this, block_addr] { blocks.clearCoalescable(block_addr); });
    schedule(After{done - curTick()}, [this] {
        panic_if(writeQueue == 0, "write queue underflow");
        --writeQueue;
    });
}

void
PmController::writeBack(Addr block_addr, std::function<void()> on_accepted)
{
    switch (design) {
      case Design::IntelX86:
        // Normal memory behaviour: the writeback enters the write
        // queue; ADR makes it durable at acceptance.
        if (writeQueue >= cfg.pmcWriteQueue &&
            !blocks.coalescable(block_addr)) {
            schedule(After{4 * ticksPerNs},
                       [this, block_addr,
                        cb = std::move(on_accepted)]() mutable {
                           writeBack(block_addr, std::move(cb));
                       });
            return;
        }
        serviceWrite(block_addr);
        on_accepted();
        return;

      case Design::DPO:
      case Design::HOPS:
        // The persist buffers are the agents of persistence; dirty
        // LLC evictions are dropped (Section 2.2).
        ++droppedWritebacks;
        on_accepted();
        return;

      case Design::PmemSpec:
        // Silently dropped -- but the WriteBack *request* is the
        // speculation buffer's monitoring trigger (Table 2).
        ++droppedWritebacks;
        PMEMSPEC_TRACE(traceMgr, FlagPmController,
                       trace::EventKind::PmcWriteBack, curTick(),
                       trace::kNoCore, block_addr,
                       {.arg = writeQueue, .unit = traceUnit});
        specBuf->writeBack(block_addr);
        on_accepted();
        return;
    }
}

bool
PmController::acceptPersist(CoreId core, Addr block_addr,
                            std::optional<SpecId> spec_id)
{
    (void)core; // only the trace points consume it today
    if (writeQueue >= cfg.pmcWriteQueue &&
        !blocks.coalescable(block_addr)) {
        ++persistsRefused;
        PMEMSPEC_TRACE(traceMgr, FlagPmController,
                       trace::EventKind::PmcPersistRefuse, curTick(),
                       core, block_addr,
                       {.specId = spec_id ? *spec_id : trace::kNoSpecId,
                        .unit = traceUnit});
        return false;
    }
    ++persistsAccepted;
    PMEMSPEC_TRACE(traceMgr, FlagPmController,
                   trace::EventKind::PmcPersistAccept, curTick(), core,
                   block_addr,
                   {.specId = spec_id ? *spec_id : trace::kNoSpecId,
                    .arg = writeQueue, .unit = traceUnit});
    serviceWrite(block_addr);
    if (design == Design::PmemSpec) {
        specBuf->persist(block_addr);
        if (spec_id)
            checkStoreOrder(block_addr, *spec_id);
    }
    return true;
}

void
PmController::checkStoreOrder(Addr block_addr, SpecId spec_id)
{
    const Tick window = cfg.effectiveSpecWindow();
    const auto r = blocks.specPersist(block_addr, spec_id, curTick(),
                                      window);
    switch (r.step) {
      case BlockTable::SpecStep::Violation:
        // A store ordered *earlier* by the happens-before order
        // persisted after a later one: missing-update hazard.
        PMEMSPEC_TRACE(traceMgr, FlagPmController,
                       trace::EventKind::PmcStoreOrderViolation,
                       curTick(), trace::kNoCore, block_addr,
                       {.specId = spec_id, .arg = r.prev,
                        .unit = traceUnit});
        specBuf->reportStoreMisspec(block_addr);
        return;

      case BlockTable::SpecStep::Refreshed:
        return;

      case BlockTable::SpecStep::Inserted:
        // Bound the table: expire this entry after the window unless
        // it was refreshed (lazy sweep keyed on the insertion tick).
        schedule(After{window + 1}, [this, block_addr] {
            SpecId expired;
            if (blocks.specExpire(block_addr, curTick(),
                                  cfg.effectiveSpecWindow(), &expired)) {
                PMEMSPEC_TRACE(traceMgr, FlagPmController,
                               trace::EventKind::PmcTrackExpire,
                               curTick(), trace::kNoCore, block_addr,
                               {.specId = expired, .unit = traceUnit});
            }
        });
        return;
    }
}

void
PmController::filterInsert(Addr block_addr)
{
    bloom.insert(block_addr);
    blocks.persistBuffered(block_addr);
}

void
PmController::filterRemove(Addr block_addr)
{
    bloom.remove(block_addr);
    if (blocks.persistDrained(block_addr)) {
        for (auto &cb : blocks.takePersistWaiters(block_addr))
            cb();
    }
}

} // namespace pmemspec::mem
