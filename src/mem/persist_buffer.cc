#include "persist_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmemspec::mem
{

PersistBuffer::PersistBuffer(sim::EventQueue &eq, StatGroup *parent,
                             CoreId core, Tick drain_latency,
                             unsigned capacity, unsigned drain_width,
                             bool strict_fifo,
                             GlobalDrainToken *global_token,
                             DeliverFn deliver_fn)
    : sim::SimObject("persistBuf" + std::to_string(core), eq, parent),
      coreId(core),
      drainLatency(drain_latency),
      capacity_(capacity),
      drainWidth(strict_fifo ? 1 : drain_width),
      strictFifo(strict_fifo),
      globalToken(global_token),
      deliver(std::move(deliver_fn))
{
    fatal_if(capacity == 0, "persist buffer capacity must be >= 1");
    stats().addCounter("appends", &appends, "PM stores captured");
    stats().addCounter("coalesces", &coalesces,
                       "stores coalesced into a pending entry");
    stats().addCounter("persistsDone", &persistsDone,
                       "entries made durable at the PMC");
    stats().addCounter("ofences", &ofences, "epochs closed");
    stats().addCounter("depStalls", &depStalls,
                       "drain attempts blocked on a cross-thread dep");
    stats().addCounter("pathRetries", &pathRetries,
                       "delivery retries due to PMC backpressure");
    stats().addAccumulator("occupancy", &occupancyStat,
                           "buffer occupancy sampled at each append");
}

void
PersistBuffer::setFilterHooks(FilterHook on_insert, FilterHook on_remove)
{
    filterInsert = std::move(on_insert);
    filterRemove = std::move(on_remove);
}

void
PersistBuffer::setProgressHook(std::function<void()> cb)
{
    progressHook = std::move(cb);
}

bool
PersistBuffer::full() const
{
    return pending.size() + inFlight.size() >= capacity_;
}

void
PersistBuffer::append(Addr block_addr)
{
    panic_if(full(), "persist buffer overflow; callers must check "
                     "full() and apply backpressure");
    occupancyStat.sample(
        static_cast<double>(pending.size() + inFlight.size()));
    ++appends;
    // Coalesce repeated stores to the same block within an epoch; the
    // buffer holds whole cache blocks, so a second store just merges.
    for (auto &e : pending) {
        if (e.addr == block_addr && e.epoch == curEpoch) {
            ++coalesces;
            return;
        }
    }
    pending.push_back(Entry{block_addr, curEpoch, seqCounter++});
    if (filterInsert)
        filterInsert(block_addr);
    pump();
}

void
PersistBuffer::ofence()
{
    ++ofences;
    ++curEpoch;
}

std::uint64_t
PersistBuffer::oldestUnpersistedSeq() const
{
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    if (!pending.empty())
        oldest = std::min(oldest, pending.front().seq);
    for (const auto &e : inFlight)
        oldest = std::min(oldest, e.seq);
    return oldest;
}

void
PersistBuffer::addDependency(const PersistBuffer *other,
                             std::uint64_t seq)
{
    if (other == this)
        return;
    if (other->oldestUnpersistedSeq() >= seq)
        return; // already satisfied
    deps.push_back(PersistDep{other, seq});
}

bool
PersistBuffer::depsSatisfied()
{
    auto it = std::remove_if(deps.begin(), deps.end(),
                             [](const PersistDep &d) {
                                 return d.other->oldestUnpersistedSeq() >=
                                        d.seq;
                             });
    deps.erase(it, deps.end());
    return deps.empty();
}

void
PersistBuffer::pump()
{
    while (!pending.empty() && inFlight.size() < drainWidth) {
        if (!depsSatisfied()) {
            ++depStalls;
            return; // retried via the machine progress hook
        }
        Entry &head = pending.front();
        // Epoch ordering: an entry may drain only when every entry of
        // earlier epochs is durable. Entries are appended in epoch
        // order, so it suffices to compare with the oldest in flight.
        for (const auto &f : inFlight) {
            if (f.epoch < head.epoch)
                return; // wait for the previous epoch to land
        }
        if (globalToken && !globalToken->tryAcquire()) {
            globalToken->waiters.push_back([this] { pump(); });
            return;
        }
        Entry e = head;
        pending.pop_front();
        inFlight.push_back(e);
        if (globalToken) {
            // One bus-injection slot serialises machine-wide flush
            // initiation; the flit itself is pipelined.
            const Tick token_hold = drainLatency / 5;
            schedule(After{token_hold}, [this] { globalToken->release(); });
        }
        schedule(After{drainLatency}, [this, e] { attemptDeliver(e); });
        // Space freed in `pending` may unblock an appender only after
        // the in-flight entry completes; capacity counts both.
    }
}

void
PersistBuffer::attemptDeliver(Entry e)
{
    if (deliver(coreId, e.addr)) {
        pmcBackoff.reset();
        finishOne(e);
    } else {
        // PMC write queue full: retry on the shared bounded-backoff
        // schedule.
        ++pathRetries;
        schedule(After{pmcBackoff.next()}, [this, e] { attemptDeliver(e); });
    }
}

void
PersistBuffer::finishOne(Entry e)
{
    auto it = std::find_if(inFlight.begin(), inFlight.end(),
                           [&](const Entry &f) { return f.seq == e.seq; });
    panic_if(it == inFlight.end(), "persist completion for unknown seq");
    inFlight.erase(it);
    ++persistsDone;
    if (filterRemove)
        filterRemove(e.addr);

    if (empty() && !emptyWaiters.empty()) {
        auto w = std::move(emptyWaiters);
        emptyWaiters.clear();
        for (auto &cb : w)
            cb();
    }
    if (!full() && !spaceWaiters.empty()) {
        auto w = std::move(spaceWaiters);
        spaceWaiters.clear();
        for (auto &cb : w)
            cb();
    }
    if (progressHook)
        progressHook();
    pump();
}

void
PersistBuffer::notifyWhenEmpty(std::function<void()> cb)
{
    if (empty()) {
        cb();
        return;
    }
    emptyWaiters.push_back(std::move(cb));
}

void
PersistBuffer::notifyWhenNotFull(std::function<void()> cb)
{
    if (!full()) {
        cb();
        return;
    }
    spaceWaiters.push_back(std::move(cb));
}

} // namespace pmemspec::mem
