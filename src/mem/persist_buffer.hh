/**
 * @file
 * Per-core persist buffers for the HOPS and DPO baselines
 * (Figure 1a/1b, Sections 2.2 and 3.1).
 *
 * Both baselines place a buffer beside the L1 that captures every PM
 * store; dirty LLC evictions are dropped because the buffer is the
 * agent of persistence. They differ in drain policy:
 *
 *  - HOPS (buffered epoch persistency): ofence closes an epoch without
 *    stalling; entries of the oldest unpersisted epoch drain with up
 *    to drainWidth persists in flight; a later epoch may not start
 *    draining before every earlier epoch is fully persisted. dfence
 *    stalls the core until the buffer is empty.
 *
 *  - DPO (buffered strict persistency): entries drain strictly in
 *    order and "only a single flush to the persistent memory
 *    controller" is allowed machine-wide at once, modelled by a global
 *    drain token shared by all buffers. The token serialises flush
 *    *initiation* (one bus injection slot at a time); the flit then
 *    flies to the PMC pipelined behind the next one.
 *
 * Inter-thread persist dependencies (discovered through coherence /
 * sticky-M in the real designs) are conveyed here through lock
 * watermarks: when a thread releases a lock, the acquirer's buffer
 * records a dependency on the releaser's unpersisted entries and will
 * not drain past it until they are durable.
 */

#ifndef PMEMSPEC_MEM_PERSIST_BUFFER_HH
#define PMEMSPEC_MEM_PERSIST_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "common/backoff.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/pmc_retry.hh"
#include "sim/sim_object.hh"

namespace pmemspec::mem
{

/** Machine-wide single-flush serialisation used by DPO. */
struct GlobalDrainToken
{
    bool busy = false;
    std::vector<std::function<void()>> waiters;

    bool
    tryAcquire()
    {
        if (busy)
            return false;
        busy = true;
        return true;
    }

    void
    release()
    {
        busy = false;
        auto w = std::move(waiters);
        waiters.clear();
        for (auto &cb : w)
            cb();
    }
};

/** A persist dependency on another buffer's progress. */
struct PersistDep
{
    const class PersistBuffer *other;
    std::uint64_t seq; ///< satisfied once other persisted past seq
};

/** One per-core persist buffer. */
class PersistBuffer : public sim::SimObject
{
  public:
    /** Hands one persist to the PMC; false on backpressure. */
    using DeliverFn = std::function<bool(CoreId, Addr)>;
    /** Bloom-filter maintenance hooks (HOPS keeps the PMC filter in
     *  sync with buffer contents). */
    using FilterHook = std::function<void(Addr)>;

    PersistBuffer(sim::EventQueue &eq, StatGroup *parent, CoreId core,
                  Tick drain_latency, unsigned capacity,
                  unsigned drain_width, bool strict_fifo,
                  GlobalDrainToken *global_token, DeliverFn deliver);

    void setFilterHooks(FilterHook on_insert, FilterHook on_remove);

    /** Hook invoked on every persist completion; the machine uses it
     *  to re-evaluate cross-buffer dependencies. */
    void setProgressHook(std::function<void()> cb);

    /** @return true if the buffer cannot take another store. */
    bool full() const;

    /**
     * Capture a committed PM store. Coalesces with a pending entry to
     * the same block in the same epoch. Must not be called while
     * full().
     */
    void append(Addr block_addr);

    /** Close the current epoch (HOPS ofence). Never stalls. */
    void ofence();

    /** @return true when no entry is pending or in flight. */
    bool empty() const { return pending.empty() && inFlight.empty(); }

    /** Invoke cb when the buffer next drains empty (dfence). */
    void notifyWhenEmpty(std::function<void()> cb);

    /** Invoke cb when space is available (store-queue backpressure). */
    void notifyWhenNotFull(std::function<void()> cb);

    /** Sequence number that the next appended entry will get. */
    std::uint64_t nextSeq() const { return seqCounter; }

    /** Smallest sequence number not yet durable (max if none). */
    std::uint64_t oldestUnpersistedSeq() const;

    /** Record that this buffer may not drain until `other` has
     *  persisted everything up to `seq` (lock-handoff dependency). */
    void addDependency(const PersistBuffer *other, std::uint64_t seq);

    /** Re-evaluate drain eligibility (dependency may have cleared). */
    void pump();

    Counter appends;
    Counter coalesces;
    Counter persistsDone;
    Counter ofences;
    Counter depStalls;
    /** Delivery retries due to PMC backpressure (stat "pathRetries",
     *  shared naming with PersistPath). */
    Counter pathRetries;
    Accumulator occupancyStat;

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t epoch;
        std::uint64_t seq;
    };

    bool depsSatisfied();
    void attemptDeliver(Entry e);
    void finishOne(Entry e);

    CoreId coreId;
    Tick drainLatency;
    unsigned capacity_;
    unsigned drainWidth;
    bool strictFifo;
    GlobalDrainToken *globalToken;
    /** PMC-backpressure retry schedule (shared policy, pmc_retry.hh). */
    BoundedBackoff pmcBackoff = pmcRetryBackoff();
    DeliverFn deliver;
    FilterHook filterInsert;
    FilterHook filterRemove;
    std::function<void()> progressHook;

    std::deque<Entry> pending;
    std::vector<Entry> inFlight;
    std::uint64_t curEpoch = 0;
    std::uint64_t seqCounter = 0;
    std::vector<PersistDep> deps;
    std::vector<std::function<void()>> emptyWaiters;
    std::vector<std::function<void()>> spaceWaiters;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_PERSIST_BUFFER_HH
