/**
 * @file
 * The PMEM-Spec speculation buffer (Section 5.3, Figures 5 and 8).
 *
 * One instance lives inside the PM controller. Each entry tracks one
 * cache-block-aligned address with the load-misspeculation automaton
 * state (Table 1) and the tick the current speculation window started
 * (the Inserted field of Figure 8). Monitoring starts only at an LLC
 * writeback (Section 5.1.4); the spec-ID order check of Section 5.2
 * runs in the PM controller's write-queue metadata and reports its
 * verdicts here (see DESIGN.md, decision 2).
 *
 * Inputs (Table 2):
 *   WriteBack -- an LLC writeback of a PM block reaches the PMC (the
 *                data itself is silently dropped under PMEM-Spec);
 *   Read      -- a PM load is served from PM (it missed all caches);
 *   Persist   -- a store arrives over the decoupled persist-path;
 *   Evict     -- the speculation window expires.
 *
 * The automaton flags *load* misspeculation on the pattern
 * WriteBack(s) - Read(s) - Persist: the reads fetched a stale block
 * whose new value was still in flight on the persist-path. *Store*
 * misspeculation (an inter-thread WAW persisted out of happens-before
 * order, i.e. a persist carrying a lower speculation ID than one
 * recorded for the block within the window) is counted and signalled
 * through reportStoreMisspec().
 *
 * When the buffer has no free entry the PMC asks the machine to pause
 * every core for one speculation window so that entries expire
 * (Section 5.3; Figure 11 quantifies the cost).
 */

#ifndef PMEMSPEC_MEM_SPECULATION_BUFFER_HH
#define PMEMSPEC_MEM_SPECULATION_BUFFER_HH

#include <functional>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/sim_object.hh"

namespace pmemspec::mem
{

/** Which of the two PMEM-Spec misspeculations was detected. */
enum class MisspecKind
{
    /** A PM load fetched a stale value (Section 5.1). */
    LoadStale,
    /** Inter-thread persists arrived out of order (Section 5.2). */
    StoreOrder,
};

/** Automaton states of Figure 5 / Table 1. */
enum class SpecState
{
    Initial,
    Evict,
    Speculated,
    Misspeculation,
};

/** The speculation buffer of Figure 8. */
class SpeculationBuffer : public sim::SimObject
{
  public:
    /** Called when either misspeculation fires; receives the block
     *  address, mirroring the designated OS mailbox of Section 6.1. */
    using MisspecCallback = std::function<void(Addr, MisspecKind)>;

    /** Called when the buffer is full; the machine must pause all
     *  cores for the given duration (one speculation window). */
    using PauseCallback = std::function<void(Tick)>;

    SpeculationBuffer(sim::EventQueue &eq, StatGroup *parent,
                      unsigned num_entries, Tick window);

    void setMisspecCallback(MisspecCallback cb) { onMisspec = std::move(cb); }
    void setPauseCallback(PauseCallback cb) { onPause = std::move(cb); }

    /** Table 2 "WriteBack": LLC writeback arrives from the regular
     *  path. Starts (or restarts) monitoring the block. */
    void writeBack(Addr block_addr);

    /** Table 2 "Read": a PM load was served from the PM device. */
    void read(Addr block_addr);

    /** Table 2 "Persist": a store arrives over a persist-path. Only
     *  the load-misspeculation automaton consumes this input; the
     *  spec-ID order check runs in the PM controller's write-queue
     *  metadata (see PmController) because the buffer monitors no
     *  block before an LLC writeback (Section 5.1.4). */
    void persist(Addr block_addr);

    /** The PMC detected an inter-thread persist-order violation for
     *  the given block (Section 5.2): count it and raise the
     *  interrupt. */
    void reportStoreMisspec(Addr block_addr);

    /** Entries currently valid. */
    unsigned occupancy() const;

    /** Configured capacity. */
    unsigned capacity() const { return static_cast<unsigned>(entries.size()); }

    /** Speculation window length in ticks. */
    Tick window() const { return specWindow; }

    /** Automaton state for a block (Initial if untracked). */
    SpecState stateOf(Addr block_addr) const;

    /** Attach the machine's event recorder; `unit` is the owning
     *  PMC's index, stamped into every emitted event. */
    void setTraceManager(trace::Manager *mgr, std::uint16_t unit = 0)
    {
        traceMgr = mgr;
        traceUnit = unit;
    }

    Counter loadMisspecs;
    Counter storeMisspecs;
    Counter allocations;
    Counter expirations;
    Counter fullPauses;
    Counter droppedInputs;
    /** How long entries actually sat in the buffer (ns): the window
     *  residency distribution behind fig11's occupancy story. */
    Histogram residencyHist;

  private:
    struct Entry
    {
        bool valid = false;
        Addr addr = 0;
        SpecState state = SpecState::Initial;
        Tick inserted = 0;
        std::uint64_t generation = 0;
    };

    Entry *find(Addr block_addr);
    const Entry *find(Addr block_addr) const;

    /** Allocate an entry; pauses the machine when full.
     *  @return nullptr if no entry is free even after requesting the
     *  pause (the input is dropped and recorded -- the pause guarantees
     *  no conflicting access can slip by in the meantime). */
    Entry *allocate(Addr block_addr);

    /** (Re)start the window of an entry and arm its expiry event. */
    void armWindow(Entry &e);

    void fireMisspec(Entry &e, MisspecKind kind);

    /** Residency sample + trace event for an entry leaving the buffer. */
    void noteDeparture(const Entry &e);

    std::vector<Entry> entries;
    Tick specWindow;
    MisspecCallback onMisspec;
    PauseCallback onPause;
    /** While paused, the tick at which the pause ends. */
    Tick pausedUntil = 0;

    trace::Manager *traceMgr = nullptr;
    std::uint16_t traceUnit = 0;
};

} // namespace pmemspec::mem

#endif // PMEMSPEC_MEM_SPECULATION_BUFFER_HH
