#include "persist_path.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmemspec::mem
{

PersistPath::PersistPath(sim::EventQueue &eq, StatGroup *parent,
                         CoreId core, Tick latency, unsigned capacity,
                         DeliverFn deliver_fn)
    : sim::SimObject("persistPath" + std::to_string(core), eq, parent),
      occupancyHist(0, capacity + 1.0,
                    std::min<std::size_t>(capacity + 1, 64)),
      coreId(core),
      pathLatency(latency),
      fifoCapacity(capacity),
      deliver(std::move(deliver_fn))
{
    fatal_if(capacity == 0, "persist path capacity must be >= 1");
    stats().addCounter("sends", &sends, "persists pushed onto the path");
    stats().addCounter("deliveries", &deliveries,
                       "persists accepted by the PMC");
    stats().addCounter("pathRetries", &pathRetries,
                       "delivery retries due to PMC backpressure");
    stats().addAccumulator("occupancy", &occupancyStat,
                           "FIFO occupancy sampled at each send");
    stats().addHistogram("occupancyDist", &occupancyHist,
                         "FIFO occupancy distribution at each send");
}

void
PersistPath::send(Addr block_addr, std::optional<SpecId> spec_id)
{
    panic_if(full(), "persist path overflow; the store queue must "
                     "apply backpressure via full()");
    // Entries traverse the path in order: one flit per path cycle of
    // throughput, pathLatency of pipeline depth.
    const Tick one_flit = ticksPerNs; // 1 GB-ish flit rate: 1 flit/ns
    const Tick injected = delayHook ? delayHook(block_addr) : 0;
    Tick arrival = std::max(curTick() + pathLatency + injected,
                            lastArrival + one_flit);
    lastArrival = arrival;
    fifo.push_back(Flit{block_addr, spec_id, arrival});
    ++sends;
    occupancyStat.sample(static_cast<double>(fifo.size()));
    occupancyHist.sample(static_cast<double>(fifo.size()));
    PMEMSPEC_TRACE(traceMgr, FlagPersistPath, trace::EventKind::PathSend,
                   curTick(), coreId, block_addr,
                   {.specId = spec_id ? *spec_id : trace::kNoSpecId,
                    .arg = fifo.size(), .unit = traceUnit});
    if (!pumpScheduled) {
        pumpScheduled = true;
        schedule(After{arrival - curTick()}, [this] { pump(); });
    }
}

void
PersistPath::pump()
{
    pumpScheduled = false;
    if (fifo.empty())
        return;

    Flit &head = fifo.front();
    if (head.readyAt > curTick()) {
        pumpScheduled = true;
        schedule(After{head.readyAt - curTick()}, [this] { pump(); });
        return;
    }

    if (deliver(coreId, head.addr, head.specId)) {
        ++deliveries;
        pmcBackoff.reset();
        PMEMSPEC_TRACE(traceMgr, FlagPersistPath,
                       trace::EventKind::PathDeliver, curTick(), coreId,
                       head.addr,
                       {.specId = head.specId ? *head.specId
                                              : trace::kNoSpecId,
                        .arg = fifo.size() - 1, .unit = traceUnit});
        fifo.pop_front();
        drainWaiters();
        if (!fifo.empty()) {
            pumpScheduled = true;
            Tick delay = fifo.front().readyAt > curTick()
                             ? fifo.front().readyAt - curTick()
                             : 0;
            schedule(After{delay}, [this] { pump(); });
        }
    } else {
        // PMC write queue full: retry on the shared bounded-backoff
        // schedule, preserving order.
        ++pathRetries;
        PMEMSPEC_TRACE(traceMgr, FlagPersistPath,
                       trace::EventKind::PathRetry, curTick(), coreId,
                       head.addr, {.unit = traceUnit});
        pumpScheduled = true;
        schedule(After{pmcBackoff.next()}, [this] { pump(); });
    }
}

void
PersistPath::drainWaiters()
{
    if (fifo.empty() && !emptyWaiters.empty()) {
        auto waiters = std::move(emptyWaiters);
        emptyWaiters.clear();
        for (auto &cb : waiters)
            cb();
    }
    if (!full() && !spaceWaiters.empty()) {
        auto waiters = std::move(spaceWaiters);
        spaceWaiters.clear();
        for (auto &cb : waiters)
            cb();
    }
}

void
PersistPath::notifyWhenEmpty(Waiter cb)
{
    if (fifo.empty()) {
        cb();
        return;
    }
    emptyWaiters.push_back(std::move(cb));
}

void
PersistPath::notifyWhenNotFull(Waiter cb)
{
    if (!full()) {
        cb();
        return;
    }
    spaceWaiters.push_back(std::move(cb));
}

} // namespace pmemspec::mem
