# Empty dependencies file for misspec_recovery.
# This may be replaced when dependencies are built.
