file(REMOVE_RECURSE
  "CMakeFiles/misspec_recovery.dir/misspec_recovery.cpp.o"
  "CMakeFiles/misspec_recovery.dir/misspec_recovery.cpp.o.d"
  "misspec_recovery"
  "misspec_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misspec_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
