file(REMOVE_RECURSE
  "CMakeFiles/design_comparison.dir/design_comparison.cpp.o"
  "CMakeFiles/design_comparison.dir/design_comparison.cpp.o.d"
  "design_comparison"
  "design_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
