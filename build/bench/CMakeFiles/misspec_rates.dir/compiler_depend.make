# Empty compiler generated dependencies file for misspec_rates.
# This may be replaced when dependencies are built.
