file(REMOVE_RECURSE
  "CMakeFiles/misspec_rates.dir/misspec_rates.cc.o"
  "CMakeFiles/misspec_rates.dir/misspec_rates.cc.o.d"
  "misspec_rates"
  "misspec_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misspec_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
