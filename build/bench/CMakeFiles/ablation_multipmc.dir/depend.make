# Empty dependencies file for ablation_multipmc.
# This may be replaced when dependencies are built.
