file(REMOVE_RECURSE
  "CMakeFiles/ablation_multipmc.dir/ablation_multipmc.cc.o"
  "CMakeFiles/ablation_multipmc.dir/ablation_multipmc.cc.o.d"
  "ablation_multipmc"
  "ablation_multipmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multipmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
