file(REMOVE_RECURSE
  "CMakeFiles/fig12_pathlat.dir/fig12_pathlat.cc.o"
  "CMakeFiles/fig12_pathlat.dir/fig12_pathlat.cc.o.d"
  "fig12_pathlat"
  "fig12_pathlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pathlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
