# Empty dependencies file for fig12_pathlat.
# This may be replaced when dependencies are built.
