file(REMOVE_RECURSE
  "CMakeFiles/fig10_cores.dir/fig10_cores.cc.o"
  "CMakeFiles/fig10_cores.dir/fig10_cores.cc.o.d"
  "fig10_cores"
  "fig10_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
