# Empty compiler generated dependencies file for fig10_cores.
# This may be replaced when dependencies are built.
