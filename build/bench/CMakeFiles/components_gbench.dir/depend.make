# Empty dependencies file for components_gbench.
# This may be replaced when dependencies are built.
