file(REMOVE_RECURSE
  "CMakeFiles/fig11_specbuf.dir/fig11_specbuf.cc.o"
  "CMakeFiles/fig11_specbuf.dir/fig11_specbuf.cc.o.d"
  "fig11_specbuf"
  "fig11_specbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_specbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
