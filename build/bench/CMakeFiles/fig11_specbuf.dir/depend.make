# Empty dependencies file for fig11_specbuf.
# This may be replaced when dependencies are built.
