
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/fase_runtime.cc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/fase_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/fase_runtime.cc.o.d"
  "/root/repo/src/runtime/persistent_memory.cc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/persistent_memory.cc.o" "gcc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/persistent_memory.cc.o.d"
  "/root/repo/src/runtime/undo_log.cc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/undo_log.cc.o" "gcc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/undo_log.cc.o.d"
  "/root/repo/src/runtime/virtual_os.cc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/virtual_os.cc.o" "gcc" "src/runtime/CMakeFiles/pmemspec_runtime.dir/virtual_os.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmemspec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
