file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_runtime.dir/fase_runtime.cc.o"
  "CMakeFiles/pmemspec_runtime.dir/fase_runtime.cc.o.d"
  "CMakeFiles/pmemspec_runtime.dir/persistent_memory.cc.o"
  "CMakeFiles/pmemspec_runtime.dir/persistent_memory.cc.o.d"
  "CMakeFiles/pmemspec_runtime.dir/undo_log.cc.o"
  "CMakeFiles/pmemspec_runtime.dir/undo_log.cc.o.d"
  "CMakeFiles/pmemspec_runtime.dir/virtual_os.cc.o"
  "CMakeFiles/pmemspec_runtime.dir/virtual_os.cc.o.d"
  "libpmemspec_runtime.a"
  "libpmemspec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
