# Empty dependencies file for pmemspec_runtime.
# This may be replaced when dependencies are built.
