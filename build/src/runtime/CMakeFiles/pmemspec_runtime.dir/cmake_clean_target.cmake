file(REMOVE_RECURSE
  "libpmemspec_runtime.a"
)
