file(REMOVE_RECURSE
  "libpmemspec_workloads.a"
)
