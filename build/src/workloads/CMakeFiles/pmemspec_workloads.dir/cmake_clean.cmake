file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_workloads.dir/trace_recorder.cc.o"
  "CMakeFiles/pmemspec_workloads.dir/trace_recorder.cc.o.d"
  "CMakeFiles/pmemspec_workloads.dir/workload.cc.o"
  "CMakeFiles/pmemspec_workloads.dir/workload.cc.o.d"
  "libpmemspec_workloads.a"
  "libpmemspec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
