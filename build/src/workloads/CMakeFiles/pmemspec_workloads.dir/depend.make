# Empty dependencies file for pmemspec_workloads.
# This may be replaced when dependencies are built.
