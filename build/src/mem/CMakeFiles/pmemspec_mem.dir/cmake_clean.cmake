file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_mem.dir/cache.cc.o"
  "CMakeFiles/pmemspec_mem.dir/cache.cc.o.d"
  "CMakeFiles/pmemspec_mem.dir/memory_system.cc.o"
  "CMakeFiles/pmemspec_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/pmemspec_mem.dir/persist_buffer.cc.o"
  "CMakeFiles/pmemspec_mem.dir/persist_buffer.cc.o.d"
  "CMakeFiles/pmemspec_mem.dir/persist_path.cc.o"
  "CMakeFiles/pmemspec_mem.dir/persist_path.cc.o.d"
  "CMakeFiles/pmemspec_mem.dir/pm_controller.cc.o"
  "CMakeFiles/pmemspec_mem.dir/pm_controller.cc.o.d"
  "CMakeFiles/pmemspec_mem.dir/speculation_buffer.cc.o"
  "CMakeFiles/pmemspec_mem.dir/speculation_buffer.cc.o.d"
  "libpmemspec_mem.a"
  "libpmemspec_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
