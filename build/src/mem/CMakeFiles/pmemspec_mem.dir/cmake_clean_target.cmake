file(REMOVE_RECURSE
  "libpmemspec_mem.a"
)
