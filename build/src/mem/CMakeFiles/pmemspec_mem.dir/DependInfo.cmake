
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/persist_buffer.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/persist_buffer.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/persist_buffer.cc.o.d"
  "/root/repo/src/mem/persist_path.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/persist_path.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/persist_path.cc.o.d"
  "/root/repo/src/mem/pm_controller.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/pm_controller.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/pm_controller.cc.o.d"
  "/root/repo/src/mem/speculation_buffer.cc" "src/mem/CMakeFiles/pmemspec_mem.dir/speculation_buffer.cc.o" "gcc" "src/mem/CMakeFiles/pmemspec_mem.dir/speculation_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pmemspec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmemspec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
