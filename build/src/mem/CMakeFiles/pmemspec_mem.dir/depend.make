# Empty dependencies file for pmemspec_mem.
# This may be replaced when dependencies are built.
