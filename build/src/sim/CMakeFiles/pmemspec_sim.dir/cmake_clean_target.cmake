file(REMOVE_RECURSE
  "libpmemspec_sim.a"
)
