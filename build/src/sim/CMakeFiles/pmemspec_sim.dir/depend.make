# Empty dependencies file for pmemspec_sim.
# This may be replaced when dependencies are built.
