file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_sim.dir/event_queue.cc.o"
  "CMakeFiles/pmemspec_sim.dir/event_queue.cc.o.d"
  "libpmemspec_sim.a"
  "libpmemspec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
