# Empty compiler generated dependencies file for pmemspec_common.
# This may be replaced when dependencies are built.
