file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_common.dir/bloom_filter.cc.o"
  "CMakeFiles/pmemspec_common.dir/bloom_filter.cc.o.d"
  "CMakeFiles/pmemspec_common.dir/logging.cc.o"
  "CMakeFiles/pmemspec_common.dir/logging.cc.o.d"
  "CMakeFiles/pmemspec_common.dir/stats.cc.o"
  "CMakeFiles/pmemspec_common.dir/stats.cc.o.d"
  "libpmemspec_common.a"
  "libpmemspec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
