file(REMOVE_RECURSE
  "libpmemspec_common.a"
)
