file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_cpu.dir/core.cc.o"
  "CMakeFiles/pmemspec_cpu.dir/core.cc.o.d"
  "CMakeFiles/pmemspec_cpu.dir/lock_table.cc.o"
  "CMakeFiles/pmemspec_cpu.dir/lock_table.cc.o.d"
  "CMakeFiles/pmemspec_cpu.dir/machine.cc.o"
  "CMakeFiles/pmemspec_cpu.dir/machine.cc.o.d"
  "CMakeFiles/pmemspec_cpu.dir/trace.cc.o"
  "CMakeFiles/pmemspec_cpu.dir/trace.cc.o.d"
  "libpmemspec_cpu.a"
  "libpmemspec_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
