file(REMOVE_RECURSE
  "libpmemspec_cpu.a"
)
