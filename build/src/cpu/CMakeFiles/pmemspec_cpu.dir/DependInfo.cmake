
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/lock_table.cc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/lock_table.cc.o" "gcc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/lock_table.cc.o.d"
  "/root/repo/src/cpu/machine.cc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/machine.cc.o" "gcc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/machine.cc.o.d"
  "/root/repo/src/cpu/trace.cc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/trace.cc.o" "gcc" "src/cpu/CMakeFiles/pmemspec_cpu.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/pmemspec_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmemspec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmemspec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
