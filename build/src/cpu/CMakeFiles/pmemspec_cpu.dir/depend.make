# Empty dependencies file for pmemspec_cpu.
# This may be replaced when dependencies are built.
