file(REMOVE_RECURSE
  "libpmemspec_persistency.a"
)
