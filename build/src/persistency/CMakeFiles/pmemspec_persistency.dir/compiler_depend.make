# Empty compiler generated dependencies file for pmemspec_persistency.
# This may be replaced when dependencies are built.
