file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_persistency.dir/lowering.cc.o"
  "CMakeFiles/pmemspec_persistency.dir/lowering.cc.o.d"
  "libpmemspec_persistency.a"
  "libpmemspec_persistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_persistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
