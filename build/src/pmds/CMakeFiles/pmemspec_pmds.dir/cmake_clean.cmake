file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_pmds.dir/kv_store.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/kv_store.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/pm_array.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/pm_array.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/pm_hashmap.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/pm_hashmap.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/pm_queue.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/pm_queue.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/pm_rbtree.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/pm_rbtree.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/tatp.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/tatp.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/tpcc.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/tpcc.cc.o.d"
  "CMakeFiles/pmemspec_pmds.dir/vacation.cc.o"
  "CMakeFiles/pmemspec_pmds.dir/vacation.cc.o.d"
  "libpmemspec_pmds.a"
  "libpmemspec_pmds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_pmds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
