# Empty compiler generated dependencies file for pmemspec_pmds.
# This may be replaced when dependencies are built.
