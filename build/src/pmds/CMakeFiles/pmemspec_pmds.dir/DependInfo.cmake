
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmds/kv_store.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/kv_store.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/kv_store.cc.o.d"
  "/root/repo/src/pmds/pm_array.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_array.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_array.cc.o.d"
  "/root/repo/src/pmds/pm_hashmap.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_hashmap.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_hashmap.cc.o.d"
  "/root/repo/src/pmds/pm_queue.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_queue.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_queue.cc.o.d"
  "/root/repo/src/pmds/pm_rbtree.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_rbtree.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/pm_rbtree.cc.o.d"
  "/root/repo/src/pmds/tatp.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/tatp.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/tatp.cc.o.d"
  "/root/repo/src/pmds/tpcc.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/tpcc.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/tpcc.cc.o.d"
  "/root/repo/src/pmds/vacation.cc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/vacation.cc.o" "gcc" "src/pmds/CMakeFiles/pmemspec_pmds.dir/vacation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/pmemspec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmemspec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
