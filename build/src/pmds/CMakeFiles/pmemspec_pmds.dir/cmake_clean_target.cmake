file(REMOVE_RECURSE
  "libpmemspec_pmds.a"
)
