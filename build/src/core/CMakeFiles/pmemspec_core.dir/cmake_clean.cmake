file(REMOVE_RECURSE
  "CMakeFiles/pmemspec_core.dir/experiment.cc.o"
  "CMakeFiles/pmemspec_core.dir/experiment.cc.o.d"
  "libpmemspec_core.a"
  "libpmemspec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemspec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
