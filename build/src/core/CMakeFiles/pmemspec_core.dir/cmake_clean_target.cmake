file(REMOVE_RECURSE
  "libpmemspec_core.a"
)
