# Empty dependencies file for pmemspec_core.
# This may be replaced when dependencies are built.
