file(REMOVE_RECURSE
  "CMakeFiles/test_pm_rbtree.dir/test_pm_rbtree.cc.o"
  "CMakeFiles/test_pm_rbtree.dir/test_pm_rbtree.cc.o.d"
  "test_pm_rbtree"
  "test_pm_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
