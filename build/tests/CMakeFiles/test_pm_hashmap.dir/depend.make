# Empty dependencies file for test_pm_hashmap.
# This may be replaced when dependencies are built.
