file(REMOVE_RECURSE
  "CMakeFiles/test_pm_hashmap.dir/test_pm_hashmap.cc.o"
  "CMakeFiles/test_pm_hashmap.dir/test_pm_hashmap.cc.o.d"
  "test_pm_hashmap"
  "test_pm_hashmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
