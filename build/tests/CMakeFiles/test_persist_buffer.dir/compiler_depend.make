# Empty compiler generated dependencies file for test_persist_buffer.
# This may be replaced when dependencies are built.
