file(REMOVE_RECURSE
  "CMakeFiles/test_persist_buffer.dir/test_persist_buffer.cc.o"
  "CMakeFiles/test_persist_buffer.dir/test_persist_buffer.cc.o.d"
  "test_persist_buffer"
  "test_persist_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persist_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
