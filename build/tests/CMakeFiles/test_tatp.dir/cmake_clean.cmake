file(REMOVE_RECURSE
  "CMakeFiles/test_tatp.dir/test_tatp.cc.o"
  "CMakeFiles/test_tatp.dir/test_tatp.cc.o.d"
  "test_tatp"
  "test_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
