# Empty compiler generated dependencies file for test_tatp.
# This may be replaced when dependencies are built.
