file(REMOVE_RECURSE
  "CMakeFiles/test_speculation_buffer.dir/test_speculation_buffer.cc.o"
  "CMakeFiles/test_speculation_buffer.dir/test_speculation_buffer.cc.o.d"
  "test_speculation_buffer"
  "test_speculation_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
