# Empty compiler generated dependencies file for test_speculation_buffer.
# This may be replaced when dependencies are built.
