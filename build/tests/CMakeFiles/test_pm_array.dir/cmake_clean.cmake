file(REMOVE_RECURSE
  "CMakeFiles/test_pm_array.dir/test_pm_array.cc.o"
  "CMakeFiles/test_pm_array.dir/test_pm_array.cc.o.d"
  "test_pm_array"
  "test_pm_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
