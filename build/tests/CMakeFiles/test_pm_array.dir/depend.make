# Empty dependencies file for test_pm_array.
# This may be replaced when dependencies are built.
