file(REMOVE_RECURSE
  "CMakeFiles/test_pm_controller.dir/test_pm_controller.cc.o"
  "CMakeFiles/test_pm_controller.dir/test_pm_controller.cc.o.d"
  "test_pm_controller"
  "test_pm_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
