# Empty dependencies file for test_fase_runtime.
# This may be replaced when dependencies are built.
