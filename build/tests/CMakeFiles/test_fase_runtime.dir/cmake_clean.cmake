file(REMOVE_RECURSE
  "CMakeFiles/test_fase_runtime.dir/test_fase_runtime.cc.o"
  "CMakeFiles/test_fase_runtime.dir/test_fase_runtime.cc.o.d"
  "test_fase_runtime"
  "test_fase_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fase_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
