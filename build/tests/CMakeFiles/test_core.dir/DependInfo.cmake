
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/test_core.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmemspec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pmemspec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmds/CMakeFiles/pmemspec_pmds.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pmemspec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/persistency/CMakeFiles/pmemspec_persistency.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pmemspec_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pmemspec_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmemspec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmemspec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
