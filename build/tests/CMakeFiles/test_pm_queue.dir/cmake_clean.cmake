file(REMOVE_RECURSE
  "CMakeFiles/test_pm_queue.dir/test_pm_queue.cc.o"
  "CMakeFiles/test_pm_queue.dir/test_pm_queue.cc.o.d"
  "test_pm_queue"
  "test_pm_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
