# Empty dependencies file for test_pm_queue.
# This may be replaced when dependencies are built.
