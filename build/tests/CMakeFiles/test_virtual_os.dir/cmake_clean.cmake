file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_os.dir/test_virtual_os.cc.o"
  "CMakeFiles/test_virtual_os.dir/test_virtual_os.cc.o.d"
  "test_virtual_os"
  "test_virtual_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
