file(REMOVE_RECURSE
  "CMakeFiles/test_integration_designs.dir/test_integration_designs.cc.o"
  "CMakeFiles/test_integration_designs.dir/test_integration_designs.cc.o.d"
  "test_integration_designs"
  "test_integration_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
