# Empty dependencies file for test_integration_designs.
# This may be replaced when dependencies are built.
