file(REMOVE_RECURSE
  "CMakeFiles/test_multi_pmc.dir/test_multi_pmc.cc.o"
  "CMakeFiles/test_multi_pmc.dir/test_multi_pmc.cc.o.d"
  "test_multi_pmc"
  "test_multi_pmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
