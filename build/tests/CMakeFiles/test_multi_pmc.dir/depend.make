# Empty dependencies file for test_multi_pmc.
# This may be replaced when dependencies are built.
