file(REMOVE_RECURSE
  "CMakeFiles/test_misspec_synthetic.dir/test_misspec_synthetic.cc.o"
  "CMakeFiles/test_misspec_synthetic.dir/test_misspec_synthetic.cc.o.d"
  "test_misspec_synthetic"
  "test_misspec_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misspec_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
