# Empty compiler generated dependencies file for test_misspec_synthetic.
# This may be replaced when dependencies are built.
