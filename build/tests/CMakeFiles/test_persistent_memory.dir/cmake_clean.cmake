file(REMOVE_RECURSE
  "CMakeFiles/test_persistent_memory.dir/test_persistent_memory.cc.o"
  "CMakeFiles/test_persistent_memory.dir/test_persistent_memory.cc.o.d"
  "test_persistent_memory"
  "test_persistent_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistent_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
