# Empty dependencies file for test_persistent_memory.
# This may be replaced when dependencies are built.
