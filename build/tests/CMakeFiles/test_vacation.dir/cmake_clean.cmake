file(REMOVE_RECURSE
  "CMakeFiles/test_vacation.dir/test_vacation.cc.o"
  "CMakeFiles/test_vacation.dir/test_vacation.cc.o.d"
  "test_vacation"
  "test_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
