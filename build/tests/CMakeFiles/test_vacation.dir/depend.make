# Empty dependencies file for test_vacation.
# This may be replaced when dependencies are built.
