# Empty dependencies file for test_persist_path.
# This may be replaced when dependencies are built.
