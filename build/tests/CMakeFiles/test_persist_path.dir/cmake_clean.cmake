file(REMOVE_RECURSE
  "CMakeFiles/test_persist_path.dir/test_persist_path.cc.o"
  "CMakeFiles/test_persist_path.dir/test_persist_path.cc.o.d"
  "test_persist_path"
  "test_persist_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persist_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
