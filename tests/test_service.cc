/**
 * @file
 * Tests for the serve-through-failure service harness (src/service):
 * shard lifecycle under each injected fault kind, client-visible SLOs,
 * the consistency oracle, and run determinism.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "service/service.hh"
#include "service/zipfian.hh"

using namespace pmemspec;
using service::FaultEvent;
using service::OpKind;
using service::Service;
using service::ServiceConfig;
using service::ServiceFault;
using service::ServiceResult;
using service::Shard;
using service::ShardState;

namespace
{

/** A small, fast config: 2 shards, 4 clients, ~4 ms of sim time. */
ServiceConfig
tinyConfig()
{
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.clients = 4;
    cfg.keySpace = 256;
    cfg.interArrival = nsToTicks(32000);
    cfg.duration = nsToTicks(4000000);
    cfg.pmBytesPerShard = std::size_t{1} << 21;
    cfg.buckets = 128;
    return cfg;
}

const service::FaultOutcome &
outcomeOf(const ServiceResult &res, ServiceFault kind)
{
    for (const auto &f : res.faults)
        if (f.kind == kind)
            return f;
    ADD_FAILURE() << "no outcome for fault kind "
                  << service::serviceFaultName(kind);
    static service::FaultOutcome none;
    return none;
}

} // namespace

TEST(Zipfian, DeterministicAndSkewed)
{
    service::ZipfianGenerator z(1000, 0.99);
    Rng a(7), b(7);
    std::map<std::uint64_t, unsigned> hist;
    for (int i = 0; i < 20000; ++i) {
        const auto ka = z.next(a);
        ASSERT_EQ(ka, z.next(b)) << "stream not deterministic";
        ASSERT_LT(ka, 1000u);
        ++hist[ka];
    }
    // Skew: the hottest item (scrambled rank 0) dominates a uniform
    // share by an order of magnitude.
    const std::uint64_t hot =
        service::ZipfianGenerator::scramble(0) % 1000;
    EXPECT_GT(hist[hot], 20000u / 1000u * 10u);
}

TEST(Service, FaultFreeRunIsFullyAvailable)
{
    ServiceConfig cfg = tinyConfig();
    const ServiceResult res = Service(cfg).run();
    EXPECT_GT(res.offered, 100u);
    EXPECT_EQ(res.succeeded, res.offered);
    EXPECT_EQ(res.deadlineFailures, 0u);
    EXPECT_EQ(res.oracle.violations, 0u);
    EXPECT_GT(res.oracle.checks, res.offered / 2);
    for (const auto &m : res.shards) {
        EXPECT_EQ(m.finalState, ShardState::Serving);
        EXPECT_DOUBLE_EQ(m.availability(), 1.0);
        EXPECT_EQ(m.recoveries, 0u);
    }
    EXPECT_EQ(res.latencies.size(), res.succeeded);
    // Percentiles come off the sorted set.
    EXPECT_LE(res.latencyQuantile(0.50), res.latencyQuantile(0.99));
}

TEST(Service, RunsAreDeterministic)
{
    ServiceConfig cfg = tinyConfig();
    cfg.faults = {{cfg.duration / 4, 0, ServiceFault::PowerCut, 0, 0}};
    const std::string a =
        Service(cfg).run().toJson(cfg.duration).dump(2);
    const std::string b =
        Service(cfg).run().toJson(cfg.duration).dump(2);
    EXPECT_EQ(a, b);
}

TEST(Service, PowerCutRecoversWithoutViolations)
{
    ServiceConfig cfg = tinyConfig();
    cfg.faults = {{cfg.duration / 4, 0, ServiceFault::PowerCut, 0, 0}};
    const ServiceResult res = Service(cfg).run();

    EXPECT_EQ(res.oracle.violations, 0u);
    EXPECT_GE(res.powerFailures, 1u);
    const auto &f = outcomeOf(res, ServiceFault::PowerCut);
    EXPECT_EQ(f.outcome, "recovered");
    EXPECT_GT(f.triggeredAt, f.injectedAt);
    EXPECT_GT(f.ttr, 0u);
    // The cut shard is back; the other shard never blinked.
    EXPECT_EQ(res.shards[0].finalState, ShardState::Serving);
    EXPECT_GE(res.shards[0].recoveries, 1u);
    EXPECT_DOUBLE_EQ(res.shards[1].availability(), 1.0);
    EXPECT_EQ(res.shards[1].recoveries, 0u);
    // The interrupted op retried to completion inside its deadline.
    EXPECT_GE(res.retries, 1u);
}

TEST(Service, MediaPoisonQuarantinesOneKeyOnly)
{
    ServiceConfig cfg = tinyConfig();
    cfg.faults = {
        {cfg.duration / 4, 1, ServiceFault::MediaPoison, 0, 0}};
    const ServiceResult res = Service(cfg).run();

    EXPECT_EQ(res.oracle.violations, 0u);
    const auto &f = outcomeOf(res, ServiceFault::MediaPoison);
    EXPECT_EQ(f.outcome, "quarantined");
    EXPECT_EQ(res.quarantined, 1u);
    EXPECT_EQ(res.oracle.lostKeys, 1u);
    // One key traded for the shard: still Serving, no degradation.
    EXPECT_EQ(res.shards[1].finalState, ShardState::Serving);
    EXPECT_EQ(res.degradedRejects, 0u);
}

TEST(Service, LogPoisonDegradesOnlyThatShard)
{
    ServiceConfig cfg = tinyConfig();
    cfg.faults = {
        {cfg.duration / 4, 1, ServiceFault::LogPoison, 0, 0}};
    const ServiceResult res = Service(cfg).run();

    EXPECT_EQ(res.oracle.violations, 0u);
    const auto &f = outcomeOf(res, ServiceFault::LogPoison);
    EXPECT_EQ(f.outcome, "degraded");
    // No global panic: shard 1 is read-only, shard 0 untouched.
    EXPECT_EQ(res.shards[1].finalState, ShardState::Degraded);
    EXPECT_EQ(res.shards[0].finalState, ShardState::Serving);
    EXPECT_DOUBLE_EQ(res.shards[0].availability(), 1.0);
    // Writes bounced, reads kept flowing: the degraded shard stays
    // partially available instead of going dark.
    EXPECT_GT(res.degradedRejects, 0u);
    EXPECT_GT(res.shards[1].availability(), 0.3);
    EXPECT_LT(res.shards[1].availability(), 1.0);
    EXPECT_GT(res.oracle.degradedSkipped, 0u);
}

TEST(Service, MisspecStormShedsOnSpeculativeDesignOnly)
{
    ServiceConfig cfg = tinyConfig();
    cfg.abortBudget = 8;
    cfg.faults = {
        {cfg.duration / 4, 0, ServiceFault::MisspecStorm, 0, 0}};

    cfg.design = persistency::Design::PmemSpec;
    const ServiceResult spec = Service(cfg).run();
    EXPECT_EQ(spec.oracle.violations, 0u);
    EXPECT_GE(spec.budgetTrips, 1u);
    const auto &f = outcomeOf(spec, ServiceFault::MisspecStorm);
    EXPECT_EQ(f.outcome, "shed+recovered");
    EXPECT_EQ(spec.shards[0].finalState, ShardState::Serving);

    // No speculation, no storm: the fault cannot exist elsewhere.
    cfg.design = persistency::Design::IntelX86;
    const ServiceResult strict = Service(cfg).run();
    EXPECT_EQ(outcomeOf(strict, ServiceFault::MisspecStorm).outcome,
              "skipped");
    EXPECT_EQ(strict.budgetTrips, 0u);
    EXPECT_EQ(strict.succeeded, strict.offered);
}

TEST(Service, ShardApplyHandlesDegradedReads)
{
    // Unit-level: a degraded shard serves reads non-transactionally
    // and rejects writes, without touching the runtime.
    ServiceConfig cfg = tinyConfig();
    Shard sh(0, cfg);
    sh.preload(0, 0x42);
    sh.poisonLog();
    // First transactional op hits the poisoned log count word,
    // recovery refuses, the shard degrades.
    auto r = sh.apply(OpKind::Update, 0, 0x43);
    EXPECT_EQ(r.status, Shard::OpStatus::MediaError);
    EXPECT_EQ(sh.state(), ShardState::Degraded);

    auto rd = sh.apply(OpKind::Read, 0, 0);
    EXPECT_EQ(rd.status, Shard::OpStatus::Ok);
    EXPECT_EQ(rd.value, std::optional<std::uint8_t>{0x42})
        << "degraded read must serve the pre-fault value";
    auto wr = sh.apply(OpKind::Update, 0, 0x44);
    EXPECT_EQ(wr.status, Shard::OpStatus::RejectedDegraded);
}

TEST(Service, SimThreadsIsByteInvariantFaultFree)
{
    // The domain-parallel determinism contract (DESIGN.md section
    // 12): the merged result -- down to the JSON bytes -- must not
    // depend on the host thread count.
    ServiceConfig cfg = tinyConfig();
    cfg.simThreads = 1;
    const std::string seq =
        Service(cfg).run().toJson(cfg.duration).dump(2);
    for (unsigned threads : {2u, 3u, 4u}) {
        cfg.simThreads = threads;
        EXPECT_EQ(Service(cfg).run().toJson(cfg.duration).dump(2),
                  seq)
            << "simThreads=" << threads;
    }
}

TEST(Service, SimThreadsIsByteInvariantUnderFaults)
{
    // Same contract with every fault kind in flight (4 shards so
    // each fault kind lands on its own domain) and PMEM-Spec so the
    // storm actually sheds.
    ServiceConfig cfg = tinyConfig();
    cfg.shards = 4;
    cfg.abortBudget = 8;
    cfg.faults = {
        {cfg.duration / 4, 0, ServiceFault::PowerCut, 0, 0},
        {cfg.duration / 3, 1, ServiceFault::MediaPoison, 0, 0},
        {cfg.duration / 2, 2, ServiceFault::MisspecStorm, 0, 0},
        {cfg.duration / 2, 3, ServiceFault::LogPoison, 0, 0},
    };
    cfg.simThreads = 1;
    const std::string seq =
        Service(cfg).run().toJson(cfg.duration).dump(2);
    cfg.simThreads = 4;
    EXPECT_EQ(Service(cfg).run().toJson(cfg.duration).dump(2), seq);
}

TEST(Service, SimThreadsZeroMeansHardwareConcurrency)
{
    ServiceConfig cfg = tinyConfig();
    cfg.simThreads = 1;
    const std::string seq =
        Service(cfg).run().toJson(cfg.duration).dump(2);
    cfg.simThreads = 0;
    EXPECT_EQ(Service(cfg).run().toJson(cfg.duration).dump(2), seq);
}

TEST(Service, JsonRowCarriesSlos)
{
    ServiceConfig cfg = tinyConfig();
    cfg.faults = {{cfg.duration / 4, 0, ServiceFault::PowerCut, 0, 0}};
    const ServiceResult res = Service(cfg).run();
    const Json j = res.toJson(cfg.duration);
    for (const char *key :
         {"design", "offered", "succeeded", "availability",
          "throughput_ops_s", "latency", "events", "shards", "faults",
          "oracle", "transitions"}) {
        EXPECT_NE(j.find(key), nullptr) << key;
    }
    EXPECT_NE(j.find("latency")->find("p999_ns"), nullptr);
    EXPECT_EQ(j.find("shards")->size(), cfg.shards);
    EXPECT_EQ(j.find("faults")->size(), 1u);
    EXPECT_NE(j.find("oracle")->find("violations"), nullptr);
}
