/**
 * @file
 * Tests for the extended failure model: torn frontier persists,
 * poisoned (uncorrectable) words, silent bit rot, and the undo log's
 * checksummed defence against all three. The acceptance fixture of
 * the robustness work lives here too: a deliberately unchecksummed
 * log must be *detected* as corrupt, never replayed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "runtime/persistent_memory.hh"
#include "runtime/undo_log.hh"

using namespace pmemspec;
using runtime::MediaError;
using runtime::PersistentMemory;
using runtime::UndoLog;

// ---------------------------------------------------------------
// PersistentMemory: torn crashes
// ---------------------------------------------------------------

TEST(TornCrash, FrontierWordSubsetLands)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(32, 8);
    for (int i = 0; i < 4; ++i)
        pm.writeU64(a + 8 * static_cast<Addr>(i), 10 + i);
    pm.persistAll();

    // One 32-byte store = one pending persist spanning four words.
    std::uint64_t neu[4] = {20, 21, 22, 23};
    pm.write(a, neu, sizeof(neu));
    ASSERT_EQ(pm.inFlightCount(), 1u);
    EXPECT_EQ(pm.pendingEntryWords(0), 4u);

    // Tear it: words 0 and 2 durable, words 1 and 3 lost.
    pm.crashTorn(0, 0b0101);
    EXPECT_EQ(pm.readU64(a), 20u);
    EXPECT_EQ(pm.readU64(a + 8), 11u);
    EXPECT_EQ(pm.readU64(a + 16), 22u);
    EXPECT_EQ(pm.readU64(a + 24), 13u);
    // Reboot semantics: the volatile image equals the durable one.
    EXPECT_EQ(std::memcmp(pm.volatileImage(), pm.persistedImage(),
                          pm.size()),
              0);
}

TEST(TornCrash, ZeroMaskDegeneratesToCleanPrefix)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(16, 8);
    pm.writeU64(a, 1);
    pm.writeU64(a + 8, 1);
    pm.persistAll();
    pm.writeU64(a, 2);
    pm.writeU64(a + 8, 2);
    pm.crashTorn(1, 0);
    EXPECT_EQ(pm.readU64(a), 2u);
    EXPECT_EQ(pm.readU64(a + 8), 1u);
}

TEST(TornCrash, FullMaskEqualsNextPrefix)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(16, 8);
    std::uint64_t init[2] = {1, 1};
    pm.write(a, init, sizeof(init));
    pm.persistAll();
    std::uint64_t neu[2] = {2, 3};
    pm.write(a, neu, sizeof(neu));
    pm.crashTorn(0, 0b11);
    EXPECT_EQ(pm.readU64(a), 2u);
    EXPECT_EQ(pm.readU64(a + 8), 3u);
}

TEST(TornCrash, UnalignedPendingEntrySpansOverlappedWords)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(64, 8);
    pm.persistAll();
    std::uint8_t buf[12] = {};
    // [a+4, a+16) straddles the words at a and a+8.
    pm.write(a + 4, buf, sizeof(buf));
    ASSERT_EQ(pm.inFlightCount(), 1u);
    EXPECT_EQ(pm.pendingEntryWords(0), 2u);
}

// ---------------------------------------------------------------
// PersistentMemory: poison and bit rot
// ---------------------------------------------------------------

TEST(Poison, ReadOverlappingPoisonThrowsMediaError)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(64, 8);
    pm.writeU64(a + 16, 7);
    pm.persistAll();
    pm.poisonWord(a + 16);

    EXPECT_TRUE(pm.isPoisoned(a + 16));
    EXPECT_THROW(pm.readU64(a + 16), MediaError);
    // Any overlapping range faults, not just the exact word...
    std::uint8_t buf[32];
    EXPECT_THROW(pm.read(a, buf, 32), MediaError);
    // ...but disjoint reads still work (graceful degradation).
    EXPECT_NO_THROW(pm.readU64(a));
    EXPECT_NO_THROW(pm.readU64(a + 24));
    try {
        pm.readU64(a + 16);
        FAIL() << "expected MediaError";
    } catch (const MediaError &e) {
        EXPECT_EQ(e.addr, a + 16);
    }
}

TEST(Poison, FullWordOverwriteHeals)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(16, 8);
    pm.poisonWord(a);
    // A partial store cannot remap the line: still poisoned.
    std::uint8_t half[4] = {1, 2, 3, 4};
    pm.write(a, half, sizeof(half));
    EXPECT_TRUE(pm.isPoisoned(a));
    // A full 8-byte overwrite heals it.
    pm.writeU64(a, 42);
    EXPECT_FALSE(pm.isPoisoned(a));
    EXPECT_EQ(pm.readU64(a), 42u);
}

TEST(Poison, ExplicitClearAndEnumeration)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(64, 8);
    pm.poisonWord(a + 8);
    pm.poisonWord(a + 40);
    const auto in_range = pm.poisonedWordsIn(a, 64);
    ASSERT_EQ(in_range.size(), 2u);
    EXPECT_EQ(in_range[0], a + 8);
    EXPECT_EQ(in_range[1], a + 40);
    EXPECT_TRUE(pm.poisonedWordsIn(a + 16, 16).empty());
    EXPECT_TRUE(pm.clearPoison(a + 8));
    EXPECT_FALSE(pm.clearPoison(a + 8));
    EXPECT_EQ(pm.poisonedWordCount(), 1u);
}

TEST(Poison, SnapshotRestoreCarriesThePoisonSet)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(16, 8);
    pm.poisonWord(a);
    const auto snap = pm.snapshot();
    pm.clearPoison(a);
    pm.poisonWord(a + 8);
    pm.restore(snap);
    EXPECT_TRUE(pm.isPoisoned(a));
    EXPECT_FALSE(pm.isPoisoned(a + 8));
}

TEST(BitRot, CorruptWordIsSilentAndDurable)
{
    PersistentMemory pm(1 << 16);
    const Addr a = pm.alloc(16, 8);
    pm.writeU64(a, 0xFF00);
    pm.persistAll();
    bool observed = false;
    pm.setObserver([&](runtime::MemOp, Addr, std::uint32_t) {
        observed = true;
    });
    pm.corruptWord(a, 0x0F0F);
    pm.setObserver(nullptr);
    EXPECT_FALSE(observed) << "bit rot must not look like an access";
    EXPECT_EQ(pm.readU64(a), 0xFF00u ^ 0x0F0Fu);
    std::uint64_t durable = 0;
    std::memcpy(&durable, pm.persistedImage() + a, 8);
    EXPECT_EQ(durable, 0xFF00u ^ 0x0F0Fu);
}

// ---------------------------------------------------------------
// UndoLog: checksummed recovery under media faults
// ---------------------------------------------------------------

namespace
{

struct LogHarness
{
    PersistentMemory pm{1 << 20};
    Addr region;
    UndoLog log;
    Addr data;

    LogHarness()
        : region(pm.alloc(1 << 14, 64)),
          log(pm, region, 1 << 14),
          data(pm.alloc(256, 64))
    {
        log.reset();
        for (Addr a = data; a < data + 256; a += 8)
            pm.writeU64(a, 0xAA);
        pm.persistAll();
    }
};

/** Offsets into the log region (mirrors the entry layout). */
constexpr std::size_t regionHeaderBytes = 16;

} // namespace

TEST(ChecksummedRecovery, BitFlipInCountedEntryRefusesReplay)
{
    LogHarness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.pm.persistAll();

    // Rot one payload byte beneath the checksum.
    const Addr payload =
        h.region + regionHeaderBytes + UndoLog::entryHeaderBytes;
    h.pm.corruptWord(payload, 0x1);

    const auto res = h.log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(res.discardedCorrupt, 1u);
    EXPECT_NE(res.detail.find("checksum"), std::string::npos)
        << res.detail;
    // Fail-safe: nothing was replayed, the log was not truncated.
    EXPECT_EQ(h.pm.readU64(h.data), 0xBBu);
    EXPECT_TRUE(h.log.needsRecovery());
}

TEST(ChecksummedRecovery, BitFlipInEntryHeaderRefusesReplay)
{
    LogHarness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.pm.persistAll();

    // Rot the entry's target-address field: replaying it would write
    // 0xAA to the wrong place. The CRC covers the header, so this is
    // caught the same way.
    h.pm.corruptWord(h.region + regionHeaderBytes, 0x40);

    const auto res = h.log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(h.pm.readU64(h.data), 0xBBu);
}

TEST(ChecksummedRecovery, CorruptionBehindValidEntriesStopsEverything)
{
    LogHarness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.log.logRange(h.data + 64, 8);
    h.pm.writeU64(h.data + 64, 0xCC);
    h.pm.persistAll();

    // Corrupt only the *second* entry; the first verifies fine, but
    // a partial replay could still tear the pre-image, so recovery
    // must refuse wholesale.
    const std::size_t entry1 = regionHeaderBytes +
                               UndoLog::entryHeaderBytes + 8;
    h.pm.corruptWord(h.region + entry1 + UndoLog::entryHeaderBytes,
                     0x1);

    const auto res = h.log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(res.discardedCorrupt, 1u);
    EXPECT_EQ(h.pm.readU64(h.data), 0xBBu)
        << "the valid first entry must not have been replayed";
}

TEST(ChecksummedRecovery, TornFrontierEntryDetectedAndDiscarded)
{
    LogHarness h;
    // A FASE starts logging a 32-byte range but power fails while
    // the entry is in flight: keep the payload persist, tear the
    // header persist (addr and tid words land, size and crc do not).
    h.log.logRange(h.data, 32);
    ASSERT_GE(h.pm.inFlightCount(), 5u); // payload, header, 2 tombs, count
    h.pm.crashTorn(1, 0b0101);

    UndoLog rebooted(h.pm, h.region, 1 << 14);
    EXPECT_FALSE(rebooted.needsRecovery()) << "count never bumped";
    const auto res = rebooted.recover();
    EXPECT_TRUE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(res.discardedTorn, 1u)
        << "torn residue at the frontier must be reported";
    EXPECT_EQ(h.pm.readU64(h.data), 0xAAu);
}

TEST(ChecksummedRecovery, CleanFrontierReportsNoTornDiscards)
{
    LogHarness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.pm.persistAll();
    const auto res = h.log.recover();
    EXPECT_TRUE(res.consistent);
    EXPECT_EQ(res.replayed, 1u);
    EXPECT_EQ(res.discardedTorn, 0u);
    EXPECT_EQ(res.discardedCorrupt, 0u);
    EXPECT_EQ(h.pm.readU64(h.data), 0xAAu);
}

TEST(ChecksummedRecovery, PoisonedLogWordsAreQuarantined)
{
    LogHarness h;
    // Poison scratch space past the (empty) log's frontier slot.
    h.pm.poisonWord(h.region + 1024);
    h.pm.poisonWord(h.region + 2048);
    const auto res = h.log.recover();
    EXPECT_TRUE(res.consistent);
    EXPECT_EQ(res.poisonedQuarantined, 2u);
    EXPECT_FALSE(h.pm.isPoisoned(h.region + 1024));
    EXPECT_FALSE(h.pm.isPoisoned(h.region + 2048));
}

TEST(ChecksummedRecovery, PoisonedCountedEntryRefusesReplay)
{
    LogHarness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.pm.persistAll();
    h.pm.poisonWord(h.region + regionHeaderBytes +
                    UndoLog::entryHeaderBytes);
    const auto res = h.log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_NE(res.detail.find("poison"), std::string::npos)
        << res.detail;
    EXPECT_EQ(h.pm.readU64(h.data), 0xBBu);
}

TEST(ChecksummedRecovery, PoisonedCountWordRefusesRecovery)
{
    LogHarness h;
    h.pm.poisonWord(h.region); // the entry count itself
    const auto res = h.log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
}

// ---------------------------------------------------------------
// Acceptance fixture: a log written *without* checksums (as a
// pre-robustness implementation would have) must be detected as
// corrupt and refused, not replayed.
// ---------------------------------------------------------------

TEST(ChecksummedRecovery, UnchecksummedLogFixtureIsRefused)
{
    PersistentMemory pm(1 << 20);
    const Addr region = pm.alloc(1 << 14, 64);
    const Addr data = pm.alloc(64, 64);
    pm.writeU64(data, 0xAB);
    pm.persistAll();

    // Hand-craft one entry the way a checksum-less logger would:
    // header fields present, crc field never filled in.
    const Addr entry = region + regionHeaderBytes;
    pm.writeU64(entry, data);      // target addr
    pm.writeU64(entry + 8, 8);     // size
    pm.writeU64(entry + 16, 0);    // tid
    pm.writeU64(entry + 24, 0);    // crc: absent
    pm.writeU64(entry + UndoLog::entryHeaderBytes, 0xCD); // old bytes
    pm.writeU64(region, 1);        // count vouches for the entry
    pm.persistAll();

    UndoLog log(pm, region, 1 << 14);
    ASSERT_TRUE(log.needsRecovery());
    const auto res = log.recover();
    EXPECT_FALSE(res.consistent);
    EXPECT_EQ(res.replayed, 0u);
    EXPECT_EQ(res.discardedCorrupt, 1u);
    EXPECT_EQ(pm.readU64(data), 0xABu)
        << "the unverifiable entry must not have been replayed";
    EXPECT_TRUE(log.needsRecovery())
        << "a refused log stays un-truncated for diagnosis";
}
