/**
 * @file
 * Unit tests for the memcached-like KV store, including the LRU list
 * behaviour on GETs and the torn-value check.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pmds/kv_store.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::KvConfig;
using pmds::KvStore;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 24};
    VirtualOs os;
    KvConfig cfg;
    KvStore kv;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy, 1 << 17};

    Harness() : cfg(makeCfg()), kv(pm, cfg) {}

    static KvConfig
    makeCfg()
    {
        KvConfig c;
        c.buckets = 64;
        c.valueBytes = 256;
        return c;
    }

    void
    set(std::uint64_t k, std::uint8_t b)
    {
        rt.runFase(0, [&](Transaction &tx) { kv.set(tx, k, b); });
    }

    std::optional<std::uint8_t>
    get(std::uint64_t k)
    {
        std::optional<std::uint8_t> out;
        rt.runFase(0, [&](Transaction &tx) { out = kv.get(tx, k); });
        return out;
    }
};

} // namespace

TEST(KvStore, MissReturnsNothing)
{
    Harness h;
    EXPECT_FALSE(h.get(1).has_value());
    EXPECT_EQ(h.kv.size(), 0u);
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, SetThenGet)
{
    Harness h;
    h.set(1, 0xAB);
    EXPECT_EQ(h.get(1), 0xAB);
    EXPECT_EQ(h.kv.lookup(1), 0xAB);
    EXPECT_EQ(h.kv.size(), 1u);
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, OverwriteReplacesWholeValue)
{
    Harness h;
    h.set(1, 0x11);
    h.set(1, 0x22);
    EXPECT_EQ(h.get(1), 0x22);
    EXPECT_EQ(h.kv.size(), 1u);
}

TEST(KvStore, GetBumpsLruAndHitCount)
{
    Harness h;
    h.set(1, 0x01);
    h.set(2, 0x02);
    EXPECT_EQ(h.kv.lruFrontKey(), 2u); // most recently set
    h.get(1);
    EXPECT_EQ(h.kv.lruFrontKey(), 1u); // bumped by the GET
    EXPECT_EQ(h.kv.hitCount(1), 1u);
    EXPECT_EQ(h.kv.hitCount(2), 0u);
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, EraseUnlinksFromLru)
{
    Harness h;
    h.set(1, 0x01);
    h.set(2, 0x02);
    h.set(3, 0x03);
    bool erased = false;
    h.rt.runFase(0,
                 [&](Transaction &tx) { erased = h.kv.erase(tx, 2); });
    EXPECT_TRUE(erased);
    EXPECT_EQ(h.kv.size(), 2u);
    EXPECT_FALSE(h.get(2).has_value());
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, LruOrderFollowsAccesses)
{
    Harness h;
    for (std::uint64_t k = 1; k <= 4; ++k)
        h.set(k, static_cast<std::uint8_t>(k));
    h.get(1);
    h.get(3);
    EXPECT_EQ(h.kv.lruFrontKey(), 3u);
    h.get(1);
    EXPECT_EQ(h.kv.lruFrontKey(), 1u);
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, AbortedSetRollsBackValueAndLru)
{
    Harness h;
    h.set(1, 0x01);
    h.set(2, 0x02);
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.kv.set(tx, 1, 0x99);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.get(1), 0x01);
    EXPECT_EQ(h.kv.lruFrontKey(), 1u); // the recovery GET bumped it
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, RandomisedMixStaysConsistent)
{
    Harness h;
    Rng rng(47);
    std::optional<std::uint8_t> model[32];
    for (int op = 0; op < 500; ++op) {
        const std::uint64_t k = rng.below(32);
        if (rng.chance(0.5)) {
            const auto b = static_cast<std::uint8_t>(rng.next());
            h.set(k, b);
            model[k] = b;
        } else {
            ASSERT_EQ(h.get(k), model[k]) << "key " << k;
        }
    }
    EXPECT_TRUE(h.kv.checkInvariants());
}

TEST(KvStore, LruTrackingCanBeDisabled)
{
    PersistentMemory pm(1 << 24);
    VirtualOs os;
    KvConfig cfg;
    cfg.buckets = 16;
    cfg.valueBytes = 64;
    cfg.lruTracking = false;
    KvStore kv(pm, cfg);
    FaseRuntime rt(pm, os, 1, RecoveryPolicy::Lazy);
    rt.runFase(0, [&](Transaction &tx) { kv.set(tx, 1, 0x01); });
    rt.runFase(0, [&](Transaction &tx) { kv.get(tx, 1); });
    EXPECT_EQ(kv.lruFrontKey(), 0u);
    EXPECT_TRUE(kv.checkInvariants());
}
