/**
 * @file
 * Unit tests for the SoA per-block state table, including the
 * snapshot/restore round-trip the fault-injection layer relies on
 * when checkpointing controller metadata around a simulated outage.
 */

#include <gtest/gtest.h>

#include <vector>

#include "faultinject/fault_injector.hh"
#include "mem/block_table.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using mem::BlockTable;

namespace
{

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2040;
constexpr Addr kC = 0x30c0;

} // namespace

TEST(BlockTable, CoalescableLifecycle)
{
    BlockTable t;
    EXPECT_FALSE(t.coalescable(kA));
    EXPECT_TRUE(t.markCoalescable(kA));
    EXPECT_FALSE(t.markCoalescable(kA)); // second mark = coalesce hit
    EXPECT_TRUE(t.coalescable(kA));
    // Sub-block addresses alias the same block entry.
    EXPECT_TRUE(t.coalescable(kA + 8));
    t.clearCoalescable(kA);
    EXPECT_FALSE(t.coalescable(kA));
    EXPECT_TRUE(t.markCoalescable(kA));
}

TEST(BlockTable, PoisonAutomaton)
{
    BlockTable t;
    EXPECT_FALSE(t.poisoned(kA));
    EXPECT_EQ(t.notePoisonRead(kA), BlockTable::PoisonRead::Clean);

    t.poison(kA, 0); // hard poison
    EXPECT_TRUE(t.poisoned(kA));
    EXPECT_EQ(t.notePoisonRead(kA), BlockTable::PoisonRead::Faulted);
    EXPECT_EQ(t.notePoisonRead(kA), BlockTable::PoisonRead::Faulted);
    EXPECT_TRUE(t.clearPoison(kA));
    EXPECT_FALSE(t.clearPoison(kA));
    EXPECT_FALSE(t.poisoned(kA));

    t.poison(kB, 2); // transient: heals on the second completed read
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Faulted);
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Healed);
    EXPECT_FALSE(t.poisoned(kB));
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Clean);
}

TEST(BlockTable, PendingPersistCountAndWaiters)
{
    BlockTable t;
    EXPECT_EQ(t.pendingPersists(kA), 0u);
    t.persistBuffered(kA);
    t.persistBuffered(kA);
    EXPECT_EQ(t.pendingPersists(kA), 2u);

    std::vector<int> ran;
    t.addPersistWaiter(kA, [&] { ran.push_back(1); });
    t.addPersistWaiter(kA, [&] { ran.push_back(2); });
    t.addPersistWaiter(kA, [&] { ran.push_back(3); });

    EXPECT_FALSE(t.persistDrained(kA));
    EXPECT_TRUE(t.persistDrained(kA));
    for (auto &cb : t.takePersistWaiters(kA))
        cb();
    // FIFO: waiters run in arrival order.
    EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(t.takePersistWaiters(kA).empty());
}

TEST(BlockTable, PersistDrainedWithoutBufferedPanics)
{
    BlockTable t;
    EXPECT_DEATH(t.persistDrained(kA), "matching");
}

TEST(BlockTable, SpecOrderAutomaton)
{
    const Tick window = 1000;
    BlockTable t;

    auto r = t.specPersist(kA, 5, 100, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Inserted);
    EXPECT_TRUE(t.specTracked(kA));

    // In-order persist max-merges and refreshes the window.
    r = t.specPersist(kA, 9, 200, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Refreshed);
    EXPECT_EQ(r.prev, 5u);

    // Equal ID re-observed: never a violation.
    r = t.specPersist(kA, 9, 300, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Refreshed);

    // Lower ID inside the window: WAW inversion, entry cleared.
    r = t.specPersist(kA, 7, 400, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Violation);
    EXPECT_EQ(r.prev, 9u);
    EXPECT_FALSE(t.specTracked(kA));

    // Lower ID but outside the window: stale metadata, no violation.
    r = t.specPersist(kB, 8, 100, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Inserted);
    r = t.specPersist(kB, 3, 100 + window + 1, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Refreshed);
    EXPECT_EQ(r.prev, 8u); // max-merge keeps the higher ID

    // Lazy expiry: a sweep inside the window is a no-op, one past it
    // drops the entry and reports the expired ID.
    SpecId expired = 0;
    EXPECT_FALSE(t.specExpire(kB, 100 + window + 1, window, &expired));
    EXPECT_TRUE(
        t.specExpire(kB, 100 + 2 * window + 2, window, &expired));
    EXPECT_EQ(expired, 8u);
    EXPECT_FALSE(t.specTracked(kB));
}

TEST(BlockTable, GrowsPastInitialCapacityAndCompactsDeadEntries)
{
    BlockTable t(16);
    const unsigned n = 4096;
    for (unsigned i = 0; i < n; ++i)
        t.poison(static_cast<Addr>(i) * 64, 0);
    EXPECT_EQ(t.blocksTracked(), n);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_TRUE(t.poisoned(static_cast<Addr>(i) * 64));
    // Clearing every automaton leaves dead entries that the next
    // growth wave compacts away; state must stay correct throughout.
    for (unsigned i = 0; i < n; ++i)
        EXPECT_TRUE(t.clearPoison(static_cast<Addr>(i) * 64));
    EXPECT_EQ(t.blocksTracked(), 0u);
    for (unsigned i = 0; i < n; ++i)
        t.persistBuffered((static_cast<Addr>(i) * 64) + (1ull << 20));
    for (unsigned i = 0; i < n; ++i)
        EXPECT_FALSE(t.poisoned(static_cast<Addr>(i) * 64));
}

TEST(BlockTable, SnapshotRestoreRoundTrip)
{
    const Tick window = 500;
    BlockTable t;
    t.markCoalescable(kA);
    t.poison(kB, 3);
    t.persistBuffered(kC);
    t.persistBuffered(kC);
    t.specPersist(kA, 11, 42, window);

    BlockTable::Snapshot snap = t.snapshot();

    // Mutate everything after the capture...
    t.clearCoalescable(kA);
    t.clearPoison(kB);
    t.persistDrained(kC);
    t.specPersist(kA, 2, 43, window); // violation clears the entry
    EXPECT_FALSE(t.specTracked(kA));

    // ...then restore and verify the captured automata come back.
    t.restore(snap);
    EXPECT_TRUE(t.coalescable(kA));
    EXPECT_TRUE(t.poisoned(kB));
    EXPECT_EQ(t.pendingPersists(kC), 2u);
    EXPECT_TRUE(t.specTracked(kA));
    auto r = t.specPersist(kA, 2, 43, window);
    EXPECT_EQ(r.step, BlockTable::SpecStep::Violation);
    EXPECT_EQ(r.prev, 11u);

    // The transient-poison countdown survives the round trip.
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Faulted);
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Faulted);
    EXPECT_EQ(t.notePoisonRead(kB), BlockTable::PoisonRead::Healed);
}

TEST(BlockTable, RestoreIntoPopulatedTableDropsCurrentState)
{
    BlockTable t;
    BlockTable::Snapshot empty = t.snapshot();
    t.poison(kA, 0);
    t.markCoalescable(kB);
    t.restore(empty);
    EXPECT_FALSE(t.poisoned(kA));
    EXPECT_FALSE(t.coalescable(kB));
    EXPECT_EQ(t.blocksTracked(), 0u);
}

TEST(BlockTable, SnapshotCompactsToLiveEntries)
{
    BlockTable t;
    for (unsigned i = 0; i < 100; ++i)
        t.poison(static_cast<Addr>(i) * 64, 0);
    for (unsigned i = 10; i < 100; ++i)
        t.clearPoison(static_cast<Addr>(i) * 64);
    BlockTable::Snapshot snap = t.snapshot();
    EXPECT_EQ(snap.key.size(), 10u);
}

TEST(FaultInjectorBlockTable, OrderCheckSnapshotRoundTrip)
{
    // The injector's modelled PMC order check runs on the same table;
    // checkpoint it mid-window and verify a restore re-arms the
    // violation the mutation had consumed.
    runtime::PersistentMemory pm(1 << 16);
    runtime::VirtualOs os;
    faultinject::FaultInjector inj(pm, os);

    inj.injectStoreWaw(0x4000); // persist id=2 then id=1: one misspec
    const auto misspecs_after_first =
        inj.specBuffer().storeMisspecs.value();
    EXPECT_EQ(misspecs_after_first, 1u);

    // A WAW against restored metadata: persist id=2, snapshot,
    // violate with id=1, restore, violate again.
    inj.eventQueue().schedule(After{1}, [] {});
    inj.eventQueue().run();

    BlockTable::Snapshot snap = inj.orderCheckSnapshot();
    inj.restoreOrderCheck(snap);
    const BlockTable::Snapshot snap2 = inj.orderCheckSnapshot();
    EXPECT_EQ(snap.key.size(), snap2.key.size());
    EXPECT_EQ(snap.specId, snap2.specId);
    EXPECT_EQ(snap.specAt, snap2.specAt);
    EXPECT_EQ(snap.flags, snap2.flags);
}
