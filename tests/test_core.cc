/**
 * @file
 * Unit tests for the timing core: issue/stall semantics of each trace
 * op, SQ backpressure, fence behaviour per design, FASE accounting,
 * and the misspeculation rollback.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"
#include "persistency/design.hh"

using namespace pmemspec;
using cpu::Machine;
using cpu::MachineConfig;
using cpu::Trace;
using cpu::TraceInstr;
using cpu::TraceOp;
using persistency::Design;

namespace
{

MachineConfig
config(Design d, unsigned cores = 1)
{
    MachineConfig m;
    m.design = d;
    m.mem.numCores = cores;
    return m;
}

/** Run a single-core machine over one trace. */
cpu::RunResult
run(Machine &m, Trace t)
{
    std::vector<Trace> traces;
    traces.push_back(std::move(t));
    m.setTraces(std::move(traces));
    return m.run();
}

} // namespace

TEST(Core, EmptyTraceFinishesAtTickZero)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {});
    EXPECT_EQ(r.simTicks, 0u);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(Core, ComputeAdvancesSimulatedTime)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {{TraceOp::Compute, 100}});
    // 100 cycles at 2GHz = 50ns.
    EXPECT_EQ(r.simTicks, nsToTicks(50));
    EXPECT_EQ(r.instructions, 1u);
}

TEST(Core, DependentLoadBlocksUntilData)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {{TraceOp::LoadDep, 0x10000}});
    // Cold miss: L1 (2ns) + LLC (20ns) + PM (175ns).
    EXPECT_GE(r.simTicks, nsToTicks(197));
}

TEST(Core, IndependentLoadsOverlap)
{
    Machine m(config(Design::IntelX86));
    Trace t;
    // Four independent loads to different banks.
    for (int i = 0; i < 4; ++i)
        t.push_back({TraceOp::Load,
                     static_cast<Addr>(0x10000 + i * 64)});
    auto r1 = run(m, std::move(t));
    // Overlapped: roughly one miss latency, not four.
    EXPECT_LT(r1.simTicks, nsToTicks(2 * 197));
}

TEST(Core, CachedLoadIsFast)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {{TraceOp::LoadDep, 0x10000},
                     {TraceOp::LoadDep, 0x10000}});
    // Second access hits L1: only +2ns over the first.
    EXPECT_LE(r.simTicks, nsToTicks(197 + 2 + 2));
}

TEST(Core, StoresDrainInBackground)
{
    // Compute overlaps fully with the store's background drain: the
    // run with extra compute costs no additional time.
    Machine m1(config(Design::IntelX86));
    auto r_store = run(m1, {{TraceOp::Store, 0x10000}});
    Machine m2(config(Design::IntelX86));
    auto r_both = run(m2, {{TraceOp::Store, 0x10000},
                           {TraceOp::Compute, 100}});
    EXPECT_EQ(r_both.simTicks, r_store.simTicks);
    // Retirement waits for the drain, so the total covers the
    // write-allocate miss chain.
    EXPECT_GE(r_store.simTicks, nsToTicks(197));
}

TEST(Core, SfenceWaitsForStoreDrain)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {{TraceOp::Store, 0x10000},
                     {TraceOp::Sfence, 0}});
    // The store misses (write-allocate from PM), so the fence waits
    // for the full miss chain.
    EXPECT_GE(r.simTicks, nsToTicks(197));
}

TEST(Core, SfenceWaitsForClwbAck)
{
    Machine m(config(Design::IntelX86));
    // Dirty a block (hit after allocate), then flush + fence.
    auto r = run(m, {{TraceOp::Store, 0x10000},
                     {TraceOp::Sfence, 0},
                     {TraceOp::Clwb, 0x10000},
                     {TraceOp::Sfence, 0}});
    // The second fence adds the flush round trip (~2x11ns + accept).
    EXPECT_GE(r.simTicks, nsToTicks(197 + 22));
}

TEST(Core, SpecBarrierWaitsForPersistPath)
{
    Machine m(config(Design::PmemSpec));
    auto r = run(m, {{TraceOp::Store, 0x10000},
                     {TraceOp::SpecBarrier, 0},
                     {TraceOp::FaseEnd, 0}});
    // The persist entered the path at SQ commit and landed long ago;
    // the barrier still pays the ack return over the NoC (11ns).
    EXPECT_GE(r.simTicks, nsToTicks(197 + 11));
}

TEST(Core, BarrierDoesNotBlockVolatileWork)
{
    // Section 8.2.1: spec-barrier lets loads and compute continue.
    Machine m(config(Design::PmemSpec));
    auto r_over = run(m, {{TraceOp::Store, 0x10000},
                          {TraceOp::SpecBarrier, 0},
                          {TraceOp::Compute, 400}});
    Machine m2(config(Design::PmemSpec));
    auto r_base = run(m2, {{TraceOp::Store, 0x10000},
                           {TraceOp::SpecBarrier, 0}});
    // 400 cycles = 200ns overlap almost fully with the barrier wait.
    EXPECT_LT(r_over.simTicks, r_base.simTicks + nsToTicks(200));
}

TEST(Core, StoreWaitsForOutstandingBarrier)
{
    Machine m(config(Design::PmemSpec));
    auto r_two = run(m, {{TraceOp::Store, 0x10000},
                         {TraceOp::SpecBarrier, 0},
                         {TraceOp::Store, 0x10000}});
    // The second store cannot pass the barrier: runtime covers both
    // the miss chain and the barrier completion plus its own drain.
    EXPECT_GE(r_two.simTicks, nsToTicks(197 + 11 + 2));
}

TEST(Core, DfenceDrainsThePersistBuffer)
{
    Machine m(config(Design::HOPS));
    auto r = run(m, {{TraceOp::Store, 0x10000},
                     {TraceOp::Dfence, 0},
                     {TraceOp::FaseEnd, 0}});
    EXPECT_GE(r.simTicks, nsToTicks(197 + 11));
}

TEST(Core, OfenceIsCheap)
{
    Machine m(config(Design::HOPS));
    auto r = run(m, {{TraceOp::Ofence, 0}, {TraceOp::Ofence, 0}});
    EXPECT_LT(r.simTicks, nsToTicks(5));
}

TEST(Core, SqFullStallsTheCore)
{
    MachineConfig cfg = config(Design::IntelX86);
    cfg.core.sqEntries = 4;
    Machine m(cfg);
    Trace t;
    // 16 stores to distinct cold blocks: each drain is a PM miss, so
    // a 4-entry SQ must backpressure.
    for (int i = 0; i < 16; ++i)
        t.push_back({TraceOp::Store,
                     static_cast<Addr>(0x10000 + i * 64)});
    run(m, std::move(t));
    EXPECT_GT(m.core(0).sqFullStalls.value(), 0u);
}

TEST(Core, FaseMarkersCountThroughput)
{
    Machine m(config(Design::IntelX86));
    auto r = run(m, {{TraceOp::FaseBegin, 0},
                     {TraceOp::Compute, 10},
                     {TraceOp::FaseEnd, 0},
                     {TraceOp::FaseBegin, 0},
                     {TraceOp::FaseEnd, 0}});
    EXPECT_EQ(r.fases, 2u);
}

TEST(Core, LocksSerialiseCrossCoreFases)
{
    Machine m(config(Design::IntelX86, 2));
    Trace t0 = {{TraceOp::LockAcq, 1},
                {TraceOp::Compute, 2000},
                {TraceOp::LockRel, 1}};
    Trace t1 = t0;
    std::vector<Trace> traces{t0, t1};
    m.setTraces(std::move(traces));
    auto r = m.run();
    // 2 x 1000ns critical sections serialised (+lock latencies).
    EXPECT_GE(r.simTicks, nsToTicks(2000));
}

TEST(Core, SpecAssignTagsComeFromGlobalCounter)
{
    Machine m(config(Design::PmemSpec, 2));
    Trace t = {{TraceOp::LockAcq, 1},
               {TraceOp::SpecAssign, 0},
               {TraceOp::Store, 0x10000},
               {TraceOp::SpecRevoke, 0},
               {TraceOp::LockRel, 1},
               {TraceOp::SpecBarrier, 0}};
    std::vector<Trace> traces{t, t};
    m.setTraces(std::move(traces));
    m.run();
    // Two spec-assigns consumed two IDs.
    EXPECT_EQ(m.specCounterValue(), 3u);
}
