/**
 * @file
 * Unit tests for the minimal JSON writer: value types, escaping,
 * insertion order, deterministic number formatting.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/json.hh"

using namespace pmemspec;

TEST(Json, ScalarTypes)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NumberFormattingIsShortestRoundTrip)
{
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json(0.1).dump(), "0.1");
    EXPECT_EQ(Json(400.0).dump(), "400");
    // Inf/NaN have no JSON spelling; null stands in.
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(
        Json(std::numeric_limits<double>::quiet_NaN()).dump(),
        "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
    EXPECT_EQ(Json("line\nbreak\ttab").dump(),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(Json(std::string("ctl\x01")).dump(), "\"ctl\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndReplaces)
{
    Json obj = Json::object();
    obj.set("z", Json(1));
    obj.set("a", Json(2));
    obj.set("z", Json(3)); // replace keeps position
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_DOUBLE_EQ(obj.find("a")->number(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, ArrayAndNesting)
{
    Json arr = Json::array();
    arr.push(Json(1));
    Json inner = Json::object();
    inner.set("k", Json("v"));
    arr.push(std::move(inner));
    EXPECT_EQ(arr.dump(), "[1,{\"k\":\"v\"}]");
    EXPECT_EQ(arr.size(), 2u);
    EXPECT_EQ(arr.at(1).find("k")->str(), "v");
}

TEST(Json, PrettyPrint)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
    Json empty = Json::object();
    EXPECT_EQ(empty.dump(2), "{}");
}
