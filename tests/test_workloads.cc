/**
 * @file
 * Tests over the benchmark trace generators: structural
 * well-formedness (balanced FASEs and locks), determinism, and
 * per-benchmark characteristics from Table 4.
 */

#include <gtest/gtest.h>

#include <map>

#include "workloads/workload.hh"

using namespace pmemspec;
using namespace pmemspec::workloads;
using persistency::EventKind;
using persistency::LogicalTrace;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numThreads = 2;
    p.opsPerThread = 5;
    p.seed = 123;
    return p;
}

struct TraceShape
{
    std::size_t begins = 0;
    std::size_t ends = 0;
    std::size_t acqs = 0;
    std::size_t rels = 0;
    std::size_t logWrites = 0;
    std::size_t dataStores = 0;
    std::size_t loads = 0;
};

TraceShape
shapeOf(const LogicalTrace &t)
{
    TraceShape s;
    for (const auto &e : t) {
        switch (e.kind) {
          case EventKind::FaseBegin: ++s.begins; break;
          case EventKind::FaseEnd:   ++s.ends; break;
          case EventKind::LockAcq:   ++s.acqs; break;
          case EventKind::LockRel:   ++s.rels; break;
          case EventKind::LogWrite:  ++s.logWrites; break;
          case EventKind::DataStore: ++s.dataStores; break;
          case EventKind::PmLoad:
          case EventKind::PmLoadDep: ++s.loads; break;
          default: break;
        }
    }
    return s;
}

} // namespace

class AllBenchmarks : public ::testing::TestWithParam<BenchId>
{
};

TEST_P(AllBenchmarks, ProducesOneTracePerThread)
{
    auto traces = generateTraces(GetParam(), tinyParams());
    EXPECT_EQ(traces.size(), 2u);
    for (const auto &t : traces)
        EXPECT_FALSE(t.empty());
}

TEST_P(AllBenchmarks, FasesAndLocksAreBalanced)
{
    auto traces = generateTraces(GetParam(), tinyParams());
    for (const auto &t : traces) {
        auto s = shapeOf(t);
        EXPECT_EQ(s.begins, 5u) << benchName(GetParam());
        EXPECT_EQ(s.ends, 5u);
        EXPECT_EQ(s.acqs, s.rels);
    }
}

TEST_P(AllBenchmarks, EveryFaseWritesTheLogBeforeData)
{
    // Within each FASE the first DataStore (if any) must follow a
    // Boundary whenever log writes preceded it.
    auto traces = generateTraces(GetParam(), tinyParams());
    for (const auto &t : traces) {
        bool pending_log = false;
        for (const auto &e : t) {
            switch (e.kind) {
              case EventKind::FaseBegin:
                pending_log = false;
                break;
              case EventKind::LogWrite:
                pending_log = true;
                break;
              case EventKind::Boundary:
                pending_log = false;
                break;
              case EventKind::DataStore:
                ASSERT_FALSE(pending_log)
                    << benchName(GetParam())
                    << ": data store with unordered log writes";
                break;
              default:
                break;
            }
        }
    }
}

TEST_P(AllBenchmarks, DeterministicForAGivenSeed)
{
    auto a = generateTraces(GetParam(), tinyParams());
    auto b = generateTraces(GetParam(), tinyParams());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size());
        for (std::size_t j = 0; j < a[i].size(); ++j) {
            ASSERT_EQ(static_cast<int>(a[i][j].kind),
                      static_cast<int>(b[i][j].kind));
            ASSERT_EQ(a[i][j].addr, b[i][j].addr);
            ASSERT_EQ(a[i][j].size, b[i][j].size);
        }
    }
}

TEST_P(AllBenchmarks, SeedsChangeTheTraces)
{
    auto p1 = tinyParams();
    auto p2 = tinyParams();
    p2.seed = 999;
    auto a = generateTraces(GetParam(), p1);
    auto b = generateTraces(GetParam(), p2);
    bool differ = false;
    for (std::size_t i = 0; i < a.size() && !differ; ++i) {
        if (a[i].size() != b[i].size())
            differ = true;
        else
            for (std::size_t j = 0; j < a[i].size(); ++j)
                if (a[i][j].addr != b[i][j].addr) {
                    differ = true;
                    break;
                }
    }
    EXPECT_TRUE(differ) << benchName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Table4, AllBenchmarks,
    ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchId> &info) {
        std::string n = benchName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Workloads, MicrobenchmarksAreLockFree)
{
    // DPO/HOPS-style partitioned microbenchmarks: no locks, hence
    // (almost) zero inter-thread dependencies (Section 8.4).
    for (BenchId b : {BenchId::ArraySwaps, BenchId::Queue,
                      BenchId::Hashmap, BenchId::RbTree, BenchId::Tatp,
                      BenchId::Tpcc}) {
        auto traces = generateTraces(b, tinyParams());
        for (const auto &t : traces)
            EXPECT_EQ(shapeOf(t).acqs, 0u) << benchName(b);
    }
}

TEST(Workloads, ApplicationsUseCriticalSections)
{
    for (BenchId b : {BenchId::Vacation, BenchId::Memcached}) {
        auto traces = generateTraces(b, tinyParams());
        std::size_t acqs = 0;
        for (const auto &t : traces)
            acqs += shapeOf(t).acqs;
        EXPECT_GT(acqs, 0u) << benchName(b);
    }
}

TEST(Workloads, VacationIsLoadDominant)
{
    auto traces = generateTraces(BenchId::Vacation, tinyParams());
    std::size_t loads = 0, stores = 0;
    for (const auto &t : traces) {
        auto s = shapeOf(t);
        loads += s.loads;
        stores += s.dataStores + s.logWrites;
    }
    EXPECT_GT(loads, stores);
}

TEST(Workloads, MemcachedMovesKilobyteValues)
{
    auto traces = generateTraces(BenchId::Memcached, tinyParams());
    bool saw_kb_access = false;
    for (const auto &t : traces)
        for (const auto &e : t)
            if (e.size == 1024)
                saw_kb_access = true;
    EXPECT_TRUE(saw_kb_access);
}

TEST(Workloads, QueueValuesAre64Bytes)
{
    auto traces = generateTraces(BenchId::Queue, tinyParams());
    bool saw64 = false;
    for (const auto &t : traces)
        for (const auto &e : t)
            if (e.kind == EventKind::DataStore && e.size == 64)
                saw64 = true;
    EXPECT_TRUE(saw64);
}

TEST(Workloads, BenchNamesAreUnique)
{
    std::map<std::string, int> names;
    for (BenchId b : allBenchmarks())
        ++names[benchName(b)];
    EXPECT_EQ(names.size(), 8u);
    for (const auto &[n, count] : names)
        EXPECT_EQ(count, 1) << n;
}
