/**
 * @file
 * Unit tests for the TATP subscriber table and UPDATE_LOCATION.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pmds/tatp.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::TatpDb;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

std::uint64_t
subNbr(std::uint64_t s_id)
{
    return s_id * 2654435761ULL % (1ULL << 40);
}

struct Harness
{
    PersistentMemory pm{1 << 24};
    VirtualOs os;
    TatpDb db{pm, 256};
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy};
};

} // namespace

TEST(Tatp, PopulatesAllSubscribers)
{
    Harness h;
    EXPECT_EQ(h.db.subscribers(), 256u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Tatp, UpdateLocationWritesTheRow)
{
    Harness h;
    bool found = false;
    h.rt.runFase(0, [&](Transaction &tx) {
        found = h.db.updateLocation(tx, subNbr(7), 0xCAFE);
    });
    EXPECT_TRUE(found);
    EXPECT_EQ(h.db.location(7), 0xCAFEu);
    // Other rows untouched.
    EXPECT_EQ(h.db.location(8), 0u);
}

TEST(Tatp, UnknownSubscriberNumberFails)
{
    Harness h;
    bool found = true;
    h.rt.runFase(0, [&](Transaction &tx) {
        found = h.db.updateLocation(tx, 0xFFFFFFFFFFull, 1);
    });
    EXPECT_FALSE(found);
}

TEST(Tatp, RepeatedUpdatesKeepLastValue)
{
    Harness h;
    for (std::uint32_t loc = 1; loc <= 5; ++loc) {
        h.rt.runFase(0, [&](Transaction &tx) {
            h.db.updateLocation(tx, subNbr(3), loc);
        });
    }
    EXPECT_EQ(h.db.location(3), 5u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Tatp, AbortedUpdateRollsBack)
{
    Harness h;
    h.rt.runFase(0, [&](Transaction &tx) {
        h.db.updateLocation(tx, subNbr(9), 111);
    });
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.db.updateLocation(tx, subNbr(9), 222);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.db.location(9), 111u);
}

TEST(Tatp, RandomisedUpdatesStayConsistent)
{
    Harness h;
    Rng rng(31);
    std::uint32_t expected[256] = {};
    for (int op = 0; op < 500; ++op) {
        const std::uint64_t s = rng.below(256);
        const auto loc = static_cast<std::uint32_t>(rng.next());
        h.rt.runFase(0, [&](Transaction &tx) {
            ASSERT_TRUE(h.db.updateLocation(tx, subNbr(s), loc));
        });
        expected[s] = loc;
    }
    for (std::uint64_t s = 0; s < 256; ++s)
        ASSERT_EQ(h.db.location(s), expected[s]);
    EXPECT_TRUE(h.db.checkInvariants());
}
