/**
 * @file
 * The offline trace checker as an oracle: over fault-injection
 * campaigns with known-violating plans, over a benign reorder, over a
 * deliberately tampered stream, and over a full timing-machine run
 * that provokes a genuine load misspeculation. In every intact stream
 * the independently re-derived verdicts must agree exactly with what
 * the hardware detector reported.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "faultinject/fault_injector.hh"
#include "faultinject/fault_plan.hh"
#include "observe/trace_checker.hh"
#include "observe/trace_export.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using faultinject::AddrTouchPlan;
using faultinject::FaultInjector;
using faultinject::FaultKind;
using faultinject::NthAccessPlan;
using observe::CheckResult;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;
using trace::EventKind;

namespace
{

trace::Config
checkerTraceConfig()
{
    trace::Config cfg;
    cfg.flags = trace::FlagSpecBuffer | trace::FlagPmController |
                trace::FlagFaultInject;
    return cfg;
}

/** Functional-layer harness with the recorder wired in. */
struct Harness
{
    PersistentMemory pm{1 << 20};
    VirtualOs os;
    FaseRuntime rt;
    FaultInjector inj;
    trace::Manager mgr;
    Addr data;

    explicit Harness(trace::Config tcfg = checkerTraceConfig())
        : rt(pm, os, 1, RecoveryPolicy::Lazy), inj(pm, os),
          mgr(tcfg, 0), data(pm.alloc(256, 64))
    {
        for (Addr a = data; a < data + 256; a += 8)
            pm.writeU64(a, 1);
        pm.persistAll();
        inj.setTraceManager(&mgr);
        inj.attach();
    }

    CheckResult
    check() const
    {
        return observe::checkEvents(mgr.snapshot(), mgr.meta,
                                    mgr.dropped());
    }
};

std::string
joined(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &l : lines)
        out += l + "\n";
    return out;
}

} // namespace

TEST(TraceChecker, AgreesOnInjectedLoadStale)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));
    h.rt.runFase(0, [&](Transaction &tx) { tx.writeU64(h.data, 42); });

    ASSERT_EQ(h.inj.specBuffer().loadMisspecs.value(), 1u);
    const CheckResult res = h.check();
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_TRUE(res.automatonChecked);
    EXPECT_TRUE(res.storeOrderChecked);
    EXPECT_EQ(res.loadMisspecsDerived, 1u);
    EXPECT_EQ(res.loadMisspecsDetected, 1u);
    EXPECT_EQ(res.storeMisspecsDerived, 0u);
}

TEST(TraceChecker, AgreesOnInjectedStoreOrderViolation)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::StoreWaw, h.data));
    h.rt.runFase(0, [&](Transaction &tx) { tx.writeU64(h.data, 21); });

    ASSERT_EQ(h.inj.specBuffer().storeMisspecs.value(), 1u);
    const CheckResult res = h.check();
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_EQ(res.storeMisspecsDerived, 1u);
    EXPECT_EQ(res.storeMisspecsDetected, 1u);
    EXPECT_EQ(res.loadMisspecsDerived, 0u);
}

TEST(TraceChecker, BenignDelayedPersistDerivesNoMisspec)
{
    Harness h;
    h.inj.addPlan(std::make_unique<NthAccessPlan>(
        FaultKind::PersistDelay, 1, nsToTicks(100)));
    h.rt.runFase(0, [&](Transaction &tx) { tx.writeU64(h.data, 13); });

    ASSERT_EQ(h.inj.interruptsRaised(), 0u);
    const CheckResult res = h.check();
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_EQ(res.loadMisspecsDerived, 0u);
    EXPECT_EQ(res.loadMisspecsDetected, 0u);
    EXPECT_EQ(res.storeMisspecsDerived, 0u);
    EXPECT_GT(res.events, 0u);
}

TEST(TraceChecker, TamperedStreamMissingVerdictDisagrees)
{
    Harness h;
    h.inj.addPlan(
        std::make_unique<AddrTouchPlan>(FaultKind::LoadStale, h.data));
    h.rt.runFase(0, [&](Transaction &tx) { tx.writeU64(h.data, 5); });

    // Strip the hardware's SbMisspec verdicts, simulating a detector
    // that silently missed the misspeculation.
    std::vector<trace::Event> tampered;
    for (const auto &e : h.mgr.snapshot())
        if (e.kind != EventKind::SbMisspec)
            tampered.push_back(e);
    const CheckResult res =
        observe::checkEvents(tampered, h.mgr.meta, h.mgr.dropped());
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.loadMisspecsDerived, 1u);
    EXPECT_EQ(res.loadMisspecsDetected, 0u);
    EXPECT_NE(joined(res.disagreements).find("did not report"),
              std::string::npos);
}

TEST(TraceChecker, DroppedEventsDisqualifyTheStream)
{
    trace::Config cfg = checkerTraceConfig();
    trace::Manager mgr(cfg, 0);
    mgr.meta.flags = cfg.flags;
    mgr.meta.specWindow = nsToTicks(1000);
    mgr.meta.specAutomaton = true;
    const CheckResult res =
        observe::checkEvents({}, mgr.meta, /*dropped=*/3);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(joined(res.disagreements).find("lossless"),
              std::string::npos);
}

TEST(TraceChecker, NonSpeculativeDesignHasNothingToCheck)
{
    trace::Meta meta;
    meta.design = "IntelX86";
    meta.flags = trace::FlagSpecBuffer;
    meta.specAutomaton = false;
    const CheckResult res = observe::checkEvents({}, meta, 0);
    EXPECT_TRUE(res.ok());
    EXPECT_FALSE(res.automatonChecked);
    ASSERT_FALSE(res.notes.empty());
}

TEST(TraceChecker, CertifiesExportedBinaryLog)
{
    const std::string out = testing::TempDir() + "pmemspec_oracle.bin";
    trace::Config cfg = checkerTraceConfig();
    cfg.outPath = out;
    {
        Harness h(cfg);
        h.inj.addPlan(std::make_unique<AddrTouchPlan>(
            FaultKind::StoreWaw, h.data));
        h.rt.runFase(0,
                     [&](Transaction &tx) { tx.writeU64(h.data, 9); });
        ASSERT_EQ(observe::exportTraceFile(h.mgr), out);
    }
    const CheckResult res = observe::checkTraceFile(out);
    std::remove(out.c_str());
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_EQ(res.storeMisspecsDerived, 1u);
    EXPECT_EQ(res.storeMisspecsDetected, 1u);
}

TEST(TraceChecker, UnreadableFileIsADisagreement)
{
    const CheckResult res =
        observe::checkTraceFile("/nonexistent/pmemspec.bin");
    EXPECT_FALSE(res.ok());
}

TEST(TraceChecker, AgreesWithTimingMachineOnProvokedMisspec)
{
    // The Section 8.4 stale-read kernel with a 100x persist path: the
    // timing machine's detector reports a genuine load misspec and
    // the offline replica must re-derive exactly it -- plus agree on
    // every benign automaton transition and window expiry around it.
    cpu::MachineConfig cfg;
    cfg.design = persistency::Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.mem.l1Bytes = 1024;
    cfg.mem.l1Ways = 1;
    cfg.mem.llcBytes = 4096;
    cfg.mem.llcWays = 1;
    cfg.mem.persistPathLatency = nsToTicks(2000);
    cfg.mem.speculationWindow = 4 * nsToTicks(2000);
    cfg.trace.flags = trace::FlagSpecBuffer | trace::FlagPmController;

    cpu::Machine m(cfg);
    cpu::Trace t;
    const Addr set_stride = 64 * blockBytes;
    const Addr victim = 50 * set_stride;
    t.push_back({cpu::TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        t.push_back({cpu::TraceOp::Store, i * set_stride});
    t.push_back({cpu::TraceOp::Compute, 3000});
    t.push_back({cpu::TraceOp::LoadDep, victim});
    std::vector<cpu::Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));
    const auto r = m.run();
    ASSERT_GE(r.loadMisspecs, 1u);

    ASSERT_NE(m.traceManager(), nullptr);
    const trace::Manager &mgr = *m.traceManager();
    const CheckResult res =
        observe::checkEvents(mgr.snapshot(), mgr.meta, mgr.dropped());
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_TRUE(res.automatonChecked);
    EXPECT_TRUE(res.storeOrderChecked);
    EXPECT_EQ(res.loadMisspecsDerived, r.loadMisspecs);
    EXPECT_EQ(res.loadMisspecsDetected, r.loadMisspecs);
    EXPECT_EQ(res.expiriesDerived, res.expiriesDetected);
}

TEST(TraceChecker, AgreesWithTimingMachineOnCleanRun)
{
    // The realistic 20ns path never misspeculates on the same kernel;
    // the checker must certify the clean stream too (zero derived,
    // zero detected, all expiries accounted for).
    cpu::MachineConfig cfg;
    cfg.design = persistency::Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.mem.l1Bytes = 1024;
    cfg.mem.l1Ways = 1;
    cfg.mem.llcBytes = 4096;
    cfg.mem.llcWays = 1;
    cfg.mem.persistPathLatency = nsToTicks(20);
    cfg.mem.speculationWindow = 4 * nsToTicks(20);
    cfg.trace.flags = trace::FlagSpecBuffer | trace::FlagPmController;

    cpu::Machine m(cfg);
    cpu::Trace t;
    const Addr set_stride = 64 * blockBytes;
    const Addr victim = 50 * set_stride;
    t.push_back({cpu::TraceOp::Store, victim});
    for (unsigned i = 1; i <= 5; ++i)
        t.push_back({cpu::TraceOp::Store, i * set_stride});
    t.push_back({cpu::TraceOp::Compute, 3000});
    t.push_back({cpu::TraceOp::LoadDep, victim});
    std::vector<cpu::Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));
    const auto r = m.run();
    ASSERT_EQ(r.loadMisspecs, 0u);

    const trace::Manager &mgr = *m.traceManager();
    const CheckResult res =
        observe::checkEvents(mgr.snapshot(), mgr.meta, mgr.dropped());
    EXPECT_TRUE(res.ok()) << joined(res.disagreements);
    EXPECT_EQ(res.loadMisspecsDerived, 0u);
    EXPECT_EQ(res.storeMisspecsDerived, 0u);
}
