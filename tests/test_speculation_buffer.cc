/**
 * @file
 * Unit tests for the speculation buffer: the Figure 5 automaton, the
 * speculation window, and the full-buffer machine pause (Section 5.3).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/speculation_buffer.hh"
#include "sim/event_queue.hh"

using namespace pmemspec;
using mem::MisspecKind;
using mem::SpecState;
using mem::SpeculationBuffer;
using sim::EventQueue;

namespace
{

constexpr Tick window = nsToTicks(160);

struct Harness
{
    EventQueue eq;
    StatGroup stats{"test"};
    SpeculationBuffer buf;
    std::vector<std::pair<Addr, MisspecKind>> misspecs;
    std::vector<Tick> pauses;

    explicit Harness(unsigned entries = 4)
        : buf(eq, &stats, entries, window)
    {
        buf.setMisspecCallback([this](Addr a, MisspecKind k) {
            misspecs.emplace_back(a, k);
        });
        buf.setPauseCallback([this](Tick w) { pauses.push_back(w); });
    }
};

constexpr Addr blockA = 0x1000;
constexpr Addr blockB = 0x2000;

} // namespace

TEST(SpecBuffer, InitialStateForUntrackedBlocks)
{
    Harness h;
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Initial);
    EXPECT_EQ(h.buf.occupancy(), 0u);
}

TEST(SpecBuffer, WriteBackMovesToEvict)
{
    Harness h;
    h.buf.writeBack(blockA);
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Evict);
    EXPECT_EQ(h.buf.occupancy(), 1u);
    EXPECT_EQ(h.buf.allocations.value(), 1u);
}

TEST(SpecBuffer, ReadWithoutWriteBackIsIgnored)
{
    // Section 5.1.4: no block is monitored before an LLC writeback,
    // which is what kills the write-on-allocation false positives.
    Harness h;
    h.buf.read(blockA);
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Initial);
    h.buf.persist(blockA);
    EXPECT_TRUE(h.misspecs.empty());
}

TEST(SpecBuffer, WriteBackReadMovesToSpeculated)
{
    Harness h;
    h.buf.writeBack(blockA);
    h.buf.read(blockA);
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Speculated);
}

TEST(SpecBuffer, FullPatternFiresLoadMisspeculation)
{
    // The Figure 6 pattern: WriteBack - Read - Persist.
    Harness h;
    h.buf.writeBack(blockA);
    h.buf.read(blockA);
    h.buf.persist(blockA);
    ASSERT_EQ(h.misspecs.size(), 1u);
    EXPECT_EQ(h.misspecs[0].first, blockA);
    EXPECT_EQ(h.misspecs[0].second, MisspecKind::LoadStale);
    EXPECT_EQ(h.buf.loadMisspecs.value(), 1u);
    // The entry is released after firing.
    EXPECT_EQ(h.buf.occupancy(), 0u);
}

TEST(SpecBuffer, PersistBeforeReadIsBenign)
{
    // WriteBack - Persist: the in-flight store supersedes the dropped
    // eviction; a later read returns fresh data from PM.
    Harness h;
    h.buf.writeBack(blockA);
    h.buf.persist(blockA);
    EXPECT_TRUE(h.misspecs.empty());
    h.buf.read(blockA);
    h.buf.persist(blockA);
    EXPECT_TRUE(h.misspecs.empty());
}

TEST(SpecBuffer, MultipleReadsStillDetect)
{
    // WriteBack(s) - Read(s) - Persist with repeated reads.
    Harness h;
    h.buf.writeBack(blockA);
    h.buf.read(blockA);
    h.buf.read(blockA);
    h.buf.read(blockA);
    h.buf.persist(blockA);
    EXPECT_EQ(h.buf.loadMisspecs.value(), 1u);
}

TEST(SpecBuffer, WindowExpiryDeallocates)
{
    Harness h;
    h.buf.writeBack(blockA);
    h.eq.runUntil(window + 1);
    EXPECT_EQ(h.buf.occupancy(), 0u);
    EXPECT_EQ(h.buf.expirations.value(), 1u);
    // A persist after expiry is no longer monitored.
    h.buf.read(blockA);
    h.buf.persist(blockA);
    EXPECT_TRUE(h.misspecs.empty());
}

TEST(SpecBuffer, ReadRefreshesWindow)
{
    // Section 5.1.2: the window must cover the worst-case persist-
    // path latency after the *load* reaches the PMC.
    Harness h;
    h.buf.writeBack(blockA);
    h.eq.runUntil(window - nsToTicks(10));
    h.buf.read(blockA); // restarts the window
    h.eq.runUntil(window + nsToTicks(50));
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Speculated);
    h.buf.persist(blockA);
    EXPECT_EQ(h.buf.loadMisspecs.value(), 1u);
}

TEST(SpecBuffer, RepeatedWriteBackRefreshesWindow)
{
    Harness h;
    h.buf.writeBack(blockA);
    h.eq.runUntil(window - nsToTicks(5));
    h.buf.writeBack(blockA);
    h.eq.runUntil(window + nsToTicks(100));
    // Still monitored thanks to the refresh.
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Evict);
}

TEST(SpecBuffer, DistinctBlocksTrackIndependently)
{
    Harness h;
    h.buf.writeBack(blockA);
    h.buf.writeBack(blockB);
    h.buf.read(blockA);
    EXPECT_EQ(h.buf.stateOf(blockA), SpecState::Speculated);
    EXPECT_EQ(h.buf.stateOf(blockB), SpecState::Evict);
    h.buf.persist(blockB); // benign: B was never read
    EXPECT_TRUE(h.misspecs.empty());
    h.buf.persist(blockA);
    EXPECT_EQ(h.buf.loadMisspecs.value(), 1u);
}

TEST(SpecBuffer, FullBufferTriggersOnePauseAndDrops)
{
    Harness h(2);
    h.buf.writeBack(0x1000);
    h.buf.writeBack(0x2000);
    h.buf.writeBack(0x3000); // no room
    ASSERT_EQ(h.pauses.size(), 1u);
    EXPECT_EQ(h.pauses[0], window);
    EXPECT_EQ(h.buf.fullPauses.value(), 1u);
    EXPECT_EQ(h.buf.droppedInputs.value(), 1u);
    // Further overflows within the same pause do not re-pause.
    h.buf.writeBack(0x4000);
    EXPECT_EQ(h.pauses.size(), 1u);
    EXPECT_EQ(h.buf.droppedInputs.value(), 2u);
}

TEST(SpecBuffer, SpaceAvailableAgainAfterWindow)
{
    Harness h(1);
    h.buf.writeBack(0x1000);
    h.buf.writeBack(0x2000);
    EXPECT_EQ(h.buf.fullPauses.value(), 1u);
    h.eq.runUntil(window + 1);
    EXPECT_EQ(h.buf.occupancy(), 0u);
    h.buf.writeBack(0x2000);
    EXPECT_EQ(h.buf.occupancy(), 1u);
    EXPECT_EQ(h.buf.fullPauses.value(), 1u);
}

TEST(SpecBuffer, ReportStoreMisspecCountsAndSignals)
{
    Harness h;
    h.buf.reportStoreMisspec(blockB);
    EXPECT_EQ(h.buf.storeMisspecs.value(), 1u);
    ASSERT_EQ(h.misspecs.size(), 1u);
    EXPECT_EQ(h.misspecs[0].second, MisspecKind::StoreOrder);
}

class SpecBufferSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SpecBufferSizes, CapacityMatchesConfiguration)
{
    Harness h(GetParam());
    EXPECT_EQ(h.buf.capacity(), GetParam());
    for (unsigned i = 0; i < GetParam(); ++i)
        h.buf.writeBack(0x1000 + i * 64);
    EXPECT_EQ(h.buf.occupancy(), GetParam());
    EXPECT_TRUE(h.pauses.empty());
    h.buf.writeBack(0x100000);
    EXPECT_EQ(h.pauses.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpecBufferSizes,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));
