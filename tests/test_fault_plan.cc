/**
 * @file
 * Tests for the shared deterministic subset enumeration that both
 * torn-write frontiers and reorder-window sampling draw from. The
 * load-bearing property is bit-exact reproducibility: the same
 * (n, cap, seed) must enumerate the same masks in the same order on
 * every run, so a CI failure replays locally.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "faultinject/fault_plan.hh"

using pmemspec::faultinject::subsetMasks;

TEST(SubsetMasks, DegenerateWidthsYieldNothing)
{
    EXPECT_TRUE(subsetMasks(0, 12, 1, 4).empty());
    EXPECT_TRUE(subsetMasks(1, 12, 1, 4).empty());
}

TEST(SubsetMasks, ExhaustiveRegimeEnumeratesEveryProperSubset)
{
    // n = 3 <= exhaustive_bits: every proper nonempty subset of
    // {0,1,2}, in ascending order; the cap and seed are ignored.
    const auto masks = subsetMasks(3, 1, 0xdeadbeef, 4);
    const std::vector<std::uint64_t> expect{1, 2, 3, 4, 5, 6};
    EXPECT_EQ(masks, expect);
    EXPECT_EQ(subsetMasks(3, 99, 7, 4), expect);
}

TEST(SubsetMasks, SampledRegimePatternFamilyIsFixed)
{
    // n = 10 > exhaustive_bits 4, cap 12: ten singles then the first
    // two all-but-one masks -- no room for checkerboards or draws.
    const auto masks = subsetMasks(10, 12, 42, 4);
    ASSERT_EQ(masks.size(), 12u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(masks[i], std::uint64_t{1} << i);
    EXPECT_EQ(masks[10], 0x3FFull & ~1ull);
    EXPECT_EQ(masks[11], 0x3FFull & ~2ull);
}

TEST(SubsetMasks, SampledRegimeIsDeterministicAndDupFree)
{
    // Generous cap forces seeded top-up draws past the pattern
    // family; the enumeration must still be byte-identical across
    // calls and contain no duplicates, no empty and no full mask.
    const auto a = subsetMasks(10, 64, 1234, 4);
    const auto b = subsetMasks(10, 64, 1234, 4);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 64u);

    const std::uint64_t full = (std::uint64_t{1} << 10) - 1;
    std::set<std::uint64_t> seen;
    for (std::uint64_t m : a) {
        EXPECT_NE(m, 0u);
        EXPECT_NE(m, full);
        EXPECT_EQ(m & ~full, 0u);
        EXPECT_TRUE(seen.insert(m).second) << "duplicate mask " << m;
    }

    // A different seed changes only the topped-up tail (the Rng is
    // deterministic, so this comparison is stable too).
    const auto c = subsetMasks(10, 64, 99, 4);
    EXPECT_NE(a, c);
    EXPECT_TRUE(std::equal(a.begin(), a.begin() + 22, c.begin()));
}

TEST(SubsetMasks, WidthClampsTo64)
{
    const auto masks = subsetMasks(200, 130, 5, 4);
    const std::uint64_t full = ~std::uint64_t{0};
    ASSERT_EQ(masks.size(), 130u);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(masks[i], std::uint64_t{1} << i);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(masks[64 + i], full & ~(std::uint64_t{1} << i));
    EXPECT_EQ(masks[128], 0x5555555555555555ULL);
    EXPECT_EQ(masks[129], 0xAAAAAAAAAAAAAAAAULL);
}
