/**
 * @file
 * Unit tests for the counting Bloom filter used by the HOPS PMC.
 */

#include <gtest/gtest.h>

#include "common/bloom_filter.hh"
#include "common/rng.hh"

using pmemspec::Addr;
using pmemspec::BloomFilter;
using pmemspec::Rng;

TEST(BloomFilter, EmptyContainsNothing)
{
    BloomFilter f(256, 3);
    for (Addr a = 0; a < 100 * 64; a += 64)
        EXPECT_FALSE(f.mayContain(a));
    EXPECT_EQ(f.population(), 0u);
}

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter f(1024, 3);
    for (Addr a = 0; a < 64 * 64; a += 64)
        f.insert(a);
    for (Addr a = 0; a < 64 * 64; a += 64)
        EXPECT_TRUE(f.mayContain(a));
}

TEST(BloomFilter, RemoveRestoresEmptiness)
{
    BloomFilter f(512, 3);
    const Addr a = 0x1000;
    f.insert(a);
    EXPECT_TRUE(f.mayContain(a));
    f.remove(a);
    EXPECT_FALSE(f.mayContain(a));
    EXPECT_EQ(f.population(), 0u);
}

TEST(BloomFilter, CountingSurvivesDuplicates)
{
    BloomFilter f(512, 3);
    const Addr a = 0x2000;
    f.insert(a);
    f.insert(a);
    f.remove(a);
    // One insertion remains.
    EXPECT_TRUE(f.mayContain(a));
    f.remove(a);
    EXPECT_FALSE(f.mayContain(a));
}

TEST(BloomFilter, RemovePreservesOtherKeys)
{
    BloomFilter f(2048, 3);
    for (Addr a = 64; a <= 32 * 64; a += 64)
        f.insert(a);
    f.remove(64);
    for (Addr a = 2 * 64; a <= 32 * 64; a += 64)
        EXPECT_TRUE(f.mayContain(a));
}

TEST(BloomFilter, ClearDropsEverything)
{
    BloomFilter f(256, 2);
    for (Addr a = 0; a < 16 * 64; a += 64)
        f.insert(a);
    f.clear();
    EXPECT_EQ(f.population(), 0u);
    for (Addr a = 0; a < 16 * 64; a += 64)
        EXPECT_FALSE(f.mayContain(a));
}

TEST(BloomFilter, FalsePositiveRateIsBounded)
{
    BloomFilter f(2048, 3);
    Rng rng(1);
    // Insert 64 random blocks.
    for (int i = 0; i < 64; ++i)
        f.insert(rng.next() & ~0x3fULL);
    // Probe 10000 fresh blocks; the FP rate for n=64, m=2048, k=3
    // is about (1-e^{-3*64/2048})^3 ~ 0.07%.
    int fps = 0;
    for (int i = 0; i < 10000; ++i)
        fps += f.mayContain((rng.next() | (1ULL << 60)) & ~0x3fULL);
    EXPECT_LT(fps, 200);
}

TEST(BloomFilter, RemoveOnEmptyPanics)
{
    BloomFilter f(256, 3);
    EXPECT_DEATH(f.remove(0x40), "empty");
}

TEST(BloomFilter, NonPowerOfTwoSizeIsFatal)
{
    EXPECT_DEATH(BloomFilter(1000, 3), "power of two");
}
