/**
 * @file
 * Unit and property tests for the undo log, including exhaustive
 * crash-point sweeps: for *every* possible in-flight persist prefix,
 * recovery must restore a consistent state.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "runtime/persistent_memory.hh"
#include "runtime/undo_log.hh"

using namespace pmemspec;
using runtime::PersistentMemory;
using runtime::UndoLog;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 20};
    Addr region;
    UndoLog log;
    Addr data;

    Harness()
        : region(pm.alloc(1 << 14, 64)),
          log(pm, region, 1 << 14),
          data(pm.alloc(256, 64))
    {
        log.reset();
        for (Addr a = data; a < data + 256; a += 8)
            pm.writeU64(a, 0xAA);
        pm.persistAll();
    }
};

} // namespace

TEST(UndoLog, FreshLogNeedsNoRecovery)
{
    Harness h;
    EXPECT_FALSE(h.log.needsRecovery());
    EXPECT_EQ(h.log.entryCount(), 0u);
}

TEST(UndoLog, LogThenCommitKeepsNewValues)
{
    Harness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.log.commit();
    h.pm.persistAll();
    EXPECT_EQ(h.pm.readU64(h.data), 0xBBu);
    EXPECT_FALSE(h.log.needsRecovery());
}

TEST(UndoLog, RecoverRestoresOldValues)
{
    Harness h;
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    // No commit: abort instead.
    EXPECT_TRUE(h.log.needsRecovery());
    h.log.recover();
    EXPECT_EQ(h.pm.readU64(h.data), 0xAAu);
    EXPECT_FALSE(h.log.needsRecovery());
}

TEST(UndoLog, RecoverUndoesInReverseOrder)
{
    Harness h;
    // Two overlapping entries: the second logs the value the first
    // wrote; reverse-order undo must end with the original.
    h.log.logRange(h.data, 8);
    h.pm.writeU64(h.data, 0xBB);
    h.log.logRange(h.data, 8); // logs 0xBB
    h.pm.writeU64(h.data, 0xCC);
    h.log.recover();
    EXPECT_EQ(h.pm.readU64(h.data), 0xAAu);
}

TEST(UndoLog, EntryCountTracksAppends)
{
    Harness h;
    h.log.logRange(h.data, 8);
    h.log.logRange(h.data + 64, 16);
    EXPECT_EQ(h.log.entryCount(), 2u);
    h.log.commit();
    EXPECT_EQ(h.log.entryCount(), 0u);
}

TEST(UndoLog, MultiByteRangesRestoreFully)
{
    Harness h;
    h.log.logRange(h.data, 64);
    for (Addr a = h.data; a < h.data + 64; a += 8)
        h.pm.writeU64(a, 0xCC);
    h.log.recover();
    for (Addr a = h.data; a < h.data + 64; a += 8)
        EXPECT_EQ(h.pm.readU64(a), 0xAAu);
}

TEST(UndoLog, OverflowIsFatal)
{
    PersistentMemory pm(1 << 20);
    Addr region = pm.alloc(64, 64);
    UndoLog log(pm, region, 64);
    log.reset();
    EXPECT_DEATH(log.logRange(region, 64), "overflow");
}

// ---------------------------------------------------------------
// Property: crash anywhere during a logged update, recover, and the
// data is either all-old or all-new -- never torn.
// ---------------------------------------------------------------

class UndoLogCrashSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(UndoLogCrashSweep, EveryCrashPrefixRecoversAtomically)
{
    // One failure-atomic update of 3 fields under strict persistency,
    // crashed after exactly GetParam() in-flight persists.
    PersistentMemory pm(1 << 20);
    Addr region = pm.alloc(1 << 12, 64);
    UndoLog log(pm, region, 1 << 12);
    log.reset();
    Addr data = pm.alloc(64, 64);
    for (int i = 0; i < 3; ++i)
        pm.writeU64(data + 8 * static_cast<Addr>(i), 100 + i);
    pm.persistAll();

    // The FASE: log each field, then write it.
    for (int i = 0; i < 3; ++i) {
        log.logRange(data + 8 * static_cast<Addr>(i), 8);
        pm.writeU64(data + 8 * static_cast<Addr>(i), 200 + i);
    }
    log.commit();

    pm.crash(GetParam());

    // Reboot: a fresh UndoLog view over the same region.
    UndoLog rebooted(pm, region, 1 << 12);
    if (rebooted.needsRecovery())
        rebooted.recover();

    // All-old or all-new.
    const std::uint64_t first = pm.readU64(data);
    ASSERT_TRUE(first == 100 || first == 200);
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t v =
            pm.readU64(data + 8 * static_cast<Addr>(i));
        if (first == 200) {
            EXPECT_EQ(v, 200u + static_cast<unsigned>(i));
        } else {
            EXPECT_EQ(v, 100u + static_cast<unsigned>(i));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, UndoLogCrashSweep,
                         ::testing::Range(0u, 40u));

TEST(UndoLog, RandomisedCrashRecoverySweep)
{
    // Random multi-field transactions with random crash points.
    Rng rng(2026);
    for (int trial = 0; trial < 200; ++trial) {
        PersistentMemory pm(1 << 20);
        Addr region = pm.alloc(1 << 13, 64);
        UndoLog log(pm, region, 1 << 13);
        log.reset();
        const unsigned fields = 1 + static_cast<unsigned>(rng.below(6));
        Addr data = pm.alloc(fields * 8, 64);
        for (unsigned i = 0; i < fields; ++i)
            pm.writeU64(data + 8 * i, 1000 + i);
        pm.persistAll();

        for (unsigned i = 0; i < fields; ++i) {
            log.logRange(data + 8 * i, 8);
            pm.writeU64(data + 8 * i, 2000 + i);
        }
        const bool committed = rng.chance(0.5);
        if (committed)
            log.commit();
        pm.crash(rng.below(pm.inFlightCount() + 1));

        UndoLog rebooted(pm, region, 1 << 13);
        if (rebooted.needsRecovery())
            rebooted.recover();

        const std::uint64_t first = pm.readU64(data);
        ASSERT_TRUE(first == 1000 || first == 2000)
            << "trial " << trial;
        for (unsigned i = 0; i < fields; ++i) {
            ASSERT_EQ(pm.readU64(data + 8 * i),
                      (first == 2000 ? 2000 : 1000) + i)
                << "trial " << trial << " field " << i;
        }
    }
}
