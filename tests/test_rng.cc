/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using pmemspec::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose tolerance.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbabilityApproximately)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ChanceZeroAndOne)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(19);
    std::uint64_t buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.below(8)];
    for (auto b : buckets) {
        EXPECT_GT(b, n / 8 * 0.9);
        EXPECT_LT(b, n / 8 * 1.1);
    }
}

TEST(Rng, NoShortCycles)
{
    Rng r(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a = Rng::split(42, 7);
    Rng b = Rng::split(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsAreDistinct)
{
    // The old seed * GOLDEN + stream derivation mapped distinct
    // (seed, stream) pairs to identical streams (e.g. seed s with
    // stream c and seed s+1 with stream c-GOLDEN). split() mixes
    // both inputs through the splitmix64 finalizer -- a bijection --
    // so for a fixed seed every stream id yields a distinct state,
    // and the first draws should all differ too.
    std::set<std::uint64_t> first;
    for (std::uint64_t c = 0; c < 1024; ++c)
        first.insert(Rng::split(1, c).next());
    EXPECT_EQ(first.size(), 1024u);
}

TEST(Rng, SplitSeedsDiverge)
{
    // Same stream id under different seeds must not collide either
    // (the cross term the multiplicative derivation got wrong).
    std::set<std::uint64_t> first;
    for (std::uint64_t s = 0; s < 1024; ++s)
        first.insert(Rng::split(s, 3).next());
    EXPECT_EQ(first.size(), 1024u);
}
