/**
 * @file
 * Unit tests for the Vacation reservation system.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pmds/vacation.hh"
#include "runtime/fase_runtime.hh"
#include "runtime/virtual_os.hh"

using namespace pmemspec;
using pmds::ResourceKind;
using pmds::VacationConfig;
using pmds::VacationDb;
using runtime::FaseRuntime;
using runtime::PersistentMemory;
using runtime::RecoveryPolicy;
using runtime::Transaction;
using runtime::VirtualOs;

namespace
{

struct Harness
{
    PersistentMemory pm{1 << 25};
    VirtualOs os;
    VacationConfig cfg;
    VacationDb db;
    FaseRuntime rt{pm, os, 1, RecoveryPolicy::Lazy, 1 << 17};

    Harness() : cfg(makeCfg()), db(pm, cfg) {}

    static VacationConfig
    makeCfg()
    {
        VacationConfig c;
        c.resourcesPerTable = 128;
        c.customers = 16;
        c.numQueries = 4;
        c.partitionsPerTable = 4;
        return c;
    }

    bool
    reserve(ResourceKind kind, std::vector<std::uint64_t> cands,
            std::uint64_t customer)
    {
        bool out = false;
        rt.runFase(0, [&](Transaction &tx) {
            out = db.makeReservation(tx, kind, cands, customer);
        });
        return out;
    }
};

} // namespace

TEST(Vacation, FreshDatabaseIsConsistent)
{
    Harness h;
    EXPECT_TRUE(h.db.checkInvariants());
    EXPECT_EQ(h.db.totalReservations(), 0u);
    EXPECT_EQ(h.db.totalUsedSeats(), 0u);
}

TEST(Vacation, ReservationMovesOneSeat)
{
    Harness h;
    EXPECT_TRUE(h.reserve(ResourceKind::Car, {3, 7, 11}, 0));
    EXPECT_EQ(h.db.totalUsedSeats(), 1u);
    EXPECT_EQ(h.db.totalReservations(), 1u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Vacation, PartitionOfIsStable)
{
    Harness h;
    EXPECT_EQ(h.db.partitionOf(5), 5u % 4);
    EXPECT_LT(h.db.partitionOf(127), 4u);
}

TEST(Vacation, ReservationPicksTheCheapestAvailable)
{
    Harness h;
    // Query a single candidate repeatedly until its seats drain; the
    // 11th reservation must fail over to nothing (free == 0).
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(h.reserve(ResourceKind::Room, {5}, 1));
    EXPECT_FALSE(h.reserve(ResourceKind::Room, {5}, 1));
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Vacation, DeleteCustomerReleasesSeats)
{
    Harness h;
    ASSERT_TRUE(h.reserve(ResourceKind::Flight, {1, 2}, 3));
    ASSERT_TRUE(h.reserve(ResourceKind::Car, {4, 5}, 3));
    unsigned released = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        released = h.db.deleteCustomerReservations(tx, 3);
    });
    EXPECT_EQ(released, 2u);
    EXPECT_EQ(h.db.totalUsedSeats(), 0u);
    EXPECT_EQ(h.db.totalReservations(), 0u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Vacation, UpdateTablesChangesPriceOnly)
{
    Harness h;
    h.rt.runFase(0, [&](Transaction &tx) {
        h.db.updateTables(tx, ResourceKind::Car, 9, 12345);
    });
    EXPECT_EQ(h.db.totalUsedSeats(), 0u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Vacation, AbortedReservationRollsBack)
{
    Harness h;
    int runs = 0;
    h.rt.runFase(0, [&](Transaction &tx) {
        if (++runs == 1) {
            h.db.makeReservation(tx, ResourceKind::Car, {1, 2, 3}, 0);
            h.os.raiseMisspecInterrupt(1);
        }
    });
    EXPECT_EQ(h.db.totalUsedSeats(), 0u);
    EXPECT_EQ(h.db.totalReservations(), 0u);
    EXPECT_TRUE(h.db.checkInvariants());
}

TEST(Vacation, RandomisedMixKeepsSeatConservation)
{
    Harness h;
    Rng rng(43);
    for (int op = 0; op < 300; ++op) {
        const auto kind = static_cast<ResourceKind>(rng.below(3));
        const std::uint64_t customer = rng.below(16);
        const double dice = rng.uniform();
        if (dice < 0.7) {
            std::vector<std::uint64_t> cands;
            for (unsigned q = 0; q < 4; ++q)
                cands.push_back(rng.below(128));
            h.reserve(kind, cands, customer);
        } else if (dice < 0.85) {
            h.rt.runFase(0, [&](Transaction &tx) {
                h.db.deleteCustomerReservations(tx, customer);
            });
        } else {
            h.rt.runFase(0, [&](Transaction &tx) {
                h.db.updateTables(tx, kind, rng.below(128),
                                  static_cast<std::uint32_t>(
                                      50 + rng.below(500)));
            });
        }
    }
    EXPECT_TRUE(h.db.checkInvariants());
}
