/**
 * @file
 * The synthetic misspeculation programs of Section 8.4, driven
 * through the full timing machine.
 *
 * Load misspeculation needs: a store to a block, conflicting accesses
 * that evict the dirty block all the way to PM, and a load of the
 * block racing the store's persist-path flight. As the paper notes,
 * this only succeeds with an unrealistically long persist-path
 * latency ("e.g., 10x slower"); we widen the path latency to force
 * the race, and verify that the realistic 20ns path never
 * misspeculates on the same program.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"

using namespace pmemspec;
using cpu::Machine;
using cpu::MachineConfig;
using cpu::Trace;
using cpu::TraceOp;
using persistency::Design;

namespace
{

/** Machine with tiny direct-mapped caches so a few conflicting
 *  stores evict a victim block all the way to PM. */
MachineConfig
tinyCacheConfig(Tick path_latency)
{
    MachineConfig cfg;
    cfg.design = Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.mem.l1Bytes = 1024;  // 16 sets, direct mapped
    cfg.mem.l1Ways = 1;
    cfg.mem.llcBytes = 4096; // 64 sets, direct mapped
    cfg.mem.llcWays = 1;
    cfg.mem.persistPathLatency = path_latency;
    cfg.mem.speculationWindow = 4 * path_latency;
    return cfg;
}

/** Blocks that all map to set 0 of both caches. */
std::vector<Addr>
set0Blocks(unsigned count)
{
    // LLC has 64 sets: stride block numbers by 64.
    std::vector<Addr> out;
    for (unsigned i = 1; i <= count; ++i)
        out.push_back(static_cast<Addr>(i) * 64 * blockBytes);
    return out;
}

/**
 * The Section 8.4 synthetic kernel: store a victim block, force its
 * eviction with same-set stores, spin long enough for the evictions
 * to complete, then load the victim from PM. No FASE brackets: the
 * paper's kernel probes raw detection (a FASE variant would
 * deterministically re-race on every retry).
 */
Trace
staleReadKernel()
{
    auto blocks = set0Blocks(6);
    const Addr victim = blocks.back() + 64 * 64 * blockBytes;
    Trace t;
    t.push_back({TraceOp::Store, victim});
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i)
        t.push_back({TraceOp::Store, blocks[i]});
    // Let the store queue drain so the victim is evicted to PM
    // before the probing load issues (the paper: "the program may
    // require tens of memory accesses").
    t.push_back({TraceOp::Compute, 3000}); // 1.5us
    t.push_back({TraceOp::LoadDep, victim});
    return t;
}

} // namespace

TEST(MisspecSynthetic, StaleReadDetectedWithSlowPersistPath)
{
    // 100x path latency: the persist is still in flight when the
    // load's PM round trip completes.
    Machine m(tinyCacheConfig(nsToTicks(2000)));
    std::vector<Trace> traces{staleReadKernel()};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_GE(r.loadMisspecs, 1u);
}

TEST(MisspecSynthetic, NoStaleReadWithRealisticPath)
{
    // The paper: with the 20ns path (shorter than the PM read round
    // trip) the same kernel never misspeculates.
    Machine m(tinyCacheConfig(nsToTicks(20)));
    std::vector<Trace> traces{staleReadKernel()};
    m.setTraces(std::move(traces));
    auto r = m.run();
    EXPECT_EQ(r.loadMisspecs, 0u);
    EXPECT_EQ(r.storeMisspecs, 0u);
}

TEST(MisspecSynthetic, StoreOrderViolationTriggersRecovery)
{
    // Drive the PMC directly with an inverted-ID pair inside the
    // window, wired into a machine so the recovery path also runs.
    MachineConfig cfg;
    cfg.design = Design::PmemSpec;
    cfg.mem.numCores = 2;
    Machine m(cfg);
    Trace fase;
    fase.push_back({TraceOp::FaseBegin, 0});
    fase.push_back({TraceOp::Compute, 8000});
    fase.push_back({TraceOp::SpecBarrier, 0});
    fase.push_back({TraceOp::FaseEnd, 0});
    std::vector<Trace> traces{fase, fase};
    m.setTraces(std::move(traces));
    m.eventQueue().schedule(After{nsToTicks(10)}, [&] {
        auto &pmc = m.memory().pmc();
        pmc.acceptPersist(1, 0x40000, SpecId{9});
        pmc.acceptPersist(0, 0x40000, SpecId{4});
    });
    auto r = m.run();
    EXPECT_EQ(r.storeMisspecs, 1u);
    EXPECT_GE(r.aborts, 1u); // conservative rollback of open FASEs
    EXPECT_EQ(r.fases, 2u);  // both commit after re-execution
}

TEST(MisspecSynthetic, RecoveryCostIsBoundedByFaseLength)
{
    // Section 6.3: recovery re-executes only the interrupted FASE.
    MachineConfig cfg;
    cfg.design = Design::PmemSpec;
    cfg.mem.numCores = 1;
    cfg.misspecInterruptLatency = nsToTicks(100);
    cfg.abortHandlerLatency = nsToTicks(100);
    Machine m(cfg);
    Trace t;
    // A long prefix FASE that must NOT be re-executed...
    t.push_back({TraceOp::FaseBegin, 0});
    t.push_back({TraceOp::Compute, 100000}); // 50us
    t.push_back({TraceOp::SpecBarrier, 0});
    t.push_back({TraceOp::FaseEnd, 0});
    // ...followed by a short FASE that aborts.
    t.push_back({TraceOp::FaseBegin, 0});
    t.push_back({TraceOp::Compute, 2000}); // 1us
    t.push_back({TraceOp::SpecBarrier, 0});
    t.push_back({TraceOp::FaseEnd, 0});
    std::vector<Trace> traces{std::move(t)};
    m.setTraces(std::move(traces));
    // Fire the failure while the second FASE runs (after ~50.5us).
    m.eventQueue().schedule(After{nsToTicks(50500)}, [&] {
        m.memory().pmc().specBuffer().reportStoreMisspec(0x1);
    });
    auto r = m.run();
    EXPECT_EQ(r.aborts, 1u);
    EXPECT_EQ(r.fases, 2u);
    // Total: ~50us + ~2x1us + recovery latencies; far below the
    // ~100us a whole-program restart would cost.
    EXPECT_LT(r.simTicks, nsToTicks(60000));
}

TEST(MisspecSynthetic, RollbackIsConservativeAcrossThreads)
{
    // Section 6.2: every thread inside a FASE rolls back, because
    // the hardware cannot attribute the misspeculation.
    MachineConfig cfg;
    cfg.design = Design::PmemSpec;
    cfg.mem.numCores = 3;
    cfg.misspecInterruptLatency = nsToTicks(100);
    cfg.abortHandlerLatency = nsToTicks(100);
    Machine m(cfg);
    Trace in_fase;
    in_fase.push_back({TraceOp::FaseBegin, 0});
    in_fase.push_back({TraceOp::Compute, 20000});
    in_fase.push_back({TraceOp::SpecBarrier, 0});
    in_fase.push_back({TraceOp::FaseEnd, 0});
    Trace outside;
    outside.push_back({TraceOp::Compute, 20000});
    std::vector<Trace> traces{in_fase, in_fase, outside};
    m.setTraces(std::move(traces));
    m.eventQueue().schedule(After{nsToTicks(100)}, [&] {
        m.memory().pmc().specBuffer().reportStoreMisspec(0x1);
    });
    auto r = m.run();
    EXPECT_EQ(r.aborts, 2u); // both in-FASE threads; bystander spared
}
